//! Fidelity checks of the CONGEST substrate: the distributed programs
//! agree with their sequential counterparts on arbitrary graphs, and the
//! simulator's accounting invariants hold.

use proptest::prelude::*;

use rmo::congest::programs::bfs::run_bfs;
use rmo::congest::programs::broadcast::run_tree_broadcast;
use rmo::congest::programs::convergecast::run_tree_convergecast;
use rmo::congest::programs::leader::run_leader_election;
use rmo::congest::Network;
use rmo::graph::{bfs_distances, gen};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_bfs_equals_sequential(
        n in 2usize..60,
        extra in 0usize..80,
        seed in 0u64..500,
        root_pick in 0usize..1000,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let net = Network::new(&g, seed);
        let root = root_pick % n;
        let (tree, dist, cost) = run_bfs(&g, &net, root).expect("terminates");
        prop_assert_eq!(&dist, &bfs_distances(&g, root));
        prop_assert_eq!(tree.root(), root);
        // Exactly two announcements per edge.
        prop_assert_eq!(cost.messages, 2 * g.m() as u64);
        // Rounds track the BFS depth, not n.
        let depth = *dist.iter().max().unwrap();
        prop_assert!(cost.rounds <= depth + 3);
        // Parent depths are strictly decreasing toward the root.
        for v in 0..n {
            if v != root {
                prop_assert_eq!(dist[tree.parent_of(v).unwrap()] + 1, dist[v]);
            }
        }
    }

    #[test]
    fn broadcast_then_convergecast_roundtrip(
        n in 2usize..50,
        extra in 0usize..40,
        seed in 0u64..200,
        value in 0u64..1_000_000,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let net = Network::new(&g, seed ^ 1);
        let (tree, _, _) = run_bfs(&g, &net, 0).expect("terminates");
        let (values, bcost) = run_tree_broadcast(&g, &net, &tree, value).expect("terminates");
        prop_assert!(values.iter().all(|&v| v == value));
        prop_assert_eq!(bcost.messages, (n - 1) as u64);
        // Count the nodes back up: Sum convergecast of ones.
        let ones = vec![1u64; n];
        let (count, ccost) =
            run_tree_convergecast(&g, &net, &tree, &ones, |a, b| a + b).expect("terminates");
        prop_assert_eq!(count, n as u64);
        prop_assert_eq!(ccost.messages, (n - 1) as u64);
    }

    #[test]
    fn election_finds_global_max_id(
        n in 2usize..40,
        extra in 0usize..40,
        seed in 0u64..200,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let net = Network::new(&g, seed ^ 99);
        let (leader, id, _) = run_leader_election(&g, &net).expect("terminates");
        let max_id = (0..n).map(|v| net.id_of(v)).max().unwrap();
        prop_assert_eq!(id, max_id);
        prop_assert_eq!(net.id_of(leader), max_id);
    }
}

#[test]
fn bfs_on_every_special_topology() {
    let cases = vec![
        gen::torus(4, 5),
        gen::hypercube(5),
        gen::random_regular(40, 4, 1),
        gen::caterpillar(8, 3),
        gen::dumbbell(6, 2),
        gen::lollipop(7, 9),
        gen::broom(10, 10),
    ];
    for g in cases {
        let net = Network::new(&g, 3);
        let (_, dist, _) = run_bfs(&g, &net, 0).expect("terminates");
        assert_eq!(dist, bfs_distances(&g, 0));
    }
}
