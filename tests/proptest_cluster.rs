//! Property-based determinism of the serving layer: for arbitrary shard
//! counts, seeds, skew exponents, and scheduling policies, threaded
//! serving (LPT placement + work stealing) bit-matches the sequential
//! replay — responses, per-query costs, and engine counters — and the
//! recorded steal log reproduces the exact placement.

use proptest::prelude::*;

use rmo::apps::service::{zipf_workload, GraphId, PaCluster, SchedulePolicy};
use rmo::graph::gen;

fn skew_cluster(shards: usize, policy: SchedulePolicy) -> PaCluster {
    let mut cluster = PaCluster::with_policy(shards, policy);
    cluster.add_graph(GraphId(0), gen::grid(4, 5));
    cluster.add_graph(GraphId(1), gen::path(16));
    cluster.add_graph(GraphId(2), gen::gnp_connected(18, 0.2, 5));
    cluster.add_graph(GraphId(3), gen::grid(3, 6));
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn threaded_equals_sequential_under_random_skew(
        shards in 1usize..6,
        seed in 0u64..1000,
        // 0 = uniform traffic; large = almost everything on one graph.
        exponent in 0u32..30,
        pinned in any::<bool>(),
    ) {
        let policy = if pinned { SchedulePolicy::Pinned } else { SchedulePolicy::Balanced };
        let workload = zipf_workload(
            &skew_cluster(1, policy),
            20,
            seed,
            f64::from(exponent) / 10.0,
        );
        let mut threaded = skew_cluster(shards, policy);
        let t = threaded.serve(&workload);
        let s = skew_cluster(shards, policy).serve_sequential(&workload);
        prop_assert_eq!(&t.responses, &s.responses);
        prop_assert_eq!(t.stats.engine, s.stats.engine);
        prop_assert_eq!(t.stats.queries, workload.len() as u64);
        // The steal log replays to the identical placement.
        let r = skew_cluster(shards, policy).serve_replay(&workload, &t.log);
        prop_assert_eq!(&r.responses, &t.responses);
        prop_assert_eq!(&r.log.assignments, &t.log.assignments);
        prop_assert!(r.log.steals.is_empty());
    }
}
