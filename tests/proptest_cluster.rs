//! Property-based determinism of the serving layer: for arbitrary shard
//! counts, seeds, skew exponents, scheduling policies, and replica
//! policies, threaded serving (LPT placement + replica splitting +
//! work stealing) bit-matches the sequential replay — responses,
//! per-query costs, and engine counters — and the recorded steal/fork
//! log reproduces the exact placement.

use proptest::prelude::*;

use rmo::apps::service::{zipf_workload, GraphId, PaCluster, ReplicaPolicy, SchedulePolicy};
use rmo::apps::Query;
use rmo::graph::gen;

fn skew_cluster(shards: usize, policy: SchedulePolicy) -> PaCluster {
    let mut cluster = PaCluster::with_policy(shards, policy);
    cluster.add_graph(GraphId(0), gen::grid(4, 5));
    cluster.add_graph(GraphId(1), gen::path(16));
    cluster.add_graph(GraphId(2), gen::gnp_connected(18, 0.2, 5));
    cluster.add_graph(GraphId(3), gen::grid(3, 6));
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn threaded_equals_sequential_under_random_skew(
        shards in 1usize..6,
        seed in 0u64..1000,
        // 0 = uniform traffic; large = almost everything on one graph.
        exponent in 0u32..30,
        pinned in any::<bool>(),
        // Replica splitting: 1 disables it structurally; low thresholds
        // with several replicas split any group that dominates the mean.
        max_replicas in 1usize..5,
        threshold_tenths in 1u32..16,
    ) {
        let policy = if pinned { SchedulePolicy::Pinned } else { SchedulePolicy::Balanced };
        let replica = ReplicaPolicy::new(f64::from(threshold_tenths) / 10.0, max_replicas);
        // Identically prepared clusters with *warm* cores: replica
        // splitting only forks warmed engines, so the warm-up batch is
        // what makes the policy dimension actually bite.
        let warmup: Vec<(GraphId, Query)> = (0..4).map(|g| (GraphId(g), Query::Mst)).collect();
        let prepared = || {
            let mut cluster = skew_cluster(shards, policy);
            cluster.set_replica_policy(replica);
            cluster.serve_sequential(&warmup);
            cluster
        };
        let workload = zipf_workload(
            &skew_cluster(1, policy),
            20,
            seed,
            f64::from(exponent) / 10.0,
        );
        let mut threaded = prepared();
        let t = threaded.serve(&workload);
        let s = prepared().serve_sequential(&workload);
        prop_assert_eq!(&t.responses, &s.responses);
        prop_assert_eq!(t.stats.engine, s.stats.engine);
        prop_assert_eq!(t.stats.queries, (workload.len() + warmup.len()) as u64);
        prop_assert_eq!(t.stats.forks, s.stats.forks);
        prop_assert_eq!(t.stats.replicas, s.stats.replicas);
        // The steal/fork log replays to the identical placement,
        // replica chunks included.
        let r = prepared().serve_replay(&workload, &t.log);
        prop_assert_eq!(&r.responses, &t.responses);
        prop_assert_eq!(&r.log.assignments, &t.log.assignments);
        prop_assert_eq!(&r.log.replica_indices, &t.log.replica_indices);
        prop_assert_eq!(&r.log.forks, &t.log.forks);
        prop_assert!(r.log.steals.is_empty());
    }
}
