//! Cross-crate application correctness: every corollary's algorithm
//! against its centralized oracle.

use rmo::apps::cds::{approx_mwcds, is_connected_dominating_set};
use rmo::apps::kdom::k_dominating_set;
use rmo::apps::mincut::{approx_min_cut, MinCutConfig};
use rmo::apps::mst::{naive_mst, pa_mst, MstConfig};
use rmo::apps::sssp::{approx_sssp, SsspConfig};
use rmo::apps::verify::{verify_connected_spanning, verify_cut, verify_spanning_tree};
use rmo::apps::{component_labels, ComponentLabels};
use rmo::core::PaConfig;
use rmo::graph::{gen, reference, DisjointSets, EdgeId};

#[test]
fn mst_matches_kruskal_across_families() {
    let cases = vec![
        gen::grid_weighted(7, 9, 1),
        gen::random_connected_weighted(80, 200, 2),
        gen::distinct_weights(&gen::ktree(50, 3, 3), 4),
        gen::distinct_weights(&gen::lollipop(9, 25), 5),
    ];
    for g in cases {
        let ours = pa_mst(&g, &MstConfig::default()).expect("solves");
        let oracle = reference::kruskal(&g);
        assert_eq!(ours.total_weight, oracle.total_weight);
        assert_eq!(ours.edges, oracle.edges, "unique MST with distinct weights");
    }
}

#[test]
fn naive_and_pa_mst_agree() {
    let g = gen::grid_weighted(6, 10, 8);
    let a = pa_mst(&g, &MstConfig::default()).unwrap();
    let b = naive_mst(&g, &MstConfig::default()).unwrap();
    assert_eq!(a.edges, b.edges);
}

#[test]
fn mst_output_is_spanning_tree() {
    let g = gen::random_connected_weighted(70, 180, 11);
    let ours = pa_mst(&g, &MstConfig::default()).unwrap();
    // Acyclic + spanning via DSU.
    let mut dsu = DisjointSets::new(g.n());
    for &e in &ours.edges {
        let (u, v) = g.endpoints(e);
        assert!(dsu.union(u, v), "edge {e} closes a cycle");
    }
    assert_eq!(dsu.set_count(), 1, "spans all nodes");
}

#[test]
fn mincut_never_below_exact_and_tight_on_planted() {
    for bridge in [1u64, 3, 9] {
        let g = gen::dumbbell(7, bridge);
        let exact = reference::stoer_wagner(&g);
        assert_eq!(exact.weight, bridge);
        let res = approx_min_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(res.weight, bridge, "planted bridge must be found");
        // The reported side realizes the weight.
        let realized: u64 = g
            .edges()
            .filter(|&(_, u, v, _)| res.side[u] != res.side[v])
            .map(|(_, _, _, w)| w)
            .sum();
        assert_eq!(realized, res.weight);
        assert!(res.weight >= exact.weight);
    }
}

#[test]
fn mincut_reasonable_on_random_graphs() {
    for seed in 0..3 {
        let g = gen::random_connected(26, 60, seed);
        let exact = reference::stoer_wagner(&g);
        let res = approx_min_cut(
            &g,
            &MinCutConfig {
                trials: Some(10),
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(res.weight >= exact.weight);
        assert!(
            res.weight as f64 <= 2.5 * exact.weight as f64,
            "seed {seed}: {} vs exact {}",
            res.weight,
            exact.weight
        );
    }
}

#[test]
fn sssp_upper_bounds_and_bounded_stretch() {
    let cases = vec![
        gen::grid(9, 9),
        gen::random_connected_weighted(100, 250, 4),
        gen::path(80),
        gen::balanced_binary_tree(6),
    ];
    for g in cases {
        let truth = reference::dijkstra(&g, 0);
        let res = approx_sssp(&g, 0, &SsspConfig::default()).expect("solves");
        for v in 0..g.n() {
            assert!(res.estimates[v] >= truth[v], "estimates are path lengths");
        }
        let max_stretch = (0..g.n())
            .filter(|&v| truth[v] > 0)
            .map(|v| res.estimates[v] as f64 / truth[v] as f64)
            .fold(1.0f64, f64::max);
        assert!(
            max_stretch <= 60.0,
            "stretch {max_stretch} is out of control"
        );
    }
}

#[test]
fn component_labels_match_dsu() {
    let g = gen::gnp_connected(60, 0.08, 2);
    // H = every third edge.
    let h: Vec<EdgeId> = (0..g.m()).filter(|e| e % 3 == 0).collect();
    let out: ComponentLabels = component_labels(&g, &h, &PaConfig::default()).unwrap();
    let mut dsu = DisjointSets::new(g.n());
    for &e in &h {
        let (u, v) = g.endpoints(e);
        dsu.union(u, v);
    }
    for u in 0..g.n() {
        for v in (u + 1)..g.n() {
            assert_eq!(
                out.labels[u] == out.labels[v],
                dsu.same(u, v),
                "pair ({u},{v})"
            );
        }
    }
}

#[test]
fn verification_suite_on_planted_instances() {
    let g = gen::grid_weighted(6, 6, 4);
    let cfg = PaConfig::default();
    let mst = reference::kruskal(&g).edges;
    assert!(verify_spanning_tree(&g, &mst, &cfg).unwrap().holds);
    let with_extra: Vec<EdgeId> = {
        let mut e = mst.clone();
        e.push((0..g.m()).find(|x| !mst.contains(x)).unwrap());
        e
    };
    assert!(!verify_spanning_tree(&g, &with_extra, &cfg).unwrap().holds);
    let all: Vec<EdgeId> = (0..g.m()).collect();
    assert!(verify_connected_spanning(&g, &all, &cfg).unwrap().holds);

    let d = gen::dumbbell(5, 2);
    let bridge = d.edge_between(4, 5).unwrap();
    assert!(verify_cut(&d, &[bridge], &cfg).unwrap().holds);
}

#[test]
fn kdom_guarantees_across_k() {
    let g = gen::grid(8, 18);
    for k in [6usize, 12, 36] {
        let res = k_dominating_set(&g, k);
        assert!(res.max_distance <= k, "k={k}");
        assert!(
            res.set.len() <= 6 * g.n() / k + 1,
            "k={k}: size {}",
            res.set.len()
        );
    }
}

#[test]
fn cds_valid_and_modest_on_structures() {
    let cases = vec![
        gen::star(25),
        gen::grid(5, 9),
        gen::gnp_connected(50, 0.1, 8),
    ];
    for g in cases {
        let w: Vec<u64> = (0..g.n() as u64).map(|v| 1 + v % 5).collect();
        let res = approx_mwcds(&g, &w, &PaConfig::default()).unwrap();
        assert!(is_connected_dominating_set(&g, &res.set));
        assert!(res.weight > 0);
    }
}
