//! End-to-end Part-Wise Aggregation across crates: every pipeline
//! configuration, on every graph family, against the centralized fold.

use rmo::core::{solve_pa, Aggregate, PaConfig, PaInstance, ShortcutStrategy, Variant};
use rmo::graph::{gen, Partition};

fn all_configs() -> Vec<(&'static str, PaConfig)> {
    vec![
        ("default-det", PaConfig::default()),
        ("randomized", PaConfig::randomized(17)),
        ("trivial", PaConfig::trivial(3)),
        (
            "det-wave-rand-shortcut",
            PaConfig {
                variant: Variant::Deterministic,
                shortcut: ShortcutStrategy::Randomized,
                deterministic_division: false,
                seed: 9,
            },
        ),
        (
            "rand-wave-det-shortcut",
            PaConfig {
                variant: Variant::Randomized { seed: 4 },
                shortcut: ShortcutStrategy::Deterministic,
                deterministic_division: true,
                seed: 4,
            },
        ),
    ]
}

fn check_all_configs(g: &rmo::graph::Graph, parts: Partition, f: Aggregate) {
    let values: Vec<u64> = (0..g.n() as u64)
        .map(|v| v.wrapping_mul(0x9e3779b9) % 10_000)
        .collect();
    let inst = PaInstance::from_partition(g, parts, values, f).expect("valid instance");
    for (name, cfg) in all_configs() {
        let res = solve_pa(&inst, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        for p in inst.partition().part_ids() {
            assert_eq!(
                res.aggregates[p],
                inst.reference_aggregate(p),
                "{name}, part {p}, f = {f:?}"
            );
        }
        for v in 0..g.n() {
            assert_eq!(
                res.value_at(v),
                inst.reference_aggregate_of(v),
                "{name}, node {v}"
            );
        }
        assert!(res.cost.rounds > 0, "{name}: nonzero work");
    }
}

#[test]
fn grid_rows_all_aggregates() {
    let g = gen::grid(8, 8);
    for f in Aggregate::all() {
        let parts = Partition::new(&g, gen::grid_row_partition(8, 8)).unwrap();
        check_all_configs(&g, parts, f);
    }
}

#[test]
fn grid_columns() {
    let g = gen::grid(6, 10);
    let parts = Partition::new(&g, gen::grid_column_partition(6, 10)).unwrap();
    check_all_configs(&g, parts, Aggregate::Sum);
}

#[test]
fn random_graph_random_regions() {
    for seed in 0..3 {
        let g = gen::gnp_connected(90, 0.05, seed);
        let parts = gen::random_connected_partition(&g, 7, seed + 100);
        check_all_configs(&g, parts, Aggregate::Max);
    }
}

#[test]
fn long_path_blocks() {
    let g = gen::path(120);
    let parts = Partition::new(&g, gen::path_blocks(120, 30)).unwrap();
    check_all_configs(&g, parts, Aggregate::Min);
}

#[test]
fn single_part_whole_graph() {
    let g = gen::lollipop(10, 30);
    let parts = Partition::whole(&g).unwrap();
    check_all_configs(&g, parts, Aggregate::Sum);
}

#[test]
fn singleton_parts() {
    let g = gen::cycle(24);
    let parts = Partition::singletons(&g);
    check_all_configs(&g, parts, Aggregate::Xor);
}

#[test]
fn ktree_and_kpath_families() {
    let g = gen::ktree(60, 3, 5);
    let parts = gen::random_connected_partition(&g, 6, 3);
    check_all_configs(&g, parts, Aggregate::Min);

    let g = gen::kpath(24, 3);
    let assign: Vec<usize> = (0..g.n()).map(|v| v / 9).collect();
    let parts = Partition::new(&g, assign).unwrap();
    check_all_configs(&g, parts, Aggregate::Or);
}

#[test]
fn apex_grid_bad_example() {
    let g = gen::grid_with_apex(6, 20);
    let parts = Partition::new(&g, gen::grid_row_partition_with_apex(6, 20)).unwrap();
    check_all_configs(&g, parts, Aggregate::Min);
}

#[test]
fn star_and_broom_degenerates() {
    let g = gen::star(40);
    check_all_configs(&g, Partition::whole(&g).unwrap(), Aggregate::Sum);
    let g = gen::broom(20, 20);
    check_all_configs(&g, Partition::whole(&g).unwrap(), Aggregate::Max);
}

#[test]
fn two_node_graph() {
    let g = gen::path(2);
    check_all_configs(&g, Partition::whole(&g).unwrap(), Aggregate::Sum);
    let g = gen::path(2);
    check_all_configs(&g, Partition::singletons(&g), Aggregate::Sum);
}
