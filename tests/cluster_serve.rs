//! The `PaCluster` determinism and routing contract.
//!
//! * Threaded serving bit-matches the sequential replay — responses
//!   *and* per-query cost accounting — on a seeded mixed workload over
//!   grid/path/gnp graphs, at several shard counts.
//! * `PaEngine`/`EngineCore` are statically `Send` (what lets engines
//!   live on shard worker threads at all).
//! * Shard routing pins every graph to exactly one shard, stably.

use rmo_apps::dispatch::{Query, QueryResponse};
use rmo_apps::service::{mixed_workload, GraphId, PaCluster};
use rmo_core::{Aggregate, EngineCore, PaEngine};
use rmo_graph::gen;

fn fleet_cluster(shards: usize) -> PaCluster {
    let mut cluster = PaCluster::new(shards);
    cluster.add_graph(GraphId(10), gen::grid(5, 6));
    cluster.add_graph(GraphId(11), gen::grid(4, 4));
    cluster.add_graph(GraphId(12), gen::path(40));
    cluster.add_graph(GraphId(13), gen::path(17));
    cluster.add_graph(GraphId(14), gen::gnp_connected(30, 0.12, 3));
    cluster.add_graph(GraphId(15), gen::gnp_connected(24, 0.15, 8));
    cluster
}

#[test]
fn threaded_serving_bit_matches_sequential_replay() {
    let workload = mixed_workload(&fleet_cluster(1), 60, 2026);
    let baseline = fleet_cluster(1).serve_sequential(&workload);
    assert!(
        baseline.responses.iter().all(|r| r.is_ok()),
        "the generated workload is always servable"
    );
    for shards in [1usize, 2, 4, 7] {
        let mut cluster = fleet_cluster(shards);
        let threaded = cluster.serve(&workload);
        // Answers and per-query CostReports are inside the responses:
        // equality is the full determinism contract, including cost
        // accounting (who paid election+BFS, setup, waves).
        assert_eq!(
            threaded.responses, baseline.responses,
            "threaded responses diverged at {shards} shards"
        );
        // Engine counters (hits/misses/evictions/base costs) match too.
        let replay = fleet_cluster(shards).serve_sequential(&workload);
        assert_eq!(
            threaded.stats.engine, replay.stats.engine,
            "engine counters diverged at {shards} shards"
        );
        assert_eq!(threaded.stats.queries, workload.len() as u64);
        assert_eq!(threaded.stats.failed, 0);
    }
}

#[test]
fn warm_clusters_stay_deterministic_across_batches() {
    // Two batches back-to-back: the second starts on parked warm
    // engines, and threaded/sequential must still agree bit-for-bit.
    let first = mixed_workload(&fleet_cluster(1), 24, 5);
    let second = mixed_workload(&fleet_cluster(1), 24, 6);
    let mut threaded = fleet_cluster(3);
    let mut sequential = fleet_cluster(3);
    let _ = (threaded.serve(&first), sequential.serve_sequential(&first));
    let t = threaded.serve(&second);
    let s = sequential.serve_sequential(&second);
    assert_eq!(t.responses, s.responses);
    assert_eq!(t.stats.engine, s.stats.engine);
    assert_eq!(t.stats.queries, 48, "lifetime counter spans both batches");
}

#[test]
fn engine_and_core_are_send() {
    fn assert_send<T: Send>() {}
    // The static contract the shard workers rely on: an engine (and its
    // parked core) can move to a worker thread.
    assert_send::<PaEngine<'static>>();
    assert_send::<EngineCore>();
    assert_send::<Query>();
    assert_send::<QueryResponse>();
}

#[test]
fn every_graph_is_pinned_to_one_shard() {
    let cluster = fleet_cluster(4);
    let pinned: Vec<usize> = cluster
        .graph_ids()
        .iter()
        .map(|&id| cluster.shard_of(id))
        .collect();
    // Stable: the same mapping on every call and every rebuild.
    let rebuilt = fleet_cluster(4);
    for (i, &id) in cluster.graph_ids().iter().enumerate() {
        assert!(pinned[i] < 4, "shard out of range");
        assert_eq!(rebuilt.shard_of(id), pinned[i], "routing must be stable");
    }

    // Serving confirms the pin: across several batches, each graph only
    // ever appears in its own shard's served set.
    let mut cluster = fleet_cluster(4);
    for seed in [1u64, 2, 3] {
        let workload = mixed_workload(&cluster, 30, seed);
        let report = cluster.serve(&workload);
        for (shard, stats) in report.stats.per_shard.iter().enumerate() {
            for &id in &stats.graph_ids {
                assert_eq!(
                    cluster.shard_of(id),
                    shard,
                    "graph {id} served off its pinned shard"
                );
            }
        }
        // Every submitted graph was served by exactly one shard.
        for (id, _) in &workload {
            let serving: Vec<usize> = report
                .stats
                .per_shard
                .iter()
                .enumerate()
                .filter(|(_, s)| s.graph_ids.contains(id))
                .map(|(shard, _)| shard)
                .collect();
            assert_eq!(serving.len(), 1, "graph {id} spread over {serving:?}");
        }
    }
}

#[test]
fn worker_panic_spares_other_shards_warm_state() {
    for threaded in [true, false] {
        let mut cluster = fleet_cluster(2);
        let ids = cluster.graph_ids();
        let healthy = ids[0];
        let poisoned = *ids
            .iter()
            .find(|&&id| cluster.shard_of(id) != cluster.shard_of(healthy))
            .expect("the fleet spans both shards");
        let n = cluster.graph(healthy).unwrap().n();
        let pa = Query::Pa {
            assignment: vec![0; n],
            values: vec![7; n],
            agg: Aggregate::Sum,
        };
        // Warm the healthy graph, then serve a batch where the other
        // shard hits a contract panic (k == 0 is documented to panic).
        let _ = cluster.serve(&[(healthy, pa.clone())]);
        let batch = vec![(healthy, pa.clone()), (poisoned, Query::Kdom { k: 0 })];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if threaded {
                cluster.serve(&batch)
            } else {
                cluster.serve_sequential(&batch)
            }
        }));
        assert!(result.is_err(), "the contract panic must propagate");
        // The healthy shard's work and warm state survived the panic:
        // its query was answered (served counter) and its parked engine
        // still serves cache hits.
        let after = cluster.serve(&[(healthy, pa.clone())]);
        let stats = after.stats;
        assert_eq!(stats.engine.misses, 1, "healthy engine never rebuilt");
        assert_eq!(stats.engine.hits, 2, "both repeat solves were warm");
        assert_eq!(stats.queries, 3, "all three healthy queries counted");
    }
}

#[test]
fn scheduler_batching_yields_cross_query_cache_hits() {
    // A stream of same-partition Pa queries interleaved across graphs:
    // the scheduler's affinity batching must turn the repeats into
    // artifact-cache hits even though the submissions alternate graphs.
    let mut cluster = fleet_cluster(2);
    let rows30: Vec<usize> = (0..30).map(|v| v / 6).collect();
    let rows40: Vec<usize> = (0..40).map(|v| v / 8).collect();
    let mut queries = Vec::new();
    for i in 0..4u64 {
        queries.push((
            GraphId(10),
            Query::Pa {
                assignment: rows30.clone(),
                values: vec![i; 30],
                agg: Aggregate::Max,
            },
        ));
        queries.push((
            GraphId(12),
            Query::Pa {
                assignment: rows40.clone(),
                values: vec![i; 40],
                agg: Aggregate::Max,
            },
        ));
    }
    let report = cluster.serve(&queries);
    assert!(report.responses.iter().all(|r| r.is_ok()));
    // 2 distinct (graph, partition) classes, 4 queries each: 2 misses,
    // 6 hits.
    assert_eq!(report.stats.engine.misses, 2);
    assert_eq!(report.stats.engine.hits, 6);
}
