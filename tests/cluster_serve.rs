//! The `PaCluster` determinism, routing, and work-stealing contract.
//!
//! * Threaded serving bit-matches the sequential replay — responses
//!   *and* per-query cost accounting — on a seeded mixed workload over
//!   grid/path/gnp graphs, at several shard counts, under both
//!   scheduling policies.
//! * A threaded run's [`ServeLog`] (LPT placement + recorded steals)
//!   replayed through `serve_replay` reproduces the run bit-for-bit,
//!   per-shard placement included — at shards 1/2/4/7.
//! * Skewed workloads (all traffic on one graph; every graph hashing
//!   to one shard) stay deterministic, and the `Balanced` scheduler
//!   spreads the adversarial fleet that starves hash-pinning.
//! * `PaEngine`/`EngineCore` are statically `Send` (what lets engines
//!   live on shard worker threads — and hop between them when stolen).
//! * The `Pinned` policy pins every graph to exactly one shard, stably.

use rmo_apps::dispatch::{Query, QueryResponse};
use rmo_apps::service::{
    colliding_graph_ids, mixed_workload, zipf_workload, GraphId, PaCluster, ReplicaPolicy,
    SchedulePolicy, ServeLog,
};
use rmo_core::{Aggregate, EngineCore, PaEngine};
use rmo_graph::gen;

fn fleet() -> Vec<(GraphId, rmo_graph::Graph)> {
    vec![
        (GraphId(10), gen::grid(5, 6)),
        (GraphId(11), gen::grid(4, 4)),
        (GraphId(12), gen::path(40)),
        (GraphId(13), gen::path(17)),
        (GraphId(14), gen::gnp_connected(30, 0.12, 3)),
        (GraphId(15), gen::gnp_connected(24, 0.15, 8)),
    ]
}

fn fleet_with_policy(shards: usize, policy: SchedulePolicy) -> PaCluster {
    let mut cluster = PaCluster::with_policy(shards, policy);
    for (id, g) in fleet() {
        cluster.add_graph(id, g);
    }
    cluster
}

fn fleet_cluster(shards: usize) -> PaCluster {
    fleet_with_policy(shards, SchedulePolicy::default())
}

fn one_shard_cluster(shards: usize, policy: SchedulePolicy) -> (PaCluster, Vec<GraphId>) {
    let ids = colliding_graph_ids(shards, 0, 5);
    let mut cluster = PaCluster::with_policy(shards, policy);
    for (rank, &id) in ids.iter().enumerate() {
        cluster.add_graph(id, gen::grid(4, 4 + rank));
    }
    (cluster, ids)
}

#[test]
fn threaded_serving_bit_matches_sequential_replay() {
    let workload = mixed_workload(&fleet_cluster(1), 60, 2026);
    let baseline = fleet_cluster(1).serve_sequential(&workload);
    assert!(
        baseline.responses.iter().all(|r| r.is_ok()),
        "the generated workload is always servable"
    );
    for shards in [1usize, 2, 4, 7] {
        for policy in [SchedulePolicy::Balanced, SchedulePolicy::Pinned] {
            let mut cluster = fleet_with_policy(shards, policy);
            let threaded = cluster.serve(&workload);
            // Answers and per-query CostReports are inside the responses:
            // equality is the full determinism contract, including cost
            // accounting (who paid election+BFS, setup, waves) — and it
            // holds regardless of placement policy or stealing.
            assert_eq!(
                threaded.responses, baseline.responses,
                "threaded responses diverged at {shards} shards under {policy:?}"
            );
            // Engine counters (hits/misses/evictions/base/charged) too.
            let replay = fleet_with_policy(shards, policy).serve_sequential(&workload);
            assert_eq!(
                threaded.stats.engine, replay.stats.engine,
                "engine counters diverged at {shards} shards under {policy:?}"
            );
            assert_eq!(threaded.stats.queries, workload.len() as u64);
            assert_eq!(threaded.stats.failed, 0);
        }
    }
}

#[test]
fn steal_log_replay_reproduces_placement_at_every_shard_count() {
    let workload = mixed_workload(&fleet_cluster(1), 48, 77);
    for shards in [1usize, 2, 4, 7] {
        let mut threaded = fleet_cluster(shards);
        let report = threaded.serve(&workload);
        // Feed the recorded final assignment (steals included) back into
        // an identically prepared cluster: everything must bit-match —
        // responses, engine counters, and the per-shard placement.
        let mut fresh = fleet_cluster(shards);
        let replay = fresh.serve_replay(&workload, &report.log);
        assert_eq!(replay.responses, report.responses, "{shards} shards");
        assert_eq!(replay.stats.engine, report.stats.engine);
        assert_eq!(
            replay.log.assignments, report.log.assignments,
            "replay must land every group on the recorded shard"
        );
        assert!(replay.log.steals.is_empty(), "replays never steal");
        for (t, r) in report
            .stats
            .per_shard
            .iter()
            .zip(replay.stats.per_shard.iter())
        {
            assert_eq!(t.queries, r.queries);
            assert_eq!(t.graph_ids, r.graph_ids);
        }
        // The log itself is sane: every steal lands where the
        // assignment says, epochs are sequential.
        for (i, steal) in report.log.steals.iter().enumerate() {
            assert_eq!(steal.epoch, i as u64);
            assert!(steal.from != steal.to);
            assert!(
                report.log.assignments[steal.to].contains(&steal.graph),
                "stolen group must appear in the thief's assignment"
            );
        }
    }
}

#[test]
fn handcrafted_replay_moves_a_group_deterministically() {
    // Placement independence, exercised without racing threads: take the
    // sequential run's log, move one whole graph group to another shard
    // by hand, and replay — responses and engine counters must not move.
    let workload = mixed_workload(&fleet_cluster(1), 36, 31);
    let baseline = fleet_cluster(4).serve_sequential(&workload);
    let mut log = baseline.log.clone();
    let from = (0..4)
        .find(|&s| !log.assignments[s].is_empty())
        .expect("some shard serves");
    let moved = log.assignments[from].pop().unwrap();
    let to = (from + 1) % 4;
    log.assignments[to].insert(0, moved);
    let mut fresh = fleet_cluster(4);
    let replay = fresh.serve_replay(&workload, &log);
    assert_eq!(replay.responses, baseline.responses);
    assert_eq!(replay.stats.engine, baseline.stats.engine);
    assert!(
        replay.stats.per_shard[to].graph_ids.contains(&moved),
        "the moved group executed on its new shard"
    );
}

#[test]
fn hot_graph_skew_stays_deterministic() {
    // All traffic on one graph: a single unsplittable group. Threaded
    // and sequential still bit-match, and exactly one shard serves.
    let workload = zipf_workload(&fleet_cluster(1), 40, 9, 50.0);
    let hot = fleet_cluster(1).graph_ids()[0];
    assert!(
        workload.iter().all(|(id, _)| *id == hot),
        "exponent 50 sends every query to the first graph"
    );
    let mut threaded = fleet_cluster(4);
    let t = threaded.serve(&workload);
    let s = fleet_cluster(4).serve_sequential(&workload);
    assert_eq!(t.responses, s.responses);
    assert_eq!(t.stats.engine, s.stats.engine);
    let serving: Vec<usize> = t
        .stats
        .per_shard
        .iter()
        .enumerate()
        .filter(|(_, st)| st.queries > 0)
        .map(|(shard, _)| shard)
        .collect();
    assert_eq!(serving.len(), 1, "one graph group, one shard: {serving:?}");
}

#[test]
fn balanced_policy_spreads_an_adversarially_hashed_fleet() {
    // Five graphs whose ids all hash to shard 0 of 4. Pinned serving
    // serializes the whole batch on that shard; Balanced (LPT) spreads
    // the groups — and both produce identical responses.
    let shards = 4;
    let (pinned_cluster, ids) = one_shard_cluster(shards, SchedulePolicy::Pinned);
    for &id in &ids {
        assert_eq!(pinned_cluster.shard_of(id), 0, "ids hash to shard 0");
    }
    let workload = mixed_workload(&pinned_cluster, 40, 5);

    let (mut pinned, _) = one_shard_cluster(shards, SchedulePolicy::Pinned);
    let p = pinned.serve(&workload);
    let busy_shards = |report: &rmo_apps::ServeReport| {
        report
            .stats
            .per_shard
            .iter()
            .filter(|s| s.queries > 0)
            .count()
    };
    assert_eq!(busy_shards(&p), 1, "hash-pinning starves three shards");
    assert_eq!(p.stats.per_shard[0].queries, 40);

    let (mut balanced, _) = one_shard_cluster(shards, SchedulePolicy::Balanced);
    let b = balanced.serve_sequential(&workload);
    assert!(
        busy_shards(&b) >= 3,
        "LPT spreads 5 groups over the fleet, got {} busy shards",
        busy_shards(&b)
    );
    assert_eq!(b.responses, p.responses, "placement never changes answers");
    assert_eq!(b.stats.engine, p.stats.engine);
}

#[test]
fn warm_clusters_stay_deterministic_across_batches() {
    // Two batches back-to-back: the second starts on parked warm
    // engines *and* a demand history that reshapes the LPT placement —
    // threaded/sequential must still agree bit-for-bit.
    let first = mixed_workload(&fleet_cluster(1), 24, 5);
    let second = mixed_workload(&fleet_cluster(1), 24, 6);
    let mut threaded = fleet_cluster(3);
    let mut sequential = fleet_cluster(3);
    let _ = (threaded.serve(&first), sequential.serve_sequential(&first));
    let t = threaded.serve(&second);
    let s = sequential.serve_sequential(&second);
    assert_eq!(t.responses, s.responses);
    assert_eq!(t.stats.engine, s.stats.engine);
    assert_eq!(t.stats.queries, 48, "lifetime counter spans both batches");
}

#[test]
fn engine_and_core_are_send() {
    fn assert_send<T: Send>() {}
    // The static contract the shard workers rely on: an engine (and its
    // parked core, and a steal log) can move to a worker thread.
    assert_send::<PaEngine<'static>>();
    assert_send::<EngineCore>();
    assert_send::<Query>();
    assert_send::<QueryResponse>();
    assert_send::<ServeLog>();
}

#[test]
fn every_graph_is_pinned_to_one_shard_under_pinned_policy() {
    let pinned_fleet = |shards: usize| fleet_with_policy(shards, SchedulePolicy::Pinned);
    let cluster = pinned_fleet(4);
    let pinned: Vec<usize> = cluster
        .graph_ids()
        .iter()
        .map(|&id| cluster.shard_of(id))
        .collect();
    // Stable: the same mapping on every call and every rebuild.
    let rebuilt = pinned_fleet(4);
    for (i, &id) in cluster.graph_ids().iter().enumerate() {
        assert!(pinned[i] < 4, "shard out of range");
        assert_eq!(rebuilt.shard_of(id), pinned[i], "routing must be stable");
    }

    // Serving confirms the pin: across several batches, each graph only
    // ever appears in its own shard's served set.
    let mut cluster = pinned_fleet(4);
    for seed in [1u64, 2, 3] {
        let workload = mixed_workload(&cluster, 30, seed);
        let report = cluster.serve(&workload);
        for (shard, stats) in report.stats.per_shard.iter().enumerate() {
            for &id in &stats.graph_ids {
                assert_eq!(
                    cluster.shard_of(id),
                    shard,
                    "graph {id} served off its pinned shard"
                );
            }
        }
        // Every submitted graph was served by exactly one shard.
        for (id, _) in &workload {
            let serving: Vec<usize> = report
                .stats
                .per_shard
                .iter()
                .enumerate()
                .filter(|(_, s)| s.graph_ids.contains(id))
                .map(|(shard, _)| shard)
                .collect();
            assert_eq!(serving.len(), 1, "graph {id} spread over {serving:?}");
        }
    }
}

#[test]
fn group_panic_spares_other_groups_and_stays_deterministic() {
    // Panics are contained per *group*: every healthy group still
    // serves (wherever it was placed, stolen or not), so the post-panic
    // cluster state is identical across serving modes.
    let mut post_panic_engine = Vec::new();
    for threaded in [true, false] {
        let mut cluster = fleet_cluster(2);
        let ids = cluster.graph_ids();
        let (healthy, third) = (ids[0], ids[2]);
        // A connected graph whose edge weight overflows the Borůvka
        // packing (`pack` requires weight < 2^40): registration accepts
        // it, and `Query::Mst` on it is documented to panic.
        let wide = GraphId(777);
        cluster.add_graph(
            wide,
            rmo_graph::Graph::from_edges(2, &[(0, 1, 1u64 << 40)]).unwrap(),
        );
        let n = cluster.graph(healthy).unwrap().n();
        let pa = Query::Pa {
            assignment: vec![0; n],
            values: vec![7; n],
            agg: Aggregate::Sum,
        };
        // Warm the healthy graph, then serve a batch where one group
        // panics deep in its solver.
        let _ = cluster.serve(&[(healthy, pa.clone())]);
        let batch = vec![
            (healthy, pa.clone()),
            (wide, Query::Mst),
            (third, Query::Mst),
        ];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if threaded {
                cluster.serve(&batch)
            } else {
                cluster.serve_sequential(&batch)
            }
        }));
        assert!(result.is_err(), "the solver panic must propagate");
        // The healthy groups' work and warm state survived the panic:
        // their queries were answered (served counter) and the parked
        // engines still serve cache hits.
        let after = cluster.serve(&[(healthy, pa.clone())]);
        let stats = after.stats;
        assert_eq!(stats.engine.misses, 2, "healthy engines never rebuilt");
        assert_eq!(stats.engine.hits, 2, "both repeat solves were warm");
        assert_eq!(stats.queries, 4, "all four healthy queries counted");
        post_panic_engine.push(stats.engine);
    }
    assert_eq!(
        post_panic_engine[0], post_panic_engine[1],
        "post-panic cluster state must not depend on the serving mode"
    );
}

#[test]
fn contract_violations_fail_gracefully_across_the_cluster() {
    // Dispatch contract violations (`k == 0`, zero min-cut trials) no
    // longer panic anywhere on the serving path: the offending query
    // comes back as `Failed`, every other group serves normally, and
    // the batch stays bit-identical across serving modes.
    let mut reports = Vec::new();
    for threaded in [true, false] {
        let mut cluster = fleet_cluster(2);
        let ids = cluster.graph_ids();
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        let n = cluster.graph(a).unwrap().n();
        let batch = vec![
            (
                a,
                Query::Pa {
                    assignment: vec![0; n],
                    values: vec![3; n],
                    agg: Aggregate::Sum,
                },
            ),
            (b, Query::Kdom { k: 0 }),
            (b, Query::MinCut { trials: 0 }),
            (c, Query::Mst),
        ];
        let report = if threaded {
            cluster.serve(&batch)
        } else {
            cluster.serve_sequential(&batch)
        };
        assert!(report.responses[0].is_ok(), "{:?}", report.responses[0]);
        match &report.responses[1] {
            QueryResponse::Failed(msg) => {
                assert!(msg.to_string().contains("positive radius"), "{msg}")
            }
            other => panic!("Kdom k=0 must fail gracefully, got {other:?}"),
        }
        match &report.responses[2] {
            QueryResponse::Failed(msg) => assert!(msg.to_string().contains("trial"), "{msg}"),
            other => panic!("MinCut trials=0 must fail gracefully, got {other:?}"),
        }
        assert!(report.responses[3].is_ok(), "{:?}", report.responses[3]);
        // The poisoned graph's group survived its failed queries and
        // still serves real work afterwards.
        let after = cluster.serve(&[(b, Query::Mst)]);
        assert!(after.responses[0].is_ok(), "{:?}", after.responses[0]);
        reports.push((report.responses, report.stats.engine));
    }
    assert_eq!(
        reports[0], reports[1],
        "graceful failures must stay mode-independent"
    );
}

/// A replica-enabled cluster: one hot graph, one satellite, 4 shards.
fn replica_cluster() -> PaCluster {
    let mut cluster = PaCluster::with_policy(4, SchedulePolicy::Balanced);
    cluster.add_graph(GraphId(1), gen::grid(5, 5));
    cluster.add_graph(GraphId(2), gen::path(12));
    cluster.set_replica_policy(ReplicaPolicy::new(0.5, 3));
    cluster
}

/// Warm both cores (cold engines never split), identically in every
/// serving mode.
fn warm_replica_cluster() -> PaCluster {
    let mut cluster = replica_cluster();
    cluster.serve_sequential(&[(GraphId(1), Query::Mst), (GraphId(2), Query::Mst)]);
    cluster
}

#[test]
fn fork_events_are_pinned_and_replay_bit_for_bit() {
    // Six hot queries on the warmed graph: the planner must fork the
    // engine exactly once, three ways, onto three distinct shards —
    // pinned exactly, in both serving modes, and through replay.
    let hot: Vec<(GraphId, Query)> = (0..6).map(|_| (GraphId(1), Query::Mst)).collect();
    let mut by_mode = Vec::new();
    for threaded in [true, false] {
        let mut cluster = warm_replica_cluster();
        let report = if threaded {
            cluster.serve(&hot)
        } else {
            cluster.serve_sequential(&hot)
        };
        assert_eq!(report.log.forks.len(), 1, "one split, one event");
        let event = &report.log.forks[0];
        assert_eq!(event.graph, GraphId(1));
        assert_eq!(event.replicas, 3, "max_replicas caps the fan-out");
        let mut shards = event.shards.clone();
        shards.sort_unstable();
        shards.dedup();
        assert_eq!(shards.len(), 3, "chunks land on distinct shards");
        assert_eq!(report.stats.forks, 2, "a 3-way split forks two fresh cores");
        assert_eq!(report.stats.replicas, 3, "three replica chunk runs");
        // The fork log replays bit-for-bit on a fresh warmed cluster.
        let mut fresh = warm_replica_cluster();
        let replay = fresh.serve_replay(&hot, &report.log);
        assert_eq!(replay.responses, report.responses);
        assert_eq!(replay.log.assignments, report.log.assignments);
        assert_eq!(replay.log.replica_indices, report.log.replica_indices);
        assert_eq!(replay.log.forks, report.log.forks);
        assert!(replay.log.steals.is_empty());
        by_mode.push((
            report.responses.clone(),
            report.stats.engine,
            report.log.forks.clone(),
        ));
    }
    assert_eq!(by_mode[0], by_mode[1], "fork placement is mode-independent");
}

#[test]
fn split_batch_reparks_one_survivor_with_merged_counters() {
    // The survivor rule: after a split batch exactly one warm core is
    // re-parked (lowest replica index) carrying every replica's merged
    // counters — so the engine totals are mode-independent and the next
    // solve is a cache hit, not a rebuild.
    let hot: Vec<(GraphId, Query)> = (0..6).map(|_| (GraphId(1), Query::Mst)).collect();
    let mut lifetime = Vec::new();
    for threaded in [true, false] {
        let mut cluster = warm_replica_cluster();
        let before = cluster.stats().engine;
        assert_eq!(
            (before.hits, before.misses),
            (0, 2),
            "two cold warm-up solves"
        );
        let report = if threaded {
            cluster.serve(&hot)
        } else {
            cluster.serve_sequential(&hot)
        };
        assert!(!report.log.forks.is_empty(), "the hot batch splits");
        // Every chunk solved on a warmed fork: six hits, zero new
        // misses — forking never rebuilds artifacts.
        let after = cluster.stats().engine;
        assert_eq!(after.hits - before.hits, 6, "all replica runs were warm");
        assert_eq!(after.misses, before.misses, "no replica rebuilt anything");
        // The re-parked survivor serves the follow-up from cache.
        let follow = cluster.serve(&[(GraphId(1), Query::Mst)]);
        assert!(follow.log.forks.is_empty(), "a single query is never split");
        let parked = cluster.stats().engine;
        assert_eq!(parked.hits - after.hits, 1, "survivor kept the warm cache");
        assert_eq!(parked.misses, after.misses);
        lifetime.push(parked);
    }
    assert_eq!(
        lifetime[0], lifetime[1],
        "merged survivor counters must not depend on the serving mode"
    );
}

#[test]
fn scheduler_batching_yields_cross_query_cache_hits() {
    // A stream of same-partition Pa queries interleaved across graphs:
    // the scheduler's affinity batching must turn the repeats into
    // artifact-cache hits even though the submissions alternate graphs.
    let mut cluster = fleet_cluster(2);
    let rows30: Vec<usize> = (0..30).map(|v| v / 6).collect();
    let rows40: Vec<usize> = (0..40).map(|v| v / 8).collect();
    let mut queries = Vec::new();
    for i in 0..4u64 {
        queries.push((
            GraphId(10),
            Query::Pa {
                assignment: rows30.clone(),
                values: vec![i; 30],
                agg: Aggregate::Max,
            },
        ));
        queries.push((
            GraphId(12),
            Query::Pa {
                assignment: rows40.clone(),
                values: vec![i; 40],
                agg: Aggregate::Max,
            },
        ));
    }
    let report = cluster.serve(&queries);
    assert!(report.responses.iter().all(|r| r.is_ok()));
    // 2 distinct (graph, partition) classes, 4 queries each: 2 misses,
    // 6 hits.
    assert_eq!(report.stats.engine.misses, 2);
    assert_eq!(report.stats.engine.hits, 6);
}
