//! The paper's figures, pinned as CI tests: each test reconstructs the
//! figure's object and asserts the property the figure illustrates.

use rmo::core::baseline::naive_block_pa;
use rmo::core::solve::broadcast_wave_outcome;
use rmo::core::subparts_random::random_division;
use rmo::core::{solve_on, Aggregate, PaInstance, PaSetup, SubPartDivision, Variant};
use rmo::graph::{bfs_tree, gen, Graph, Partition};
use rmo::shortcut::alg7::construct_on_path;
use rmo::shortcut::trivial::trivial_shortcut_with_threshold;
use rmo::shortcut::{quality, Shortcut};

/// Figure 1: a T-restricted shortcut with congestion 3, block parameter 2.
#[test]
fn figure1_example_parameters() {
    let g =
        Graph::from_unweighted_edges(8, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (3, 6), (5, 7)])
            .unwrap();
    let parts = Partition::new(&g, vec![0, 1, 2, 1, 3, 2, 1, 2]).unwrap();
    let (tree, _) = bfs_tree(&g, 0);
    let e = |u: usize, v: usize| g.edge_between(u, v).unwrap();
    let sc = Shortcut::new(
        &parts,
        &tree,
        vec![
            vec![e(0, 1)],
            vec![e(1, 3), e(3, 6), e(0, 1)],
            vec![e(2, 5), e(5, 7), e(0, 1), e(0, 2)],
            vec![e(1, 4), e(0, 2)],
        ],
    )
    .unwrap();
    let q = quality::measure(&g, &tree, &parts, &sc);
    assert_eq!(q.congestion, 3);
    assert_eq!(q.block_parameter, 2);
}

/// Figure 2: at `D = 32` on a ~4k-node apex grid, prior-work block
/// aggregation costs several times the sub-part algorithm's messages.
#[test]
fn figure2_separation_at_depth_32() {
    let (depth, width) = (32usize, 128usize);
    let g = gen::grid_with_apex(depth, width);
    let parts = Partition::new(&g, gen::grid_row_partition_with_apex(depth, width)).unwrap();
    let values: Vec<u64> = (0..g.n() as u64).collect();
    let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Min).unwrap();
    let apex = depth * width;
    let (tree, _) = bfs_tree(&g, apex);
    let sc = trivial_shortcut_with_threshold(&g, &tree, &parts, 1);
    let leaders: Vec<usize> = parts.part_ids().map(|p| parts.members(p)[0]).collect();
    let naive = naive_block_pa(&inst, &tree, &sc, &leaders, Variant::Deterministic, 1).unwrap();
    let div = random_division(&g, &parts, &leaders, tree.depth().max(1), 7);
    let ours = solve_on(
        &inst,
        &PaSetup {
            tree: &tree,
            shortcut: &sc,
            division: &div.division,
            leaders: &leaders,
            block_budget: 1,
        },
        Variant::Deterministic,
    )
    .unwrap();
    let ours_total = ours.cost.messages + div.cost.messages;
    assert!(
        naive.cost.messages >= 2 * ours_total,
        "naive {} vs sub-part {} — the Figure 2 separation must show",
        naive.cost.messages,
        ours_total
    );
    // And the naive cost really is Ω(nD)-scale.
    assert!(naive.cost.messages as usize >= g.n() * depth);
}

/// Figure 4: a 3-block part is covered in exactly 3 wave iterations.
#[test]
fn figure4_three_blocks_three_iterations() {
    let g = gen::path(24);
    let parts = Partition::whole(&g).unwrap();
    let inst = PaInstance::from_partition(&g, parts.clone(), vec![1; 24], Aggregate::Sum).unwrap();
    let (tree, _) = bfs_tree(&g, 0);
    let sc = Shortcut::empty(1);
    let division = SubPartDivision::new(
        &g,
        &parts,
        (0..24).map(|v| v / 8).collect(),
        (0..24usize)
            .map(|v| if v % 8 == 0 { None } else { Some(v - 1) })
            .collect(),
        vec![0, 8, 16],
    )
    .unwrap();
    let wave = broadcast_wave_outcome(
        &inst,
        &PaSetup {
            tree: &tree,
            shortcut: &sc,
            division: &division,
            leaders: &[0],
            block_budget: 3,
        },
        Variant::Deterministic,
    );
    assert_eq!(wave.trace.len(), 3);
    assert!(wave.informed.iter().all(|&i| i));
    let informed: Vec<usize> = wave.trace.iter().map(|t| t.informed_after).collect();
    assert_eq!(
        informed,
        vec![9, 17, 24],
        "one sub-part block per iteration"
    );
}

/// Figure 5 / Lemma 6.6: Algorithm 7's rounds and loads on a long path.
#[test]
fn figure5_lemma_6_6_envelope() {
    for (len, c) in [(256usize, 4usize), (1024, 8)] {
        let nodes: Vec<usize> = (0..len).collect();
        let edges: Vec<usize> = (0..len - 1).collect();
        let requests: Vec<Vec<usize>> = (0..len).map(|p| vec![p]).collect();
        let res = construct_on_path(&nodes, &edges, &requests, c);
        let log_d = (len as f64).log2().ceil() as usize;
        assert!(res.cost.rounds <= c * log_d + len, "rounds");
        assert!(res.max_edge_load <= 2 * c * log_d, "edge load");
        assert!(!res.reached_top.is_empty(), "someone survives to the top");
    }
}
