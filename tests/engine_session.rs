//! `PaEngine` session semantics, cross-crate: engine results must
//! bit-match the legacy one-shot `solve_pa` pipeline, repeated calls must
//! be served from the artifact cache, and consecutive *application* calls
//! on one graph must reuse the session's BFS tree (the second call's
//! setup is strictly cheaper than the first's).

use rmo::apps::components::component_labels_with_engine;
use rmo::apps::mst::{pa_mst, pa_mst_with_engine};
use rmo::apps::verify::{verify_mst_with_engine, verify_spanning_tree_with_engine};
use rmo::core::{solve_pa, Aggregate, EngineConfig, PaEngine};
use rmo::graph::{gen, Graph, Partition};

/// Every existing end-to-end test topology, as (name, graph, partition).
fn topologies() -> Vec<(&'static str, Graph, Partition)> {
    let mut out = Vec::new();
    let g = gen::grid(6, 10);
    let parts = Partition::new(&g, gen::grid_row_partition(6, 10)).unwrap();
    out.push(("grid rows", g, parts));
    let g = gen::path(100);
    let parts = Partition::new(&g, gen::path_blocks(100, 25)).unwrap();
    out.push(("path blocks", g, parts));
    let g = gen::gnp_connected(70, 0.07, 5);
    let parts = gen::random_connected_partition(&g, 6, 9);
    out.push(("gnp random", g, parts));
    let g = gen::grid(6, 16);
    let parts = Partition::new(&g, vec![0; 96]).unwrap();
    out.push(("one part", g, parts));
    out
}

#[test]
fn engine_bit_matches_legacy_solve_pa_everywhere() {
    for (name, g, parts) in topologies() {
        let values: Vec<u64> = (0..g.n() as u64).map(|v| (v * 31) % 97).collect();
        for config in [
            EngineConfig::new(),
            EngineConfig::new().randomized(3),
            EngineConfig::new().trivial().seed(1),
        ] {
            let mut engine = PaEngine::new(&g, config);
            let ours = engine.solve(&parts, &values, Aggregate::Min).unwrap();
            let inst = rmo::core::PaInstance::from_partition(
                &g,
                parts.clone(),
                values.clone(),
                Aggregate::Min,
            )
            .unwrap();
            let legacy = solve_pa(&inst, &config.pa()).unwrap();
            assert_eq!(ours.aggregates, legacy.aggregates, "{name} {config:?}");
            assert_eq!(ours.node_values, legacy.node_values, "{name} {config:?}");
            assert_eq!(ours.cost, legacy.cost, "{name} {config:?}");
            assert_eq!(
                ours.iterations_per_part, legacy.iterations_per_part,
                "{name} {config:?}"
            );
        }
    }
}

#[test]
fn repeated_solves_hit_the_cache_on_every_topology() {
    for (name, g, parts) in topologies() {
        let values: Vec<u64> = (0..g.n() as u64).collect();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let first = engine.solve(&parts, &values, Aggregate::Sum).unwrap();
        let second = engine.solve(&parts, &values, Aggregate::Sum).unwrap();
        assert_eq!(first.aggregates, second.aggregates, "{name}");
        assert!(
            second.cost.rounds < first.cost.rounds,
            "{name}: warm {} must beat cold {}",
            second.cost.rounds,
            first.cost.rounds
        );
        // A hit is charged exactly the three wave phases — no setup.
        assert_eq!(second.cost, second.broadcast_cost.repeated(3), "{name}");
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "{name}");
    }
}

#[test]
fn cross_partition_solves_evict_at_capacity() {
    let g = gen::grid(6, 12);
    let values = vec![1u64; g.n()];
    let mut engine = PaEngine::new(&g, EngineConfig::new().cache_capacity(2));
    // Three distinct partitions: rows, row-pairs, whole.
    let partitions = [
        Partition::new(&g, gen::grid_row_partition(6, 12)).unwrap(),
        Partition::new(&g, (0..g.n()).map(|v| (v / 12) / 2).collect()).unwrap(),
        Partition::whole(&g).unwrap(),
    ];
    for parts in &partitions {
        engine.solve(parts, &values, Aggregate::Sum).unwrap();
    }
    let stats = engine.stats();
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.cached_partitions, 2);
    // Most-recent partitions still hit; the evicted one rebuilds.
    engine
        .solve(&partitions[1], &values, Aggregate::Sum)
        .unwrap();
    engine
        .solve(&partitions[2], &values, Aggregate::Sum)
        .unwrap();
    assert_eq!(engine.stats().hits, 2);
    engine
        .solve(&partitions[0], &values, Aggregate::Sum)
        .unwrap();
    assert_eq!(engine.stats().misses, 4, "evicted partition rebuilds");
}

#[test]
fn consecutive_app_calls_reuse_the_session_tree() {
    let g = gen::grid_weighted(6, 9, 4);
    let mut engine = PaEngine::new(&g, EngineConfig::new());
    // First app call: MST — pays election + BFS (the engine's base cost).
    let mst = pa_mst_with_engine(&mut engine).unwrap();
    let base = engine.stats().base_cost;
    assert!(base.rounds > 0 && base.messages > 0);
    // Second app call on the same session: verification. Its total cost
    // must come in strictly below the first call's setup-inclusive cost
    // baseline for the same work run cold.
    let verdict = verify_mst_with_engine(&mut engine, &mst.edges).unwrap();
    assert!(verdict.holds);
    let cold = {
        let mut fresh = PaEngine::new(&g, EngineConfig::new());
        verify_mst_with_engine(&mut fresh, &mst.edges).unwrap()
    };
    assert_eq!(verdict.holds, cold.holds);
    assert!(
        verdict.cost.rounds + base.rounds <= cold.cost.rounds,
        "warm verification ({} rounds) must save the shared setup vs cold ({} rounds)",
        verdict.cost.rounds,
        cold.cost.rounds
    );
    assert!(
        verdict.cost.messages < cold.cost.messages,
        "warm verification must not re-pay election + BFS messages"
    );
    // And the engine agrees with the one-shot entry point on the answer.
    let one_shot = pa_mst(&g, &Default::default()).unwrap();
    assert_eq!(mst.edges, one_shot.edges);
    assert_eq!(mst.total_weight, one_shot.total_weight);
    assert_eq!(mst.cost, one_shot.cost, "cold engine == legacy accounting");
}

#[test]
fn verification_suite_shares_component_labelings() {
    let g = gen::grid(5, 8);
    let h: Vec<usize> = (0..g.m())
        .filter(|&e| {
            let (u, v) = g.endpoints(e);
            u / 8 == v / 8
        })
        .collect();
    let mut engine = PaEngine::new(&g, EngineConfig::new());
    let first = component_labels_with_engine(&mut engine, &h).unwrap();
    let second = component_labels_with_engine(&mut engine, &h).unwrap();
    assert_eq!(first.labels, second.labels);
    assert!(
        second.cost.rounds < first.cost.rounds,
        "second labeling of the same H must hit the cache"
    );
    // A verifier on the same session keeps hitting the same artifacts.
    let verdict = verify_spanning_tree_with_engine(&mut engine, &h).unwrap();
    assert!(!verdict.holds, "row edges are not spanning");
    assert!(engine.stats().hits >= 2);
}
