//! Empirical checks of the paper's complexity claims (Theorem 1.2 and
//! Section 1.3): measured rounds and messages stay within generous
//! polylog envelopes of the stated bounds.

use rmo::core::{solve_pa, Aggregate, PaConfig, PaInstance};
use rmo::graph::{gen, two_sweep_diameter_lower_bound, Partition};

/// A generous polylog allowance: `C · log²(n)` with C = 4. The point is
/// the *growth rate*, not the constant; these tests fail if an
/// implementation regresses to a polynomial overhead (e.g. n^0.5 extra).
fn polylog(n: usize) -> f64 {
    let l = (n.max(4) as f64).log2();
    4.0 * l * l
}

fn check_theorem_1_2(g: &rmo::graph::Graph, parts: Partition) {
    let n = g.n();
    let m = g.m() as f64;
    let d = two_sweep_diameter_lower_bound(g, 0).max(1) as f64;
    let values: Vec<u64> = (0..n as u64).collect();
    let inst = PaInstance::from_partition(g, parts, values, Aggregate::Min).unwrap();

    let det = solve_pa(&inst, &PaConfig::default()).expect("det solves");
    let rand = solve_pa(&inst, &PaConfig::randomized(1)).expect("rand solves");
    let budget_rounds = (d + (n as f64).sqrt()) * polylog(n);
    let budget_msgs = m * polylog(n);
    for (name, cost) in [("det", det.cost), ("rand", rand.cost)] {
        assert!(
            (cost.rounds as f64) <= budget_rounds,
            "{name}: rounds {} exceed (D + sqrt n) * polylog = {budget_rounds:.0}",
            cost.rounds
        );
        assert!(
            (cost.messages as f64) <= budget_msgs,
            "{name}: messages {} exceed m * polylog = {budget_msgs:.0}",
            cost.messages
        );
    }
}

#[test]
fn bounds_on_grids() {
    for side in [8usize, 12, 16] {
        let g = gen::grid(side, side);
        let parts = Partition::new(&g, gen::grid_row_partition(side, side)).unwrap();
        check_theorem_1_2(&g, parts);
    }
}

#[test]
fn bounds_on_random_graphs() {
    for (n, m) in [(64usize, 200usize), (144, 500)] {
        let g = gen::random_connected(n, m, 3);
        let parts = gen::random_connected_partition(&g, (n as f64).sqrt() as usize, 5);
        check_theorem_1_2(&g, parts);
    }
}

#[test]
fn bounds_on_bounded_width_families() {
    let g = gen::ktree(100, 3, 1);
    let parts = gen::random_connected_partition(&g, 10, 2);
    check_theorem_1_2(&g, parts);

    let g = gen::kpath(40, 3);
    let parts = Partition::new(&g, (0..g.n()).map(|v| v / 12).collect()).unwrap();
    check_theorem_1_2(&g, parts);
}

#[test]
fn bounds_on_high_diameter_paths() {
    let g = gen::path(200);
    let parts = Partition::new(&g, gen::path_blocks(200, 50)).unwrap();
    check_theorem_1_2(&g, parts);
}

/// The planar claim of Table 2: on grids, PA rounds scale with `D`, not
/// with `sqrt(n)` — doubling the area at fixed aspect ratio should grow
/// rounds roughly linearly in the side (which is Θ(D)).
#[test]
fn planar_rounds_track_diameter() {
    let mut prev_rounds = 0usize;
    for side in [8usize, 16] {
        let g = gen::grid(side, side);
        let parts = Partition::new(&g, gen::grid_row_partition(side, side)).unwrap();
        let values: Vec<u64> = (0..g.n() as u64).collect();
        let inst = PaInstance::from_partition(&g, parts, values, Aggregate::Min).unwrap();
        let res = solve_pa(&inst, &PaConfig::default()).unwrap();
        if prev_rounds > 0 {
            // Doubling the side at most ~quadruples rounds (log factors on
            // top of linear growth); it must not grow with area (x4 side
            // would mean x16 quadratic blow-up).
            assert!(
                res.cost.rounds <= prev_rounds * 8,
                "rounds jumped {prev_rounds} -> {} on side doubling",
                res.cost.rounds
            );
        }
        prev_rounds = res.cost.rounds;
    }
}

/// Message optimality is what the paper adds over prior work; make the
/// regression explicit: the full pipeline must never cost ω(m polylog)
/// messages on the adversarial apex grid.
#[test]
fn apex_grid_messages_stay_near_linear() {
    let g = gen::grid_with_apex(16, 64);
    let parts = Partition::new(&g, gen::grid_row_partition_with_apex(16, 64)).unwrap();
    let values: Vec<u64> = (0..g.n() as u64).collect();
    let inst = PaInstance::from_partition(&g, parts, values, Aggregate::Min).unwrap();
    let res = solve_pa(&inst, &PaConfig::default()).unwrap();
    let bound = g.m() as f64 * polylog(g.n());
    assert!(
        (res.cost.messages as f64) <= bound,
        "messages {} exceed m*polylog {bound:.0}",
        res.cost.messages
    );
}
