//! Integration tests of the streaming front-end: the stream ≡ batch
//! equivalence (every recorded batch, served through the plain batch
//! path, bit-matches what the gateway answered), the bit-for-bit
//! `ArrivalLog` replay, and backpressure pinning the *exact* rejection
//! set at a given high-water mark.

use std::sync::mpsc;

use proptest::prelude::*;

use rmo::apps::service::{GraphId, PaCluster};
use rmo::apps::stream::{
    mixed_arrivals, zipf_arrivals, Arrival, BatchClose, RejectReason, StreamConfig, StreamEvent,
    StreamGateway,
};
use rmo::apps::Query;
use rmo::graph::gen;

fn small_fleet(shards: usize) -> PaCluster {
    let mut cluster = PaCluster::new(shards);
    cluster.add_graph(GraphId(0), gen::grid(4, 5));
    cluster.add_graph(GraphId(1), gen::path(16));
    cluster.add_graph(GraphId(2), gen::gnp_connected(18, 0.2, 5));
    cluster.add_graph(GraphId(3), gen::grid(3, 6));
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any arrival interleaving: (1) the recorded `ArrivalLog` replays
    /// the full report bit-for-bit on a fresh gateway, and (2) serving
    /// the recorded batches through the plain batch path
    /// (`serve_sequential`, batch by batch) reproduces every response
    /// and the final engine counters — the stream is the batch path
    /// plus framing, never a different computation.
    #[test]
    fn stream_replay_bit_matches_the_batch_path(
        shards in 1usize..5,
        seed in 0u64..1000,
        mean_gap in 0u64..8,
        max_batch in 1usize..9,
        max_wait in 0u64..24,
        zipf in any::<bool>(),
    ) {
        let trace = if zipf {
            zipf_arrivals(&small_fleet(1), 24, seed, 1.3, mean_gap)
        } else {
            mixed_arrivals(&small_fleet(1), 24, seed, mean_gap)
        };
        let config = StreamConfig::new()
            .with_max_batch(max_batch)
            .with_max_wait_ticks(max_wait)
            .with_high_water(trace.len());
        let mut gateway = StreamGateway::new(small_fleet(shards), config);
        let report = gateway.run(&trace);
        prop_assert_eq!(report.stats.rejected, 0u64);
        prop_assert_eq!(report.stats.admitted, trace.len() as u64);

        // (1) Bit-for-bit replay from the ArrivalLog.
        let replayed = StreamGateway::new(small_fleet(shards), config)
            .replay(&trace, &report.log)
            .expect("a recorded log replays on an identically prepared gateway");
        prop_assert_eq!(&replayed, &report);

        // (2) Stream ≡ batch: serve each recorded batch frame through
        // the plain batch path on a fresh cluster. Warm-cache state
        // must evolve identically, so responses AND the final engine
        // counters bit-match the streamed outcomes.
        let mut batch_path = small_fleet(shards);
        for record in &report.log.batches {
            let frame: Vec<(GraphId, Query)> = record
                .queries
                .iter()
                .map(|&(seq, _)| {
                    let a = &trace[seq];
                    (a.graph, a.query.clone())
                })
                .collect();
            let served = batch_path.serve_sequential(&frame);
            for (&(seq, tick), response) in record.queries.iter().zip(&served.responses) {
                prop_assert_eq!(trace[seq].tick, tick);
                let outcome = &report.outcomes[seq];
                prop_assert_eq!(
                    outcome.result.as_ref().expect("admitted queries are served"),
                    response
                );
            }
        }
        prop_assert_eq!(
            batch_path.stats().engine,
            report.stats.engine,
            "the streamed cluster's engine counters are the batch path's"
        );

        // The batch partition covers the admitted sequence numbers
        // exactly once, in arrival order.
        let mut covered: Vec<usize> = report
            .log
            .batches
            .iter()
            .flat_map(|r| r.queries.iter().map(|&(seq, _)| seq))
            .collect();
        let sorted = {
            let mut s = covered.clone();
            s.sort_unstable();
            s
        };
        prop_assert_eq!(&covered, &sorted, "batches partition in arrival order");
        covered.dedup();
        prop_assert_eq!(covered.len(), trace.len());
    }
}

/// The backpressure contract, pinned exactly: with one shard, a
/// high-water mark of 3, and a batch size of 3, a six-query burst at
/// tick 0 admits exactly the first three queries (which close a batch
/// by size and go in flight) and rejects the other three with the
/// precise depth it saw; once the modeled batch completes, admission
/// reopens.
#[test]
fn high_water_mark_pins_the_exact_rejection_set() {
    let config = StreamConfig::new()
        .with_max_batch(3)
        .with_max_wait_ticks(1_000)
        .with_high_water(3)
        .with_work_per_tick(1);
    let mut cluster = PaCluster::new(1);
    cluster.add_graph(GraphId(1), gen::grid(4, 5));
    let mut gateway = StreamGateway::new(cluster, config);
    let mut trace: Vec<Arrival> = (0..6)
        .map(|_| Arrival {
            tick: 0,
            graph: GraphId(1),
            query: Query::Mst,
        })
        .collect();
    // A straggler long after the burst's batch drains.
    trace.push(Arrival {
        tick: 10_000_000,
        graph: GraphId(1),
        query: Query::Mst,
    });
    let report = gateway.run(&trace);
    let expected = RejectReason::ShardSaturated {
        shard: 0,
        depth: 3,
        high_water: 3,
    };
    assert_eq!(
        report.rejections(),
        vec![(3, expected), (4, expected), (5, expected)],
        "exactly the burst's tail is shed, each seeing depth 3"
    );
    assert!(report.outcomes[6].result.is_ok(), "admission reopens after drain");
    assert_eq!(report.stats.admitted, 4);
    assert_eq!(report.stats.rejected, 3);
    assert_eq!(report.stats.size_closes, 1);
    assert_eq!(report.stats.flush_closes, 1);
    // Rejected queries never reach a batch: the log records only the
    // four admitted ones.
    let logged: usize = report.log.batches.iter().map(|b| b.queries.len()).sum();
    assert_eq!(logged, 4);
}

/// Saturation is per *shard*: a burst that saturates one graph's home
/// shard must not shed traffic arriving for a graph homed elsewhere.
#[test]
fn backpressure_is_per_shard_not_global() {
    // Find two graphs homed on different shards of a 2-shard cluster.
    let probe = small_fleet(2);
    let ids = probe.graph_ids();
    let first = ids[0];
    let other = *ids
        .iter()
        .find(|&&id| probe.shard_of(id) != probe.shard_of(first))
        .expect("four graphs over two shards always split");
    let config = StreamConfig::new()
        .with_max_batch(100)
        .with_max_wait_ticks(1_000)
        .with_high_water(2);
    let mut gateway = StreamGateway::new(small_fleet(2), config);
    let mk = |tick: u64, graph: GraphId| Arrival {
        tick,
        graph,
        query: Query::Mst,
    };
    let trace = vec![
        mk(0, first),
        mk(0, first),
        mk(1, first), // third on the same home shard: shed
        mk(1, other), // different home shard: admitted
        mk(2, other),
        mk(2, other), // third on the other shard: shed
    ];
    let report = gateway.run(&trace);
    let rejected: Vec<usize> = report.rejections().iter().map(|&(seq, _)| seq).collect();
    assert_eq!(rejected, vec![2, 5], "each shard sheds only its own overflow");
    assert!(matches!(
        report.outcomes[2].result,
        Err(RejectReason::ShardSaturated { depth: 2, high_water: 2, .. })
    ));
}

/// The live channel front-end streams responses while later queries
/// are still arriving, and ends up with the identical deterministic
/// report as the slice run — arrival transport does not change
/// results.
#[test]
fn channel_mode_matches_slice_mode_and_streams_responses() {
    let trace = mixed_arrivals(&small_fleet(2), 30, 77, 4);
    let config = StreamConfig::new().with_max_batch(4).with_max_wait_ticks(8);
    let (atx, arx) = mpsc::channel::<Arrival>();
    let (etx, erx) = mpsc::channel::<StreamEvent>();
    let sender = std::thread::spawn({
        let trace = trace.clone();
        move || {
            for a in trace {
                atx.send(a).expect("gateway outlives the sender");
            }
        }
    });
    let mut gateway = StreamGateway::new(small_fleet(2), config);
    let live = gateway.run_channel(arx, &etx);
    drop(etx);
    sender.join().expect("sender thread");
    let events: Vec<StreamEvent> = erx.iter().collect();
    let responses = events
        .iter()
        .filter(|e| matches!(e, StreamEvent::Response { .. }))
        .count() as u64;
    assert_eq!(responses, live.stats.admitted, "every response streamed out");
    assert!(
        events
            .iter()
            .any(|e| matches!(e, StreamEvent::BatchClosed { closed_by: BatchClose::Size, .. })),
        "batch boundaries are visible live"
    );
    let slice = StreamGateway::new(small_fleet(2), config).run(&trace);
    assert_eq!(live.outcomes, slice.outcomes);
    assert_eq!(live.stats, slice.stats);
}

/// Replaying someone else's log is a typed error, not a panic — even
/// when the foreign log's shard count or batch framing is nonsense
/// for this gateway.
#[test]
fn foreign_logs_fail_replay_gracefully() {
    let trace = mixed_arrivals(&small_fleet(2), 16, 5, 3);
    let config = StreamConfig::new().with_max_batch(4).with_max_wait_ticks(8);
    let report = StreamGateway::new(small_fleet(2), config).run(&trace);

    // Different shard count: placement can't apply.
    let err = StreamGateway::new(small_fleet(3), config)
        .replay(&trace, &report.log)
        .unwrap_err();
    assert!(err.batch.is_some(), "{err}");

    // Different batching config: framing diverges before placement.
    let narrow = StreamConfig::new().with_max_batch(2).with_max_wait_ticks(8);
    let err = StreamGateway::new(small_fleet(2), narrow)
        .replay(&trace, &report.log)
        .unwrap_err();
    assert!(err.to_string().contains("diverged"), "{err}");
}
