//! Accounting crosscheck: the phase-level cost accounting used by the PA
//! solver must agree with a genuine per-node CONGEST simulation on the
//! configurations where both can run.
//!
//! Setup: every part aggregates over its own BFS spanning tree (the
//! `intra_part_pa` baseline — no shortcuts). The same computation is also
//! executed as real node programs (`TreeBroadcast` / `TreeConvergecast`
//! per part tree, all parts in parallel on one simulator). The simulated
//! messages must match the accounted messages exactly, and the rounds
//! must agree up to the small constants of phase sequencing.

use rmo::congest::programs::broadcast::TreeBroadcast;
use rmo::congest::programs::convergecast::TreeConvergecast;
use rmo::congest::{Network, Simulator};
use rmo::core::baseline::intra_part_pa;
use rmo::core::{Aggregate, PaInstance, SubPartDivision, Variant};
use rmo::graph::{bfs_tree, gen, NodeId, Partition};

/// Runs the three PA phases as real node programs on per-part trees.
/// Returns (aggregates per part, total messages, total rounds).
fn simulate_real_pa(
    g: &rmo::graph::Graph,
    net: &Network,
    _parts: &Partition,
    division: &SubPartDivision,
    leaders: &[NodeId],
    values: &[u64],
    fold: fn(u64, u64) -> u64,
) -> (Vec<u64>, u64, usize) {
    let parent_port = |v: NodeId| {
        division.parent_of(v).map(|p| {
            let e = g.edge_between(v, p).expect("tree edge");
            net.port_for_edge(v, e)
        })
    };
    let children_ports = |v: NodeId| -> Vec<usize> {
        g.neighbors(v)
            .filter(|&(u, _)| division.parent_of(u) == Some(v))
            .map(|(_, e)| net.port_for_edge(v, e))
            .collect()
    };
    let mut messages = 0u64;
    let mut rounds = 0usize;

    // Phase A: leaders broadcast a token down their part trees.
    let mut sim = Simulator::new(net, |v| {
        let prog = if leaders.contains(&v) {
            TreeBroadcast::root(1)
        } else {
            TreeBroadcast::node(parent_port(v).expect("non-leader has a parent"))
        };
        prog.with_children(children_ports(v))
    });
    let a = sim
        .run_until_quiescent(8 * g.n() + 8)
        .expect("phase A terminates");
    messages += a.messages;
    rounds += a.rounds;

    // Phase B: aggregate values up to the leaders.
    let mut sim = Simulator::new(net, |v| {
        TreeConvergecast::new(values[v], fold, parent_port(v), children_ports(v).len())
    });
    let b = sim
        .run_until_quiescent(8 * g.n() + 8)
        .expect("phase B terminates");
    messages += b.messages;
    rounds += b.rounds;
    let aggregates: Vec<u64> = leaders
        .iter()
        .map(|&l| sim.program(l).result().expect("leader holds the aggregate"))
        .collect();

    // Phase C: broadcast the results back down.
    let mut sim = Simulator::new(net, |v| {
        let prog = if let Some(i) = leaders.iter().position(|&l| l == v) {
            TreeBroadcast::root(aggregates[i])
        } else {
            TreeBroadcast::node(parent_port(v).expect("non-leader has a parent"))
        };
        prog.with_children(children_ports(v))
    });
    let c = sim
        .run_until_quiescent(8 * g.n() + 8)
        .expect("phase C terminates");
    messages += c.messages;
    rounds += c.rounds;

    (aggregates, messages, rounds)
}

fn crosscheck(g: &rmo::graph::Graph, parts: Partition, seed: u64) {
    let values: Vec<u64> = (0..g.n() as u64).map(|v| (v * 13) % 101).collect();
    let inst =
        PaInstance::from_partition(g, parts.clone(), values.clone(), Aggregate::Sum).unwrap();
    let (tree, _) = bfs_tree(g, 0);
    let leaders: Vec<NodeId> = parts.part_ids().map(|p| parts.members(p)[0]).collect();

    // Phase-accounted run.
    let accounted = intra_part_pa(&inst, &tree, &leaders, Variant::Deterministic).unwrap();

    // Real node-program run on the same per-part trees.
    let net = Network::new(g, seed);
    let division = SubPartDivision::one_per_part(g, &parts, &leaders);
    let (aggregates, sim_msgs, sim_rounds) =
        simulate_real_pa(g, &net, &parts, &division, &leaders, &values, |a, b| {
            a.wrapping_add(b)
        });

    // Same answers.
    for p in parts.part_ids() {
        assert_eq!(aggregates[p], inst.reference_aggregate(p), "part {p}");
        assert_eq!(accounted.aggregates[p], aggregates[p]);
    }
    // Message accounting: the accounted wave charges (size-1) per part
    // tree per phase plus the step-3 boundary notifications; the real
    // simulation sends exactly (n - #parts) per phase. The accounted
    // number must dominate the real one and stay within the boundary-
    // notification overhead (≤ 2m extra per phase).
    let real_per_phase = (g.n() - parts.num_parts()) as u64;
    assert_eq!(
        sim_msgs,
        3 * real_per_phase,
        "simulation sends one msg per tree edge per phase"
    );
    assert!(
        accounted.cost.messages >= sim_msgs,
        "accounted {} must dominate simulated {}",
        accounted.cost.messages,
        sim_msgs
    );
    assert!(
        accounted.cost.messages <= sim_msgs + 3 * 2 * g.m() as u64 + 3 * g.n() as u64,
        "accounted {} exceeds simulated {} plus boundary overhead",
        accounted.cost.messages,
        sim_msgs
    );
    // Round accounting: both are Θ(max part depth) per phase.
    let max_depth = (0..division.num_subparts())
        .map(|s| division.subpart_depth(s))
        .max()
        .unwrap_or(0);
    assert!(
        accounted.cost.rounds >= max_depth,
        "phases cannot beat the tree depth"
    );
    assert!(
        sim_rounds <= 3 * (max_depth + 3),
        "simulated rounds {} exceed 3 phases of depth {}",
        sim_rounds,
        max_depth
    );
    assert!(
        accounted.cost.rounds <= 4 * (max_depth + 3),
        "accounted rounds {} far from simulated {}",
        accounted.cost.rounds,
        sim_rounds
    );
}

#[test]
fn crosscheck_grid_rows() {
    let g = gen::grid(6, 8);
    let parts = Partition::new(&g, gen::grid_row_partition(6, 8)).unwrap();
    crosscheck(&g, parts, 3);
}

#[test]
fn crosscheck_path_blocks() {
    let g = gen::path(48);
    let parts = Partition::new(&g, gen::path_blocks(48, 12)).unwrap();
    crosscheck(&g, parts, 5);
}

#[test]
fn crosscheck_random_regions() {
    for seed in 0..3 {
        let g = gen::gnp_connected(60, 0.07, seed);
        let parts = gen::random_connected_partition(&g, 5, seed + 50);
        crosscheck(&g, parts, seed);
    }
}

#[test]
fn crosscheck_whole_graph() {
    let g = gen::balanced_binary_tree(6);
    let parts = Partition::whole(&g).unwrap();
    crosscheck(&g, parts, 9);
}
