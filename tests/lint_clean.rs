//! The workspace determinism gate: `rmo-lint` must pass on the whole
//! tree — token-local rules, the P1 ratchet, and the interprocedural
//! serving-path rules (R1 panic-reachability pins, Q1 dispatch parity,
//! L2 lock discipline). This runs in the default `cargo test`, so
//! tier-1 catches a determinism regression even before the dedicated
//! CI job does.

use std::path::Path;

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn ratchet() -> rmo_lint::ratchet::Ratchet {
    let text = std::fs::read_to_string(root().join("lint-ratchet.toml"))
        .expect("lint-ratchet.toml exists at the workspace root");
    rmo_lint::ratchet::Ratchet::parse(&text).expect("lint-ratchet.toml parses")
}

#[test]
fn workspace_is_lint_clean() {
    let report = rmo_lint::check(root()).expect("workspace scan runs");
    assert!(
        report.is_clean(),
        "rmo-lint found {} violation(s):\n{}",
        report.lines().len(),
        report.lines().join("\n")
    );
}

#[test]
fn check_output_is_byte_identical_across_runs() {
    // The whole point of the gate is determinism; hold the gate itself
    // to it. Two full scans of the real workspace must render the same
    // report, byte for byte, in every output format.
    let a = rmo_lint::check(root()).expect("first scan runs");
    let b = rmo_lint::check(root()).expect("second scan runs");
    assert_eq!(a.lines(), b.lines());
    assert_eq!(rmo_lint::render_json(&a), rmo_lint::render_json(&b));
    assert_eq!(rmo_lint::render_github(&a), rmo_lint::render_github(&b));
}

#[test]
fn ratchet_matches_tree_exactly() {
    // `check` already fails on drift in either direction; assert the
    // counts directly as well so this invariant survives refactors of
    // the failure-message plumbing.
    let report = rmo_lint::scan_workspace(root()).expect("workspace scan runs");
    let ratchet = ratchet();
    let (counts, unmapped) = rmo_lint::p1_counts(&ratchet, &report.p1);
    assert!(
        unmapped.is_empty(),
        "library paths without a ratchet budget: {unmapped:#?}"
    );
    for (key, budget) in &ratchet.budgets {
        let count = counts.get(key.as_str()).copied().unwrap_or(0);
        assert_eq!(
            count, *budget,
            "{key}: tree has {count} unwrap/expect sites but the ratchet says {budget} — \
             run `cargo run -p rmo-lint -- --update-ratchet`"
        );
    }
}

#[test]
fn r1_pins_match_the_tree_exactly() {
    // Same exact-match contract for the panic-reachability section: a
    // new serve-path panic AND a silent fix both show up as drift.
    let report = rmo_lint::scan_workspace(root()).expect("workspace scan runs");
    let sites =
        rmo_lint::reach::panic_reachability(&report.parsed, rmo_lint::reach::SERVING_ENTRIES)
            .expect("every serving entry resolves");
    assert!(
        sites.iter().all(|f| f.rule == "R1"),
        "reason-less allow(R1) directives present: {sites:#?}"
    );
    let ratchet = ratchet();
    let (counts, unmapped) = rmo_lint::r1_counts(&ratchet, &sites);
    assert!(
        unmapped.is_empty(),
        "reachable paths without an [r1] pin: {unmapped:#?}"
    );
    for (key, pin) in &ratchet.r1 {
        let count = counts.get(key.as_str()).copied().unwrap_or(0);
        assert_eq!(
            count, *pin,
            "[r1] {key}: tree has {count} panic-reachable sites but the pin says {pin} — \
             fix new panics, or lock in a sweep via `cargo run -p rmo-lint -- --update-ratchet`"
        );
    }
    // The dispatch surface itself stays panic-free: contract violations
    // come back as Failed responses, never as a crash.
    assert_eq!(ratchet.r1_pin("crates/apps/src/dispatch.rs"), Some(0));
}

#[test]
fn serving_path_is_strictly_below_its_baseline() {
    let ratchet = ratchet();
    let service_budget = ratchet
        .budget("crates/apps/src/service.rs")
        .expect("service.rs has a budget");
    let service_baseline = ratchet
        .baseline("crates/apps/src/service.rs")
        .expect("service.rs has a baseline");
    assert!(
        service_budget < service_baseline,
        "the de-unwrap sweep must hold: service.rs budget {service_budget} \
         is not strictly below its pre-sweep baseline {service_baseline}"
    );
    // dispatch.rs entered the sweep already clean; it must stay at zero.
    assert_eq!(ratchet.budget("crates/apps/src/dispatch.rs"), Some(0));
    assert_eq!(ratchet.baseline("crates/apps/src/dispatch.rs"), Some(0));
}

#[test]
fn deterministic_modules_are_classified() {
    // The classification table is the contract's foundation — pin it.
    for path in [
        "crates/congest/src/router.rs",
        "crates/core/src/engine.rs",
        "crates/shortcut/src/alg8.rs",
        "crates/apps/src/dispatch.rs",
        "crates/apps/src/service.rs",
    ] {
        assert!(
            rmo_lint::classify(path).deterministic,
            "{path} must be a deterministic module"
        );
    }
    assert!(!rmo_lint::classify("crates/graph/src/graph.rs").deterministic);
    assert!(!rmo_lint::classify("crates/apps/src/mst.rs").deterministic);
    assert!(rmo_lint::classify("crates/harness/src/main.rs").timing_exempt);
    assert!(rmo_lint::classify("crates/congest/tests/alloc_free.rs").is_test);
    // Lock discipline applies to the serving loop, not to test code.
    assert!(rmo_lint::classify("crates/apps/src/service.rs").lock_discipline);
    assert!(!rmo_lint::classify("crates/apps/src/dispatch.rs").lock_discipline);
    assert!(!rmo_lint::classify("crates/apps/tests/service.rs").lock_discipline);
}
