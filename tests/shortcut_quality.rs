//! Cross-crate shortcut quality: constructed shortcuts actually help the
//! PA solver, and their measured parameters respect the paper's bounds on
//! the bounded-parameter families (Table 1's promise, empirically).

use rmo::core::subparts_det::deterministic_division;
use rmo::core::{solve_on, Aggregate, PaInstance, PaSetup, Variant};
use rmo::graph::{bfs_tree, gen, Partition};
use rmo::shortcut::alg8::{construct_deterministic, DetParams};
use rmo::shortcut::corefast::{construct_randomized, RandParams};
use rmo::shortcut::trivial::trivial_shortcut;
use rmo::shortcut::{profile, quality, Shortcut};

fn two_reps(parts: &Partition) -> Vec<Vec<usize>> {
    parts
        .part_ids()
        .map(|p| {
            let m = parts.members(p);
            if m.len() == 1 {
                vec![m[0]]
            } else {
                vec![m[0], m[m.len() - 1]]
            }
        })
        .collect()
}

#[test]
fn trivial_shortcut_is_universal() {
    // Section 1.3: every graph admits b = 1, c <= sqrt(n).
    let cases = vec![
        gen::grid(8, 8),
        gen::gnp_connected(100, 0.05, 1),
        gen::ktree(64, 3, 2),
        gen::kpath(20, 3),
        gen::torus(6, 8),
        gen::hypercube(6),
    ];
    for g in cases {
        let k = (g.n() as f64).sqrt().ceil() as usize;
        let parts = gen::random_connected_partition(&g, k, 3);
        let (tree, _) = bfs_tree(&g, 0);
        let sc = trivial_shortcut(&g, &tree, &parts);
        let q = quality::measure(&g, &tree, &parts, &sc);
        assert_eq!(q.block_parameter, 1, "n = {}", g.n());
        assert!(
            q.congestion <= k + 1,
            "congestion {} exceeds sqrt(n) = {k} on n = {}",
            q.congestion,
            g.n()
        );
    }
}

#[test]
fn constructions_satisfy_all_parts_on_grids() {
    for (r, c) in [(6usize, 6usize), (8, 16), (4, 32)] {
        let g = gen::grid(r, c);
        let parts = Partition::new(&g, gen::grid_row_partition(r, c)).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let terminals = two_reps(&parts);
        let det = construct_deterministic(
            &g,
            &tree,
            &parts,
            &terminals,
            DetParams::new(r, 2, parts.num_parts()),
        );
        assert!(
            det.unsatisfied.is_empty(),
            "{r}x{c}: det unsatisfied {:?}",
            det.unsatisfied
        );
        let rand = construct_randomized(
            &g,
            &tree,
            &parts,
            &terminals,
            RandParams::new(r, 2, parts.num_parts(), 5),
        );
        assert!(rand.unsatisfied.is_empty(), "{r}x{c}: rand unsatisfied");
        // Profiles are internally consistent.
        for sc in [&det.shortcut, &rand.shortcut] {
            let p = profile(&g, &tree, &parts, sc);
            let q = quality::measure(&g, &tree, &parts, sc);
            assert_eq!(p.max_congestion(), q.congestion);
            let total: usize = p.congestion_histogram.iter().sum();
            assert_eq!(total, g.n() - 1);
        }
    }
}

#[test]
fn better_shortcuts_reduce_wave_rounds_on_wide_grids() {
    // The Figure 2 topology: rows are long (high part diameter) but the
    // apex keeps the network diameter tiny. With a shortcut through the
    // BFS tree the wave collapses each row in O(D + c) rounds; with NO
    // shortcut it must crawl the row sub-part by sub-part.
    let (depth, width) = (4usize, 240usize);
    let g = gen::grid_with_apex(depth, width);
    let parts = Partition::new(&g, gen::grid_row_partition_with_apex(depth, width)).unwrap();
    let apex = depth * width;
    let (tree, _) = bfs_tree(&g, apex);
    let values: Vec<u64> = (0..g.n() as u64).collect();
    let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Min).unwrap();
    let leaders: Vec<usize> = parts.part_ids().map(|p| parts.members(p)[0]).collect();
    let d = tree.depth().max(1);
    let division = deterministic_division(&g, &parts, d).division;
    let terminals: Vec<Vec<usize>> = parts.part_ids().map(|p| division.reps_of_part(p)).collect();
    let built = construct_deterministic(
        &g,
        &tree,
        &parts,
        &terminals,
        DetParams::new(8, 2, parts.num_parts()),
    );
    assert!(built.unsatisfied.is_empty());
    let budget = parts
        .part_ids()
        .map(|p| {
            built
                .shortcut
                .blocks_for_terminals(&g, &tree, p, &terminals[p])
                .len()
        })
        .max()
        .unwrap();
    let with = solve_on(
        &inst,
        &PaSetup {
            tree: &tree,
            shortcut: &built.shortcut,
            division: &division,
            leaders: &leaders,
            block_budget: budget,
        },
        Variant::Deterministic,
    )
    .unwrap();
    let empty = Shortcut::empty(parts.num_parts());
    let without = solve_on(
        &inst,
        &PaSetup {
            tree: &tree,
            shortcut: &empty,
            division: &division,
            leaders: &leaders,
            block_budget: division.num_subparts() + 1,
        },
        Variant::Deterministic,
    )
    .unwrap();
    assert!(
        with.broadcast_cost.rounds < without.broadcast_cost.rounds,
        "shortcut wave {} rounds should beat no-shortcut wave {} rounds",
        with.broadcast_cost.rounds,
        without.broadcast_cost.rounds
    );
}

#[test]
fn bounded_width_families_get_small_parameters() {
    // k-paths: pathwidth 3, Table 1 row says b, c = p. Consecutive-clique
    // parts should admit shortcuts with single-digit parameters.
    let g = gen::kpath(30, 3);
    let assign: Vec<usize> = (0..g.n()).map(|v| v / 18).collect();
    let parts = Partition::new(&g, assign).unwrap();
    let (tree, _) = bfs_tree(&g, 0);
    let terminals = two_reps(&parts);
    let res = construct_deterministic(
        &g,
        &tree,
        &parts,
        &terminals,
        DetParams::new(4, 2, parts.num_parts()),
    );
    assert!(res.unsatisfied.is_empty());
    for p in parts.part_ids() {
        let blocks = res
            .shortcut
            .blocks_for_terminals(&g, &tree, p, &terminals[p])
            .len();
        assert!(blocks <= 6, "part {p}: {blocks} terminal blocks");
    }
}
