//! Property-based tests of the core data structures and sub-algorithms:
//! shortcut quality invariants, Algorithm 7's congestion bound, star
//! joinings, sub-part divisions and the tree router.

use proptest::prelude::*;

use rmo::congest::router::{TreeRouter, UpcastJob};
use rmo::core::star_join::star_joining;
use rmo::core::subparts_det::deterministic_division;
use rmo::core::subparts_random::random_division;
use rmo::graph::{bfs_tree, gen, Partition};
use rmo::shortcut::alg7::construct_on_path;
use rmo::shortcut::alg8::{construct_deterministic, DetParams};
use rmo::shortcut::quality;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn alg7_respects_lemma_6_6(
        len in 2usize..300,
        c in 1usize..10,
        density in 1usize..4,
        seed in 0u64..100,
    ) {
        let nodes: Vec<usize> = (0..len).collect();
        let edges: Vec<usize> = (0..len - 1).collect();
        let mut requests: Vec<Vec<usize>> = vec![Vec::new(); len];
        let mut part = 0usize;
        for (i, r) in requests.iter_mut().enumerate() {
            if (i as u64).wrapping_mul(seed | 1) % density as u64 == 0 {
                r.push(part);
                part += 1;
            }
        }
        let res = construct_on_path(&nodes, &edges, &requests, c);
        let log_d = (len as f64).log2().ceil() as usize + 1;
        prop_assert!(res.max_edge_load <= 2 * c * log_d,
            "load {} > 2c logD {}", res.max_edge_load, 2 * c * log_d);
        prop_assert!(res.cost.rounds <= 2 * (c * log_d + len),
            "rounds {} over Lemma 6.6", res.cost.rounds);
        // Parts that reached the top from strictly below must have claimed
        // edges on the way (parts entering at the top claim nothing).
        let top_entrants = &requests[len - 1];
        for p in &res.reached_top {
            if !top_entrants.contains(p) {
                prop_assert!(res.claimed.iter().any(|(q, _)| q == p));
            }
        }
    }

    #[test]
    fn alg8_congestion_envelope(
        side_r in 3usize..8,
        side_c in 3usize..10,
        budget in 2usize..8,
    ) {
        let g = gen::grid(side_r, side_c);
        let parts = Partition::new(&g, gen::grid_row_partition(side_r, side_c)).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let terminals: Vec<Vec<usize>> = parts
            .part_ids()
            .map(|p| {
                let m = parts.members(p);
                vec![m[0], m[m.len() - 1]]
            })
            .collect();
        let res = construct_deterministic(
            &g, &tree, &parts, &terminals,
            DetParams::new(budget, budget, parts.num_parts()),
        );
        let q = quality::measure(&g, &tree, &parts, &res.shortcut);
        let log_d = ((tree.depth().max(2)) as f64).log2().ceil() as usize + 1;
        prop_assert!(
            q.congestion <= 2 * budget * log_d * res.iterations.max(1) + res.iterations,
            "congestion {} breaks the Lemma 6.7 envelope", q.congestion
        );
    }

    #[test]
    fn star_joining_always_stars_and_merges(
        n in 2usize..80,
        seed in 0u64..500,
    ) {
        let out: Vec<Option<usize>> = (0..n)
            .map(|i| {
                let mut t = ((i as u64).wrapping_mul(seed | 1).wrapping_add(seed) % n as u64) as usize;
                if t == i { t = (t + 1) % n; }
                Some(t)
            })
            .collect();
        let ids: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) | 1).collect();
        let r = star_joining(&out, &ids);
        // Star property.
        for j in r.joins.iter().flatten() {
            prop_assert!(r.joins[*j].is_none());
        }
        // Constant-fraction merge.
        let survivors = n - r.joiner_count();
        prop_assert!(survivors * 4 <= 3 * n + 4, "{survivors}/{n} survive");
    }

    #[test]
    fn divisions_satisfy_definition_4_1(
        n in 8usize..120,
        extra in 0usize..60,
        d in 2usize..20,
        seed in 0u64..100,
        target in 1usize..5,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let parts = gen::random_connected_partition(&g, target, seed ^ 3);
        let leaders: Vec<usize> = parts.part_ids().map(|p| parts.members(p)[0]).collect();

        let rand = random_division(&g, &parts, &leaders, d, seed);
        let det = deterministic_division(&g, &parts, d);
        for div in [&rand.division, &det.division] {
            // Coverage and containment.
            for v in 0..n {
                let s = div.subpart_of(v);
                prop_assert_eq!(div.part_of_subpart(s), parts.part_of(v));
            }
            // Reps are members of their sub-parts with depth 0.
            for s in 0..div.num_subparts() {
                let r = div.rep_of_subpart(s);
                prop_assert_eq!(div.subpart_of(r), s);
                prop_assert_eq!(div.depth_of(r), 0);
            }
        }
        // Deterministic division: complete sub-parts hold >= min(d, |part|)
        // nodes, so each part has at most |P|/d + 1 sub-parts... within the
        // star-joining constant.
        for p in parts.part_ids() {
            let count = det.division.subpart_count_of_part(p);
            let bound = parts.part_size(p) / d + 1;
            prop_assert!(count <= 2 * bound, "part {p}: {count} sub-parts > {bound}");
        }
    }

    #[test]
    fn router_delivers_and_respects_bounds(
        len in 2usize..60,
        jobs_n in 1usize..12,
        seed in 0u64..100,
    ) {
        let g = gen::path(len);
        let (tree, _) = bfs_tree(&g, 0);
        let router = TreeRouter::new(&tree);
        let jobs: Vec<UpcastJob> = (0..jobs_n)
            .map(|j| {
                let src = 1 + ((j as u64 * 7 + seed) % (len as u64 - 1)) as usize;
                UpcastJob { subtree: j, root: 0, sources: vec![(src, j as u64 + 1)] }
            })
            .collect();
        let res = router.upcast(&jobs, u64::max);
        for (j, agg) in res.aggregates.iter().enumerate() {
            prop_assert_eq!(*agg, Some(j as u64 + 1));
        }
        // Lemma 4.2 envelope: rounds <= D + c.
        prop_assert!(res.cost.rounds <= (len - 1) + jobs_n,
            "rounds {} > D + c", res.cost.rounds);
        // Observation 4.3: messages <= |S| * D.
        prop_assert!(res.cost.messages <= (jobs_n * (len - 1)) as u64);
    }
}
