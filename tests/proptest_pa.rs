//! Property-based tests of the PA stack: on arbitrary connected graphs,
//! partitions, values and aggregates, the distributed result equals the
//! centralized fold and the cost accounting stays sane.

use proptest::prelude::*;

use rmo::core::{solve_pa, Aggregate, PaConfig, PaInstance};
use rmo::graph::gen;

/// Strategy: a connected graph described by (n, extra edges, seed).
fn graph_params() -> impl Strategy<Value = (usize, usize, u64)> {
    (4usize..40, 0usize..60, 0u64..1000)
}

fn aggregate() -> impl Strategy<Value = Aggregate> {
    prop_oneof![
        Just(Aggregate::Min),
        Just(Aggregate::Max),
        Just(Aggregate::Sum),
        Just(Aggregate::Xor),
        Just(Aggregate::Or),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pa_matches_reference_on_arbitrary_instances(
        (n, extra, seed) in graph_params(),
        parts_target in 1usize..10,
        f in aggregate(),
        det in any::<bool>(),
        values_seed in 0u64..1000,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let parts = gen::random_connected_partition(&g, parts_target, seed ^ 0xabcd);
        let values: Vec<u64> = (0..n as u64)
            .map(|v| v.wrapping_mul(values_seed.wrapping_mul(2654435761) | 1) % 100_000)
            .collect();
        let inst = PaInstance::from_partition(&g, parts, values, f).unwrap();
        let cfg = if det { PaConfig::default() } else { PaConfig::randomized(seed) };
        let res = solve_pa(&inst, &cfg).unwrap();
        for p in inst.partition().part_ids() {
            prop_assert_eq!(res.aggregates[p], inst.reference_aggregate(p));
        }
        for v in 0..n {
            prop_assert_eq!(res.value_at(v), inst.reference_aggregate_of(v));
        }
        // Cost sanity: the pipeline did some work but not absurd amounts.
        prop_assert!(res.cost.rounds >= 1);
        prop_assert!(res.cost.messages >= 1);
        let generous = (g.m() as u64 + n as u64) * 64 * 64;
        prop_assert!(res.cost.messages <= generous, "messages {} blow up", res.cost.messages);
    }

    #[test]
    fn pa_deterministic_configs_are_reproducible(
        (n, extra, seed) in graph_params(),
        parts_target in 1usize..6,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let parts = gen::random_connected_partition(&g, parts_target, seed);
        let values: Vec<u64> = (0..n as u64).collect();
        let inst = PaInstance::from_partition(&g, parts, values, Aggregate::Sum).unwrap();
        let a = solve_pa(&inst, &PaConfig::default()).unwrap();
        let b = solve_pa(&inst, &PaConfig::default()).unwrap();
        prop_assert_eq!(a.cost, b.cost);
        prop_assert_eq!(a.aggregates, b.aggregates);
    }

    #[test]
    fn leaderless_matches_reference(
        (n, extra, seed) in (4usize..25, 0usize..25, 0u64..200),
        parts_target in 1usize..5,
    ) {
        use rmo::core::leaderless::leaderless_pa;
        use rmo::core::Variant;
        use rmo::graph::bfs_tree;
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let parts = gen::random_connected_partition(&g, parts_target, seed ^ 7);
        let values: Vec<u64> = (0..n as u64).map(|v| v * 3 % 17).collect();
        let inst = PaInstance::from_partition(&g, parts, values, Aggregate::Min).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let out = leaderless_pa(&inst, &tree, Variant::Deterministic).unwrap();
        for p in inst.partition().part_ids() {
            prop_assert_eq!(out.result.aggregates[p], inst.reference_aggregate(p));
            prop_assert_eq!(inst.partition().part_of(out.leaders[p]), p);
        }
    }
}
