//! Workspace smoke tests: the parts of the repo that aren't exercised by
//! unit tests still build and run.
//!
//! * every example under `examples/` compiles (`cargo build --examples`);
//! * the `rmo-harness` binary runs a quick Table 1 regeneration without
//!   panicking and prints a markdown table;
//! * the `serve --skew` experiment runs, which exercises the threaded
//!   `PaCluster` path (scoped shard workers + mpsc collection, LPT
//!   placement, work stealing on the skewed scenarios) and its internal
//!   threaded-vs-sequential/steal-log-replay bit-match assertions — plus
//!   the ≥1.5× balanced-vs-pinned critical-path bound — on every CI
//!   push;
//! * `rmo-harness perf --quick --json` emits a well-formed `rmo-perf/2`
//!   JSON document covering the whole workload suite (primitives with
//!   their dense-reference speedups, table2 PA, the isolated pipeline
//!   stages, serve), so the perf trajectory's machine-readable format
//!   can't silently rot.
//!
//! These shell out to the same `cargo` that is running the test suite
//! (Cargo releases the build-directory lock before executing test
//! binaries, so the nested invocations are safe).

use std::process::Command;

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn lint_ratchet_matches_tree() {
    // The determinism gate's ratchet file must describe the tree
    // exactly — a stale budget hides the next unwrap/expect regression.
    // (tests/lint_clean.rs checks the full rule set; this smoke test
    // pins the ratchet/tree agreement specifically.)
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = rmo_lint::scan_workspace(root).expect("workspace scan runs");
    let text = std::fs::read_to_string(root.join("lint-ratchet.toml"))
        .expect("lint-ratchet.toml exists at the workspace root");
    let ratchet = rmo_lint::ratchet::Ratchet::parse(&text).expect("lint-ratchet.toml parses");
    let (counts, unmapped) = rmo_lint::p1_counts(&ratchet, &report.p1);
    assert!(
        unmapped.is_empty(),
        "unbudgeted library paths: {unmapped:#?}"
    );
    for (key, budget) in &ratchet.budgets {
        let count = counts.get(key.as_str()).copied().unwrap_or(0);
        assert_eq!(
            count, *budget,
            "{key}: ratchet says {budget}, tree has {count} — run --update-ratchet"
        );
    }
}

#[test]
fn all_examples_compile() {
    // --message-format=json reports each produced executable, which works
    // regardless of where the target directory lives (CARGO_TARGET_DIR,
    // build.target-dir, …).
    let out = cargo()
        .args(["build", "--examples", "--quiet", "--message-format=json"])
        .output()
        .expect("failed to spawn cargo build --examples");
    assert!(
        out.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Guard against examples silently disappearing from the build: all
    // seven quickstart/explorer binaries must be produced (fresh builds)
    // or already on disk as reported by a previous run (fingerprint-fresh
    // builds still emit the artifact messages with the executable path).
    let expected = [
        "diameter_probe",
        "engine_session",
        "network_health",
        "quickstart",
        "sensor_regions",
        "shortcut_explorer",
        "spanning_tree_builder",
    ];
    let stdout = String::from_utf8_lossy(&out.stdout);
    let executables: Vec<&str> = stdout
        .lines()
        .filter_map(|line| {
            let (_, rest) = line.split_once("\"executable\":\"")?;
            rest.split('"').next()
        })
        .collect();
    for name in expected {
        assert!(
            executables.iter().any(|exe| std::path::Path::new(exe)
                .file_stem()
                .is_some_and(|s| s == name)),
            "example binary `{name}` missing after cargo build --examples; built: {executables:?}"
        );
    }
}

#[test]
fn harness_quick_table1_runs() {
    let out = cargo()
        .args([
            "run",
            "--quiet",
            "-p",
            "rmo-harness",
            "--bin",
            "rmo-harness",
            "--",
            "table1",
            "--quick",
        ])
        .output()
        .expect("failed to spawn rmo-harness");
    assert!(
        out.status.success(),
        "rmo-harness table1 --quick exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Table 1") && stdout.contains("| family"),
        "harness did not print the Table 1 markdown table; got:\n{stdout}"
    );
}

#[test]
fn harness_quick_perf_emits_valid_json() {
    let out = cargo()
        .args([
            "run",
            "--quiet",
            "-p",
            "rmo-harness",
            "--bin",
            "rmo-harness",
            "--",
            "perf",
            "--quick",
            "--json",
        ])
        .output()
        .expect("failed to spawn rmo-harness");
    assert!(
        out.status.success(),
        "rmo-harness perf --quick --json exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = stdout.trim();

    // Schema shape (no serde in-tree, so validate structurally).
    assert!(
        json.starts_with('{') && json.ends_with('}'),
        "perf --json must print exactly one JSON object; got:\n{json}"
    );
    for (open, close) in [('{', '}'), ('[', ']')] {
        let opens = json.matches(open).count();
        let closes = json.matches(close).count();
        assert_eq!(opens, closes, "unbalanced {open}{close} in:\n{json}");
    }
    assert!(
        json.contains("\"schema\": \"rmo-perf/2\""),
        "schema marker missing:\n{json}"
    );
    assert!(
        json.contains("\"mode\": \"quick\""),
        "mode marker missing:\n{json}"
    );

    // The fixed workload suite: every named entry must be present with
    // the full field set, and the simulator-bound primitives must carry
    // their dense-reference comparison.
    for name in [
        "primitives/bfs_path",
        "primitives/bfs_grid",
        "primitives/broadcast_grid",
        "primitives/broadcast_path",
        "primitives/convergecast_grid",
        "primitives/pipeline_path",
        "primitives/election_grid",
        "table2_pa/general",
        "table2_pa/planar_grid",
        "table2_pa/treewidth3",
        "table2_pa/pathwidth3",
        "pipeline/stage1_tree",
        "pipeline/divisions",
        "pipeline/shortcuts",
        "pipeline/routing",
        "pipeline/warm_solve",
        "serve/mixed_sequential",
    ] {
        assert!(
            json.contains(&format!("\"name\": \"{name}\"")),
            "suite entry `{name}` missing from:\n{json}"
        );
    }
    for line in json.lines().filter(|l| l.contains("\"name\":")) {
        for field in ["\"wall_ms\":", "\"rounds\":", "\"messages\":"] {
            assert!(line.contains(field), "entry missing {field}: {line}");
        }
        if line.contains("primitives/") {
            for field in ["\"reference_wall_ms\":", "\"speedup\":"] {
                assert!(
                    line.contains(field),
                    "primitive entry missing {field}: {line}"
                );
            }
        }
    }
}

#[test]
fn harness_quick_serve_runs_threaded_cluster_with_skew() {
    let out = cargo()
        .args([
            "run",
            "--quiet",
            "-p",
            "rmo-harness",
            "--bin",
            "rmo-harness",
            "--",
            "serve",
            "--quick",
            "--skew",
        ])
        .output()
        .expect("failed to spawn rmo-harness");
    // The experiment itself asserts that threaded serving bit-matches
    // the sequential replay and the steal-log replay, and that the
    // Balanced scheduler beats hash-pinning >= 1.5x on the adversarial
    // one-shard fleet; a failed assertion is a non-zero exit here.
    assert!(
        out.status.success(),
        "rmo-harness serve --quick --skew exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Serve") && stdout.contains("| shards"),
        "harness did not print the serve table; got:\n{stdout}"
    );
    assert!(
        stdout.contains("hit rate"),
        "serve table must report cache hit rates; got:\n{stdout}"
    );
    assert!(
        stdout.contains("one-shard hash") && stdout.contains("steals"),
        "the skew run must print the scheduler-balance table; got:\n{stdout}"
    );
}

#[test]
fn harness_quick_stream_runs_gateway_with_backpressure() {
    let out = cargo()
        .args([
            "run",
            "--quiet",
            "-p",
            "rmo-harness",
            "--bin",
            "rmo-harness",
            "--",
            "stream",
            "--quick",
        ])
        .output()
        .expect("failed to spawn rmo-harness");
    // The experiment itself asserts the gateway's determinism contract
    // on every row (threaded rerun + sequential run agree on the whole
    // deterministic slice; the ArrivalLog replay reproduces the report
    // bit-for-bit); a failed assertion is a non-zero exit here.
    assert!(
        out.status.success(),
        "rmo-harness stream --quick exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Stream") && stdout.contains("| shards"),
        "harness did not print the stream latency table; got:\n{stdout}"
    );
    for column in ["p50", "p95", "p99"] {
        assert!(
            stdout.contains(column),
            "stream table must report {column} modeled latency; got:\n{stdout}"
        );
    }
    assert!(
        stdout.contains("high water") && stdout.contains("reject rate"),
        "the admission-control table must be printed; got:\n{stdout}"
    );
}
