//! Domain scenario: regional aggregation in a sensor network *without*
//! pre-elected coordinators — the Appendix B setting.
//!
//! ```text
//! cargo run --example sensor_regions
//! ```
//!
//! A sensor field is divided into administrative regions (a partition
//! into connected parts). Every sensor holds a battery level; each region
//! must agree on its minimum battery (to decide which region needs a
//! maintenance visit) — but nobody knows who the regional coordinator is.
//! Algorithm 9 elects coordinators while it aggregates, paying only a
//! logarithmic overhead (Lemma B.1).

use rmo::core::leaderless::leaderless_pa;
use rmo::core::{Aggregate, PaInstance, Variant};
use rmo::graph::{bfs_tree, gen};

fn main() {
    // The sensor field: a 300-node connected random geometric-ish graph,
    // carved into 8 connected regions.
    let g = gen::gnp_connected(300, 0.02, 99);
    let regions = gen::random_connected_partition(&g, 8, 7);
    println!(
        "sensor field: n = {}, m = {}, regions = {}",
        g.n(),
        g.m(),
        regions.num_parts()
    );

    // Battery levels in tenths of a percent.
    let battery: Vec<u64> = (0..g.n() as u64).map(|v| 200 + (v * 7919) % 800).collect();
    let inst = PaInstance::from_partition(&g, regions.clone(), battery.clone(), Aggregate::Min)
        .expect("regions are connected");

    let (tree, _) = bfs_tree(&g, 0);
    let out = leaderless_pa(&inst, &tree, Variant::Deterministic).expect("leaderless PA solves");

    println!(
        "\ncoarsening iterations: {} (O(log n)); total cost: {} rounds, {} messages\n",
        out.coarsening_iterations, out.result.cost.rounds, out.result.cost.messages
    );
    for p in regions.part_ids() {
        let min_batt = out.result.aggregates[p];
        assert_eq!(min_batt, inst.reference_aggregate(p));
        println!(
            "region {p}: {} sensors, coordinator {} elected, min battery {:.1}%",
            regions.part_size(p),
            out.leaders[p],
            min_batt as f64 / 10.0
        );
    }
    let worst = (0..regions.num_parts())
        .min_by_key(|&p| out.result.aggregates[p])
        .expect("non-empty");
    println!("\nmaintenance visit goes to region {worst}.");
}
