//! Engine session: one `PaEngine` serving a whole workload on one graph.
//!
//! ```text
//! cargo run --example engine_session
//! ```
//!
//! Builds a weighted 12×12 grid and serves three different jobs from a
//! single session — an MST build (Borůvka over PA), its verification
//! (component labeling + spanning-tree checks), and a batch of 16
//! row-wise aggregations — then prints the engine's cache statistics.
//! Leader election and the BFS tree run exactly once, on the first call;
//! everything after that is charged incrementally.

use rmo::apps::mst::pa_mst_with_engine;
use rmo::apps::verify::verify_mst_with_engine;
use rmo::core::{Aggregate, EngineConfig, PaEngine};
use rmo::graph::{gen, Partition};

fn main() {
    let g = gen::grid_weighted(12, 12, 42);
    let mut engine = PaEngine::new(&g, EngineConfig::new());
    println!(
        "PaEngine session on a 12x12 weighted grid (n = {}, m = {})\n",
        g.n(),
        g.m()
    );

    // Job 1: MST via Borůvka over PA — O(log n) phases on the shared tree.
    let mst = pa_mst_with_engine(&mut engine).expect("MST solves");
    println!(
        "MST:          {} edges, total weight {}, {} Boruvka phases, {}",
        mst.edges.len(),
        mst.total_weight,
        mst.phases,
        mst.cost
    );

    // Job 2: verify the tree we just built, on the same session.
    let verdict = verify_mst_with_engine(&mut engine, &mst.edges).expect("verification runs");
    assert!(verdict.holds, "our own MST must verify");
    println!("verify(MST):  holds = {}, {}", verdict.holds, verdict.cost);

    // Job 3: a batch of 16 row-wise aggregations, pipelined in one wave.
    let rows = Partition::new(&g, gen::grid_row_partition(12, 12)).expect("rows connect");
    let sets: Vec<Vec<u64>> = (0..16u64)
        .map(|i| (0..g.n() as u64).map(|v| (v * 13 + i) % 1009).collect())
        .collect();
    let batch = engine
        .solve_batch(&rows, &sets, Aggregate::Min)
        .expect("batch solves");
    println!(
        "batch(16):    {} value sets over {} row parts, {}",
        batch.aggregates.len(),
        rows.num_parts(),
        batch.cost
    );

    // Warm repeat: the same batch again is served from the cache.
    let again = engine
        .solve_batch(&rows, &sets, Aggregate::Min)
        .expect("batch solves");
    println!("batch again:  {} (cache hit, waves only)", again.cost);

    let stats = engine.stats();
    println!(
        "\nEngineStats: {} solves ({} batched), cache {} hits / {} misses / {} evictions, \
         {} partitions cached",
        stats.solves,
        stats.batches,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.cached_partitions
    );
    println!(
        "stage-1 cost (election + BFS, paid once): {}",
        stats.base_cost
    );
}
