//! Domain scenario: estimate every node's eccentricity — and hence the
//! network radius and diameter — without `n` BFS floods, using the
//! k-dominating-set application of Corollary A.3.
//!
//! ```text
//! cargo run --example diameter_probe
//! ```
//!
//! A monitoring service wants per-node "worst-case latency horizon"
//! (eccentricity) on a 600-node topology. Exact answers need `n` BFS
//! floods (`O(nm)` messages); the k-dominating-set estimator does `|S| ≈
//! 6n/k` floods for an additive-`k` answer — meaningful whenever `k` is
//! small against the diameter.

use rmo::apps::eccentricity::approx_eccentricities;
use rmo::graph::{diameter_exact, gen};

fn main() {
    let g = gen::grid(20, 30);
    println!("topology: n = {}, m = {}", g.n(), g.m());

    for k in [4usize, 8, 16] {
        let res = approx_eccentricities(&g, k);
        println!(
            "\nk = {k}: |S| = {} dominators, {} rounds, {} messages",
            res.dominating_set.len(),
            res.cost.rounds,
            res.cost.messages
        );
        println!(
            "  radius estimate {} | diameter estimate {} (each within +{k} of truth)",
            res.radius_estimate, res.diameter_estimate
        );
    }
    let true_diam = diameter_exact(&g);
    println!("\nexact diameter (centralized check): {true_diam}");
}
