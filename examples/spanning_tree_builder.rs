//! Domain scenario: build a minimum spanning tree of a weighted mesh
//! network, the way the paper's Corollary 1.3 does — Borůvka phases, each
//! phase one Part-Wise Aggregation — and compare with the prior-work
//! baseline and the centralized Kruskal oracle.
//!
//! ```text
//! cargo run --example spanning_tree_builder
//! ```
//!
//! The motivating workload: a backbone operator wants the cheapest
//! loop-free overlay of a 2D mesh with per-link costs; each router only
//! knows its incident links (KT0) and the network must both converge fast
//! (rounds) and not melt the control plane (messages).

use rmo::apps::mst::{naive_mst, pa_mst, MstConfig};
use rmo::graph::{gen, reference};

fn main() {
    // A 12x12 mesh with distinct pseudorandom link costs.
    let g = gen::grid_weighted(12, 12, 2024);
    println!("mesh: n = {}, m = {}", g.n(), g.m());

    let smart = pa_mst(&g, &MstConfig::default()).expect("PA MST solves");
    let naive = naive_mst(&g, &MstConfig::default()).expect("naive MST solves");
    let oracle = reference::kruskal(&g);

    assert_eq!(smart.total_weight, oracle.total_weight);
    assert_eq!(naive.total_weight, oracle.total_weight);
    assert_eq!(smart.edges, oracle.edges, "distinct weights: unique MST");

    println!("\nKruskal oracle weight : {}", oracle.total_weight);
    println!(
        "PA Borůvka (paper)    : weight {}, {} phases, {} rounds, {} messages",
        smart.total_weight, smart.phases, smart.cost.rounds, smart.cost.messages
    );
    println!(
        "naive block baseline  : weight {}, {} phases, {} rounds, {} messages",
        naive.total_weight, naive.phases, naive.cost.rounds, naive.cost.messages
    );
    println!(
        "\nmessage ratio naive/PA = {:.2} (grows with the mesh diameter — the\n\
         Figure 2 effect; see `rmo-harness mst` for the full sweep)",
        naive.cost.messages as f64 / smart.cost.messages as f64
    );
}
