//! Quickstart: solve one Part-Wise Aggregation instance end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a 16×16 grid whose rows are the parts, gives every node a
//! value, and runs the full Theorem 1.2 pipeline (leader election, BFS
//! tree, sub-part division, shortcut construction, Algorithm 1) in both
//! the deterministic and the randomized variant, printing the measured
//! round/message costs.

use rmo::core::{solve_pa, Aggregate, PaConfig, PaInstance};
use rmo::graph::gen;

fn main() {
    let g = gen::grid(16, 16);
    let parts = gen::grid_row_partition(16, 16);
    let values: Vec<u64> = (0..g.n() as u64).map(|v| (v * 37) % 1000).collect();
    let inst = PaInstance::new(&g, parts, values, Aggregate::Min)
        .expect("grid rows form a valid PA instance");

    println!("PA on a 16x16 grid, rows as parts, f = min");
    println!("n = {}, m = {}\n", g.n(), g.m());

    for (name, config) in [
        (
            "deterministic (Algorithm 8 + Algorithm 6 + det Algorithm 1)",
            PaConfig::default(),
        ),
        (
            "randomized   (Algorithm 4 + Algorithm 3 + rand Algorithm 1)",
            PaConfig::randomized(42),
        ),
        (
            "trivial      (b = 1, c = sqrt(n) fallback)",
            PaConfig::trivial(7),
        ),
    ] {
        let result = solve_pa(&inst, &config).expect("PA solves");
        // Every node knows its part's aggregate — check against the fold.
        for v in 0..g.n() {
            assert_eq!(result.value_at(v), inst.reference_aggregate_of(v));
        }
        println!(
            "{name}\n  -> {} rounds, {} messages (per-edge capacity x{})",
            result.cost.rounds, result.cost.messages, result.cost.capacity_multiplier
        );
    }
    println!("\nAll three configurations delivered the correct aggregate to all 256 nodes.");
}
