//! Domain scenario: network-health checks on a running topology —
//! approximate min-cut (how fragile is the network?), approximate SSSP
//! (how far is everyone from the control node?), and the verification
//! suite (is the configured overlay actually a spanning tree?).
//!
//! ```text
//! cargo run --example network_health
//! ```

use rmo::apps::mincut::{approx_min_cut, MinCutConfig};
use rmo::apps::sssp::{approx_sssp, SsspConfig};
use rmo::apps::verify::verify_spanning_tree;
use rmo::core::PaConfig;
use rmo::graph::{gen, reference};

fn main() {
    // A datacenter-ish topology: two dense pods joined by a thin link.
    let g = gen::dumbbell(12, 2);
    println!(
        "topology: two 12-node pods, bridge weight 2 (n = {}, m = {})",
        g.n(),
        g.m()
    );

    // 1. Fragility: approximate min cut vs the exact oracle.
    let cut = approx_min_cut(&g, &MinCutConfig::default()).expect("min cut solves");
    let exact = reference::stoer_wagner(&g);
    println!(
        "\nmin cut: approx {} (exact {}) in {} rounds / {} messages",
        cut.weight, exact.weight, cut.cost.rounds, cut.cost.messages
    );
    assert!(cut.weight >= exact.weight);

    // 2. Reach: approximate distances from the control node (node 0).
    let sssp = approx_sssp(&g, 0, &SsspConfig::default()).expect("SSSP solves");
    let truth = reference::dijkstra(&g, 0);
    let max_stretch = (0..g.n())
        .filter(|&v| truth[v] > 0)
        .map(|v| sssp.estimates[v] as f64 / truth[v] as f64)
        .fold(1.0f64, f64::max);
    println!(
        "SSSP: {} clusters, max radius {}, max stretch {:.2}, {} rounds / {} messages",
        sssp.clusters, sssp.max_radius, max_stretch, sssp.cost.rounds, sssp.cost.messages
    );

    // 3. Overlay audit: is the configured control overlay a spanning tree?
    let overlay = reference::kruskal(&g).edges;
    let verdict = verify_spanning_tree(&g, &overlay, &PaConfig::default()).expect("verifies");
    println!(
        "overlay audit: spanning tree = {} ({} rounds / {} messages)",
        verdict.holds, verdict.cost.rounds, verdict.cost.messages
    );
    assert!(verdict.holds);

    println!("\nall three health checks ran on the same PA machinery.");
}
