//! Explore tree-restricted shortcuts interactively: construct them with
//! the Section 1.3 doubling trick on several graph families and print
//! their quality profiles (congestion histogram, blocks per part).
//!
//! ```text
//! cargo run --example shortcut_explorer
//! ```
//!
//! This is the "what does a shortcut actually look like on my network?"
//! tour — the diagnostics a systems person wants before trusting the
//! asymptotics.

use rmo::graph::{bfs_tree, gen, Partition};
use rmo::shortcut::adaptive::estimate_parameters;
use rmo::shortcut::{profile, quality, trivial::trivial_shortcut};

fn explore(name: &str, g: &rmo::graph::Graph, parts: &Partition) {
    let (tree, _) = bfs_tree(g, 0);
    let terminals: Vec<Vec<usize>> = parts
        .part_ids()
        .map(|p| {
            let m = parts.members(p);
            if m.len() == 1 {
                vec![m[0]]
            } else {
                vec![m[0], m[m.len() - 1]]
            }
        })
        .collect();
    println!(
        "\n=== {name}: n = {}, m = {}, depth(T) = {}",
        g.n(),
        g.m(),
        tree.depth()
    );

    let est = estimate_parameters(g, &tree, parts, &terminals)
        .expect("doubling terminates on valid instances");
    println!(
        "doubling stopped at budget {} -> realized (b, c) = ({}, {}) after {} sweeps",
        est.budget, est.block_parameter, est.congestion, est.total_iterations
    );
    let p = profile(g, &tree, parts, &est.shortcut);
    println!(
        "profile: {} direct parts, {} total edge assignments, mean congestion {:.2}",
        p.direct_parts,
        p.total_assignments,
        p.mean_congestion()
    );
    print!("congestion histogram (edges used by c parts): ");
    for (c, &count) in p.congestion_histogram.iter().enumerate() {
        if count > 0 {
            print!("{c}:{count} ");
        }
    }
    println!();

    let triv = trivial_shortcut(g, &tree, parts);
    let qt = quality::measure(g, &tree, parts, &triv);
    println!(
        "trivial fallback for comparison: (b, c) = ({}, {})",
        qt.block_parameter, qt.congestion
    );
}

fn main() {
    let g = gen::grid(12, 12);
    let parts = Partition::new(&g, gen::grid_row_partition(12, 12)).unwrap();
    explore("planar grid, rows as parts", &g, &parts);

    let g = gen::ktree(144, 3, 5);
    let parts = gen::random_connected_partition(&g, 12, 3);
    explore("treewidth-3 k-tree, random regions", &g, &parts);

    let g = gen::grid_with_apex(12, 32);
    let parts = Partition::new(&g, gen::grid_row_partition_with_apex(12, 32)).unwrap();
    explore("Figure 2 apex grid, rows as parts", &g, &parts);

    let g = gen::hypercube(7);
    let parts = gen::random_connected_partition(&g, 11, 9);
    explore("hypercube d=7, random regions", &g, &parts);
}
