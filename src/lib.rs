//! # rmo — Round- and Message-Optimal Distributed Graph Algorithms
//!
//! A Rust reproduction of Haeupler, Hershkowitz and Wajc,
//! *"Round- and Message-Optimal Distributed Graph Algorithms"* (PODC 2018).
//!
//! This facade crate re-exports the full workspace:
//!
//! * [`graph`] — graph representation, generators and sequential reference
//!   algorithms (Kruskal, Dijkstra, Stoer–Wagner, heavy-path decomposition).
//! * [`congest`] — a synchronous CONGEST-model network simulator with exact
//!   round and message accounting.
//! * [`shortcut`] — tree-restricted low-congestion shortcuts: quality
//!   measures, verification, and the paper's randomized (Algorithm 4) and
//!   deterministic (Algorithms 7–8) constructions.
//! * [`core`] — the paper's primary contribution: Part-Wise Aggregation
//!   (Algorithm 1), sub-part divisions (Algorithms 3 and 6), star joinings
//!   (Algorithm 5), `BlockRoute` (Lemma 4.2) and leaderless PA
//!   (Algorithm 9).
//! * [`apps`] — applications: MST, approximate min-cut, approximate SSSP,
//!   connected components, graph verification, k-dominating sets and
//!   connected dominating sets.
//!
//! ## Quickstart
//!
//! One [`core::PaEngine`] session per graph: leader election and the BFS
//! tree run once, and pipeline artifacts are cached per partition, so
//! every further PA call — or application built from PA calls — is
//! charged only its incremental cost:
//!
//! ```rust
//! use rmo::graph::{gen, Partition};
//! use rmo::core::{Aggregate, EngineConfig, PaEngine};
//!
//! // A 16x16 grid, partitioned into its rows.
//! let g = gen::grid(16, 16);
//! let parts = Partition::new(&g, gen::grid_row_partition(16, 16)).unwrap();
//! let values: Vec<u64> = (0..g.n() as u64).collect();
//!
//! let mut engine = PaEngine::new(&g, EngineConfig::new());
//! let result = engine.solve(&parts, &values, Aggregate::Min).unwrap();
//! // Every node of every part now knows its part's minimum value.
//! for v in 0..g.n() {
//!     assert_eq!(result.value_at(v), (v / 16 * 16) as u64);
//! }
//! // Same partition again: served from the artifact cache, waves only.
//! let again = engine.solve(&parts, &values, Aggregate::Min).unwrap();
//! assert!(again.cost.rounds < result.cost.rounds);
//! ```
//!
//! `rmo::core::solve_pa` remains as the one-shot entry point that
//! assembles and tears down the pipeline in a single call.

#![forbid(unsafe_code)]

pub use rmo_apps as apps;
pub use rmo_congest as congest;
pub use rmo_core as core;
pub use rmo_graph as graph;
pub use rmo_shortcut as shortcut;
