//! # rmo — Round- and Message-Optimal Distributed Graph Algorithms
//!
//! A Rust reproduction of Haeupler, Hershkowitz and Wajc,
//! *"Round- and Message-Optimal Distributed Graph Algorithms"* (PODC 2018).
//!
//! This facade crate re-exports the full workspace:
//!
//! * [`graph`] — graph representation, generators and sequential reference
//!   algorithms (Kruskal, Dijkstra, Stoer–Wagner, heavy-path decomposition).
//! * [`congest`] — a synchronous CONGEST-model network simulator with exact
//!   round and message accounting.
//! * [`shortcut`] — tree-restricted low-congestion shortcuts: quality
//!   measures, verification, and the paper's randomized (Algorithm 4) and
//!   deterministic (Algorithms 7–8) constructions.
//! * [`core`] — the paper's primary contribution: Part-Wise Aggregation
//!   (Algorithm 1), sub-part divisions (Algorithms 3 and 6), star joinings
//!   (Algorithm 5), `BlockRoute` (Lemma 4.2) and leaderless PA
//!   (Algorithm 9).
//! * [`apps`] — applications: MST, approximate min-cut, approximate SSSP,
//!   connected components, graph verification, k-dominating sets and
//!   connected dominating sets.
//!
//! ## Quickstart
//!
//! ```rust
//! use rmo::graph::gen;
//! use rmo::core::{PaInstance, Aggregate, solve_pa, PaConfig};
//!
//! // A 16x16 grid, partitioned into its rows.
//! let g = gen::grid(16, 16);
//! let parts = gen::grid_row_partition(16, 16);
//! let values: Vec<u64> = (0..g.n() as u64).collect();
//! let inst = PaInstance::new(&g, parts, values, Aggregate::Min).unwrap();
//! let result = solve_pa(&inst, &PaConfig::default()).unwrap();
//! // Every node of every part now knows its part's minimum value.
//! for v in 0..g.n() {
//!     assert_eq!(result.value_at(v), inst.reference_aggregate_of(v));
//! }
//! ```

pub use rmo_apps as apps;
pub use rmo_congest as congest;
pub use rmo_core as core;
pub use rmo_graph as graph;
pub use rmo_shortcut as shortcut;
