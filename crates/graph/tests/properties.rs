//! Property-based tests of the graph substrate: generators produce what
//! they promise, reference algorithms agree with independent oracles, and
//! structural invariants hold on arbitrary inputs.

use proptest::prelude::*;

use rmo_graph::{
    bfs_distances, bfs_tree, biconnected_components, gen, reference, DisjointSets,
    HeavyPathDecomposition, Partition,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_connected_is_connected_with_exact_m(
        n in 2usize..80,
        extra in 0usize..100,
        seed in 0u64..1000,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.m(), m);
        prop_assert_eq!(g.n(), n);
    }

    #[test]
    fn kruskal_equals_prim_weight(
        n in 2usize..50,
        extra in 0usize..80,
        seed in 0u64..500,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected_weighted(n, m, seed);
        let k = reference::kruskal(&g);
        let p = reference::prim(&g);
        prop_assert_eq!(k.total_weight, p.total_weight);
        prop_assert_eq!(k.edges, p.edges, "distinct weights force a unique MST");
    }

    #[test]
    fn mst_is_acyclic_and_spanning(
        n in 2usize..60,
        extra in 0usize..60,
        seed in 0u64..500,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected_weighted(n, m, seed);
        let mst = reference::kruskal(&g);
        let mut dsu = DisjointSets::new(n);
        for &e in &mst.edges {
            let (u, v) = g.endpoints(e);
            prop_assert!(dsu.union(u, v), "cycle in MST");
        }
        prop_assert_eq!(dsu.set_count(), 1);
    }

    #[test]
    fn dijkstra_satisfies_triangle_inequality(
        n in 2usize..40,
        extra in 0usize..50,
        seed in 0u64..300,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected_weighted(n, m, seed);
        let d = reference::dijkstra(&g, 0);
        for (_, u, v, w) in g.edges() {
            prop_assert!(d[u] <= d[v].saturating_add(w), "edge ({u},{v}) violates relaxation");
            prop_assert!(d[v] <= d[u].saturating_add(w));
        }
        prop_assert_eq!(d[0], 0);
    }

    #[test]
    fn bfs_tree_depth_equals_max_distance(
        n in 2usize..60,
        extra in 0usize..60,
        seed in 0u64..300,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let (tree, dist) = bfs_tree(&g, 0);
        prop_assert_eq!(tree.depth(), *dist.iter().max().unwrap());
        for v in 0..n {
            prop_assert_eq!(tree.depth_of(v), dist[v], "tree depth = BFS distance");
        }
    }

    #[test]
    fn heavy_paths_cross_log_bound(
        n in 2usize..200,
        seed in 0u64..300,
    ) {
        let g = gen::random_spanning_tree(n, seed);
        let (tree, _) = bfs_tree(&g, 0);
        let hpd = HeavyPathDecomposition::new(&tree);
        let bound = (n as f64).log2().floor() as usize + 1;
        for v in 0..n {
            prop_assert!(hpd.paths_on_root_walk(&tree, v) <= bound);
        }
    }

    #[test]
    fn stoer_wagner_cut_weight_is_realized(
        n in 3usize..16,
        extra in 2usize..20,
        seed in 0u64..200,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected_weighted(n, m, seed);
        let cut = reference::stoer_wagner(&g);
        prop_assert_eq!(cut.weight_on(&g), cut.weight);
        let side_size = cut.side.iter().filter(|&&s| s).count();
        prop_assert!(side_size > 0 && side_size < n, "cut must be proper");
    }

    #[test]
    fn bridges_disconnect_bridgeless_edges_dont(
        n in 3usize..30,
        extra in 0usize..20,
        seed in 0u64..200,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let bc = biconnected_components(&g);
        for (e, _, _, _) in g.edges() {
            let keep: Vec<bool> = (0..g.m()).map(|x| x != e).collect();
            let (without, _) = g.edge_subgraph(&keep);
            let disconnects = !without.is_connected();
            prop_assert_eq!(
                bc.bridges.contains(&e),
                disconnects,
                "edge {} bridge classification", e
            );
        }
    }

    #[test]
    fn random_partitions_are_valid_and_cover(
        n in 4usize..80,
        extra in 0usize..60,
        parts_n in 1usize..8,
        seed in 0u64..300,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let p = gen::random_connected_partition(&g, parts_n, seed ^ 5);
        let covered: usize = p.part_ids().map(|i| p.part_size(i)).sum();
        prop_assert_eq!(covered, n);
        // Round-trip through Partition::new revalidates connectivity.
        let p2 = Partition::new(&g, p.assignment().to_vec()).expect("still valid");
        prop_assert_eq!(p2.num_parts(), p.num_parts());
    }

    #[test]
    fn two_sweep_lower_bounds_distances(
        n in 2usize..50,
        extra in 0usize..60,
        seed in 0u64..300,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let lb = rmo_graph::two_sweep_diameter_lower_bound(&g, 0);
        // It really is a lower bound on some true distance.
        let max_from_any: usize = (0..n)
            .map(|v| *bfs_distances(&g, v).iter().max().unwrap())
            .max()
            .unwrap();
        prop_assert!(lb <= max_from_any);
    }
}
