//! Integer math helpers shared across the workspace.
//!
//! The paper's round/phase bounds are all of the form `O(log n)` or
//! `O(√n)`; computing them through `f64` invites truncation-lint noise
//! and (in principle) rounding drift, so every crate uses these exact
//! integer versions instead.

/// `⌈log₂ n⌉` for `n ≥ 1`, computed in integer arithmetic.
///
/// `ceil_log2(1) == 0`, `ceil_log2(2) == 1`, `ceil_log2(3) == 2`.
/// Returns 0 for `n == 0` (callers clamp with `.max(1)`/`.max(2)` when a
/// positive bound is required, matching the paper's `n ≥ 2` convention).
pub fn ceil_log2(n: usize) -> usize {
    let mut k = 0usize;
    let mut pow = 1usize;
    while pow < n {
        k += 1;
        // Saturation keeps the loop total (`usize::MAX >= n` always) and
        // still yields the right exponent at the top of the range.
        pow = pow.saturating_mul(2);
    }
    k
}

/// `⌊√n⌋`, computed in integer arithmetic (exact for every `usize`,
/// unlike a round-trip through `f64` above 2⁵³).
pub fn isqrt(n: usize) -> usize {
    if n < 2 {
        return n;
    }
    // Newton's method on integers converges in O(log log n) steps from
    // any over-estimate; start from a power-of-two bound.
    let mut x = 1usize << ceil_log2(n).div_ceil(2);
    loop {
        let y = (x + n / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

/// `⌈√n⌉`.
pub fn ceil_sqrt(n: usize) -> usize {
    let r = isqrt(n);
    if r * r == n {
        r
    } else {
        r + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_definition() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        for k in 0..40 {
            assert_eq!(ceil_log2(1usize << k), k);
            if k > 0 {
                assert_eq!(ceil_log2((1usize << k) + 1), k + 1);
            }
        }
    }

    #[test]
    fn ceil_log2_matches_float_path() {
        for n in 2..10_000usize {
            let float = (n as f64).log2().ceil() as usize;
            assert_eq!(ceil_log2(n), float, "n = {n}");
        }
    }

    #[test]
    fn isqrt_is_exact() {
        for n in 0..10_000usize {
            let r = isqrt(n);
            assert!(r * r <= n, "n = {n}");
            assert!((r + 1) * (r + 1) > n, "n = {n}");
            let c = ceil_sqrt(n);
            assert!(
                c * c >= n && c.saturating_sub(1).pow(2) < n.max(1),
                "n = {n}"
            );
        }
        assert_eq!(isqrt(usize::MAX), (1usize << 32) - 1);
    }
}
