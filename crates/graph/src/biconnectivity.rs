//! Articulation points, bridges and biconnected components (Hopcroft–
//! Tarjan lowpoint algorithm, iterative).
//!
//! Used as the centralized oracle for the biconnectivity verification
//! problems of Das Sarma et al. (the paper's Corollary A.1 suite, which
//! cites Thurimella's sub-linear algorithms for sparse certificates and
//! biconnected components).

use crate::graph::{EdgeId, Graph, NodeId};

/// Result of the lowpoint computation.
#[derive(Debug, Clone)]
pub struct Biconnectivity {
    /// Articulation points (cut vertices), sorted.
    pub articulation_points: Vec<NodeId>,
    /// Bridge edges (cut edges), sorted.
    pub bridges: Vec<EdgeId>,
    /// `component_of_edge[e]` — biconnected-component id of edge `e`
    /// (`usize::MAX` if the edge's endpoints are in no component, which
    /// cannot happen on valid input).
    pub component_of_edge: Vec<usize>,
    /// Number of biconnected components.
    pub num_components: usize,
}

/// Computes articulation points, bridges and biconnected components.
///
/// Works on any graph (connected or not); isolated vertices belong to no
/// component.
pub fn biconnected_components(g: &Graph) -> Biconnectivity {
    let n = g.n();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent_edge = vec![usize::MAX; n];
    let mut is_articulation = vec![false; n];
    let mut bridges = Vec::new();
    let mut component_of_edge = vec![usize::MAX; g.m()];
    let mut num_components = 0usize;
    let mut timer = 0usize;
    let mut edge_stack: Vec<EdgeId> = Vec::new();

    for start in 0..n {
        if disc[start] != usize::MAX || g.degree(start) == 0 {
            continue;
        }
        // Iterative DFS: stack of (node, iterator index into adjacency).
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        let mut root_children = 0usize;
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let neighbors: Vec<(NodeId, EdgeId)> = g.neighbors(v).collect();
            if *idx < neighbors.len() {
                let (u, e) = neighbors[*idx];
                *idx += 1;
                if e == parent_edge[v] {
                    continue;
                }
                if disc[u] == usize::MAX {
                    // Tree edge.
                    if v == start {
                        root_children += 1;
                    }
                    parent_edge[u] = e;
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    edge_stack.push(e);
                    stack.push((u, 0));
                } else if disc[u] < disc[v] {
                    // Back edge.
                    edge_stack.push(e);
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _)) = stack.last_mut() {
                    low[p] = low[p].min(low[v]);
                    let pe = parent_edge[v];
                    if low[v] >= disc[p] {
                        // p is an articulation point (checked for root
                        // separately below); pop one biconnected component.
                        if p != start || root_children > 1 || low[v] > disc[p] {
                            // root handled after loop; mark non-root cuts
                        }
                        if p != start {
                            is_articulation[p] = true;
                        }
                        let cid = num_components;
                        num_components += 1;
                        while let Some(&top) = edge_stack.last() {
                            edge_stack.pop();
                            component_of_edge[top] = cid;
                            if top == pe {
                                break;
                            }
                        }
                    }
                    if low[v] > disc[p] {
                        bridges.push(pe);
                    }
                }
            }
        }
        if root_children > 1 {
            is_articulation[start] = true;
        }
        // Any leftover edges (shouldn't remain, but be safe).
        if !edge_stack.is_empty() {
            let cid = num_components;
            num_components += 1;
            for e in edge_stack.drain(..) {
                component_of_edge[e] = cid;
            }
        }
    }
    let articulation_points: Vec<NodeId> = (0..n).filter(|&v| is_articulation[v]).collect();
    bridges.sort_unstable();
    Biconnectivity {
        articulation_points,
        bridges,
        component_of_edge,
        num_components,
    }
}

/// Whether a connected graph is 2-edge-connected (bridgeless).
pub fn is_two_edge_connected(g: &Graph) -> bool {
    g.is_connected() && biconnected_components(g).bridges.is_empty()
}

/// Whether a connected graph is biconnected (2-vertex-connected): no
/// articulation points and at least 3 nodes (or a single edge).
pub fn is_biconnected(g: &Graph) -> bool {
    if !g.is_connected() {
        return false;
    }
    if g.n() <= 2 {
        return g.m() >= g.n().saturating_sub(1);
    }
    biconnected_components(g).articulation_points.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_every_internal_node_is_articulation() {
        let g = gen::path(6);
        let b = biconnected_components(&g);
        assert_eq!(b.articulation_points, vec![1, 2, 3, 4]);
        assert_eq!(b.bridges.len(), 5, "every path edge is a bridge");
        assert_eq!(b.num_components, 5, "each edge its own component");
    }

    #[test]
    fn cycle_is_biconnected() {
        let g = gen::cycle(8);
        let b = biconnected_components(&g);
        assert!(b.articulation_points.is_empty());
        assert!(b.bridges.is_empty());
        assert_eq!(b.num_components, 1);
        assert!(is_biconnected(&g));
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn dumbbell_bridge_detected() {
        let g = gen::dumbbell(4, 1);
        let b = biconnected_components(&g);
        let bridge = g.edge_between(3, 4).unwrap();
        assert_eq!(b.bridges, vec![bridge]);
        assert_eq!(b.articulation_points, vec![3, 4]);
        assert_eq!(b.num_components, 3, "two cliques + the bridge");
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn lollipop_articulation() {
        let g = gen::lollipop(5, 4);
        let b = biconnected_components(&g);
        // Node 4 joins clique and tail; tail nodes 5..7 are also cuts.
        assert!(b.articulation_points.contains(&4));
        assert_eq!(b.bridges.len(), 4, "the tail edges");
    }

    #[test]
    fn star_center_is_articulation() {
        let g = gen::star(6);
        let b = biconnected_components(&g);
        assert_eq!(b.articulation_points, vec![0]);
        assert_eq!(b.bridges.len(), 5);
    }

    #[test]
    fn grid_is_two_edge_connected() {
        let g = gen::grid(4, 4);
        assert!(is_two_edge_connected(&g));
        assert!(is_biconnected(&g));
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // 0-1-2-0 and 2-3-4-2: node 2 is the articulation point.
        let g = Graph::from_unweighted_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
            .unwrap();
        let b = biconnected_components(&g);
        assert_eq!(b.articulation_points, vec![2]);
        assert!(b.bridges.is_empty());
        assert_eq!(b.num_components, 2);
        // The two triangles get distinct component ids.
        let c01 = b.component_of_edge[g.edge_between(0, 1).unwrap()];
        let c34 = b.component_of_edge[g.edge_between(3, 4).unwrap()];
        assert_ne!(c01, c34);
    }

    #[test]
    fn single_edge_graph() {
        let g = gen::path(2);
        let b = biconnected_components(&g);
        assert!(b.articulation_points.is_empty());
        assert_eq!(b.bridges, vec![0]);
        assert!(is_biconnected(&g), "K2 counts as biconnected by convention");
    }

    use crate::graph::Graph;

    #[test]
    fn disconnected_graph_handled() {
        let g = Graph::from_unweighted_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let b = biconnected_components(&g);
        assert_eq!(b.num_components, 2);
        assert!(!is_biconnected(&g));
    }
}
