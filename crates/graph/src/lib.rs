//! Graph substrate for the `rmo` workspace.
//!
//! This crate provides everything the distributed algorithms need from the
//! *sequential* world:
//!
//! * [`Graph`] — a compact undirected weighted graph with stable edge ids.
//! * [`RootedTree`] — rooted spanning trees (parent arrays), plus
//!   heavy-path decompositions ([`HeavyPathDecomposition`], used by the
//!   paper's deterministic shortcut construction, Algorithm 8).
//! * Traversals and metrics: [`bfs`], diameters, connectivity.
//! * [`Partition`] — vertex partitions into connected parts, the input
//!   shape of Part-Wise Aggregation (Definition 1.1 of the paper).
//! * Reference (centralized) solvers used as ground truth in tests and
//!   benchmarks: Kruskal MST ([`reference::kruskal`]), Dijkstra
//!   ([`reference::dijkstra`]), Stoer–Wagner min-cut
//!   ([`reference::stoer_wagner`]).
//! * [`gen`] — generators for every graph family the paper's Tables 1–2
//!   discuss (grids/planar, k-trees/treewidth, k-paths/pathwidth, random
//!   graphs) and the adversarial instances of Figure 2.
//!
//! # Example
//!
//! ```rust
//! use rmo_graph::{gen, reference};
//!
//! let g = gen::grid(8, 8);
//! assert_eq!(g.n(), 64);
//! let (tree, _) = rmo_graph::bfs::bfs_tree(&g, 0);
//! assert_eq!(tree.root(), 0);
//! let mst = reference::kruskal(&g);
//! assert_eq!(mst.edges.len(), g.n() - 1);
//! ```

#![forbid(unsafe_code)]

pub mod bfs;
pub mod biconnectivity;
pub mod dot;
pub mod dsu;
pub mod gen;
pub mod graph;
pub mod num;
pub mod partition;
pub mod reference;
pub mod tree;

pub use crate::graph::{EdgeId, Graph, GraphBuilder, GraphError, NodeId};
pub use bfs::{
    bfs_distances, bfs_tree, diameter_exact, eccentricity, two_sweep_diameter_lower_bound,
};
pub use biconnectivity::{
    biconnected_components, is_biconnected, is_two_edge_connected, Biconnectivity,
};
pub use dsu::DisjointSets;
pub use partition::{Partition, PartitionError};
pub use tree::{HeavyPathDecomposition, RootedTree, TreeError};
