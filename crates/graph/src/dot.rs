//! Graphviz DOT export, for eyeballing instances, partitions and
//! shortcuts while debugging.

use std::fmt::Write as _;

use crate::graph::{EdgeId, Graph};
use crate::partition::Partition;

/// Renders `g` as an undirected Graphviz DOT graph.
///
/// * With a [`Partition`], nodes are colored by part (cycled palette) and
///   labelled `v (Pp)`.
/// * `highlight` edges (e.g. an MST, a shortcut's `Hᵢ`) are drawn bold.
///
/// # Example
/// ```rust
/// use rmo_graph::{gen, dot};
/// let g = gen::path(3);
/// let s = dot::to_dot(&g, None, &[]);
/// assert!(s.starts_with("graph g {"));
/// assert!(s.contains("0 -- 1"));
/// ```
pub fn to_dot(g: &Graph, parts: Option<&Partition>, highlight: &[EdgeId]) -> String {
    const PALETTE: [&str; 8] = [
        "lightblue",
        "lightsalmon",
        "palegreen",
        "plum",
        "khaki",
        "lightpink",
        "lightgray",
        "aquamarine",
    ];
    let mut out = String::from("graph g {\n  node [style=filled];\n");
    for v in 0..g.n() {
        match parts {
            Some(p) => {
                let part = p.part_of(v);
                let _ = writeln!(
                    out,
                    "  {v} [label=\"{v} (P{part})\", fillcolor={}];",
                    PALETTE[part % PALETTE.len()]
                );
            }
            None => {
                let _ = writeln!(out, "  {v} [fillcolor=white];");
            }
        }
    }
    let bold: std::collections::HashSet<EdgeId> = highlight.iter().copied().collect();
    for (e, u, v, w) in g.edges() {
        let style = if bold.contains(&e) {
            ", penwidth=3, color=red"
        } else {
            ""
        };
        if w == 1 {
            let _ = writeln!(out, "  {u} -- {v} [{}];", style.trim_start_matches(", "));
        } else {
            let _ = writeln!(out, "  {u} -- {v} [label=\"{w}\"{style}];");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn renders_all_nodes_and_edges() {
        let g = gen::cycle(4);
        let s = to_dot(&g, None, &[]);
        for v in 0..4 {
            assert!(s.contains(&format!("{v} [")), "node {v} missing");
        }
        assert_eq!(s.matches(" -- ").count(), 4);
    }

    #[test]
    fn partition_colors_and_labels() {
        let g = gen::path(4);
        let p = Partition::new(&g, vec![0, 0, 1, 1]).unwrap();
        let s = to_dot(&g, Some(&p), &[]);
        assert!(s.contains("0 (P0)"));
        assert!(s.contains("3 (P1)"));
        assert!(s.contains("lightblue"));
        assert!(s.contains("lightsalmon"));
    }

    #[test]
    fn highlights_are_bold() {
        let g = gen::path(3);
        let s = to_dot(&g, None, &[1]);
        assert!(s.contains("penwidth=3"));
        assert_eq!(s.matches("penwidth=3").count(), 1);
    }

    #[test]
    fn weights_shown_when_nontrivial() {
        let g = crate::graph::Graph::from_edges(2, &[(0, 1, 9)]).unwrap();
        let s = to_dot(&g, None, &[]);
        assert!(s.contains("label=\"9\""));
    }
}
