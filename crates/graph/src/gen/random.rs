//! Seeded random graph generators for the "general graphs" rows of the
//! paper's tables.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, GraphBuilder};

/// A uniformly random spanning tree on `n` nodes via a random Prüfer-like
/// attachment: node `i` attaches to a uniform previous node. All weights 1.
///
/// (Not the uniform spanning-tree distribution, but a simple random tree —
/// what the workloads need is variety, not exact uniformity.)
///
/// # Panics
/// Panics if `n == 0`.
pub fn random_spanning_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "tree needs at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.random_range(0..v);
        b.add_edge(p, v, 1).expect("attachment edges are valid");
    }
    b.build()
}

/// A connected random graph with exactly `m >= n-1` edges: a random
/// spanning tree plus uniformly random extra edges. All weights 1.
///
/// # Panics
/// Panics if `m < n - 1` or `m` exceeds the simple-graph maximum.
pub fn random_connected(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n > 0);
    assert!(m + 1 >= n, "need at least n-1 edges to be connected");
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m, "too many edges for a simple graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.random_range(0..v);
        b.add_edge(p, v, 1).expect("valid");
    }
    while b.m() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v, 1).expect("valid");
        }
    }
    b.build()
}

/// Like [`random_connected`] but with distinct pseudorandom weights
/// (so the MST is unique).
pub fn random_connected_weighted(n: usize, m: usize, seed: u64) -> Graph {
    distinct_weights(&random_connected(n, m, seed), seed ^ 0x9e37_79b9_7f4a_7c15)
}

/// An Erdős–Rényi `G(n, p)` conditioned on connectivity: edges sampled
/// i.i.d., then a random spanning tree patched in over the components if
/// needed. All weights 1.
///
/// # Panics
/// Panics if `p` is not in `[0, 1]` or `n == 0`.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0);
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random::<f64>() < p {
                b.add_edge(u, v, 1).expect("valid");
            }
        }
    }
    // Patch connectivity with a DSU over sampled edges.
    let mut dsu = crate::dsu::DisjointSets::new(n);
    let snapshot = b.clone().build();
    for (_, u, v, _) in snapshot.edges() {
        dsu.union(u, v);
    }
    for v in 1..n {
        if !dsu.same(0, v) {
            // connect v's component to a random node of 0's component
            let mut u = rng.random_range(0..n);
            while !dsu.same(0, u) {
                u = rng.random_range(0..n);
            }
            if !b.has_edge(u, v) {
                b.add_edge(u, v, 1).expect("valid");
            }
            dsu.union(u, v);
        }
    }
    b.build()
}

/// Replaces all weights with a random permutation of `1..=m` — distinct
/// weights, hence a unique MST. Deterministic per seed.
pub fn distinct_weights(g: &Graph, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights: Vec<u64> = (1..=g.m() as u64).collect();
    for i in (1..weights.len()).rev() {
        let j = rng.random_range(0..=i);
        weights.swap(i, j);
    }
    g.reweighted(|e, _| weights[e])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let g = random_spanning_tree(50, seed);
            assert_eq!(g.m(), 49);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn random_connected_has_exact_m() {
        let g = random_connected(30, 60, 11);
        assert_eq!(g.m(), 60);
        assert!(g.is_connected());
    }

    #[test]
    fn random_connected_tree_case() {
        let g = random_connected(10, 9, 0);
        assert_eq!(g.m(), 9);
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "n-1 edges")]
    fn random_connected_rejects_too_few_edges() {
        let _ = random_connected(10, 5, 0);
    }

    #[test]
    fn gnp_always_connected() {
        for seed in 0..5 {
            assert!(gnp_connected(40, 0.02, seed).is_connected());
            assert!(gnp_connected(40, 0.5, seed).is_connected());
        }
    }

    #[test]
    fn distinct_weights_are_distinct() {
        let g = random_connected_weighted(25, 70, 5);
        let mut ws: Vec<u64> = g.edges().map(|(_, _, _, w)| w).collect();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), 70);
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(random_connected(20, 40, 3), random_connected(20, 40, 3));
        assert_eq!(gnp_connected(20, 0.2, 3), gnp_connected(20, 0.2, 3));
    }
}
