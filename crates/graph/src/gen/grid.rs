//! Grid graphs — the planar family of Tables 1–2 — and the apex-grid
//! adversarial instance of Figure 2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, GraphBuilder, NodeId};

/// Node id of grid cell `(row, col)` in a `rows × cols` grid.
pub(crate) fn cell(row: usize, col: usize, cols: usize) -> NodeId {
    row * cols + col
}

/// A `rows × cols` grid graph, all weights 1. Node `(r, c)` is `r*cols + c`.
///
/// Grids are planar (genus 0), so they exercise the paper's
/// `b = O(log D), c = Õ(D)` shortcut regime.
///
/// # Panics
/// Panics if either dimension is 0.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(cell(r, c, cols), cell(r, c + 1, cols), 1)
                    .expect("valid");
            }
            if r + 1 < rows {
                b.add_edge(cell(r, c, cols), cell(r + 1, c, cols), 1)
                    .expect("valid");
            }
        }
    }
    b.build()
}

/// A grid with pseudorandom distinct weights (unique MST), seeded.
pub fn grid_weighted(rows: usize, cols: usize, seed: u64) -> Graph {
    let g = grid(rows, cols);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights: Vec<u64> = (1..=g.m() as u64).collect();
    for i in (1..weights.len()).rev() {
        let j = rng.random_range(0..=i);
        weights.swap(i, j);
    }
    g.reweighted(|e, _| weights[e])
}

/// The Figure 2(a) adversarial instance: a `depth × width` grid plus an
/// apex node `r` adjacent to every node of the top row (row 0).
///
/// The apex is the **last** node id, `depth * width`. With the rows as
/// parts and the columns as a single shortcut block rooted at `r`, naive
/// in-block aggregation costs `Ω(nD)` messages while `m = O(n)` — the
/// paper's motivating bad example.
///
/// # Panics
/// Panics if either dimension is 0.
pub fn grid_with_apex(depth: usize, width: usize) -> Graph {
    assert!(depth > 0 && width > 0, "grid dimensions must be positive");
    let n = depth * width;
    let mut b = GraphBuilder::new(n + 1);
    for r in 0..depth {
        for c in 0..width {
            if c + 1 < width {
                b.add_edge(cell(r, c, width), cell(r, c + 1, width), 1)
                    .expect("valid");
            }
            if r + 1 < depth {
                b.add_edge(cell(r, c, width), cell(r + 1, c, width), 1)
                    .expect("valid");
            }
        }
    }
    for c in 0..width {
        b.add_edge(n, cell(0, c, width), 1).expect("valid");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::diameter_exact;

    #[test]
    fn grid_edge_count() {
        let g = grid(4, 6);
        assert_eq!(g.n(), 24);
        assert_eq!(g.m(), 4 * 5 + 3 * 6);
        assert!(g.is_connected());
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        assert_eq!(diameter_exact(&grid(3, 8)), 2 + 7);
    }

    #[test]
    fn weighted_grid_has_distinct_weights() {
        let g = grid_weighted(4, 4, 1);
        let mut ws: Vec<u64> = g.edges().map(|(_, _, _, w)| w).collect();
        ws.sort_unstable();
        ws.dedup();
        assert_eq!(ws.len(), g.m());
    }

    #[test]
    fn weighted_grid_deterministic_per_seed() {
        assert_eq!(grid_weighted(3, 5, 9), grid_weighted(3, 5, 9));
        assert_ne!(grid_weighted(3, 5, 9), grid_weighted(3, 5, 10));
    }

    #[test]
    fn apex_grid_shape() {
        let g = grid_with_apex(4, 8);
        assert_eq!(g.n(), 33);
        let apex = 32;
        assert_eq!(g.degree(apex), 8);
        // m = grid edges + width apex edges = O(n)
        assert_eq!(g.m(), (4 * 7 + 3 * 8) + 8);
        // apex touches only row 0
        for (v, _) in g.neighbors(apex) {
            assert!(v < 8);
        }
    }

    #[test]
    fn apex_grid_has_small_diameter() {
        // Through the apex, any two nodes are within 2 + 2*depth hops.
        let g = grid_with_apex(3, 20);
        assert!(diameter_exact(&g) <= 2 + 2 * 3);
    }
}
