//! Graph and partition generators.
//!
//! Covers every family the paper's evaluation tables discuss:
//!
//! * basics — [`path`], [`cycle`], [`star`], [`complete`],
//!   [`balanced_binary_tree`] (building blocks and degenerate cases);
//! * planar — [`grid`] and weighted variants (genus 0, the "planar" column
//!   of Tables 1–2);
//! * bounded treewidth / pathwidth — [`ktree`] and [`kpath`];
//! * general graphs — [`random_connected`], [`gnp_connected`];
//! * adversarial — [`grid_with_apex`] (the Figure 2 `Ω(nD)`-message
//!   instance), [`dumbbell`], [`lollipop`];
//! * partitions — [`grid_row_partition`] (Figure 2's rows-as-parts),
//!   [`random_connected_partition`], [`path_blocks`].
//!
//! All randomized generators take an explicit `seed` and are fully
//! deterministic given it.

mod basic;
mod grid;
mod ktree;
mod partitions;
mod random;
mod special;
mod topologies;

pub use basic::{balanced_binary_tree, complete, cycle, path, star};
pub use grid::{grid, grid_weighted, grid_with_apex};
pub use ktree::{kpath, ktree};
pub use partitions::{
    grid_column_partition, grid_row_partition, grid_row_partition_with_apex, path_blocks,
    random_connected_partition,
};
pub use random::{
    distinct_weights, gnp_connected, random_connected, random_connected_weighted,
    random_spanning_tree,
};
pub use special::{broom, dumbbell, lollipop};
pub use topologies::{caterpillar, hypercube, random_regular, torus};
