//! Adversarial / structured instances: dumbbells, lollipops, brooms.
//!
//! These stress particular regimes: dumbbells have an obvious planted min
//! cut; lollipops mix a dense core with a long tail (`D ≈ tail`,
//! `√n ≈ clique`); brooms are the classic BFS-tree congestion offender.

use crate::graph::{Graph, GraphBuilder};

/// Two `k`-cliques joined by a single bridge of the given weight.
/// Clique A is nodes `0..k`, clique B is `k..2k`; the bridge is
/// `(k-1, k)`. Intra-clique edges have weight `bridge_weight + 1` so the
/// bridge is the unique min cut.
///
/// # Panics
/// Panics if `k < 2` or `bridge_weight == 0`.
pub fn dumbbell(k: usize, bridge_weight: u64) -> Graph {
    assert!(k >= 2, "cliques need at least two nodes");
    assert!(bridge_weight > 0, "weights must be positive");
    let heavy = bridge_weight + 1;
    let mut b = GraphBuilder::new(2 * k);
    for base in [0, k] {
        for u in 0..k {
            for v in (u + 1)..k {
                b.add_edge(base + u, base + v, heavy).expect("valid");
            }
        }
    }
    b.add_edge(k - 1, k, bridge_weight).expect("valid");
    b.build()
}

/// A lollipop: a `k`-clique (nodes `0..k`) with a path of `tail` extra
/// nodes hanging off node `k-1`. All weights 1.
///
/// # Panics
/// Panics if `k < 2`.
pub fn lollipop(k: usize, tail: usize) -> Graph {
    assert!(k >= 2, "clique needs at least two nodes");
    let mut b = GraphBuilder::new(k + tail);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u, v, 1).expect("valid");
        }
    }
    let mut prev = k - 1;
    for t in 0..tail {
        b.add_edge(prev, k + t, 1).expect("valid");
        prev = k + t;
    }
    b.build()
}

/// A broom: a path of `handle` nodes whose far end fans out into
/// `bristles` leaves. Node 0 is the free end of the handle. All weights 1.
///
/// # Panics
/// Panics if `handle == 0`.
pub fn broom(handle: usize, bristles: usize) -> Graph {
    assert!(handle >= 1, "broom needs a handle");
    let n = handle + bristles;
    let mut b = GraphBuilder::new(n);
    for i in 0..handle.saturating_sub(1) {
        b.add_edge(i, i + 1, 1).expect("valid");
    }
    for l in 0..bristles {
        b.add_edge(handle - 1, handle + l, 1).expect("valid");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::diameter_exact;

    #[test]
    fn dumbbell_shape() {
        let g = dumbbell(4, 1);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 2 * 6 + 1);
        assert!(g.is_connected());
        assert_eq!(g.weight(g.edge_between(3, 4).unwrap()), 1);
    }

    #[test]
    fn lollipop_diameter() {
        let g = lollipop(5, 10);
        assert_eq!(g.n(), 15);
        assert_eq!(diameter_exact(&g), 11);
    }

    #[test]
    fn broom_shape() {
        let g = broom(6, 8);
        assert_eq!(g.n(), 14);
        assert_eq!(g.m(), 5 + 8);
        assert_eq!(g.degree(5), 1 + 8);
        assert_eq!(diameter_exact(&g), 6, "handle end to any bristle");
    }

    #[test]
    fn broom_single_handle() {
        let g = broom(1, 5);
        assert_eq!(g.n(), 6);
        assert_eq!(g.degree(0), 5);
    }
}
