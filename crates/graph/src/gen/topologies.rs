//! Additional network topologies: tori, hypercubes, random regular
//! (expander-like) graphs and caterpillars.
//!
//! These broaden the benchmark families beyond Tables 1–2: tori and
//! hypercubes are classic interconnects with small diameter; random
//! regular graphs behave like expanders (`D = O(log n)`, where the
//! trivial `√n` shortcut bound is far from the `Õ(D)` ideal and the PA
//! machinery's advantage shows); caterpillars are trees with extreme
//! degree skew.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, GraphBuilder};

/// A `rows × cols` torus: a grid with wrap-around edges. All weights 1.
///
/// # Panics
/// Panics if either dimension is below 3 (wrap-around would create
/// parallel edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
    let cell = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(cell(r, c), cell(r, (c + 1) % cols), 1)
                .expect("valid");
            b.add_edge(cell(r, c), cell((r + 1) % rows, c), 1)
                .expect("valid");
        }
    }
    b.build()
}

/// The `d`-dimensional hypercube on `2^d` nodes. All weights 1.
///
/// # Panics
/// Panics if `d == 0` or `d >= 24` (size guard).
pub fn hypercube(d: u32) -> Graph {
    assert!((1..24).contains(&d), "dimension out of range");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v, u, 1).expect("valid");
            }
        }
    }
    b.build()
}

/// A random `d`-regular-ish connected graph via the configuration model
/// with rejection (self-loops and duplicates dropped, connectivity
/// patched) — expander-like for `d ≥ 3`. All weights 1.
///
/// # Panics
/// Panics if `n < d + 1` or `n * d` is odd.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(n > d, "need n > d");
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Stub list, shuffled and paired.
    let mut stubs: Vec<usize> = (0..n * d).map(|i| i % n).collect();
    for i in (1..stubs.len()).rev() {
        let j = rng.random_range(0..=i);
        stubs.swap(i, j);
    }
    for pair in stubs.chunks(2) {
        let (u, v) = (pair[0], pair[1]);
        if u != v && !b.has_edge(u, v) {
            b.add_edge(u, v, 1).expect("valid");
        }
    }
    // Patch connectivity with a DSU pass.
    let mut dsu = crate::dsu::DisjointSets::new(n);
    let snapshot = b.clone().build();
    for (_, u, v, _) in snapshot.edges() {
        dsu.union(u, v);
    }
    for v in 1..n {
        if !dsu.same(0, v) {
            let mut u = rng.random_range(0..n);
            while !dsu.same(0, u) || u == v || b.has_edge(u, v) {
                u = rng.random_range(0..n);
            }
            b.add_edge(u, v, 1).expect("valid");
            dsu.union(u, v);
        }
    }
    b.build()
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves. Node ids: spine first (`0..spine`), then leaves grouped by
/// spine node. All weights 1.
///
/// # Panics
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1, "caterpillar needs a spine");
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for i in 0..spine.saturating_sub(1) {
        b.add_edge(i, i + 1, 1).expect("valid");
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(s, spine + s * legs + l, 1).expect("valid");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::diameter_exact;

    #[test]
    fn torus_is_regular_degree_4() {
        let g = torus(4, 5);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 40);
        for v in 0..20 {
            assert_eq!(g.degree(v), 4);
        }
        assert!(g.is_connected());
    }

    #[test]
    fn torus_diameter_half_grid() {
        assert_eq!(diameter_exact(&torus(4, 6)), 2 + 3);
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(4);
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        assert_eq!(diameter_exact(&g), 4);
        for v in 0..16 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn random_regular_connected_and_near_regular() {
        for seed in 0..5 {
            let g = random_regular(60, 4, seed);
            assert!(g.is_connected());
            // Configuration model with rejection loses a few edges.
            assert!(g.m() >= 60 * 4 / 2 - 12);
            for v in 0..60 {
                assert!(g.degree(v) >= 1);
            }
        }
    }

    #[test]
    fn random_regular_small_diameter() {
        let g = random_regular(128, 4, 3);
        // Expanders have O(log n) diameter; allow slack.
        assert!(diameter_exact(&g) <= 12);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(5, 3);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 + 15);
        assert_eq!(g.degree(0), 1 + 3);
        assert_eq!(g.degree(2), 2 + 3);
        assert!(g.is_connected());
    }

    #[test]
    fn caterpillar_single_spine() {
        let g = caterpillar(1, 7);
        assert_eq!(g.n(), 8);
        assert_eq!(g.degree(0), 7);
    }
}
