//! Bounded-treewidth and bounded-pathwidth generators.
//!
//! Tables 1–2 of the paper give shortcut parameters `b, c = Õ(t)` for
//! treewidth-`t` graphs and `b, c = p` for pathwidth-`p` graphs. `k`-trees
//! are the canonical maximal graphs of treewidth `k`; the "caterpillar of
//! cliques" [`kpath`] has pathwidth `k`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, GraphBuilder};

/// A random `k`-tree on `n` nodes (treewidth exactly `k` for `n > k`).
///
/// Construction: start from a `(k+1)`-clique, then each new node is joined
/// to a random `k`-clique of the current graph (a random existing node's
/// "bag"). We track bags explicitly so the choice is always a valid clique.
/// All weights 1; deterministic per seed.
///
/// # Panics
/// Panics if `n < k + 1` or `k == 0`.
pub fn ktree(n: usize, k: usize, seed: u64) -> Graph {
    assert!(k >= 1, "k must be positive");
    assert!(n > k, "need at least k+1 nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // bags[i] = a k-clique that node can be attached to
    let mut bags: Vec<Vec<usize>> = Vec::new();
    for u in 0..=k {
        for v in (u + 1)..=k {
            b.add_edge(u, v, 1).expect("seed clique is valid");
        }
    }
    // initial bags: all k-subsets of the seed clique (just take the k+1 leave-one-out sets)
    for omit in 0..=k {
        let bag: Vec<usize> = (0..=k).filter(|&x| x != omit).collect();
        bags.push(bag);
    }
    for v in (k + 1)..n {
        let bag = bags[rng.random_range(0..bags.len())].clone();
        for &u in &bag {
            b.add_edge(u, v, 1).expect("bag attachment is valid");
        }
        // new bags: v together with each (k-1)-subset of bag
        for omit in 0..bag.len() {
            let mut nb: Vec<usize> = bag
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != omit)
                .map(|(_, &x)| x)
                .collect();
            nb.push(v);
            bags.push(nb);
        }
    }
    b.build()
}

/// A "`k`-path": a path of `len` cliques of size `k`, consecutive cliques
/// fully interconnected. Pathwidth is `Θ(k)` and the hop diameter is
/// `Θ(len)`. All weights 1.
///
/// Node `(i, j)` (clique `i`, member `j`) has id `i*k + j`.
///
/// # Panics
/// Panics if `k == 0` or `len == 0`.
pub fn kpath(len: usize, k: usize) -> Graph {
    assert!(k >= 1 && len >= 1, "dimensions must be positive");
    let n = len * k;
    let mut b = GraphBuilder::new(n);
    for i in 0..len {
        // intra-clique edges
        for a in 0..k {
            for c in (a + 1)..k {
                b.add_edge(i * k + a, i * k + c, 1).expect("valid");
            }
        }
        // full join to the next clique
        if i + 1 < len {
            for a in 0..k {
                for c in 0..k {
                    b.add_edge(i * k + a, (i + 1) * k + c, 1).expect("valid");
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::diameter_exact;

    #[test]
    fn ktree_edge_count() {
        // k-tree on n nodes has C(k+1,2) + (n-k-1)*k edges
        let (n, k) = (30, 3);
        let g = ktree(n, k, 1);
        assert_eq!(g.m(), (k + 1) * k / 2 + (n - k - 1) * k);
        assert!(g.is_connected());
    }

    #[test]
    fn ktree_min_degree_at_least_k() {
        let g = ktree(40, 4, 2);
        for v in 0..g.n() {
            assert!(g.degree(v) >= 4, "node {v} has degree < k");
        }
    }

    #[test]
    fn ktree_deterministic() {
        assert_eq!(ktree(25, 2, 7), ktree(25, 2, 7));
    }

    #[test]
    fn ktree_k1_is_tree() {
        let g = ktree(20, 1, 3);
        assert_eq!(g.m(), 19);
        assert!(g.is_connected());
    }

    #[test]
    fn kpath_shape() {
        let g = kpath(10, 3);
        assert_eq!(g.n(), 30);
        assert!(g.is_connected());
        // diameter ~ len (hop through cliques)
        let d = diameter_exact(&g);
        assert!(d >= 9 && d <= 11, "diameter {d} should be about len");
    }

    #[test]
    fn kpath_k1_is_path() {
        let g = kpath(8, 1);
        assert_eq!(g.m(), 7);
        assert_eq!(diameter_exact(&g), 7);
    }
}
