//! Partition generators — the "parts" side of PA instances.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use crate::graph::Graph;
use crate::partition::Partition;

/// Rows-as-parts for a `rows × cols` grid (with or without an apex node as
/// the last id — if the graph has `rows*cols + 1` nodes the apex joins
/// part 0, the top row it neighbors).
///
/// This is exactly the Figure 2 partition: each row is a connected part of
/// diameter `cols - 1`.
pub fn grid_row_partition(rows: usize, cols: usize) -> Vec<usize> {
    let mut assign = Vec::with_capacity(rows * cols + 1);
    for r in 0..rows {
        for _ in 0..cols {
            assign.push(r);
        }
    }
    assign
}

/// Like [`grid_row_partition`] but with an explicit apex joined to row 0.
pub fn grid_row_partition_with_apex(rows: usize, cols: usize) -> Vec<usize> {
    let mut assign = grid_row_partition(rows, cols);
    assign.push(0);
    assign
}

/// Columns-as-parts for a `rows × cols` grid.
pub fn grid_column_partition(rows: usize, cols: usize) -> Vec<usize> {
    let mut assign = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        for c in 0..cols {
            assign.push(c);
        }
    }
    assign
}

/// Partition a path (or any graph whose ids are path-ordered) into
/// consecutive blocks of `block` nodes.
///
/// # Panics
/// Panics if `block == 0`.
pub fn path_blocks(n: usize, block: usize) -> Vec<usize> {
    assert!(block > 0);
    (0..n).map(|v| v / block).collect()
}

/// A random partition of `g` into (at most) `target_parts` connected parts
/// by multi-source BFS from random seeds. Parts that end up empty are
/// dropped and ids compacted, so the result may have fewer parts.
///
/// # Panics
/// Panics if `g` is disconnected, empty, or `target_parts == 0`.
pub fn random_connected_partition(g: &Graph, target_parts: usize, seed: u64) -> Partition {
    assert!(g.n() > 0 && target_parts > 0);
    assert!(
        g.is_connected(),
        "partition growth requires a connected graph"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let k = target_parts.min(g.n());
    let mut assign = vec![usize::MAX; g.n()];
    let mut queue = VecDeque::new();
    let mut chosen = 0;
    while chosen < k {
        let v = rng.random_range(0..g.n());
        if assign[v] == usize::MAX {
            assign[v] = chosen;
            queue.push_back(v);
            chosen += 1;
        }
    }
    while let Some(u) = queue.pop_front() {
        for (v, _) in g.neighbors(u) {
            if assign[v] == usize::MAX {
                assign[v] = assign[u];
                queue.push_back(v);
            }
        }
    }
    // Compact ids (multi-source BFS from distinct seeds leaves none empty,
    // but be defensive).
    let mut remap = vec![usize::MAX; k];
    let mut next = 0;
    for &a in &assign {
        if remap[a] == usize::MAX {
            remap[a] = next;
            next += 1;
        }
    }
    let assign: Vec<usize> = assign.into_iter().map(|a| remap[a]).collect();
    Partition::new(g, assign).expect("BFS growth yields connected parts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{grid, grid_with_apex, path, random_connected};

    #[test]
    fn row_partition_is_valid() {
        let g = grid(4, 6);
        let p = Partition::new(&g, grid_row_partition(4, 6)).unwrap();
        assert_eq!(p.num_parts(), 4);
        for part in p.part_ids() {
            assert_eq!(p.part_size(part), 6);
        }
    }

    #[test]
    fn row_partition_with_apex_is_valid() {
        let g = grid_with_apex(4, 6);
        let p = Partition::new(&g, grid_row_partition_with_apex(4, 6)).unwrap();
        assert_eq!(p.num_parts(), 4);
        assert_eq!(p.part_size(0), 7, "apex joins the top row");
    }

    #[test]
    fn column_partition_is_valid() {
        let g = grid(5, 3);
        let p = Partition::new(&g, grid_column_partition(5, 3)).unwrap();
        assert_eq!(p.num_parts(), 3);
    }

    #[test]
    fn path_blocks_valid() {
        let g = path(10);
        let p = Partition::new(&g, path_blocks(10, 3)).unwrap();
        assert_eq!(p.num_parts(), 4);
        assert_eq!(p.part_size(3), 1);
    }

    #[test]
    fn random_partition_valid_and_deterministic() {
        let g = random_connected(60, 120, 2);
        let p1 = random_connected_partition(&g, 8, 5);
        let p2 = random_connected_partition(&g, 8, 5);
        assert_eq!(p1.assignment(), p2.assignment());
        assert!(p1.num_parts() <= 8);
        assert!(p1.num_parts() >= 1);
    }

    #[test]
    fn random_partition_covers_all_nodes() {
        let g = grid(8, 8);
        let p = random_connected_partition(&g, 5, 1);
        let total: usize = p.part_ids().map(|i| p.part_size(i)).sum();
        assert_eq!(total, 64);
    }
}
