//! Elementary graph shapes: paths, cycles, stars, cliques, balanced trees.

use crate::graph::{Graph, GraphBuilder};

/// A path on `n` nodes: `0 - 1 - … - (n-1)`. All weights 1.
///
/// # Panics
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        b.add_edge(i, i + 1, 1).expect("path edges are valid");
    }
    b.build()
}

/// A cycle on `n >= 3` nodes. All weights 1.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n, 1)
            .expect("cycle edges are valid");
    }
    b.build()
}

/// A star: node 0 is the hub, nodes `1..n` are leaves. All weights 1.
///
/// # Panics
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least two nodes");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v, 1).expect("star edges are valid");
    }
    b.build()
}

/// The complete graph `K_n`. All weights 1.
///
/// # Panics
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete graph needs at least one node");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v, 1).expect("clique edges are valid");
        }
    }
    b.build()
}

/// A complete binary tree with `levels` levels (so `2^levels - 1` nodes),
/// rooted at node 0, children of `v` at `2v+1` and `2v+2`. All weights 1.
///
/// # Panics
/// Panics if `levels == 0` or the node count overflows `usize`.
pub fn balanced_binary_tree(levels: u32) -> Graph {
    assert!(levels > 0, "tree needs at least one level");
    let n = (1usize << levels) - 1;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for c in [2 * v + 1, 2 * v + 2] {
            if c < n {
                b.add_edge(v, c, 1).expect("tree edges are valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_have_expected_sizes() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(star(5).m(), 4);
        assert_eq!(complete(5).m(), 10);
        let t = balanced_binary_tree(4);
        assert_eq!(t.n(), 15);
        assert_eq!(t.m(), 14);
    }

    #[test]
    fn all_shapes_connected() {
        for g in [
            path(7),
            cycle(7),
            star(7),
            complete(7),
            balanced_binary_tree(3),
        ] {
            assert!(g.is_connected());
        }
    }

    #[test]
    fn single_node_path() {
        let g = path(1);
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn star_degrees() {
        let g = star(6);
        assert_eq!(g.degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.degree(v), 1);
        }
    }
}
