//! Disjoint-set union (union–find) with path compression and union by rank.
//!
//! Used by the Kruskal reference MST, by graph generators that must keep
//! track of connectivity, and by tests validating Borůvka merges.

/// A disjoint-set forest over elements `0..n`.
///
/// # Example
/// ```rust
/// use rmo_graph::DisjointSets;
/// let mut d = DisjointSets::new(4);
/// assert!(d.union(0, 1));
/// assert!(d.union(2, 3));
/// assert!(!d.union(1, 0), "already joined");
/// assert_eq!(d.find(0), d.find(1));
/// assert_ne!(d.find(0), d.find(2));
/// assert_eq!(d.set_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> DisjointSets {
        DisjointSets {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x`, with path compression.
    ///
    /// # Panics
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if the sets were distinct (a merge happened).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets currently represented.
    pub fn set_count(&self) -> usize {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_start() {
        let mut d = DisjointSets::new(5);
        assert_eq!(d.set_count(), 5);
        for i in 0..5 {
            assert_eq!(d.find(i), i);
        }
    }

    #[test]
    fn chain_unions_collapse() {
        let mut d = DisjointSets::new(6);
        for i in 0..5 {
            assert!(d.union(i, i + 1));
        }
        assert_eq!(d.set_count(), 1);
        let r = d.find(0);
        for i in 0..6 {
            assert_eq!(d.find(i), r);
        }
    }

    #[test]
    fn union_is_idempotent() {
        let mut d = DisjointSets::new(3);
        assert!(d.union(0, 2));
        assert!(!d.union(2, 0));
        assert_eq!(d.set_count(), 2);
    }

    #[test]
    fn same_reflects_unions() {
        let mut d = DisjointSets::new(4);
        assert!(!d.same(0, 3));
        d.union(0, 1);
        d.union(1, 3);
        assert!(d.same(0, 3));
        assert!(!d.same(0, 2));
    }

    #[test]
    fn empty_is_empty() {
        let d = DisjointSets::new(0);
        assert!(d.is_empty());
        assert_eq!(d.set_count(), 0);
    }
}
