//! Centralized reference solvers used as ground truth.
//!
//! The distributed algorithms in this workspace are validated against
//! classical sequential algorithms: Kruskal and Prim for MST, Dijkstra for
//! shortest paths, and Stoer–Wagner for global min-cut. These are the
//! "oracle" side of every correctness test and the quality denominator in
//! the approximate min-cut and SSSP experiments.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dsu::DisjointSets;
use crate::graph::{EdgeId, Graph, NodeId};

/// An MST result: chosen edge ids and the total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MstResult {
    /// Edge ids of the spanning tree, sorted ascending.
    pub edges: Vec<EdgeId>,
    /// Sum of the chosen edges' weights.
    pub total_weight: u64,
}

/// Kruskal's MST. Ties are broken by edge id, making the result
/// deterministic and — when weights are distinct — unique.
///
/// # Panics
/// Panics if `g` is disconnected (an MST then does not exist).
///
/// # Example
/// ```rust
/// use rmo_graph::{Graph, reference};
/// let g = Graph::from_edges(3, &[(0, 1, 3), (1, 2, 1), (0, 2, 2)]).unwrap();
/// let mst = reference::kruskal(&g);
/// assert_eq!(mst.total_weight, 3);
/// assert_eq!(mst.edges, vec![1, 2]);
/// ```
pub fn kruskal(g: &Graph) -> MstResult {
    let mut order: Vec<EdgeId> = (0..g.m()).collect();
    order.sort_by_key(|&e| (g.weight(e), e));
    let mut dsu = DisjointSets::new(g.n());
    let mut edges = Vec::with_capacity(g.n().saturating_sub(1));
    let mut total = 0u64;
    for e in order {
        let (u, v) = g.endpoints(e);
        if dsu.union(u, v) {
            edges.push(e);
            total += g.weight(e);
        }
    }
    assert_eq!(
        edges.len(),
        g.n().saturating_sub(1),
        "kruskal requires a connected graph"
    );
    edges.sort_unstable();
    MstResult {
        edges,
        total_weight: total,
    }
}

/// Prim's MST from node 0, used as a second, independently-coded oracle so
/// MST tests cross-check two references against each other.
///
/// # Panics
/// Panics if `g` is disconnected or empty.
pub fn prim(g: &Graph) -> MstResult {
    assert!(g.n() > 0, "prim requires a non-empty graph");
    let mut in_tree = vec![false; g.n()];
    let mut heap: BinaryHeap<Reverse<(u64, EdgeId, NodeId)>> = BinaryHeap::new();
    in_tree[0] = true;
    for (v, e) in g.neighbors(0) {
        heap.push(Reverse((g.weight(e), e, v)));
    }
    let mut edges = Vec::new();
    let mut total = 0u64;
    while let Some(Reverse((w, e, v))) = heap.pop() {
        if in_tree[v] {
            continue;
        }
        in_tree[v] = true;
        edges.push(e);
        total += w;
        for (u, f) in g.neighbors(v) {
            if !in_tree[u] {
                heap.push(Reverse((g.weight(f), f, u)));
            }
        }
    }
    assert_eq!(edges.len(), g.n() - 1, "prim requires a connected graph");
    edges.sort_unstable();
    MstResult {
        edges,
        total_weight: total,
    }
}

/// Dijkstra single-source shortest paths over edge weights.
///
/// Returns `dist[v] = d(source, v)`, with `u64::MAX` for unreachable nodes.
///
/// # Example
/// ```rust
/// use rmo_graph::{Graph, reference};
/// let g = Graph::from_edges(3, &[(0, 1, 5), (1, 2, 5), (0, 2, 20)]).unwrap();
/// assert_eq!(reference::dijkstra(&g, 0), vec![0, 5, 10]);
/// ```
pub fn dijkstra(g: &Graph, source: NodeId) -> Vec<u64> {
    let mut dist = vec![u64::MAX; g.n()];
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    dist[source] = 0;
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for (v, e) in g.neighbors(u) {
            let nd = d.saturating_add(g.weight(e));
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// A global min-cut: the cut weight and one side of the partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutResult {
    /// Total weight crossing the cut.
    pub weight: u64,
    /// Nodes on one side (`true` = in `S`).
    pub side: Vec<bool>,
}

impl CutResult {
    /// Recomputes the weight of this cut on `g` (sanity utility for tests).
    pub fn weight_on(&self, g: &Graph) -> u64 {
        g.edges()
            .filter(|&(_, u, v, _)| self.side[u] != self.side[v])
            .map(|(_, _, _, w)| w)
            .sum()
    }
}

/// Stoer–Wagner global minimum cut, `O(n³)` with adjacency matrices —
/// intended for test- and benchmark-sized graphs.
///
/// # Panics
/// Panics if `g` has fewer than 2 nodes or is disconnected.
pub fn stoer_wagner(g: &Graph) -> CutResult {
    assert!(g.n() >= 2, "min cut needs at least two nodes");
    assert!(g.is_connected(), "stoer_wagner requires a connected graph");
    let n = g.n();
    let mut w = vec![vec![0u64; n]; n];
    for (_, u, v, wt) in g.edges() {
        w[u][v] += wt;
        w[v][u] += wt;
    }
    // merged[v]: the original nodes currently contracted into v.
    let mut merged: Vec<Vec<NodeId>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best_weight = u64::MAX;
    let mut best_side: Vec<bool> = Vec::new();

    while active.len() > 1 {
        // Maximum-adjacency ordering ("minimum cut phase").
        let mut in_a = vec![false; n];
        let mut weight_to_a = vec![0u64; n];
        let mut order = Vec::with_capacity(active.len());
        for _ in 0..active.len() {
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| weight_to_a[v])
                .expect("some active node remains");
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    weight_to_a[v] += w[next][v];
                }
            }
        }
        let t = *order.last().unwrap();
        let s = order[order.len() - 2];
        let cut_of_phase = weight_to_a[t];
        if cut_of_phase < best_weight {
            best_weight = cut_of_phase;
            let mut side = vec![false; n];
            for &orig in &merged[t] {
                side[orig] = true;
            }
            best_side = side;
        }
        // Contract t into s.
        let t_merged = std::mem::take(&mut merged[t]);
        merged[s].extend(t_merged);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }
    CutResult {
        weight: best_weight,
        side: best_side,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn kruskal_and_prim_agree_on_weight() {
        let g = gen::grid_weighted(5, 5, 42);
        let k = kruskal(&g);
        let p = prim(&g);
        assert_eq!(k.total_weight, p.total_weight);
        assert_eq!(k.edges.len(), g.n() - 1);
    }

    #[test]
    fn kruskal_unique_with_distinct_weights() {
        // Distinct weights => unique MST => both algorithms pick identical edges.
        let g = gen::random_connected_weighted(40, 120, 7);
        let k = kruskal(&g);
        let p = prim(&g);
        assert_eq!(k.edges, p.edges);
    }

    #[test]
    fn mst_of_tree_is_itself() {
        let g = gen::balanced_binary_tree(4);
        let k = kruskal(&g);
        assert_eq!(k.edges.len(), g.m());
    }

    #[test]
    fn dijkstra_on_weighted_triangle() {
        let g = Graph::from_edges(3, &[(0, 1, 10), (1, 2, 10), (0, 2, 15)]).unwrap();
        assert_eq!(dijkstra(&g, 0), vec![0, 10, 15]);
    }

    use crate::graph::Graph;

    #[test]
    fn dijkstra_unreachable_is_max() {
        let g = Graph::from_edges(3, &[(0, 1, 1)]).unwrap();
        assert_eq!(dijkstra(&g, 0)[2], u64::MAX);
    }

    #[test]
    fn stoer_wagner_on_dumbbell() {
        // Two K4s joined by a single light edge: min cut is that bridge.
        let g = gen::dumbbell(4, 1);
        let cut = stoer_wagner(&g);
        assert_eq!(cut.weight, 1);
        assert_eq!(cut.weight_on(&g), 1);
        let left: usize = cut.side.iter().filter(|&&s| s).count();
        assert_eq!(left, 4, "one clique on each side");
    }

    #[test]
    fn stoer_wagner_on_cycle_is_two() {
        let g = gen::cycle(8);
        assert_eq!(stoer_wagner(&g).weight, 2);
    }

    #[test]
    fn stoer_wagner_matches_brute_force_small() {
        let g = gen::random_connected_weighted(9, 16, 3);
        let sw = stoer_wagner(&g);
        // brute force over all 2^(n-1) bipartitions
        let n = g.n();
        let mut best = u64::MAX;
        for mask in 1..(1usize << (n - 1)) {
            let weight: u64 = g
                .edges()
                .filter(|&(_, u, v, _)| {
                    let su = u != 0 && (mask >> (u - 1)) & 1 == 1;
                    let sv = v != 0 && (mask >> (v - 1)) & 1 == 1;
                    su != sv
                })
                .map(|(_, _, _, w)| w)
                .sum();
            best = best.min(weight);
        }
        assert_eq!(sw.weight, best);
    }
}
