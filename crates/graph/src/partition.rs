//! Vertex partitions into connected parts — the input shape of Part-Wise
//! Aggregation (Definition 1.1).
//!
//! A [`Partition`] assigns every node to exactly one part and certifies
//! that each part induces a connected subgraph, which the paper requires
//! of PA instances.

use std::collections::VecDeque;
use std::fmt;

use crate::graph::{Graph, NodeId};

/// Errors when constructing a [`Partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The assignment array length differed from the graph's node count.
    LengthMismatch { expected: usize, got: usize },
    /// Part ids were not dense `0..num_parts`.
    NonDenseParts { missing: usize },
    /// A part did not induce a connected subgraph.
    DisconnectedPart { part: usize },
    /// The partition was empty but the graph was not.
    Empty,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "assignment length {got} does not match node count {expected}"
                )
            }
            PartitionError::NonDenseParts { missing } => {
                write!(f, "part id {missing} has no members (ids must be dense)")
            }
            PartitionError::DisconnectedPart { part } => {
                write!(f, "part {part} does not induce a connected subgraph")
            }
            PartitionError::Empty => write!(f, "partition of a non-empty graph is empty"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// A partition of a graph's vertex set into connected parts.
///
/// # Example
/// ```rust
/// use rmo_graph::{gen, Partition};
/// let g = gen::path(6);
/// let p = Partition::new(&g, vec![0, 0, 0, 1, 1, 1]).unwrap();
/// assert_eq!(p.num_parts(), 2);
/// assert_eq!(p.part_of(4), 1);
/// assert_eq!(p.members(0), &[0, 1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    part_of: Vec<usize>,
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Builds and validates a partition from a per-node part assignment.
    ///
    /// Part ids must be dense (`0..num_parts`, each non-empty) and every
    /// part must induce a connected subgraph of `g`.
    ///
    /// # Errors
    /// Returns [`PartitionError`] describing the first violated condition.
    pub fn new(g: &Graph, part_of: Vec<usize>) -> Result<Partition, PartitionError> {
        if part_of.len() != g.n() {
            return Err(PartitionError::LengthMismatch {
                expected: g.n(),
                got: part_of.len(),
            });
        }
        if g.n() == 0 {
            return Ok(Partition {
                part_of,
                members: Vec::new(),
            });
        }
        let num_parts = part_of.iter().copied().max().map_or(0, |mx| mx + 1);
        if num_parts == 0 {
            return Err(PartitionError::Empty);
        }
        let mut members = vec![Vec::new(); num_parts];
        for (v, &p) in part_of.iter().enumerate() {
            members[p].push(v);
        }
        if let Some(missing) = members.iter().position(|m| m.is_empty()) {
            return Err(PartitionError::NonDenseParts { missing });
        }
        // Connectivity of each induced subgraph via BFS restricted to the part.
        let mut seen = vec![false; g.n()];
        for (pid, mem) in members.iter().enumerate() {
            let start = mem[0];
            let mut q = VecDeque::from([start]);
            seen[start] = true;
            let mut count = 1;
            while let Some(u) = q.pop_front() {
                for (v, _) in g.neighbors(u) {
                    if part_of[v] == pid && !seen[v] {
                        seen[v] = true;
                        count += 1;
                        q.push_back(v);
                    }
                }
            }
            if count != mem.len() {
                return Err(PartitionError::DisconnectedPart { part: pid });
            }
        }
        Ok(Partition { part_of, members })
    }

    /// The singleton partition: every node its own part.
    pub fn singletons(g: &Graph) -> Partition {
        Partition::new(g, (0..g.n()).collect()).expect("singletons are always connected")
    }

    /// The trivial partition: all nodes in one part (graph must be connected).
    ///
    /// # Errors
    /// Returns [`PartitionError::DisconnectedPart`] if `g` is disconnected.
    pub fn whole(g: &Graph) -> Result<Partition, PartitionError> {
        Partition::new(g, vec![0; g.n()])
    }

    /// Number of parts `N`.
    pub fn num_parts(&self) -> usize {
        self.members.len()
    }

    /// Part id of node `v`.
    pub fn part_of(&self, v: NodeId) -> usize {
        self.part_of[v]
    }

    /// Members of part `p`, in increasing node order.
    pub fn members(&self, p: usize) -> &[NodeId] {
        &self.members[p]
    }

    /// Size of part `p`.
    pub fn part_size(&self, p: usize) -> usize {
        self.members[p].len()
    }

    /// The per-node assignment array.
    pub fn assignment(&self) -> &[usize] {
        &self.part_of
    }

    /// Size of the largest part.
    pub fn max_part_size(&self) -> usize {
        self.members.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether nodes `u` and `v` share a part.
    pub fn same_part(&self, u: NodeId, v: NodeId) -> bool {
        self.part_of[u] == self.part_of[v]
    }

    /// Iterator over part ids.
    pub fn part_ids(&self) -> std::ops::Range<usize> {
        0..self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn valid_partition_accepted() {
        let g = gen::cycle(6);
        let p = Partition::new(&g, vec![0, 0, 1, 1, 2, 2]).unwrap();
        assert_eq!(p.num_parts(), 3);
        assert!(p.same_part(0, 1));
        assert!(!p.same_part(1, 2));
        assert_eq!(p.max_part_size(), 2);
    }

    #[test]
    fn disconnected_part_rejected() {
        let g = gen::path(4); // 0-1-2-3
        let err = Partition::new(&g, vec![0, 1, 0, 1]).unwrap_err();
        assert!(matches!(err, PartitionError::DisconnectedPart { .. }));
    }

    #[test]
    fn non_dense_rejected() {
        let g = gen::path(3);
        let err = Partition::new(&g, vec![0, 0, 2]).unwrap_err();
        assert_eq!(err, PartitionError::NonDenseParts { missing: 1 });
    }

    #[test]
    fn length_mismatch_rejected() {
        let g = gen::path(3);
        let err = Partition::new(&g, vec![0, 0]).unwrap_err();
        assert_eq!(
            err,
            PartitionError::LengthMismatch {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn singletons_and_whole() {
        let g = gen::grid(3, 3);
        let s = Partition::singletons(&g);
        assert_eq!(s.num_parts(), 9);
        let w = Partition::whole(&g).unwrap();
        assert_eq!(w.num_parts(), 1);
        assert_eq!(w.part_size(0), 9);
    }

    #[test]
    fn whole_rejects_disconnected() {
        let g = Graph::from_unweighted_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(Partition::whole(&g).is_err());
    }

    use crate::graph::Graph;

    #[test]
    fn members_sorted_and_complete() {
        let g = gen::path(5);
        let p = Partition::new(&g, vec![1, 1, 0, 0, 0]).unwrap();
        assert_eq!(p.members(0), &[2, 3, 4]);
        assert_eq!(p.members(1), &[0, 1]);
        let total: usize = p.part_ids().map(|i| p.part_size(i)).sum();
        assert_eq!(total, 5);
    }
}
