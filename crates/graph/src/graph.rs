//! Compact undirected weighted graph with stable edge identifiers.
//!
//! The CONGEST simulator, the shortcut machinery and the reference solvers
//! all share this one representation. Nodes are dense indices `0..n`
//! ([`NodeId`]); edges are dense indices `0..m` ([`EdgeId`]) in insertion
//! order, each carrying a `u64` weight (weights default to 1 for
//! unweighted uses). Parallel edges and self-loops are rejected: the
//! paper's model is a simple graph.

use std::collections::HashSet;
use std::fmt;

/// Dense node identifier, `0..n`.
pub type NodeId = usize;
/// Dense edge identifier, `0..m`, in insertion order.
pub type EdgeId = usize;

/// Errors produced while building or validating a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    NodeOutOfRange { node: NodeId, n: usize },
    /// A self-loop `(u, u)` was added.
    SelfLoop { node: NodeId },
    /// The same undirected edge was added twice.
    DuplicateEdge { u: NodeId, v: NodeId },
    /// An operation required a connected graph but the graph was not.
    Disconnected,
    /// An edge weight of zero was supplied (weights must be in `[1, poly(n)]`).
    ZeroWeight { u: NodeId, v: NodeId },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::ZeroWeight { u, v } => write!(f, "zero weight on edge ({u}, {v})"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected, weighted, simple graph.
///
/// Construct via [`GraphBuilder`] or the convenience constructor
/// [`Graph::from_edges`]. Adjacency is stored as, for each node, a list of
/// `(neighbor, edge_id)` pairs, so algorithms can address "the message I
/// received over edge e" the way CONGEST algorithms do.
///
/// # Example
/// ```rust
/// use rmo_graph::Graph;
/// let g = Graph::from_edges(3, &[(0, 1, 5), (1, 2, 7)]).unwrap();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.weight(0), 5);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<(NodeId, NodeId, u64)>,
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Builds a graph with `n` nodes from `(u, v, weight)` triples.
    ///
    /// # Errors
    /// Returns [`GraphError`] on out-of-range endpoints, self-loops,
    /// duplicate edges or zero weights.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId, u64)]) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(n);
        for &(u, v, w) in edges {
            b.add_edge(u, v, w)?;
        }
        Ok(b.build())
    }

    /// Builds an unweighted graph (all weights 1) from `(u, v)` pairs.
    ///
    /// # Errors
    /// Same conditions as [`Graph::from_edges`].
    pub fn from_unweighted_edges(
        n: usize,
        edges: &[(NodeId, NodeId)],
    ) -> Result<Graph, GraphError> {
        let weighted: Vec<(NodeId, NodeId, u64)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
        Graph::from_edges(n, &weighted)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Endpoints of edge `e` as stored (insertion order).
    ///
    /// # Panics
    /// Panics if `e >= m`.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let (u, v, _) = self.edges[e];
        (u, v)
    }

    /// Weight of edge `e`.
    ///
    /// # Panics
    /// Panics if `e >= m`.
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.edges[e].2
    }

    /// The endpoint of edge `e` that is not `u`.
    ///
    /// # Panics
    /// Panics if `u` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, u: NodeId) -> NodeId {
        let (a, b, _) = self.edges[e];
        if a == u {
            b
        } else {
            assert_eq!(b, u, "node {u} is not an endpoint of edge {e}");
            a
        }
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Iterator over `(neighbor, edge_id)` pairs of `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adj[v].iter().copied()
    }

    /// Iterator over all edges as `(edge_id, u, v, weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, u64)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .map(|(e, &(u, v, w))| (e, u, v, w))
    }

    /// The edge id joining `u` and `v`, if one exists.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adj[u].iter().find(|&&(w, _)| w == v).map(|&(_, e)| e)
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for (v, _) in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> u64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Returns a copy of the graph with all weights replaced by `f(edge_id, weight)`.
    ///
    /// Useful for the min-cut sampling reductions which repeatedly re-weight.
    ///
    /// # Panics
    /// Panics if `f` returns 0 for some edge.
    pub fn reweighted(&self, mut f: impl FnMut(EdgeId, u64) -> u64) -> Graph {
        let mut g = self.clone();
        for (e, edge) in g.edges.iter_mut().enumerate() {
            edge.2 = f(e, edge.2);
            assert!(edge.2 > 0, "reweighted edge {e} to zero");
        }
        g
    }

    /// Returns the subgraph induced by keeping only edges with `keep[e]`,
    /// preserving node ids. Edge ids are re-assigned densely; the mapping
    /// from new edge id to old edge id is returned alongside.
    pub fn edge_subgraph(&self, keep: &[bool]) -> (Graph, Vec<EdgeId>) {
        assert_eq!(keep.len(), self.m());
        let mut b = GraphBuilder::new(self.n);
        let mut map = Vec::new();
        for (e, u, v, w) in self.edges() {
            if keep[e] {
                b.add_edge(u, v, w)
                    .expect("subgraph of a valid graph is valid");
                map.push(e);
            }
        }
        (b.build(), map)
    }
}

/// Incremental builder for [`Graph`].
///
/// # Example
/// ```rust
/// use rmo_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1, 1).unwrap();
/// b.add_edge(1, 2, 2).unwrap();
/// b.add_edge(2, 3, 3).unwrap();
/// let g = b.build();
/// assert_eq!(g.m(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId, u64)>,
    seen: HashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes and no edges.
    pub fn new(n: usize) -> GraphBuilder {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Adds the undirected edge `(u, v)` with the given weight.
    ///
    /// # Errors
    /// Rejects out-of-range endpoints, self-loops, duplicates and zero
    /// weights.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: u64) -> Result<EdgeId, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if weight == 0 {
            return Err(GraphError::ZeroWeight { u, v });
        }
        let key = (u.min(v), u.max(v));
        if !self.seen.insert(key) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        let id = self.edges.len();
        self.edges.push((u, v, weight));
        Ok(id)
    }

    /// Whether the undirected edge `(u, v)` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.seen.contains(&(u.min(v), u.max(v)))
    }

    /// Number of edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the builder into a [`Graph`].
    pub fn build(self) -> Graph {
        let mut adj = vec![Vec::new(); self.n];
        for (e, &(u, v, _)) in self.edges.iter().enumerate() {
            adj[u].push((v, e));
            adj[v].push((u, e));
        }
        Graph {
            n: self.n,
            edges: self.edges,
            adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, &[(0, 1, 2), (1, 2, 3), (2, 3, 4), (3, 0, 5)]).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.endpoints(1), (1, 2));
        assert_eq!(g.weight(3), 5);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.other_endpoint(0, 0), 1);
        assert_eq!(g.other_endpoint(0, 1), 0);
        assert!(g.is_connected());
        assert_eq!(g.total_weight(), 14);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1, 1)]).unwrap_err(),
            GraphError::SelfLoop { node: 1 }
        );
    }

    #[test]
    fn rejects_duplicate_even_reversed() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        assert_eq!(
            b.add_edge(1, 0, 9).unwrap_err(),
            GraphError::DuplicateEdge { u: 1, v: 0 }
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 5, 1)]).unwrap_err(),
            GraphError::NodeOutOfRange { node: 5, n: 2 }
        );
    }

    #[test]
    fn rejects_zero_weight() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 1, 0)]).unwrap_err(),
            GraphError::ZeroWeight { u: 0, v: 1 }
        );
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.n(), 0);
    }

    #[test]
    fn single_node_is_connected() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn edge_between_finds_edge() {
        let g = Graph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]).unwrap();
        assert_eq!(g.edge_between(0, 1), Some(0));
        assert_eq!(g.edge_between(1, 0), Some(0));
        assert_eq!(g.edge_between(0, 2), None);
    }

    #[test]
    fn edge_subgraph_keeps_mapping() {
        let g = Graph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3)]).unwrap();
        let (sub, map) = g.edge_subgraph(&[true, false, true]);
        assert_eq!(sub.m(), 2);
        assert_eq!(map, vec![0, 2]);
        assert_eq!(sub.weight(1), 3);
        assert_eq!(sub.endpoints(1), (2, 3));
    }

    #[test]
    fn reweighted_changes_weights() {
        let g = Graph::from_edges(3, &[(0, 1, 2), (1, 2, 4)]).unwrap();
        let g2 = g.reweighted(|_, w| w * 10);
        assert_eq!(g2.weight(0), 20);
        assert_eq!(g2.weight(1), 40);
        assert_eq!(g.weight(0), 2, "original untouched");
    }
}
