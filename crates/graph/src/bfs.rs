//! Breadth-first traversals, distances and diameter computations.
//!
//! The paper's round bounds are all phrased in terms of the hop diameter
//! `D`; this module supplies exact diameters for test-sized graphs and a
//! two-sweep lower bound for larger benchmark instances.

use std::collections::VecDeque;

use crate::graph::{Graph, NodeId};
use crate::tree::RootedTree;

/// Hop distances from `source` to every node (`usize::MAX` if unreachable).
///
/// # Example
/// ```rust
/// use rmo_graph::{gen, bfs_distances};
/// let g = gen::path(5);
/// assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
/// ```
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut q = VecDeque::new();
    dist[source] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        for (v, _) in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// A BFS tree rooted at `source`, together with the hop distances.
///
/// Ties between candidate parents are broken toward the smaller node id,
/// matching the deterministic tie-breaking the simulator programs use, so
/// that sequential and simulated BFS trees agree in tests.
///
/// # Panics
/// Panics if the graph is disconnected (every algorithm in the paper
/// assumes a connected network).
pub fn bfs_tree(g: &Graph, source: NodeId) -> (RootedTree, Vec<usize>) {
    let n = g.n();
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut parent_edge = vec![usize::MAX; n];
    let mut q = VecDeque::new();
    dist[source] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let mut nbrs: Vec<_> = g.neighbors(u).collect();
        nbrs.sort_unstable();
        for (v, e) in nbrs {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = u;
                parent_edge[v] = e;
                q.push_back(v);
            }
        }
    }
    assert!(
        dist.iter().all(|&d| d != usize::MAX),
        "bfs_tree requires a connected graph"
    );
    let tree = RootedTree::from_parents(source, parent, parent_edge)
        .expect("BFS parents form a valid rooted tree");
    (tree, dist)
}

/// Eccentricity of `v`: the maximum hop distance from `v` to any node.
///
/// # Panics
/// Panics if the graph is disconnected.
pub fn eccentricity(g: &Graph, v: NodeId) -> usize {
    let dist = bfs_distances(g, v);
    let ecc = dist.iter().copied().max().unwrap_or(0);
    assert_ne!(ecc, usize::MAX, "eccentricity requires a connected graph");
    ecc
}

/// Exact hop diameter via one BFS per node — `O(nm)`, for test-sized graphs.
///
/// # Panics
/// Panics if the graph is disconnected or empty.
pub fn diameter_exact(g: &Graph) -> usize {
    assert!(g.n() > 0, "diameter of an empty graph is undefined");
    (0..g.n()).map(|v| eccentricity(g, v)).max().unwrap()
}

/// Two-sweep diameter lower bound: BFS from `start`, then BFS from the
/// farthest node found. Exact on trees; a lower bound in general. Cheap
/// enough for benchmark-sized graphs.
pub fn two_sweep_diameter_lower_bound(g: &Graph, start: NodeId) -> usize {
    let d1 = bfs_distances(g, start);
    let (far, _) = d1
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .expect("non-empty graph");
    let d2 = bfs_distances(g, far);
    d2.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_distances() {
        let g = gen::path(6);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(bfs_distances(&g, 3), vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_is_max() {
        let g = Graph::from_unweighted_edges(3, &[(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn bfs_tree_on_cycle() {
        let g = gen::cycle(6);
        let (t, dist) = bfs_tree(&g, 0);
        assert_eq!(t.root(), 0);
        assert_eq!(dist, vec![0, 1, 2, 3, 2, 1]);
        assert_eq!(t.depth_of(3), 3);
        // parents point strictly closer to the root
        for v in 1..6 {
            assert_eq!(dist[t.parent_of(v).unwrap()], dist[v] - 1);
        }
    }

    #[test]
    fn diameter_of_known_shapes() {
        assert_eq!(diameter_exact(&gen::path(10)), 9);
        assert_eq!(diameter_exact(&gen::cycle(10)), 5);
        assert_eq!(diameter_exact(&gen::star(10)), 2);
        assert_eq!(diameter_exact(&gen::grid(4, 7)), 3 + 6);
    }

    #[test]
    fn two_sweep_exact_on_tree() {
        let g = gen::balanced_binary_tree(4);
        assert_eq!(two_sweep_diameter_lower_bound(&g, 0), diameter_exact(&g));
    }

    #[test]
    fn two_sweep_is_lower_bound_on_grid() {
        let g = gen::grid(5, 9);
        assert!(two_sweep_diameter_lower_bound(&g, 0) <= diameter_exact(&g));
    }

    #[test]
    fn eccentricity_of_center() {
        let g = gen::path(9);
        assert_eq!(eccentricity(&g, 4), 4);
        assert_eq!(eccentricity(&g, 0), 8);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn bfs_tree_panics_on_disconnected() {
        let g = Graph::from_unweighted_edges(3, &[(0, 1)]).unwrap();
        let _ = bfs_tree(&g, 0);
    }
}
