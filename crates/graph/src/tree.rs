//! Rooted spanning trees and heavy-path decompositions.
//!
//! Tree-restricted shortcuts (Definition 2.2) live on a rooted BFS tree
//! `T`; [`RootedTree`] is the shared representation. The deterministic
//! shortcut construction (Algorithm 8) decomposes `T` into heavy paths
//! (Definition 6.5, after Sleator–Tarjan), provided here as
//! [`HeavyPathDecomposition`].

use std::fmt;

use crate::graph::{EdgeId, NodeId};

/// Errors when assembling a [`RootedTree`] from parent arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Parent array length differed from the edge array length.
    LengthMismatch,
    /// The root's parent entry was not `usize::MAX`.
    RootHasParent { root: NodeId },
    /// A non-root node had no parent.
    MissingParent { node: NodeId },
    /// Parent pointers contain a cycle (or a node unreachable from the root).
    NotATree,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::LengthMismatch => write!(f, "parent and edge arrays differ in length"),
            TreeError::RootHasParent { root } => write!(f, "root {root} has a parent"),
            TreeError::MissingParent { node } => write!(f, "non-root node {node} has no parent"),
            TreeError::NotATree => write!(f, "parent pointers do not form a tree"),
        }
    }
}

impl std::error::Error for TreeError {}

/// A rooted spanning tree over nodes `0..n`, stored as parent pointers.
///
/// Each non-root node records its parent and the id of the graph edge to
/// that parent, so shortcut structures can talk about "tree edges" using
/// graph edge ids. Children lists and depths are precomputed.
///
/// # Example
/// ```rust
/// use rmo_graph::{gen, bfs_tree};
/// let g = gen::path(4);
/// let (t, _) = bfs_tree(&g, 0);
/// assert_eq!(t.parent_of(3), Some(2));
/// assert_eq!(t.depth_of(3), 3);
/// assert_eq!(t.depth(), 3);
/// assert_eq!(t.children_of(1), &[2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<NodeId>,
    parent_edge: Vec<EdgeId>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
    order: Vec<NodeId>,
}

impl RootedTree {
    /// Builds a tree from parent pointers.
    ///
    /// `parent[v]` must be `usize::MAX` exactly for `v == root`;
    /// `parent_edge[v]` is the graph edge id from `v` to `parent[v]`
    /// (ignored, and conventionally `usize::MAX`, at the root).
    ///
    /// # Errors
    /// Returns [`TreeError`] if the arrays are inconsistent or the pointers
    /// do not form a tree spanning all `n` nodes.
    pub fn from_parents(
        root: NodeId,
        parent: Vec<NodeId>,
        parent_edge: Vec<EdgeId>,
    ) -> Result<RootedTree, TreeError> {
        let n = parent.len();
        if parent_edge.len() != n {
            return Err(TreeError::LengthMismatch);
        }
        if parent[root] != usize::MAX {
            return Err(TreeError::RootHasParent { root });
        }
        for (v, &p) in parent.iter().enumerate() {
            if v != root && p == usize::MAX {
                return Err(TreeError::MissingParent { node: v });
            }
            if v != root && p >= n {
                return Err(TreeError::NotATree);
            }
        }
        let mut children = vec![Vec::new(); n];
        for (v, &p) in parent.iter().enumerate() {
            if v != root {
                children[p].push(v);
            }
        }
        // BFS from the root to compute depths and detect unreachable nodes
        // (which imply cycles among the remaining parent pointers).
        let mut depth = vec![usize::MAX; n];
        let mut order = Vec::with_capacity(n);
        depth[root] = 0;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &c in &children[u] {
                depth[c] = depth[u] + 1;
                queue.push_back(c);
            }
        }
        if order.len() != n {
            return Err(TreeError::NotATree);
        }
        Ok(RootedTree {
            root,
            parent,
            parent_edge,
            children,
            depth,
            order,
        })
    }

    /// Number of nodes spanned.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v`, or `None` at the root.
    pub fn parent_of(&self, v: NodeId) -> Option<NodeId> {
        if v == self.root {
            None
        } else {
            Some(self.parent[v])
        }
    }

    /// Graph edge id from `v` up to its parent, or `None` at the root.
    pub fn parent_edge_of(&self, v: NodeId) -> Option<EdgeId> {
        if v == self.root {
            None
        } else {
            Some(self.parent_edge[v])
        }
    }

    /// Children of `v`.
    pub fn children_of(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth_of(&self, v: NodeId) -> usize {
        self.depth[v]
    }

    /// Depth of the tree: maximum node depth.
    pub fn depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Nodes in BFS order from the root (parents before children).
    pub fn top_down_order(&self) -> &[NodeId] {
        &self.order
    }

    /// Subtree sizes (`sizes[v]` = number of nodes in the subtree at `v`).
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let mut size = vec![1usize; self.n()];
        for &v in self.order.iter().rev() {
            if v != self.root {
                size[self.parent[v]] += size[v];
            }
        }
        size
    }

    /// The set of tree edges as graph edge ids.
    pub fn tree_edge_ids(&self) -> Vec<EdgeId> {
        (0..self.n())
            .filter(|&v| v != self.root)
            .map(|v| self.parent_edge[v])
            .collect()
    }

    /// Walks up from `v` toward the root, yielding `v` first and the root last.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent_of(cur) {
            path.push(p);
            cur = p;
        }
        path
    }
}

/// A heavy-path decomposition of a [`RootedTree`] (Definition 6.5).
///
/// A tree edge `(parent u, child v)` is *heavy* when `v`'s subtree holds
/// more than half of `u`'s subtree; the heavy edges partition the tree into
/// vertex-disjoint root-ward paths. Any leaf-to-root path meets at most
/// `⌊log₂ n⌋` distinct heavy paths, which is what Algorithm 8's bottom-up
/// sweep exploits.
///
/// # Example
/// ```rust
/// use rmo_graph::{gen, bfs_tree, HeavyPathDecomposition};
/// let g = gen::path(8);
/// let (t, _) = bfs_tree(&g, 0);
/// let hpd = HeavyPathDecomposition::new(&t);
/// // A path decomposes into a single heavy path.
/// assert_eq!(hpd.path_count(), 1);
/// assert_eq!(hpd.path_nodes(0).len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct HeavyPathDecomposition {
    /// `path_of[v]` — index of the heavy path containing `v`.
    path_of: Vec<usize>,
    /// For each path, its nodes ordered from deepest (source) to shallowest
    /// (sink, the path's topmost node).
    paths: Vec<Vec<NodeId>>,
}

impl HeavyPathDecomposition {
    /// Decomposes `tree` into heavy paths.
    ///
    /// Every node belongs to exactly one path (an isolated node forms a
    /// trivial length-0 path). Within a path, nodes are ordered bottom-up.
    pub fn new(tree: &RootedTree) -> HeavyPathDecomposition {
        let n = tree.n();
        let sizes = tree.subtree_sizes();
        // heavy_child[u] = child v with 2·size[v] >= size[u], if any. (The
        // non-strict variant of Definition 6.5; at most one child can
        // satisfy it because the parent counts itself, and it keeps a bare
        // path a single heavy path. The log₂ n crossing bound is
        // unaffected.)
        let mut heavy_child = vec![usize::MAX; n];
        for u in 0..n {
            for &v in tree.children_of(u) {
                if 2 * sizes[v] >= sizes[u] {
                    heavy_child[u] = v;
                }
            }
        }
        let mut path_of = vec![usize::MAX; n];
        let mut paths = Vec::new();
        // A node heads a path iff it is not the heavy child of its parent.
        for v in tree.top_down_order() {
            let v = *v;
            let is_head = match tree.parent_of(v) {
                None => true,
                Some(p) => heavy_child[p] != v,
            };
            if is_head {
                let id = paths.len();
                let mut chain = vec![v];
                path_of[v] = id;
                let mut cur = v;
                while heavy_child[cur] != usize::MAX {
                    cur = heavy_child[cur];
                    path_of[cur] = id;
                    chain.push(cur);
                }
                chain.reverse(); // deepest first
                paths.push(chain);
            }
        }
        HeavyPathDecomposition { path_of, paths }
    }

    /// Number of heavy paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Heavy-path index of node `v`.
    pub fn path_of(&self, v: NodeId) -> usize {
        self.path_of[v]
    }

    /// Nodes of path `p`, ordered from deepest to shallowest.
    pub fn path_nodes(&self, p: usize) -> &[NodeId] {
        &self.paths[p]
    }

    /// The topmost (shallowest) node of path `p` — its "sink" in
    /// Algorithm 8's bottom-up sweep.
    pub fn path_top(&self, p: usize) -> NodeId {
        *self.paths[p].last().expect("paths are non-empty")
    }

    /// Number of distinct heavy paths intersected by the root-ward path
    /// from `v` (used to validate the `⌊log₂ n⌋` bound in tests).
    pub fn paths_on_root_walk(&self, tree: &RootedTree, v: NodeId) -> usize {
        let mut count = 0;
        let mut last = usize::MAX;
        for u in tree.path_to_root(v) {
            if self.path_of[u] != last {
                count += 1;
                last = self.path_of[u];
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_tree;
    use crate::gen;

    #[test]
    fn from_parents_validates() {
        // 0 <- 1 <- 2
        let t =
            RootedTree::from_parents(0, vec![usize::MAX, 0, 1], vec![usize::MAX, 0, 1]).unwrap();
        assert_eq!(t.depth(), 2);
        assert_eq!(t.path_to_root(2), vec![2, 1, 0]);
        assert_eq!(t.tree_edge_ids(), vec![0, 1]);
    }

    #[test]
    fn rejects_cycle() {
        let err = RootedTree::from_parents(0, vec![usize::MAX, 2, 1], vec![usize::MAX, 0, 1])
            .unwrap_err();
        assert_eq!(err, TreeError::NotATree);
    }

    #[test]
    fn rejects_root_with_parent() {
        let err = RootedTree::from_parents(0, vec![1, 0], vec![0, 0]).unwrap_err();
        assert_eq!(err, TreeError::RootHasParent { root: 0 });
    }

    #[test]
    fn rejects_missing_parent() {
        let err = RootedTree::from_parents(
            0,
            vec![usize::MAX, usize::MAX],
            vec![usize::MAX, usize::MAX],
        )
        .unwrap_err();
        assert_eq!(err, TreeError::MissingParent { node: 1 });
    }

    #[test]
    fn subtree_sizes_on_star() {
        let g = gen::star(5);
        let (t, _) = bfs_tree(&g, 0);
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 5);
        for v in 1..5 {
            assert_eq!(sizes[v], 1);
        }
    }

    #[test]
    fn hpd_on_balanced_tree_respects_log_bound() {
        let g = gen::balanced_binary_tree(6); // 63 nodes
        let (t, _) = bfs_tree(&g, 0);
        let hpd = HeavyPathDecomposition::new(&t);
        let log2n = (t.n() as f64).log2().floor() as usize;
        for v in 0..t.n() {
            assert!(
                hpd.paths_on_root_walk(&t, v) <= log2n + 1,
                "node {v} crosses too many heavy paths"
            );
        }
    }

    #[test]
    fn hpd_partitions_nodes() {
        let g = gen::grid(5, 5);
        let (t, _) = bfs_tree(&g, 0);
        let hpd = HeavyPathDecomposition::new(&t);
        let mut seen = vec![false; t.n()];
        for p in 0..hpd.path_count() {
            for &v in hpd.path_nodes(p) {
                assert!(!seen[v], "node {v} in two paths");
                seen[v] = true;
                assert_eq!(hpd.path_of(v), p);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hpd_paths_are_bottom_up_chains() {
        let g = gen::grid(4, 9);
        let (t, _) = bfs_tree(&g, 0);
        let hpd = HeavyPathDecomposition::new(&t);
        for p in 0..hpd.path_count() {
            let nodes = hpd.path_nodes(p);
            for w in nodes.windows(2) {
                assert_eq!(t.parent_of(w[0]), Some(w[1]), "path must walk rootward");
            }
        }
    }

    #[test]
    fn path_top_is_shallowest() {
        let g = gen::balanced_binary_tree(4);
        let (t, _) = bfs_tree(&g, 0);
        let hpd = HeavyPathDecomposition::new(&t);
        for p in 0..hpd.path_count() {
            let top = hpd.path_top(p);
            for &v in hpd.path_nodes(p) {
                assert!(t.depth_of(top) <= t.depth_of(v));
            }
        }
    }
}
