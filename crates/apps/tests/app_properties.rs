//! Property tests over the applications: MST optimality, SSSP soundness,
//! component labeling vs union–find, k-domination guarantees — on
//! arbitrary random instances.

use proptest::prelude::*;

use rmo_apps::kdom::k_dominating_set;
use rmo_apps::mst::{pa_mst, MstConfig};
use rmo_apps::sssp::{approx_sssp, SsspConfig};
use rmo_apps::{component_labels, ComponentLabels};
use rmo_core::PaConfig;
use rmo_graph::{gen, reference, DisjointSets, EdgeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pa_mst_weight_equals_kruskal(
        n in 4usize..50,
        extra in 1usize..40,
        seed in 0u64..200,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected_weighted(n, m, seed);
        let ours = pa_mst(&g, &MstConfig::default()).expect("solves");
        let oracle = reference::kruskal(&g);
        prop_assert_eq!(ours.total_weight, oracle.total_weight);
        prop_assert_eq!(ours.edges, oracle.edges);
        prop_assert!(ours.phases as f64 <= (n as f64).log2() + 2.0);
    }

    #[test]
    fn sssp_estimates_are_sound(
        n in 4usize..60,
        extra in 0usize..50,
        seed in 0u64..200,
        beta_pick in 1usize..9,
        src in 0usize..1000,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected_weighted(n, m, seed);
        let source = src % n;
        let cfg = SsspConfig { beta: beta_pick as f64 / 10.0, seed, ..Default::default() };
        let res = approx_sssp(&g, source, &cfg).expect("solves");
        let truth = reference::dijkstra(&g, source);
        prop_assert_eq!(res.estimates[source], 0);
        for v in 0..n {
            prop_assert!(res.estimates[v] >= truth[v], "node {} undercuts", v);
            prop_assert!(res.estimates[v] < u64::MAX, "connected graph: all reachable");
        }
    }

    #[test]
    fn component_labels_equal_union_find(
        n in 3usize..50,
        extra in 0usize..60,
        seed in 0u64..200,
        keep_mod in 1usize..5,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let h: Vec<EdgeId> = (0..g.m()).filter(|e| e % keep_mod == 0).collect();
        let out: ComponentLabels =
            component_labels(&g, &h, &PaConfig::default()).expect("solves");
        let mut dsu = DisjointSets::new(n);
        for &e in &h {
            let (u, v) = g.endpoints(e);
            dsu.union(u, v);
        }
        prop_assert_eq!(out.num_components, dsu.set_count());
        for u in 0..n {
            for v in (u + 1)..n {
                prop_assert_eq!(out.labels[u] == out.labels[v], dsu.same(u, v));
            }
        }
    }

    #[test]
    fn kdom_guarantees_on_random_graphs(
        n in 10usize..90,
        extra in 0usize..40,
        seed in 0u64..200,
        k in 2usize..30,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let res = k_dominating_set(&g, k);
        prop_assert!(res.max_distance <= k, "distance {} > k {}", res.max_distance, k);
        prop_assert!(
            res.set.len() <= 6 * n / k + 1,
            "size {} > 6n/k = {}", res.set.len(), 6 * n / k
        );
    }
}
