//! The unified query surface over every application.
//!
//! Each app module exposes a `*_with_engine` entry point; serving layers
//! want a single dispatch instead of eight ad-hoc call sites. [`Query`]
//! names one request against one graph, [`run_query`] executes it on a
//! caller-held [`PaEngine`] session, and [`QueryResponse`] carries the
//! typed result (every variant reports its measured [`CostReport`]).
//!
//! This is the vocabulary [`crate::service::PaCluster`] routes: a shard
//! worker pops `(graph, Query)` jobs off its queue and feeds them through
//! [`run_query`] on the graph's warm engine. The dispatch itself is
//! deliberately dumb — no scheduling, no caching policy — so it is also
//! the natural entry point for one-off callers that already hold an
//! engine.

use std::fmt;

use rmo_congest::CostReport;
use rmo_graph::{EdgeId, NodeId, Partition};

use rmo_core::{partition_fingerprint, Aggregate, PaEngine, PaError};

use crate::cds::{approx_mwcds_with_engine, CdsResult};
use crate::components::{component_labels_with_engine, ComponentLabels};
use crate::eccentricity::{approx_eccentricities_with_engine, EccentricityResult};
use crate::kdom::{k_dominating_set_with_engine, KDomResult};
use crate::mincut::{approx_min_cut_with_engine, MinCutConfig, MinCutResult};
use crate::mst::{pa_mst_with_engine, PaMstResult};
use crate::sssp::{approx_sssp_with_engine, SsspConfig, SsspResult};
use crate::verify::{
    verify_bipartite_with_engine, verify_connected_spanning_with_engine, verify_cut_with_engine,
    verify_forest_with_engine, verify_mst_with_engine, verify_spanning_tree_with_engine,
    verify_two_edge_connected_with_engine, Verdict,
};

/// Which verification predicate a [`Query::Verify`] checks (the
/// Corollary A.1 suite; every check takes the subgraph `H` as an edge
/// list except `TwoEdgeConnected`, which inspects the network itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyCheck {
    /// `H` is connected and spans `V`.
    ConnectedSpanning,
    /// `H` is a spanning tree.
    SpanningTree,
    /// Removing `H` disconnects the graph.
    Cut,
    /// `H` is bipartite.
    Bipartite,
    /// `H` is acyclic.
    Forest,
    /// `H` is a minimum spanning tree.
    Mst,
    /// The network itself is 2-edge-connected (`H` is ignored).
    TwoEdgeConnected,
}

/// One request against one graph — the vocabulary the serving layer
/// routes and batches.
///
/// Queries carry *values*, not borrows, so they can cross shard-thread
/// channels; [`run_query`] validates them against the engine's graph
/// (e.g. a `Pa` assignment of the wrong length is a [`QueryResponse::Failed`],
/// not a panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// One Part-Wise Aggregation solve (Definition 1.1).
    Pa {
        /// Part id per node (each part connected).
        assignment: Vec<usize>,
        /// One value per node.
        values: Vec<u64>,
        /// The commutative-associative fold.
        agg: Aggregate,
    },
    /// MST via Borůvka over PA (Corollary 1.3).
    Mst,
    /// Approximate SSSP from `source` (Corollary 1.5).
    Sssp {
        /// The source node.
        source: NodeId,
    },
    /// `(1+ε)`-approximate min cut (Corollary 1.4) with an explicit
    /// trial budget (the serving layer keeps this bounded; pass the
    /// `O(log n/ε²)` default through [`MinCutConfig`] directly for the
    /// full guarantee).
    MinCut {
        /// Number of sampled spanning trees.
        trials: usize,
    },
    /// `k`-dominating set (Corollary A.3).
    Kdom {
        /// The domination radius.
        k: usize,
    },
    /// Additive-`k` eccentricity estimates (Holzer–Wattenhofer on top of
    /// k-domination).
    Eccentricity {
        /// The additive slack.
        k: usize,
    },
    /// `O(log n)`-approximate minimum-weight CDS (Corollary A.2).
    Cds {
        /// Cost of including each node.
        node_weights: Vec<u64>,
    },
    /// Thurimella component labels of the subgraph `H` (Appendix A.2).
    Components {
        /// The subgraph, as edge ids of the network graph.
        h_edges: Vec<EdgeId>,
    },
    /// One Corollary A.1 verification predicate.
    Verify {
        /// Which predicate.
        check: VerifyCheck,
        /// The subgraph under test.
        h_edges: Vec<EdgeId>,
    },
}

impl Query {
    /// The cache-affinity class of this query: two queries with equal
    /// keys (on the same graph) want the engine in the same warm state —
    /// same partition artifacts, same division memo. The shard scheduler
    /// batches equal keys back-to-back so the second query is a cache
    /// hit. Stable across runs and platforms (FNV-1a, like the engine's
    /// partition fingerprint).
    pub fn affinity(&self) -> u64 {
        // Distinct per-variant tags keep unrelated classes from sharing
        // a batch by accident.
        match self {
            Query::Pa { assignment, .. } => 0x10 ^ partition_fingerprint(assignment),
            Query::Mst => 0x20,
            Query::Sssp { .. } => 0x30,
            Query::MinCut { .. } => 0x40,
            // Kdom and Eccentricity with equal k share the division memo.
            Query::Kdom { k } | Query::Eccentricity { k } => {
                0x50 ^ partition_fingerprint(&[0x50, *k])
            }
            Query::Cds { .. } => 0x60,
            // Components and Verify on equal H solve PA over the same
            // H-component partition.
            Query::Components { h_edges } | Query::Verify { h_edges, .. } => {
                0x70 ^ partition_fingerprint(h_edges)
            }
        }
    }

    /// A cheap a-priori cost estimate for this query on a graph with `n`
    /// nodes and `m` edges, in abstract *work units* comparable to
    /// `CostReport::rounds + messages` (what one simulated phase bills).
    ///
    /// The serving scheduler uses this to size *graph groups* before any
    /// query has run; once a graph has demand history (observed response
    /// costs, or [`rmo_core::EngineStats::mean_solve_work`] on its parked
    /// engine), the history supersedes the estimate. The estimate only
    /// has to rank workloads correctly — a wave over the graph costs
    /// `Θ(n + m)` messages, and each application runs a known number of
    /// wave-like phases (Borůvka runs `O(log n)` PA calls, min-cut one
    /// sketch per trial, CDS the heaviest composition).
    pub fn weight(&self, n: usize, m: usize) -> u64 {
        let n = n as u64;
        let m = m as u64;
        // One broadcast/convergecast wave's bill over the whole graph.
        let wave = n + 2 * m + 1;
        let log_n = u64::from(64 - n.leading_zeros()).max(1);
        let waves = match self {
            Query::Pa { .. } => 6,
            Query::Components { .. } | Query::Verify { .. } => 10,
            Query::Kdom { .. } | Query::Eccentricity { .. } => 12,
            Query::Mst => 6 * log_n,
            Query::Sssp { .. } => 20,
            // Saturating: a hostile `trials` must mis-rank, not abort the
            // scheduler that is sizing groups around it.
            Query::MinCut { trials } => (*trials as u64).max(1).saturating_mul(10),
            Query::Cds { .. } => 24,
        };
        waves.saturating_mul(wave)
    }
}

/// Why a query could not be served — the typed vocabulary behind
/// [`QueryResponse::Failed`]. Every variant renders ([`fmt::Display`])
/// to the exact diagnostic string the serving layer has always
/// produced, so failure handling can match on structure while log
/// output and string-based assertions stay stable.
///
/// The variants split into three families: *engine errors*
/// ([`FailReason::Engine`] — a [`PaError`] from validation or the
/// pipeline), *contract violations* (a well-formed query whose
/// parameters violate an application's documented preconditions), and
/// *cluster-level* failures (routing problems the dispatch layer never
/// sees). Admission rejections of the streaming front-end are a
/// separate type — [`crate::stream::RejectReason`] — because a rejected
/// query was never accepted at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailReason {
    /// The engine rejected the instance ([`PaError`] preserved intact:
    /// partition validation, value-count mismatches, pipeline errors).
    Engine(PaError),
    /// `Query::Sssp` named a source outside the graph.
    SsspSourceOutOfRange {
        /// The offending source id.
        source: NodeId,
        /// The graph's node count.
        nodes: usize,
    },
    /// A subgraph query named an edge id outside the graph.
    EdgeOutOfRange {
        /// The first offending edge id.
        edge: EdgeId,
        /// The graph's edge count.
        edges: usize,
    },
    /// `Query::MinCut` asked for zero sampling trials.
    MinCutZeroTrials,
    /// `Query::MinCut` on a graph with fewer than two nodes.
    MinCutTooSmall {
        /// The graph's node count.
        nodes: usize,
    },
    /// `Query::Kdom` asked for radius zero.
    KdomZeroRadius,
    /// `Query::Eccentricity` asked for slack zero.
    EccentricityZeroSlack,
    /// The query named a [`crate::service::GraphId`] the cluster does
    /// not hold (the raw id; rendered as `g{id}` like the `GraphId`).
    UnregisteredGraph {
        /// The raw graph id.
        id: u64,
    },
    /// Internal invariant violation: the batch finished without the
    /// scheduler ever placing this query.
    NeverScheduled,
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::Engine(e) => write!(f, "{e}"),
            FailReason::SsspSourceOutOfRange { source, nodes } => write!(
                f,
                "sssp source {source} out of range (graph has {nodes} nodes)"
            ),
            FailReason::EdgeOutOfRange { edge, edges } => write!(
                f,
                "subgraph edge id {edge} out of range (graph has {edges} edges)"
            ),
            FailReason::MinCutZeroTrials => {
                write!(f, "min-cut needs at least one sampling trial (got 0)")
            }
            FailReason::MinCutTooSmall { nodes } => {
                write!(f, "min-cut needs at least 2 nodes (graph has {nodes})")
            }
            FailReason::KdomZeroRadius => {
                write!(f, "k-dominating set needs a positive radius k (got 0)")
            }
            FailReason::EccentricityZeroSlack => {
                write!(f, "eccentricity estimation needs a positive slack k (got 0)")
            }
            FailReason::UnregisteredGraph { id } => {
                write!(f, "graph g{id} is not registered with this cluster")
            }
            FailReason::NeverScheduled => write!(f, "internal: query was never scheduled"),
        }
    }
}

impl From<PaError> for FailReason {
    fn from(e: PaError) -> FailReason {
        FailReason::Engine(e)
    }
}

/// The typed result of one [`Query`], bit-comparable for determinism
/// tests (threaded and sequential serving must produce equal responses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResponse {
    /// From [`Query::Pa`].
    Pa(rmo_core::PaResult),
    /// From [`Query::Mst`].
    Mst(PaMstResult),
    /// From [`Query::Sssp`].
    Sssp(SsspResult),
    /// From [`Query::MinCut`].
    MinCut(MinCutResult),
    /// From [`Query::Kdom`].
    Kdom(KDomResult),
    /// From [`Query::Eccentricity`].
    Eccentricity(EccentricityResult),
    /// From [`Query::Cds`].
    Cds(CdsResult),
    /// From [`Query::Components`].
    Components(ComponentLabels),
    /// From [`Query::Verify`].
    Verify(Verdict),
    /// The query was invalid for its graph (typed [`FailReason`];
    /// its `Display` renders the classic diagnostic string).
    Failed(FailReason),
}

impl QueryResponse {
    /// The measured CONGEST cost of serving this query (zero for
    /// failures, which never reach the simulator).
    pub fn cost(&self) -> CostReport {
        match self {
            QueryResponse::Pa(r) => r.cost,
            QueryResponse::Mst(r) => r.cost,
            QueryResponse::Sssp(r) => r.cost,
            QueryResponse::MinCut(r) => r.cost,
            QueryResponse::Kdom(r) => r.cost,
            QueryResponse::Eccentricity(r) => r.cost,
            QueryResponse::Cds(r) => r.cost,
            QueryResponse::Components(r) => r.cost,
            QueryResponse::Verify(r) => r.cost,
            QueryResponse::Failed(_) => CostReport::zero(),
        }
    }

    /// Whether the query was served (not [`QueryResponse::Failed`]).
    pub fn is_ok(&self) -> bool {
        !matches!(self, QueryResponse::Failed(_))
    }
}

fn fail(err: PaError) -> QueryResponse {
    QueryResponse::Failed(FailReason::Engine(err))
}

/// The first out-of-range edge id in `h_edges`, as a `Failed` response.
fn bad_edge(engine: &PaEngine<'_>, h_edges: &[rmo_graph::EdgeId]) -> Option<QueryResponse> {
    let m = engine.graph().m();
    h_edges
        .iter()
        .find(|&&e| e >= m)
        .map(|&e| QueryResponse::Failed(FailReason::EdgeOutOfRange { edge: e, edges: m }))
}

/// Executes one query on a caller-held session — the single entry point
/// over all eight application modules. Validation failures surface as
/// [`QueryResponse::Failed`], never a panic: graph-relative checks
/// (part vectors, value lengths, node and edge id ranges) *and* the
/// apps' own contract preconditions (`k == 0`, a degenerate min-cut
/// instance) are caught here, so no well-formed-but-invalid query can
/// kill a shard worker.
pub fn run_query(engine: &mut PaEngine<'_>, query: &Query) -> QueryResponse {
    match query {
        Query::Pa {
            assignment,
            values,
            agg,
        } => {
            let parts = match Partition::new(engine.graph(), assignment.clone()) {
                Ok(p) => p,
                Err(e) => return fail(PaError::Partition(e)),
            };
            match engine.solve(&parts, values, *agg) {
                Ok(r) => QueryResponse::Pa(r),
                Err(e) => fail(e),
            }
        }
        Query::Mst => match pa_mst_with_engine(engine) {
            Ok(r) => QueryResponse::Mst(r),
            Err(e) => fail(e),
        },
        Query::Sssp { source } => {
            if *source >= engine.graph().n() {
                return QueryResponse::Failed(FailReason::SsspSourceOutOfRange {
                    source: *source,
                    nodes: engine.graph().n(),
                });
            }
            let config = SsspConfig {
                pa: engine.config().pa(),
                seed: engine.config().seed,
                ..SsspConfig::default()
            };
            match approx_sssp_with_engine(engine, *source, &config) {
                Ok(r) => QueryResponse::Sssp(r),
                Err(e) => fail(e),
            }
        }
        Query::MinCut { trials } => {
            // approx_min_cut_with_engine's contract: at least one trial,
            // at least one edge to cut. Enforce it here so the serving
            // path degrades instead of tripping the assert.
            if *trials == 0 {
                return QueryResponse::Failed(FailReason::MinCutZeroTrials);
            }
            if engine.graph().n() < 2 {
                return QueryResponse::Failed(FailReason::MinCutTooSmall {
                    nodes: engine.graph().n(),
                });
            }
            let config = MinCutConfig {
                pa: engine.config().pa(),
                seed: engine.config().seed,
                trials: Some(*trials),
                ..MinCutConfig::default()
            };
            match approx_min_cut_with_engine(engine, &config) {
                Ok(r) => QueryResponse::MinCut(r),
                Err(e) => fail(e),
            }
        }
        Query::Kdom { k } => {
            // k_dominating_set_with_engine's contract: a positive radius.
            if *k == 0 {
                return QueryResponse::Failed(FailReason::KdomZeroRadius);
            }
            QueryResponse::Kdom(k_dominating_set_with_engine(engine, *k))
        }
        Query::Eccentricity { k } => {
            // Same positive-k contract as Kdom, which it builds on.
            if *k == 0 {
                return QueryResponse::Failed(FailReason::EccentricityZeroSlack);
            }
            QueryResponse::Eccentricity(approx_eccentricities_with_engine(engine, *k))
        }
        Query::Cds { node_weights } => {
            if node_weights.len() != engine.graph().n() {
                return fail(PaError::ValueCountMismatch {
                    expected: engine.graph().n(),
                    got: node_weights.len(),
                });
            }
            match approx_mwcds_with_engine(engine, node_weights) {
                Ok(r) => QueryResponse::Cds(r),
                Err(e) => fail(e),
            }
        }
        Query::Components { h_edges } => {
            if let Some(failed) = bad_edge(engine, h_edges) {
                return failed;
            }
            match component_labels_with_engine(engine, h_edges) {
                Ok(r) => QueryResponse::Components(r),
                Err(e) => fail(e),
            }
        }
        Query::Verify { check, h_edges } => {
            if let Some(failed) = bad_edge(engine, h_edges) {
                return failed;
            }
            let verdict = match check {
                VerifyCheck::ConnectedSpanning => {
                    verify_connected_spanning_with_engine(engine, h_edges)
                }
                VerifyCheck::SpanningTree => verify_spanning_tree_with_engine(engine, h_edges),
                VerifyCheck::Cut => verify_cut_with_engine(engine, h_edges),
                VerifyCheck::Bipartite => verify_bipartite_with_engine(engine, h_edges),
                VerifyCheck::Forest => verify_forest_with_engine(engine, h_edges),
                VerifyCheck::Mst => verify_mst_with_engine(engine, h_edges),
                VerifyCheck::TwoEdgeConnected => verify_two_edge_connected_with_engine(engine),
            };
            match verdict {
                Ok(r) => QueryResponse::Verify(r),
                Err(e) => fail(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_core::EngineConfig;
    use rmo_graph::gen;

    #[test]
    fn dispatch_matches_direct_calls() {
        let g = gen::grid(6, 6);
        let rows = gen::grid_row_partition(6, 6);
        let values: Vec<u64> = (0..36u64).collect();

        // Pa through dispatch == engine.solve directly.
        let mut a = PaEngine::new(&g, EngineConfig::new());
        let via_dispatch = run_query(
            &mut a,
            &Query::Pa {
                assignment: rows.clone(),
                values: values.clone(),
                agg: Aggregate::Min,
            },
        );
        let mut b = PaEngine::new(&g, EngineConfig::new());
        let parts = Partition::new(&g, rows).unwrap();
        let direct = b.solve(&parts, &values, Aggregate::Min).unwrap();
        assert_eq!(via_dispatch, QueryResponse::Pa(direct));

        // Mst through dispatch == pa_mst_with_engine on an equal session.
        let mut c = PaEngine::new(&g, EngineConfig::new());
        let mst = run_query(&mut c, &Query::Mst);
        let mut d = PaEngine::new(&g, EngineConfig::new());
        assert_eq!(mst, QueryResponse::Mst(pa_mst_with_engine(&mut d).unwrap()));
    }

    #[test]
    fn invalid_queries_fail_without_panicking() {
        let g = gen::path(8);
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        // Wrong-length assignment.
        let bad = run_query(
            &mut engine,
            &Query::Pa {
                assignment: vec![0; 3],
                values: vec![0; 8],
                agg: Aggregate::Sum,
            },
        );
        assert!(!bad.is_ok());
        assert_eq!(bad.cost(), CostReport::zero());
        // Wrong-length CDS weights.
        let bad = run_query(
            &mut engine,
            &Query::Cds {
                node_weights: vec![1; 2],
            },
        );
        assert!(matches!(bad, QueryResponse::Failed(_)));
        // Out-of-range node and edge ids fail instead of panicking in a
        // shard worker.
        let bad = run_query(&mut engine, &Query::Sssp { source: 8 });
        assert!(
            matches!(&bad, QueryResponse::Failed(m) if m.to_string().contains("out of range"))
        );
        assert!(matches!(
            &bad,
            QueryResponse::Failed(FailReason::SsspSourceOutOfRange { source: 8, nodes: 8 })
        ));
        let bad = run_query(
            &mut engine,
            &Query::Components {
                h_edges: vec![0, 7],
            },
        );
        assert!(matches!(&bad, QueryResponse::Failed(m) if m.to_string().contains("edge id 7")));
        assert!(matches!(
            &bad,
            QueryResponse::Failed(FailReason::EdgeOutOfRange { edge: 7, edges: 7 })
        ));
        let bad = run_query(
            &mut engine,
            &Query::Verify {
                check: VerifyCheck::Forest,
                h_edges: vec![99],
            },
        );
        assert!(!bad.is_ok());
        // The engine is still usable afterwards.
        let ok = run_query(&mut engine, &Query::Kdom { k: 4 });
        assert!(ok.is_ok());
    }

    #[test]
    fn contract_violations_fail_gracefully_instead_of_panicking() {
        let g = gen::path(8);
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        // k == 0 used to trip `assert!(k > 0)` inside the app and kill
        // the shard worker; now it degrades to a Failed response.
        let bad = run_query(&mut engine, &Query::Kdom { k: 0 });
        assert!(
            matches!(&bad, QueryResponse::Failed(m) if m.to_string().contains("positive radius"))
        );
        assert!(matches!(
            &bad,
            QueryResponse::Failed(FailReason::KdomZeroRadius)
        ));
        let bad = run_query(&mut engine, &Query::Eccentricity { k: 0 });
        assert!(
            matches!(&bad, QueryResponse::Failed(m) if m.to_string().contains("positive slack"))
        );
        // Degenerate min-cut instances likewise.
        let bad = run_query(&mut engine, &Query::MinCut { trials: 0 });
        assert!(matches!(&bad, QueryResponse::Failed(m) if m.to_string().contains("trial")));
        let single = gen::path(1);
        let mut tiny = PaEngine::new(&single, EngineConfig::new());
        let bad = run_query(&mut tiny, &Query::MinCut { trials: 2 });
        assert!(
            matches!(&bad, QueryResponse::Failed(m) if m.to_string().contains("at least 2 nodes"))
        );
        // Failures bill nothing and leave the engine serviceable.
        assert_eq!(bad.cost(), CostReport::zero());
        assert!(run_query(&mut engine, &Query::Mst).is_ok());
    }

    #[test]
    fn fail_reason_display_is_the_classic_diagnostic() {
        // The typed reasons render to the exact strings the serving
        // layer produced before FailReason existed — log output and
        // string assertions must not drift.
        let cases: Vec<(FailReason, &str)> = vec![
            (
                FailReason::Engine(PaError::Disconnected),
                "graph must be connected",
            ),
            (
                FailReason::SsspSourceOutOfRange { source: 8, nodes: 8 },
                "sssp source 8 out of range (graph has 8 nodes)",
            ),
            (
                FailReason::EdgeOutOfRange { edge: 7, edges: 7 },
                "subgraph edge id 7 out of range (graph has 7 edges)",
            ),
            (
                FailReason::MinCutZeroTrials,
                "min-cut needs at least one sampling trial (got 0)",
            ),
            (
                FailReason::MinCutTooSmall { nodes: 1 },
                "min-cut needs at least 2 nodes (graph has 1)",
            ),
            (
                FailReason::KdomZeroRadius,
                "k-dominating set needs a positive radius k (got 0)",
            ),
            (
                FailReason::EccentricityZeroSlack,
                "eccentricity estimation needs a positive slack k (got 0)",
            ),
            (
                FailReason::UnregisteredGraph { id: 99 },
                "graph g99 is not registered with this cluster",
            ),
            (
                FailReason::NeverScheduled,
                "internal: query was never scheduled",
            ),
        ];
        for (reason, rendered) in cases {
            assert_eq!(reason.to_string(), rendered);
        }
        // PaError conversion keeps the error intact for matching.
        let reason: FailReason = PaError::ValueCountMismatch {
            expected: 4,
            got: 2,
        }
        .into();
        assert_eq!(
            reason,
            FailReason::Engine(PaError::ValueCountMismatch {
                expected: 4,
                got: 2
            })
        );
    }

    #[test]
    fn weight_saturates_instead_of_overflowing() {
        // A hostile trial budget must mis-rank, not abort the scheduler
        // in debug builds.
        let w = Query::MinCut { trials: usize::MAX }.weight(1 << 20, 1 << 22);
        assert_eq!(w, u64::MAX);
        assert!(w >= Query::MinCut { trials: 1 }.weight(1 << 20, 1 << 22));
    }

    #[test]
    fn weight_ranks_heavier_queries_above_lighter() {
        let (n, m) = (64usize, 128usize);
        let pa = Query::Pa {
            assignment: vec![0; n],
            values: vec![0; n],
            agg: Aggregate::Min,
        };
        // A Borůvka MST (log n PA phases) outweighs one PA solve; more
        // min-cut trials cost more; bigger graphs cost more.
        assert!(Query::Mst.weight(n, m) > pa.weight(n, m));
        assert!(
            Query::MinCut { trials: 8 }.weight(n, m) > Query::MinCut { trials: 1 }.weight(n, m)
        );
        assert!(pa.weight(4 * n, 4 * m) > pa.weight(n, m));
        assert!(pa.weight(1, 0) > 0, "weights are never zero");
    }

    #[test]
    fn affinity_groups_cache_friends() {
        let pa1 = Query::Pa {
            assignment: vec![0, 0, 1, 1],
            values: vec![1; 4],
            agg: Aggregate::Min,
        };
        let pa2 = Query::Pa {
            assignment: vec![0, 0, 1, 1],
            values: vec![9; 4],
            agg: Aggregate::Sum,
        };
        let pa3 = Query::Pa {
            assignment: vec![0, 1, 1, 1],
            values: vec![1; 4],
            agg: Aggregate::Min,
        };
        // Same partition => same class, regardless of values/aggregate.
        assert_eq!(pa1.affinity(), pa2.affinity());
        assert_ne!(pa1.affinity(), pa3.affinity());
        // Kdom and Eccentricity share the division memo per k.
        assert_eq!(
            Query::Kdom { k: 6 }.affinity(),
            Query::Eccentricity { k: 6 }.affinity()
        );
        assert_ne!(
            Query::Kdom { k: 6 }.affinity(),
            Query::Kdom { k: 8 }.affinity()
        );
        // Components and Verify share the H-component partition per H.
        assert_eq!(
            Query::Components {
                h_edges: vec![1, 2]
            }
            .affinity(),
            Query::Verify {
                check: VerifyCheck::Forest,
                h_edges: vec![1, 2],
            }
            .affinity()
        );
    }
}
