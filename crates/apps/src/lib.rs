//! Applications of round- and message-optimal Part-Wise Aggregation.
//!
//! Every module implements one of the paper's corollaries by plugging the
//! PA algorithm (`rmo-core`) into a known reduction, and measures the
//! composed round/message cost:
//!
//! * [`mst`] — MST via Borůvka over PA (Corollary 1.3).
//! * [`mincut`] — `(1+ε)`-approximate min-cut via sampled spanning trees
//!   (Corollary 1.4, after Ghaffari–Haeupler and Karger).
//! * [`sssp`] — approximate SSSP via low-diameter decompositions
//!   (Corollary 1.5, after Haeupler–Li and Miller–Peng–Xu).
//! * [`components`] — Thurimella's connected-component labeling as one PA
//!   call (the engine of the verification suite).
//! * [`verify`] — the Das Sarma et al. graph verification problems
//!   (Corollary A.1): connectivity, spanning tree, cut, bipartiteness.
//! * [`kdom`] — `k`-dominating sets of size `≤ 6n/k` (Corollary A.3).
//! * [`eccentricity`] — additive-`2k` eccentricity/radius/diameter
//!   estimation on top of k-domination (the Holzer–Wattenhofer
//!   application the paper cites).
//! * [`cds`] — `O(log n)`-approximate minimum-weight connected dominating
//!   set (Corollary A.2).
//!
//! Every module routes its PA work through [`rmo_core::PaEngine`]: the
//! one-shot entry points spin a session up internally, and each exposes a
//! `*_with_engine` variant that runs on a caller-held session so that a
//! whole workload on one graph — say an MST build followed by its
//! verification and a batch of aggregations — pays for leader election
//! and the BFS tree once and shares cached pipeline artifacts.
//!
//! Three further modules turn the eight applications into a service:
//!
//! * [`dispatch`] — the unified [`Query`] / [`QueryResponse`]
//!   vocabulary and the single [`run_query`] entry point over every
//!   `*_with_engine` app, with typed [`dispatch::FailReason`]s.
//! * [`service`] — [`PaCluster`]: a sharded worker pool serving mixed
//!   query traffic over many graphs concurrently, with warm per-graph
//!   engines and a deterministic load-balancing scheduler (LPT
//!   placement by estimated work, plus replayable work stealing).
//! * [`stream`] — [`StreamGateway`]: the streaming front-end over the
//!   cluster — logical arrival ticks, adaptive batching (size or
//!   deadline), typed admission-control rejections, per-query response
//!   streaming, and an [`stream::ArrivalLog`] that replays a recorded
//!   run bit-for-bit.

#![forbid(unsafe_code)]

pub mod cds;
pub mod certificate;
pub mod components;
// The serving path (dispatch + service) finished its de-unwrap sweep;
// clippy keeps it that way at compile time, and the rmo-lint P1 ratchet
// (budget 0 for both files) keeps it that way across refactors. The
// `not(test)` guard frees the in-file `#[cfg(test)]` suites, which are
// entitled to unwrap.
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod dispatch;
pub mod eccentricity;
pub mod kdom;
pub mod mincut;
pub mod mst;
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod service;
pub mod sssp;
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod stream;
pub mod verify;

pub use components::{component_labels, component_labels_with_engine, ComponentLabels};
pub use dispatch::{run_query, FailReason, Query, QueryResponse, VerifyCheck};
pub use mincut::{approx_min_cut, approx_min_cut_with_engine, MinCutConfig, MinCutResult};
pub use mst::{pa_mst, pa_mst_with_engine, MstConfig, PaMstResult};
pub use service::{
    colliding_graph_ids, mixed_workload, zipf_workload, ClusterStats, GraphId, PaCluster,
    SchedulePolicy, ServeLog, ServeReport, ShardStats, StealEvent,
};
pub use sssp::{approx_sssp, approx_sssp_with_engine, SsspConfig, SsspResult};
pub use stream::{
    mixed_arrivals, stamp_arrivals, zipf_arrivals, Arrival, ArrivalLog, RejectReason,
    ReplayMismatch, StreamConfig, StreamEvent, StreamGateway, StreamReport,
};
