//! Corollary 1.5: approximate single-source shortest paths.
//!
//! The paper plugs PA into Haeupler–Li: low-diameter decompositions
//! (LDDs, after Miller–Peng–Xu) cluster the graph with random start
//! shifts; clusters contract — *traversing a cluster "in a single round"
//! is exactly a PA call* — and distances are estimated on the quotient
//! graph of clusters. The parameter `β` trades cluster radius (hence
//! approximation) against the number of rounds.
//!
//! Our estimator keeps the scheme's invariant that every estimate is the
//! length of a **real path**: the source re-roots its own cluster tree at
//! itself; a quotient edge between clusters `C₁, C₂` realized by the
//! graph edge `(u, v)` weighs `wdepth(u) + w(u,v) + wdepth(v)` (tree
//! detours through the cluster centers); Bellman–Ford over the quotient —
//! one PA call per relaxation round — then yields upper bounds
//! `d(s,v) ≤ est(v)`, with multiplicative error bounded by the cluster
//! radii (measured and reported by the benchmarks against the paper's
//! `L^{O(log log n)/log(1/β)}` guarantee).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use rmo_congest::CostReport;
use rmo_graph::{Graph, NodeId, Partition};

use rmo_core::{Aggregate, EngineConfig, PaConfig, PaEngine, PaError};

/// Configuration for approximate SSSP.
#[derive(Debug, Clone, Copy)]
pub struct SsspConfig {
    /// The LDD parameter `β ∈ (0, 1)`: cluster radius is
    /// `O(log n / β)` hops.
    pub beta: f64,
    /// PA configuration for quotient-graph relaxations.
    pub pa: PaConfig,
    /// Seed for the random shifts.
    pub seed: u64,
}

impl Default for SsspConfig {
    fn default() -> SsspConfig {
        SsspConfig {
            beta: 0.4,
            pa: PaConfig::default(),
            seed: 1,
        }
    }
}

/// Result of [`approx_sssp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsspResult {
    /// Distance estimates: `d(s,v) ≤ estimate[v]`.
    pub estimates: Vec<u64>,
    /// Number of LDD clusters formed.
    pub clusters: usize,
    /// Max cluster radius in hops (drives the approximation factor).
    pub max_radius: usize,
    /// Measured total cost.
    pub cost: CostReport,
}

/// Computes approximate SSSP distances from `source`, using a fresh
/// one-shot [`PaEngine`] session.
///
/// # Errors
/// Propagates [`PaError`] from the quotient relaxations.
///
/// # Panics
/// Panics if `β ∉ (0, 1]` or the graph is disconnected/empty.
pub fn approx_sssp(g: &Graph, source: NodeId, config: &SsspConfig) -> Result<SsspResult, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(config.pa));
    approx_sssp_with_engine(&mut engine, source, config)
}

/// [`approx_sssp`] on a long-lived engine session (the engine's PA
/// configuration takes precedence over `config.pa`). Repeated queries
/// with the same `β`/`seed` reuse the cached cluster-partition pipeline.
///
/// # Errors
/// Propagates [`PaError`] from the quotient relaxations.
///
/// # Panics
/// Panics if `β ∉ (0, 1]` or the graph is disconnected/empty.
pub fn approx_sssp_with_engine(
    engine: &mut PaEngine<'_>,
    source: NodeId,
    config: &SsspConfig,
) -> Result<SsspResult, PaError> {
    let g = engine.graph();
    assert!(
        config.beta > 0.0 && config.beta <= 1.0,
        "beta must be in (0, 1]"
    );
    assert!(
        g.n() > 0 && g.is_connected(),
        "SSSP needs a connected graph"
    );
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cost = CostReport::zero();

    // --- LDD via shifted multi-source BFS (Miller–Peng–Xu). ---
    // ln(n)/β is a few dozen for any sane β; the cast cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    let radius_cap = ((n.max(2) as f64).ln() / config.beta).ceil() as usize + 1;
    // Geometric start shifts, truncated to the cap.
    let shift: Vec<usize> = (0..n)
        .map(|v| {
            if v == source {
                return 0; // the source always starts its own cluster
            }
            let mut s = 0usize;
            while s < radius_cap && rng.random::<f64>() < 1.0 - config.beta {
                s += 1;
            }
            radius_cap - s
        })
        .collect();
    let mut cluster = vec![usize::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut hop_depth = vec![0usize; n];
    // Time-stepped growth: at time t, nodes with shift == t start their
    // own cluster if unclaimed; claimed frontiers advance one hop.
    let mut frontier: VecDeque<NodeId> = VecDeque::new();
    let mut num_clusters = 0usize;
    let mut rounds_ldd = 0usize;
    let mut messages_ldd = 0u64;
    for t in 0..=radius_cap + n {
        for v in 0..n {
            if cluster[v] == usize::MAX && shift[v] == t {
                cluster[v] = num_clusters;
                num_clusters += 1;
                frontier.push_back(v);
            }
        }
        if frontier.is_empty() && (t > radius_cap) {
            break;
        }
        rounds_ldd += 1;
        let wave: Vec<NodeId> = frontier.drain(..).collect();
        for u in wave {
            let mut nbrs: Vec<(NodeId, usize)> = g.neighbors(u).collect();
            nbrs.sort_unstable();
            for (v, _) in nbrs {
                messages_ldd += 1;
                if cluster[v] == usize::MAX {
                    cluster[v] = cluster[u];
                    parent[v] = Some(u);
                    hop_depth[v] = hop_depth[u] + 1;
                    frontier.push_back(v);
                }
            }
        }
    }
    assert!(
        cluster.iter().all(|&c| c != usize::MAX),
        "LDD must cover the graph"
    );
    cost += CostReport::new(rounds_ldd, messages_ldd);
    let max_radius = hop_depth.iter().copied().max().unwrap_or(0);

    // Weighted depth within the cluster tree (source cluster is rooted at
    // the source by construction: shift[source] = 0 claims it first).
    let mut wdepth = vec![0u64; n];
    // parents are BFS parents, so computing depths is a downward pass.
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by_key(|&v| hop_depth[v]);
    for &v in &order {
        if let Some(p) = parent[v] {
            let e = g.edge_between(v, p).expect("tree edges are graph edges");
            wdepth[v] = wdepth[p] + g.weight(e);
        }
    }
    cost += CostReport::new(2 * max_radius + 1, 2 * n as u64);

    // --- Quotient graph over clusters. ---
    let mut qadj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); num_clusters];
    for (_, u, v, w) in g.edges() {
        if cluster[u] != cluster[v] {
            let wq = wdepth[u] + w + wdepth[v];
            qadj[cluster[u]].push((cluster[v], wq));
            qadj[cluster[v]].push((cluster[u], wq));
        }
    }

    // --- Bellman–Ford over clusters; each round is one PA call. ---
    // One real PA call on the cluster partition prices the relaxations;
    // the engine memoizes its pipeline, so every further round is
    // charged the three wave phases only.
    let cluster_parts = Partition::new(g, cluster.clone())?;
    let pa_first = engine.solve(&cluster_parts, &vec![0; n], Aggregate::Min)?;
    let mut qdist = vec![u64::MAX; num_clusters];
    qdist[cluster[source]] = 0;
    let mut bf_rounds = 0usize;
    loop {
        bf_rounds += 1;
        let mut changed = false;
        for c in 0..num_clusters {
            if qdist[c] == u64::MAX {
                continue;
            }
            for &(d, w) in &qadj[c] {
                let cand = qdist[c].saturating_add(w);
                if cand < qdist[d] {
                    qdist[d] = cand;
                    changed = true;
                }
            }
        }
        if !changed || bf_rounds > num_clusters {
            break;
        }
    }
    cost += pa_first.cost + pa_first.broadcast_cost.repeated(3 * (bf_rounds - 1));

    // Final estimates: quotient distance to the cluster + in-cluster tree
    // walk from the cluster center.
    let estimates: Vec<u64> = (0..n)
        .map(|v| {
            let base = qdist[cluster[v]];
            if base == u64::MAX {
                u64::MAX
            } else {
                base + wdepth[v]
            }
        })
        .collect();
    Ok(SsspResult {
        estimates,
        clusters: num_clusters,
        max_radius,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::{gen, reference};

    fn check_bounds(g: &Graph, source: NodeId, config: &SsspConfig, max_ratio: f64) {
        let truth = reference::dijkstra(g, source);
        let res = approx_sssp(g, source, config).unwrap();
        for v in 0..g.n() {
            assert!(
                res.estimates[v] >= truth[v],
                "node {v}: estimate {} below true {}",
                res.estimates[v],
                truth[v]
            );
            if truth[v] > 0 {
                let ratio = res.estimates[v] as f64 / truth[v] as f64;
                assert!(
                    ratio <= max_ratio,
                    "node {v}: ratio {ratio} exceeds {max_ratio}"
                );
            } else {
                assert_eq!(res.estimates[v], 0, "the source knows distance 0");
            }
        }
    }

    #[test]
    fn source_estimate_is_zero() {
        let g = gen::grid(5, 5);
        let res = approx_sssp(&g, 12, &SsspConfig::default()).unwrap();
        assert_eq!(res.estimates[12], 0);
    }

    #[test]
    fn unit_grid_bounded_ratio() {
        let g = gen::grid(6, 6);
        // Generous ratio: the guarantee is polylog; measured is usually < 4.
        check_bounds(&g, 0, &SsspConfig::default(), 12.0);
    }

    #[test]
    fn weighted_random_graph_upper_bounds() {
        let g = gen::random_connected_weighted(50, 120, 8);
        check_bounds(&g, 3, &SsspConfig::default(), 50.0);
    }

    #[test]
    fn larger_beta_means_smaller_clusters() {
        let g = gen::grid(8, 8);
        let tight = approx_sssp(
            &g,
            0,
            &SsspConfig {
                beta: 0.9,
                ..Default::default()
            },
        )
        .unwrap();
        let loose = approx_sssp(
            &g,
            0,
            &SsspConfig {
                beta: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            tight.clusters >= loose.clusters,
            "beta=0.9 gives {} clusters, beta=0.1 gives {}",
            tight.clusters,
            loose.clusters
        );
    }

    #[test]
    fn path_graph_exact_along_clusters() {
        let g = gen::path(40);
        check_bounds(&g, 0, &SsspConfig::default(), 4.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::grid(5, 7);
        let a = approx_sssp(&g, 0, &SsspConfig::default()).unwrap();
        let b = approx_sssp(&g, 0, &SsspConfig::default()).unwrap();
        assert_eq!(a.estimates, b.estimates);
        assert_eq!(a.cost, b.cost);
    }
}
