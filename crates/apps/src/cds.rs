//! Corollary A.2: `O(log n)`-approximate minimum-weight connected
//! dominating set (MWCDS), after Ghaffari.
//!
//! Ghaffari's algorithm runs Thurimella-style component labelings —
//! instances of PA — to coordinate a greedy weighted-dominating-set phase
//! and then connects the chosen dominators. We implement the same
//! two-phase structure:
//!
//! 1. **Greedy domination** (the classic `O(log n)`-approximation for
//!    weighted dominating set): repeatedly pick the node minimizing
//!    `weight / newly-covered`, coordinated by `O(log n)` aggregation
//!    passes (each pass charged at PA scale).
//! 2. **Connection**: contract the chosen dominators' components
//!    ([`component_labels`](crate::components::component_labels) — one PA
//!    call per merge round, `O(log n)` rounds à la Borůvka) and join them
//!    through cheapest 2-hop paths, the standard CDS completion that
//!    costs another `O(log n)` factor in weight.

use std::collections::HashSet;

use rmo_congest::CostReport;
use rmo_graph::{DisjointSets, Graph, NodeId, Partition};

use rmo_core::{Aggregate, EngineConfig, PaEngine, PaError};

/// Result of [`approx_mwcds`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdsResult {
    /// The connected dominating set.
    pub set: Vec<NodeId>,
    /// Total node weight of the set.
    pub weight: u64,
    /// Measured cost.
    pub cost: CostReport,
}

/// Computes an `O(log² n)`-approximate MWCDS (greedy domination is
/// `O(log n)`, the connection phase loses another logarithmic factor —
/// matching the structure, if not the exact constant, of Corollary A.2).
///
/// `node_weight[v]` — the cost of including `v`.
///
/// # Errors
/// Propagates [`PaError`] from the coordination calls.
///
/// # Panics
/// Panics if the graph is empty/disconnected or weights length mismatches.
pub fn approx_mwcds(
    g: &Graph,
    node_weight: &[u64],
    config: &rmo_core::PaConfig,
) -> Result<CdsResult, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    approx_mwcds_with_engine(&mut engine, node_weight)
}

/// [`approx_mwcds`] on a long-lived engine session. The connection
/// phase's Thurimella-style component labelings run as real PA calls on
/// the engine (each round's "current CDS components + singletons"
/// partition), so the reported cost is measured, not estimated.
///
/// # Errors
/// Propagates [`PaError`] from the coordination calls.
///
/// # Panics
/// Panics if weights length mismatches the node count.
pub fn approx_mwcds_with_engine(
    engine: &mut PaEngine<'_>,
    node_weight: &[u64],
) -> Result<CdsResult, PaError> {
    let g = engine.graph();
    assert_eq!(node_weight.len(), g.n());
    if g.n() == 1 {
        return Ok(CdsResult {
            set: vec![0],
            weight: node_weight[0],
            cost: CostReport::zero(),
        });
    }
    let n = g.n();
    let mut cost = CostReport::zero();

    // --- Phase 1: greedy weighted dominating set. ---
    let mut covered = vec![false; n];
    let mut chosen: Vec<NodeId> = Vec::new();
    let mut in_set = vec![false; n];
    let mut uncovered = n;
    while uncovered > 0 {
        // Each greedy round is coordinated by one aggregation pass.
        cost += CostReport::new(4, 2 * n as u64);
        let mut best: Option<(f64, NodeId)> = None;
        for v in 0..n {
            if in_set[v] {
                continue;
            }
            let gain = std::iter::once(v)
                .chain(g.neighbors(v).map(|(u, _)| u))
                .filter(|&u| !covered[u])
                .count();
            if gain == 0 {
                continue;
            }
            let ratio = node_weight[v] as f64 / gain as f64;
            if best.is_none_or(|(r, b)| ratio < r || (ratio == r && v < b)) {
                best = Some((ratio, v));
            }
        }
        let (_, v) = best.expect("some node covers an uncovered node");
        in_set[v] = true;
        chosen.push(v);
        for u in std::iter::once(v).chain(g.neighbors(v).map(|(u, _)| u)) {
            if !covered[u] {
                covered[u] = true;
                uncovered -= 1;
            }
        }
    }

    // --- Phase 2: connect the dominators (Borůvka over components). ---
    // Components of the chosen set in G[S ∪ bridges]; join nearest
    // components through <= 2 intermediate nodes (dominators are within 3
    // hops of each other through dominated nodes).
    let mut dsu = DisjointSets::new(n);
    loop {
        // Union inside the current set.
        for (_, u, v, _) in g.edges() {
            if in_set[u] && in_set[v] {
                dsu.union(u, v);
            }
        }
        let roots: HashSet<usize> = (0..n).filter(|&v| in_set[v]).map(|v| dsu.find(v)).collect();
        if roots.len() <= 1 {
            break;
        }
        // One component-labeling round: a real PA call whose parts are the
        // current CDS components (connected in G[S]) plus singletons —
        // Ghaffari's Thurimella-style coordination, measured for real.
        let mut remap = std::collections::HashMap::new();
        let mut part_of = vec![0usize; n];
        for (v, slot) in part_of.iter_mut().enumerate() {
            let key = if in_set[v] { dsu.find(v) } else { n + v };
            let next = remap.len();
            *slot = *remap.entry(key).or_insert(next);
        }
        let parts = Partition::new(g, part_of)?;
        let values: Vec<u64> = (0..n as u64).collect();
        cost += engine.solve(&parts, &values, Aggregate::Min)?.cost;
        // Cheapest connector: a path u - x (- y) - v between different
        // components with u, v in S; add the interior nodes.
        let mut best: Option<(u64, Vec<NodeId>)> = None;
        for u in 0..n {
            if !in_set[u] {
                continue;
            }
            let ru = dsu.find(u);
            // 1-hop connectors: u - x - v.
            for (x, _) in g.neighbors(u) {
                for (v, _) in g.neighbors(x) {
                    if in_set[v] && dsu.find(v) != ru {
                        let w = if in_set[x] { 0 } else { node_weight[x] };
                        let path = if in_set[x] { vec![] } else { vec![x] };
                        if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
                            best = Some((w, path));
                        }
                    }
                }
                // 2-hop connectors: u - x - y - v.
                for (y, _) in g.neighbors(x) {
                    if y == u {
                        continue;
                    }
                    for (v, _) in g.neighbors(y) {
                        if in_set[v] && dsu.find(v) != ru {
                            let mut w = 0;
                            let mut path = Vec::new();
                            for inner in [x, y] {
                                if !in_set[inner] {
                                    w += node_weight[inner];
                                    path.push(inner);
                                }
                            }
                            if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
                                best = Some((w, path));
                            }
                        }
                    }
                }
            }
        }
        let (_, path) = best.expect("a dominating set's components connect within 3 hops");
        if path.is_empty() {
            // Components touched through an existing member: union happens
            // at the top of the loop. Nothing to add, but guard against
            // non-progress.
            let before = roots.len();
            for (_, u, v, _) in g.edges() {
                if in_set[u] && in_set[v] {
                    dsu.union(u, v);
                }
            }
            let after: HashSet<usize> =
                (0..n).filter(|&v| in_set[v]).map(|v| dsu.find(v)).collect();
            assert!(after.len() < before, "connector must make progress");
            continue;
        }
        for x in path {
            in_set[x] = true;
            chosen.push(x);
        }
    }

    chosen.sort_unstable();
    chosen.dedup();
    let weight = chosen.iter().map(|&v| node_weight[v]).sum();
    Ok(CdsResult {
        set: chosen,
        weight,
        cost,
    })
}

/// Checks that `set` dominates `g` and induces a connected subgraph.
pub fn is_connected_dominating_set(g: &Graph, set: &[NodeId]) -> bool {
    let in_set: HashSet<NodeId> = set.iter().copied().collect();
    if set.is_empty() {
        return g.n() == 0;
    }
    // Domination.
    for v in 0..g.n() {
        if !in_set.contains(&v) && !g.neighbors(v).any(|(u, _)| in_set.contains(&u)) {
            return false;
        }
    }
    // Connectivity of the induced subgraph.
    let mut seen = HashSet::new();
    let mut stack = vec![set[0]];
    seen.insert(set[0]);
    while let Some(u) = stack.pop() {
        for (v, _) in g.neighbors(u) {
            if in_set.contains(&v) && seen.insert(v) {
                stack.push(v);
            }
        }
    }
    seen.len() == set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_core::PaConfig;
    use rmo_graph::gen;

    fn check(g: &Graph, weights: &[u64]) -> CdsResult {
        let res = approx_mwcds(g, weights, &PaConfig::default()).unwrap();
        assert!(
            is_connected_dominating_set(g, &res.set),
            "output must be a CDS"
        );
        res
    }

    #[test]
    fn star_center_is_optimal() {
        let g = gen::star(10);
        let weights = vec![1u64; 10];
        let res = check(&g, &weights);
        assert_eq!(res.set, vec![0], "the hub alone dominates and is connected");
    }

    #[test]
    fn path_cds_is_interior() {
        let g = gen::path(10);
        let res = check(&g, &[1; 10]);
        // Interior nodes 1..8 are the unique minimal CDS of a path.
        assert!(res.set.len() <= 8);
    }

    #[test]
    fn weights_steer_choice() {
        // A 4-cycle with one cheap and one expensive "hub" pattern: make
        // node 0 free and node 2 costly; 0's closed neighborhood covers
        // {3, 0, 1}; node 1 or 3 must extend coverage to 2.
        let g = gen::cycle(4);
        let res = check(&g, &[1, 10, 100, 10]);
        assert!(
            !res.set.contains(&2),
            "never pay 100 when cheap covers exist"
        );
    }

    #[test]
    fn grid_cds_within_log_factor_of_bruteforce() {
        let g = gen::grid(3, 4);
        let weights: Vec<u64> = (0..12u64).map(|v| 1 + v % 3).collect();
        let res = check(&g, &weights);
        let opt = brute_force_mwcds(&g, &weights);
        let log2n = (12f64).log2();
        assert!(
            res.weight as f64 <= (log2n * log2n + 1.0) * opt as f64,
            "weight {} vs optimal {opt}",
            res.weight
        );
    }

    fn brute_force_mwcds(g: &Graph, weights: &[u64]) -> u64 {
        let n = g.n();
        let mut best = u64::MAX;
        for mask in 1u32..(1 << n) {
            let set: Vec<NodeId> = (0..n).filter(|&v| (mask >> v) & 1 == 1).collect();
            if is_connected_dominating_set(g, &set) {
                let w: u64 = set.iter().map(|&v| weights[v]).sum();
                best = best.min(w);
            }
        }
        best
    }

    #[test]
    fn random_graph_is_valid_cds() {
        let g = gen::gnp_connected(40, 0.12, 6);
        let weights: Vec<u64> = (0..40u64).map(|v| 1 + (v * 17) % 9).collect();
        check(&g, &weights);
    }
}
