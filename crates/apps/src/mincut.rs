//! Corollary 1.4: `(1+ε)`-approximate minimum cut.
//!
//! The paper's recipe (Ghaffari–Haeupler Section 5.2): Karger-style
//! sampling reduces the min cut to `O(log n / ε²)`; then
//! `O(log n)·poly(1/ε)` spanning trees are computed (MSTs under randomly
//! perturbed weights) such that w.h.p. some tree `T*` contains an edge
//! `e*` whose removal splits `T*` into the two sides of a
//! `(1+ε)`-approximate min cut ("the cut 1-respects the tree"); a
//! sketching pass finds that edge. All three ingredients run on PA:
//!
//! * each spanning tree is our Borůvka-over-PA MST ([`crate::mst::pa_mst`]);
//! * evaluating **all** 1-respecting cuts of a tree takes `O(log n)`
//!   aggregation passes (subtree weighted degrees via convergecast, and
//!   the "edges internal to the subtree" correction via the standard
//!   LCA-ancestor sketch), which we charge as `O(log n)` PA-scale passes;
//! * the global argmin is one more `Min` aggregation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rmo_congest::CostReport;
use rmo_graph::{bfs_tree, num::ceil_log2, Graph, NodeId};

use crate::mst::pa_mst_with_engine;
use rmo_core::{EngineConfig, PaConfig, PaEngine, PaError};

/// Configuration for the approximate min-cut.
#[derive(Debug, Clone, Copy)]
pub struct MinCutConfig {
    /// Approximation slack `ε > 0`.
    pub epsilon: f64,
    /// PA configuration for the inner MST runs.
    pub pa: PaConfig,
    /// Seed for the random perturbations.
    pub seed: u64,
    /// Override the number of sampled trees (`None` = the
    /// `O(log n · 1/ε²)` default).
    pub trials: Option<usize>,
}

impl Default for MinCutConfig {
    fn default() -> MinCutConfig {
        MinCutConfig {
            epsilon: 0.2,
            pa: PaConfig::default(),
            seed: 1,
            trials: None,
        }
    }
}

/// Result of [`approx_min_cut`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCutResult {
    /// Weight of the cut found.
    pub weight: u64,
    /// One side of the cut (`true` = in `S`).
    pub side: Vec<bool>,
    /// Number of sampled trees examined.
    pub trials: usize,
    /// Measured total cost.
    pub cost: CostReport,
}

/// Finds a `(1+ε)`-approximate minimum cut w.h.p., using a fresh
/// one-shot [`PaEngine`] session.
///
/// # Errors
/// Propagates [`PaError`] from the inner MST runs.
///
/// # Panics
/// Panics if `ε ≤ 0`, the graph has fewer than 2 nodes, or is
/// disconnected.
pub fn approx_min_cut(g: &Graph, config: &MinCutConfig) -> Result<MinCutResult, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(config.pa));
    approx_min_cut_with_engine(&mut engine, config)
}

/// [`approx_min_cut`] on a long-lived engine session.
///
/// Election and the BFS tree are weight-oblivious, so each sampled
/// perturbation derives its trial session with
/// [`PaEngine::for_reweighted`] — stage 1 is paid once per engine, not
/// once per sampled tree.
///
/// # Errors
/// Propagates [`PaError`] from the inner MST runs.
///
/// # Panics
/// Panics if `ε ≤ 0` or the graph has fewer than 2 nodes.
pub fn approx_min_cut_with_engine(
    engine: &mut PaEngine<'_>,
    config: &MinCutConfig,
) -> Result<MinCutResult, PaError> {
    let g = engine.graph();
    // rmo-lint: allow(R1) — run_query builds the config itself (default ε) and rejects n < 2 as Failed before dispatching here.
    assert!(config.epsilon > 0.0, "epsilon must be positive");
    // rmo-lint: allow(R1) — run_query rejects n < 2 as Failed before dispatching here; direct callers own the documented contract.
    assert!(g.n() >= 2, "min cut needs two nodes");
    let n = g.n();
    let log_n = ceil_log2(n.max(2));
    // The default trial count ≈ log n / ε² is tiny; the cast cannot
    // truncate for any ε a caller would survive.
    #[allow(clippy::cast_possible_truncation)]
    let trials = config
        .trials
        .unwrap_or_else(|| (log_n as f64 / (config.epsilon * config.epsilon)).ceil() as usize)
        .max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    // The tree every trial session reuses is paid for exactly once.
    let mut cost = engine.charge_base();
    let mut best_weight = u64::MAX;
    let mut best_side: Vec<bool> = vec![false; n];

    for _ in 0..trials {
        // Random exponential-ish perturbation: the min cut 1-respects a
        // random greedy tree with constant probability per Karger's tree
        // packing argument. We keep weights positive and bounded.
        let perturbed = g.reweighted(|_, w| {
            let jitter = 1 + (rng.random::<u64>() % (2 * w + 1));
            w.saturating_mul(4)
                .saturating_add(jitter)
                .min((1 << 39) - 1)
        });
        // Same topology, new weights: reuse the session's tree instead of
        // re-running election + BFS for every sampled perturbation.
        let mut trial = engine.for_reweighted(&perturbed);
        let mst = pa_mst_with_engine(&mut trial)?;
        cost += mst.cost;

        // Evaluate all 1-respecting cuts of this tree: for every tree edge
        // e, cut(subtree below e). Subtree membership via the rooted tree.
        let keep: Vec<bool> = {
            let mut k = vec![false; g.m()];
            for &e in &mst.edges {
                k[e] = true;
            }
            k
        };
        let (tree_graph, edge_map) = g.edge_subgraph(&keep);
        let (tree, _) = bfs_tree(&tree_graph, 0);
        let _ = edge_map;
        // wdeg convergecast + internal-edges sketch: O(log n) PA-scale
        // passes (charged), computed below.
        cost += CostReport::new(2 * tree.depth() + 2, 2 * (n as u64) * log_n as u64);
        let sizes_order = tree.top_down_order().to_vec();
        // subtree_cut[v] = weight of cut (subtree(v), rest).
        let mut wdeg_sub: Vec<u64> = vec![0; n];
        let mut internal_sub: Vec<u64> = vec![0; n];
        for (v, wdeg) in wdeg_sub.iter_mut().enumerate() {
            *wdeg = g.neighbors(v).map(|(_, e)| g.weight(e)).sum();
        }
        // For the internal-edge correction we need, per edge, its LCA in
        // the tree; all edges below v contribute... we accumulate: an edge
        // (a,b) is internal to subtree(v) iff v is an ancestor of LCA(a,b)
        // or v = LCA(a,b)... compute LCA by walking up (test scale).
        let mut internal_at_lca: Vec<u64> = vec![0; n];
        for (_, a, b, w) in g.edges() {
            let lca = lca_by_walk(&tree, a, b);
            internal_at_lca[lca] += w;
        }
        for &v in sizes_order.iter().rev() {
            for &c in tree.children_of(v) {
                wdeg_sub[v] += wdeg_sub[c];
                internal_sub[v] += internal_sub[c];
            }
            internal_sub[v] += internal_at_lca[v];
        }
        for v in 0..n {
            if v == tree.root() {
                continue;
            }
            let cut = wdeg_sub[v] - 2 * internal_sub[v];
            if cut < best_weight && cut > 0 {
                best_weight = cut;
                let mut side = vec![false; n];
                mark_subtree(&tree, v, &mut side);
                best_side = side;
            }
        }
        // The argmin over candidates is one Min aggregation.
        cost += CostReport::new(2 * tree.depth() + 2, 2 * n as u64);
    }
    Ok(MinCutResult {
        weight: best_weight,
        side: best_side,
        trials,
        cost,
    })
}

fn lca_by_walk(tree: &rmo_graph::RootedTree, a: NodeId, b: NodeId) -> NodeId {
    let (mut x, mut y) = (a, b);
    while tree.depth_of(x) > tree.depth_of(y) {
        x = tree.parent_of(x).expect("deeper node has parent");
    }
    while tree.depth_of(y) > tree.depth_of(x) {
        y = tree.parent_of(y).expect("deeper node has parent");
    }
    while x != y {
        x = tree.parent_of(x).expect("non-root");
        y = tree.parent_of(y).expect("non-root");
    }
    x
}

fn mark_subtree(tree: &rmo_graph::RootedTree, v: NodeId, side: &mut [bool]) {
    let mut stack = vec![v];
    while let Some(u) = stack.pop() {
        side[u] = true;
        stack.extend(tree.children_of(u).iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::{gen, reference};

    fn check_quality(g: &Graph, config: &MinCutConfig, slack: f64) {
        let exact = reference::stoer_wagner(g);
        let approx = approx_min_cut(g, config).unwrap();
        // The returned side must actually realize the claimed weight.
        let realized: u64 = g
            .edges()
            .filter(|&(_, u, v, _)| approx.side[u] != approx.side[v])
            .map(|(_, _, _, w)| w)
            .sum();
        assert_eq!(realized, approx.weight, "side must match weight");
        assert!(
            approx.weight >= exact.weight,
            "cannot beat the true min cut"
        );
        assert!(
            (approx.weight as f64) <= slack * exact.weight as f64,
            "approx {} vs exact {} exceeds slack {slack}",
            approx.weight,
            exact.weight
        );
    }

    #[test]
    fn dumbbell_bridge_found_exactly() {
        let g = gen::dumbbell(5, 1);
        check_quality(&g, &MinCutConfig::default(), 1.0 + f64::EPSILON);
    }

    #[test]
    fn cycle_cut_is_two() {
        let g = gen::cycle(12);
        let res = approx_min_cut(&g, &MinCutConfig::default()).unwrap();
        assert_eq!(
            res.weight, 2,
            "a cycle's min cut 1-respects every spanning tree"
        );
    }

    #[test]
    fn grid_cut_close_to_exact() {
        let g = gen::grid(4, 8);
        check_quality(&g, &MinCutConfig::default(), 1.5);
    }

    #[test]
    fn weighted_random_graph_quality() {
        let g = gen::random_connected_weighted(24, 60, 9);
        check_quality(
            &g,
            &MinCutConfig {
                trials: Some(12),
                ..MinCutConfig::default()
            },
            2.0,
        );
    }

    #[test]
    fn more_trials_never_hurt() {
        let g = gen::random_connected(20, 45, 4);
        let few = approx_min_cut(
            &g,
            &MinCutConfig {
                trials: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        let many = approx_min_cut(
            &g,
            &MinCutConfig {
                trials: Some(8),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(many.weight <= few.weight);
        assert!(
            many.cost.messages > few.cost.messages,
            "more trials cost more"
        );
    }
}
