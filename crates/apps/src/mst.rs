//! Corollary 1.3: MST via Borůvka over Part-Wise Aggregation.
//!
//! Borůvka's algorithm runs `O(log n)` phases. In each phase every
//! current component finds its minimum-weight outgoing edge — *"an
//! example of Part-Wise Aggregation"* (the paper's proof of
//! Corollary 1.3) — and merges along it. Components are connected
//! subgraphs, so they form a valid PA partition; the aggregate is `Min`
//! over packed `(weight, edge id)` keys.
//!
//! Costs: leader election and the BFS tree are paid once (by the
//! [`PaEngine`] session); every phase pays for a fresh sub-part division
//! and shortcut construction on the new partition plus two PA solves
//! (find the minimum edge; distribute the merged component identity),
//! exactly the composition the corollary charges (`O(log n)` PA
//! invocations).

use rmo_congest::programs::bfs::run_bfs;
use rmo_congest::programs::leader::run_leader_election;
use rmo_congest::{CostReport, Network};
use rmo_graph::{num::ceil_log2, DisjointSets, EdgeId, Graph};

use rmo_core::{Aggregate, EngineConfig, PaConfig, PaEngine, PaError, PaInstance};

/// Configuration of the PA-based MST.
#[derive(Debug, Clone, Copy, Default)]
pub struct MstConfig {
    /// PA pipeline configuration used in every Borůvka phase.
    pub pa: PaConfig,
}

/// Result of [`pa_mst`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaMstResult {
    /// MST edge ids, sorted.
    pub edges: Vec<EdgeId>,
    /// Total MST weight.
    pub total_weight: u64,
    /// Borůvka phases executed (`O(log n)`).
    pub phases: usize,
    /// Measured total cost across all phases.
    pub cost: CostReport,
}

/// Packs `(weight, edge)` into one word so `Min` picks the lightest edge,
/// ties broken by edge id. Requires `weight < 2^40` and `edge < 2^24`.
fn pack(weight: u64, edge: EdgeId) -> u64 {
    assert!(weight < 1 << 40, "weight too large to pack");
    assert!(edge < 1 << 24, "edge id too large to pack");
    (weight << 24) | edge as u64
}

fn unpack_edge(key: u64) -> EdgeId {
    (key & ((1 << 24) - 1)) as EdgeId
}

/// Computes the MST of `g` with Borůvka over PA, using a fresh
/// [`PaEngine`] session. For amortizing election + BFS across several
/// computations on one graph, use [`pa_mst_with_engine`].
///
/// # Errors
/// Propagates [`PaError`] from the PA solves.
///
/// # Panics
/// Panics if `g` is disconnected or empty, or weights exceed `2^40`.
pub fn pa_mst(g: &Graph, config: &MstConfig) -> Result<PaMstResult, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(config.pa));
    pa_mst_with_engine(&mut engine)
}

/// Computes the MST of the engine's graph with Borůvka over PA.
///
/// The engine's BFS tree is shared by every Borůvka phase (no per-phase
/// clone); election + BFS are charged once per engine, so a warm engine
/// pays only the per-phase division/shortcut/solve costs.
///
/// # Errors
/// Propagates [`PaError`] from the PA solves.
///
/// # Panics
/// Panics if the graph is empty, or weights exceed `2^40`.
pub fn pa_mst_with_engine(engine: &mut PaEngine<'_>) -> Result<PaMstResult, PaError> {
    let g = engine.graph();
    assert!(g.n() > 0, "MST of an empty graph");
    let mut cost = CostReport::zero();

    let mut dsu = DisjointSets::new(g.n());
    let mut chosen: Vec<EdgeId> = Vec::new();
    let mut phases = 0usize;
    let max_phases = 2 * ceil_log2(g.n().max(2)) + 2;

    while dsu.set_count() > 1 {
        phases += 1;
        assert!(
            phases <= max_phases,
            "Borůvka must halve components per phase"
        );
        // Current components as a dense partition.
        let root_of: Vec<usize> = (0..g.n()).map(|v| dsu.find(v)).collect();
        let mut remap = std::collections::HashMap::new();
        let mut part_of = vec![0usize; g.n()];
        for v in 0..g.n() {
            let next = remap.len();
            let id = *remap.entry(root_of[v]).or_insert(next);
            part_of[v] = id;
        }
        // Node value: lightest incident outgoing edge (packed), or identity.
        let values: Vec<u64> = (0..g.n())
            .map(|v| {
                g.neighbors(v)
                    .filter(|&(u, _)| root_of[u] != root_of[v])
                    .map(|(_, e)| pack(g.weight(e), e))
                    .min()
                    .unwrap_or(Aggregate::Min.identity())
            })
            .collect();
        let inst = PaInstance::new(g, part_of, values, Aggregate::Min)?;
        let res = engine.solve_instance(&inst)?;
        // The engine charged setup (and, on the very first solve, election
        // + BFS) into `res.cost`. Distributing the merged component
        // identity is one more PA of the same shape on the now-cached
        // partition, i.e. three more wave phases.
        cost += res.cost + res.broadcast_cost.repeated(3);
        // Merge along each part's chosen edge.
        for p in inst.partition().part_ids() {
            let key = res.aggregates[p];
            if key == Aggregate::Min.identity() {
                continue; // isolated component (only possible when done)
            }
            let e = unpack_edge(key);
            let (u, v) = g.endpoints(e);
            if dsu.union(u, v) {
                chosen.push(e);
            }
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    let total_weight = chosen.iter().map(|&e| g.weight(e)).sum();
    Ok(PaMstResult {
        edges: chosen,
        total_weight,
        phases,
        cost,
    })
}

/// Baseline MST: Borůvka where every phase aggregates with the
/// **prior-work** block algorithm (no sub-part division — every node
/// climbs the shortcut individually, Section 3.1). Same output, message-
/// suboptimal: `Ω(nD)` per phase on the Figure 2 instances.
///
/// # Errors
/// Propagates [`PaError`] from the PA solves.
///
/// # Panics
/// Same conditions as [`pa_mst`].
pub fn naive_mst(g: &Graph, config: &MstConfig) -> Result<PaMstResult, PaError> {
    use rmo_core::baseline::naive_block_pa;
    use rmo_shortcut::trivial::trivial_shortcut_with_threshold;

    assert!(g.n() > 0, "MST of an empty graph");
    assert!(g.is_connected(), "MST requires a connected graph");
    let mut cost = CostReport::zero();
    let net = Network::new(g, config.pa.seed);
    let (root, _, elect_cost) = run_leader_election(g, &net).expect("election terminates");
    cost += elect_cost;
    let (tree, _, bfs_cost) = run_bfs(g, &net, root).expect("BFS terminates");
    cost += bfs_cost;

    let mut dsu = DisjointSets::new(g.n());
    let mut chosen: Vec<EdgeId> = Vec::new();
    let mut phases = 0usize;
    let max_phases = 2 * ceil_log2(g.n().max(2)) + 2;
    while dsu.set_count() > 1 {
        phases += 1;
        assert!(
            phases <= max_phases,
            "Borůvka must halve components per phase"
        );
        let root_of: Vec<usize> = (0..g.n()).map(|v| dsu.find(v)).collect();
        let mut remap = std::collections::HashMap::new();
        let mut part_of = vec![0usize; g.n()];
        for v in 0..g.n() {
            let next = remap.len();
            part_of[v] = *remap.entry(root_of[v]).or_insert(next);
        }
        let values: Vec<u64> = (0..g.n())
            .map(|v| {
                g.neighbors(v)
                    .filter(|&(u, _)| root_of[u] != root_of[v])
                    .map(|(_, e)| pack(g.weight(e), e))
                    .min()
                    .unwrap_or(Aggregate::Min.identity())
            })
            .collect();
        let inst = PaInstance::new(g, part_of, values, Aggregate::Min)?;
        // Prior work: every part uses the whole tree (one block), and all
        // nodes climb it themselves.
        let sc = trivial_shortcut_with_threshold(g, &tree, inst.partition(), 1);
        let leaders: Vec<usize> = inst
            .partition()
            .part_ids()
            .map(|p| inst.partition().members(p)[0])
            .collect();
        let res = naive_block_pa(&inst, &tree, &sc, &leaders, config.pa.variant, 1)?;
        cost += res.cost + res.cost;
        for p in inst.partition().part_ids() {
            let key = res.aggregates[p];
            if key == Aggregate::Min.identity() {
                continue;
            }
            let e = unpack_edge(key);
            let (u, v) = g.endpoints(e);
            if dsu.union(u, v) {
                chosen.push(e);
            }
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    let total_weight = chosen.iter().map(|&e| g.weight(e)).sum();
    Ok(PaMstResult {
        edges: chosen,
        total_weight,
        phases,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::{gen, reference};

    #[test]
    fn naive_mst_matches_kruskal_but_costs_more_messages() {
        let g = gen::grid_weighted(6, 12, 5);
        let smart = pa_mst(&g, &MstConfig::default()).unwrap();
        let naive = naive_mst(&g, &MstConfig::default()).unwrap();
        let k = reference::kruskal(&g);
        assert_eq!(naive.total_weight, k.total_weight);
        assert_eq!(smart.total_weight, k.total_weight);
    }

    fn check_against_kruskal(g: &Graph, config: &MstConfig) -> PaMstResult {
        let res = pa_mst(g, config).expect("MST solves");
        let k = reference::kruskal(g);
        assert_eq!(
            res.total_weight, k.total_weight,
            "weight must match Kruskal"
        );
        assert_eq!(res.edges.len(), g.n() - 1);
        // Distinct weights -> unique MST -> identical edge sets.
        res
    }

    #[test]
    fn grid_mst_matches_kruskal() {
        let g = gen::grid_weighted(6, 8, 3);
        let res = check_against_kruskal(&g, &MstConfig::default());
        let k = reference::kruskal(&g);
        assert_eq!(res.edges, k.edges);
    }

    #[test]
    fn random_graph_mst_matches() {
        let g = gen::random_connected_weighted(60, 150, 7);
        let res = check_against_kruskal(&g, &MstConfig::default());
        assert_eq!(res.edges, reference::kruskal(&g).edges);
    }

    #[test]
    fn randomized_pipeline_matches() {
        let g = gen::random_connected_weighted(40, 90, 2);
        let config = MstConfig {
            pa: PaConfig::randomized(5),
        };
        let res = check_against_kruskal(&g, &config);
        assert_eq!(res.edges, reference::kruskal(&g).edges);
    }

    #[test]
    fn phases_are_logarithmic() {
        let g = gen::random_connected_weighted(128, 300, 4);
        let res = pa_mst(&g, &MstConfig::default()).unwrap();
        assert!(res.phases <= 9, "phases = {} > log2(128) + 2", res.phases);
    }

    #[test]
    fn tree_input_returns_itself() {
        let g = gen::random_spanning_tree(30, 6);
        let res = pa_mst(&g, &MstConfig::default()).unwrap();
        assert_eq!(res.edges.len(), 29);
        assert_eq!(res.total_weight, 29, "unit weights");
    }

    #[test]
    fn two_nodes() {
        let g = Graph::from_edges(2, &[(0, 1, 7)]).unwrap();
        let res = pa_mst(&g, &MstConfig::default()).unwrap();
        assert_eq!(res.edges, vec![0]);
        assert_eq!(res.total_weight, 7);
        assert_eq!(res.phases, 1);
    }

    use rmo_graph::Graph;

    #[test]
    fn dumbbell_bridge_always_chosen() {
        let g = gen::dumbbell(5, 1);
        let res = pa_mst(&g, &MstConfig::default()).unwrap();
        let bridge = g.edge_between(4, 5).unwrap();
        assert!(
            res.edges.contains(&bridge),
            "the only inter-clique edge is forced"
        );
    }
}
