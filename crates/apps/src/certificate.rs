//! Thurimella's sparse certificates for k-edge-connectivity.
//!
//! The verification results the paper inherits from Das Sarma et al.
//! lean on Thurimella's sub-linear algorithms for *sparse certificates*:
//! a subgraph `H ⊆ G` with `O(kn)` edges that is k-edge-connected iff
//! `G` is. The classical construction (Nagamochi–Ibaraki via Thurimella's
//! distributed framing): take `k` successive spanning forests
//! `F₁, …, F_k`, each a spanning forest of `G` minus the previous
//! forests; their union is the certificate.
//!
//! Each forest is one connected-components computation — an instance of
//! PA (see [`component_labels`](crate::components::component_labels)) —
//! so the whole certificate costs `k` PA calls: `Õ(k(D + √n))` rounds,
//! `Õ(km)` messages, matching the paper's accounting.

use rmo_congest::CostReport;
use rmo_graph::{DisjointSets, EdgeId, Graph};

use rmo_core::{PaConfig, PaError};

/// A sparse certificate plus its measured cost.
#[derive(Debug, Clone)]
pub struct SparseCertificate {
    /// Edges of the certificate (union of the k forests), sorted.
    pub edges: Vec<EdgeId>,
    /// `forest_of[j]` — the edges of forest `j` (1-based order of
    /// extraction).
    pub forests: Vec<Vec<EdgeId>>,
    /// Measured cost (`k` component-labeling passes).
    pub cost: CostReport,
}

/// Computes a sparse certificate for k-edge-connectivity: the union of
/// `k` successive spanning forests.
///
/// # Errors
/// Propagates [`PaError`] from the PA-based coordination.
///
/// # Panics
/// Panics if `k == 0`.
pub fn sparse_certificate(
    g: &Graph,
    k: usize,
    config: &PaConfig,
) -> Result<SparseCertificate, PaError> {
    assert!(k > 0, "certificate order must be positive");
    let mut used = vec![false; g.m()];
    let mut forests: Vec<Vec<EdgeId>> = Vec::with_capacity(k);
    let mut cost = CostReport::zero();
    for _ in 0..k {
        // One spanning forest of the remaining graph. Distributedly this
        // is a Borůvka/components pass — one PA call on the current
        // forest components; we charge the measured PA cost of a
        // component labeling on G.
        let labels = crate::components::component_labels(g, &[], config)?;
        cost += labels.cost;
        let mut dsu = DisjointSets::new(g.n());
        let mut forest = Vec::new();
        for (e, u, v, _) in g.edges() {
            if !used[e] && dsu.union(u, v) {
                used[e] = true;
                forest.push(e);
            }
        }
        if forest.is_empty() {
            break; // no edges left to take
        }
        forests.push(forest);
    }
    let mut edges: Vec<EdgeId> = forests.iter().flat_map(|f| f.iter().copied()).collect();
    edges.sort_unstable();
    Ok(SparseCertificate {
        edges,
        forests,
        cost,
    })
}

/// Minimum number of edges whose removal disconnects `g` (global edge
/// connectivity), by |V| − 1 max-flow-free contractions — a reference
/// oracle for small graphs (uses Stoer–Wagner on unit weights).
pub fn edge_connectivity(g: &Graph) -> u64 {
    if g.n() < 2 || !g.is_connected() {
        return 0;
    }
    let unit = g.reweighted(|_, _| 1);
    rmo_graph::reference::stoer_wagner(&unit).weight
}

/// Checks the certificate property on small graphs: `cert` preserves
/// k-edge-connectivity decisions, i.e.
/// `min(k, λ(G)) == min(k, λ(H))` where `λ` is edge connectivity.
pub fn certificate_preserves_connectivity(g: &Graph, cert: &[EdgeId], k: usize) -> bool {
    let lambda_g = edge_connectivity(g).min(k as u64);
    let keep: Vec<bool> = {
        let set: std::collections::HashSet<EdgeId> = cert.iter().copied().collect();
        (0..g.m()).map(|e| set.contains(&e)).collect()
    };
    let (h, _) = g.edge_subgraph(&keep);
    let lambda_h = if h.is_connected() {
        edge_connectivity(&h).min(k as u64)
    } else {
        0
    };
    lambda_g == lambda_h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    #[test]
    fn certificate_is_sparse() {
        let g = gen::complete(14); // m = 91
        let cert = sparse_certificate(&g, 3, &PaConfig::default()).unwrap();
        assert!(cert.edges.len() <= 3 * (g.n() - 1), "at most k(n-1) edges");
        assert!(cert.edges.len() < g.m(), "sparser than the clique");
    }

    #[test]
    fn forests_are_forests_and_disjoint() {
        let g = gen::gnp_connected(30, 0.3, 2);
        let cert = sparse_certificate(&g, 4, &PaConfig::default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for forest in &cert.forests {
            let mut dsu = DisjointSets::new(g.n());
            for &e in forest {
                assert!(seen.insert(e), "edge {e} in two forests");
                let (u, v) = g.endpoints(e);
                assert!(dsu.union(u, v), "cycle inside a forest");
            }
        }
    }

    #[test]
    fn first_forest_spans_connected_graph() {
        let g = gen::grid(5, 6);
        let cert = sparse_certificate(&g, 2, &PaConfig::default()).unwrap();
        assert_eq!(cert.forests[0].len(), g.n() - 1);
    }

    #[test]
    fn certificate_preserves_k_connectivity_decisions() {
        for (g, k) in [
            (gen::complete(8), 3usize),
            (gen::cycle(10), 2),
            (gen::dumbbell(5, 1).reweighted(|_, _| 1), 2),
            (gen::grid(4, 5), 2),
            (gen::torus(4, 4), 3),
        ] {
            let cert = sparse_certificate(&g, k, &PaConfig::default()).unwrap();
            assert!(
                certificate_preserves_connectivity(&g, &cert.edges, k),
                "certificate broke lambda decision at k = {k}"
            );
        }
    }

    #[test]
    fn edge_connectivity_reference() {
        assert_eq!(edge_connectivity(&gen::cycle(7)), 2);
        assert_eq!(edge_connectivity(&gen::path(5)), 1);
        assert_eq!(edge_connectivity(&gen::complete(6)), 5);
        assert_eq!(
            edge_connectivity(&gen::dumbbell(4, 1).reweighted(|_, _| 1)),
            1
        );
    }

    #[test]
    fn cost_scales_with_k() {
        let g = gen::grid(6, 6);
        let c2 = sparse_certificate(&g, 2, &PaConfig::default()).unwrap();
        let c4 = sparse_certificate(&g, 4, &PaConfig::default()).unwrap();
        assert!(
            c4.cost.messages >= c2.cost.messages,
            "more forests, more passes"
        );
    }
}
