//! `StreamGateway` — a streaming front-end over [`PaCluster`].
//!
//! The cluster serves batch-in/batch-out; a fleet under live traffic
//! sees a *continuous* query stream. The gateway closes that gap:
//!
//! * queries arrive as [`Arrival`]s — each stamped with a **logical
//!   arrival tick** chosen by the caller (monotone non-decreasing).
//!   Ticks are the gateway's only clock: nothing on the deterministic
//!   path reads a wall clock, so a recorded run replays bit-for-bit on
//!   any machine at any speed;
//! * an **adaptive batcher** closes the open batch on *size* (it
//!   reached [`StreamConfig::max_batch`]) or on *deadline* (logical
//!   time passed the first queued arrival by
//!   [`StreamConfig::max_wait_ticks`]) — whichever happens first. A
//!   final partial batch is flushed when the stream ends;
//! * **admission control** rejects, with a typed [`RejectReason`],
//!   any query whose home shard (the stable [`PaCluster::shard_of`]
//!   hash) already holds [`StreamConfig::high_water`] admitted-but-
//!   unfinished queries — backpressure instead of unbounded queueing —
//!   plus unknown graphs and non-monotone ticks. A graph the cluster
//!   last served **split across replica shards** (see
//!   `ReplicaPolicy`) is charged to the least-loaded member of its
//!   replica set instead of only its home shard, so replicating a hot
//!   graph widens its admission headroom to match;
//! * closed batches execute on the cluster's shared batch core
//!   ([`PaCluster`]'s `run_batch`), and **responses stream back
//!   per-query** (see [`StreamEvent::Response`]) the moment each
//!   group finishes, not at batch end;
//! * completion is *modeled* in logical time against the scheduler's
//!   deterministic pre-steal plan: each shard serves its planned
//!   queries in order at [`StreamConfig::work_per_tick`] cost units
//!   per tick, and a batch is done when its slowest shard is. Modeled
//!   latency is therefore a pure function of the workload — run-time
//!   stealing can only move wall-clock time, never a reported
//!   percentile.
//!
//! # The replay contract, extended to arrival order
//!
//! Every accepted query's arrival tick and every batch boundary land
//! in an [`ArrivalLog`] whose per-batch records nest the batch's
//! [`ServeLog`]. [`StreamGateway::replay`] re-drives a trace against
//! the log and reproduces the recorded run **bit-for-bit**: responses,
//! rejections, batch boundaries, modeled completion ticks, `ServeLog`
//! placements, and engine counters. Any divergence (a different trace,
//! a different fleet) is reported as a typed [`ReplayMismatch`], never
//! a panic — this module is pinned at **zero** reachable panic sites
//! in `lint-ratchet.toml [r1]`.
//!
//! ```rust
//! use rmo_apps::service::{GraphId, PaCluster};
//! use rmo_apps::stream::{Arrival, StreamConfig, StreamGateway};
//! use rmo_apps::Query;
//! use rmo_graph::gen;
//!
//! let fleet = || {
//!     let mut cluster = PaCluster::new(2);
//!     cluster.add_graph(GraphId(1), gen::grid(4, 4));
//!     cluster.add_graph(GraphId(2), gen::path(12));
//!     cluster
//! };
//! let trace = vec![
//!     Arrival { tick: 0, graph: GraphId(1), query: Query::Mst },
//!     Arrival { tick: 3, graph: GraphId(2), query: Query::Mst },
//!     Arrival { tick: 90, graph: GraphId(1), query: Query::Kdom { k: 6 } },
//! ];
//! let mut gateway = StreamGateway::new(fleet(), StreamConfig::new());
//! let report = gateway.run(&trace);
//! assert!(report.outcomes.iter().all(|o| o.result.is_ok()));
//! assert_eq!(report.stats.batches, 2, "the tick-90 straggler opens batch 2");
//! // A fresh, identically prepared gateway replays the log bit-for-bit.
//! let mut fresh = StreamGateway::new(fleet(), StreamConfig::new());
//! let replayed = fresh.replay(&trace, &report.log).unwrap();
//! assert_eq!(replayed, report);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::mpsc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rmo_core::{word_fingerprint, EngineStats};

use crate::dispatch::{Query, QueryResponse};
use crate::service::{
    mixed_workload, zipf_workload, ExecMode, GraphId, PaCluster, ServeLog,
};

/// One query entering the gateway: *when* (a logical tick), *where*
/// (the target graph), *what* (the query). Ticks must be monotone
/// non-decreasing along a trace; the gateway rejects regressions
/// (see [`RejectReason::TickRegression`]) rather than reordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Logical arrival time. Any monotone stamp works — a sequence
    /// number, a quantized wall clock recorded *outside* the
    /// deterministic path, a simulated Poisson process.
    pub tick: u64,
    /// The registered graph the query targets.
    pub graph: GraphId,
    /// The query itself.
    pub query: Query,
}

/// Gateway tuning: batching thresholds, the backpressure high-water
/// mark, and the logical service rate. All logical-time; no field has
/// a wall-clock unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// A batch closes as soon as it holds this many queries
    /// (`0` behaves as `1`).
    pub max_batch: usize,
    /// A non-empty batch closes once the stream reaches
    /// `first arrival + max_wait_ticks` — the latency bound a trickle
    /// of traffic gets. `0` means a batch never outlives its opening
    /// tick.
    pub max_wait_ticks: u64,
    /// Admission high-water mark: a query is rejected while its home
    /// shard already has this many admitted-but-unfinished queries.
    /// `0` rejects everything — useful for drain tests.
    pub high_water: usize,
    /// Modeled service rate: a shard retires this much deterministic
    /// query cost (rounds + messages) per logical tick (`0` behaves
    /// as: every query takes its whole cost in ticks). Only the
    /// latency *model* reads this; execution is unthrottled.
    pub work_per_tick: u64,
}

impl StreamConfig {
    /// Defaults sized for the harness workloads: batches of up to 16,
    /// a 32-tick deadline, 64 queries of headroom per shard, and
    /// 4096 cost units per tick.
    pub fn new() -> StreamConfig {
        StreamConfig {
            max_batch: 16,
            max_wait_ticks: 32,
            high_water: 64,
            work_per_tick: 4096,
        }
    }

    /// Returns the config with [`StreamConfig::max_batch`] replaced.
    pub fn with_max_batch(mut self, max_batch: usize) -> StreamConfig {
        self.max_batch = max_batch;
        self
    }

    /// Returns the config with [`StreamConfig::max_wait_ticks`] replaced.
    pub fn with_max_wait_ticks(mut self, max_wait_ticks: u64) -> StreamConfig {
        self.max_wait_ticks = max_wait_ticks;
        self
    }

    /// Returns the config with [`StreamConfig::high_water`] replaced.
    pub fn with_high_water(mut self, high_water: usize) -> StreamConfig {
        self.high_water = high_water;
        self
    }

    /// Returns the config with [`StreamConfig::work_per_tick`] replaced.
    pub fn with_work_per_tick(mut self, work_per_tick: u64) -> StreamConfig {
        self.work_per_tick = work_per_tick;
        self
    }
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig::new()
    }
}

/// Why admission control turned a query away. Typed so callers can
/// retry-with-backoff on saturation but drop unknown graphs; the
/// `Display` form is the operator-facing diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The query's admission shard is at the high-water mark: `depth`
    /// admitted queries are still unfinished there. For an unsplit
    /// graph this is its home shard; for a graph last served across
    /// replica shards it is the *least-loaded* replica-set member —
    /// saturation means every member is full.
    ShardSaturated {
        /// The saturated admission shard ([`PaCluster::shard_of`] for
        /// an unsplit graph, the least-loaded replica otherwise).
        shard: usize,
        /// Unfinished admitted queries on that shard at arrival.
        depth: usize,
        /// The configured limit ([`StreamConfig::high_water`]).
        high_water: usize,
    },
    /// The target graph is not registered with the cluster. (Batch
    /// serving answers this with a `Failed` *response*; the gateway
    /// already knows at admission and never queues the query.)
    UnknownGraph(GraphId),
    /// The arrival's tick ran backwards relative to the stream.
    TickRegression {
        /// The offending arrival's tick.
        tick: u64,
        /// The latest tick the stream had already reached.
        last: u64,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::ShardSaturated {
                shard,
                depth,
                high_water,
            } => write!(
                f,
                "shard {shard} saturated: {depth} queries pending >= high water {high_water}"
            ),
            RejectReason::UnknownGraph(id) => {
                write!(f, "graph {id} is not registered with this cluster")
            }
            RejectReason::TickRegression { tick, last } => {
                write!(f, "arrival tick {tick} regresses behind tick {last}")
            }
        }
    }
}

/// What closed a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchClose {
    /// It reached [`StreamConfig::max_batch`] queries.
    Size,
    /// Logical time reached its deadline
    /// (first arrival + [`StreamConfig::max_wait_ticks`]).
    Deadline,
    /// The stream ended with the batch still open.
    Flush,
}

/// One batch's record in the [`ArrivalLog`]: its boundary in the
/// arrival stream, its modeled execution window, and the nested
/// [`ServeLog`] placement of its cluster run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Tick of the batch's first arrival.
    pub open_tick: u64,
    /// Tick the batcher closed it.
    pub close_tick: u64,
    /// What closed it.
    pub closed_by: BatchClose,
    /// Modeled tick execution began (the server may have still been
    /// busy with the previous batch at `close_tick`).
    pub start_tick: u64,
    /// Modeled tick the slowest shard finished.
    pub done_tick: u64,
    /// The admitted queries, as `(stream sequence number, arrival
    /// tick)` pairs in admission order.
    pub queries: Vec<(usize, u64)>,
    /// The cluster placement of the batch's execution — feed back
    /// through the replay path to reproduce it.
    pub serve: ServeLog,
}

/// The arrival-order log of a whole streaming run: every batch
/// boundary, every admitted query's tick, every batch's placement.
/// [`StreamGateway::replay`] re-drives a trace against it bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArrivalLog {
    /// Batches in execution order.
    pub batches: Vec<BatchRecord>,
}

/// One arrival's fate: rejected at admission, or admitted into a
/// batch and answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// The arrival's tick, as stamped on the trace.
    pub tick: u64,
    /// The response (admitted) or the typed rejection.
    pub result: Result<QueryResponse, RejectReason>,
    /// The batch (index into [`ArrivalLog::batches`]) that served the
    /// query; `None` for rejected arrivals.
    pub batch: Option<usize>,
    /// Modeled completion tick; `None` for rejected arrivals.
    pub done_tick: Option<u64>,
}

impl StreamOutcome {
    /// Modeled queueing + service latency in ticks (admitted queries
    /// only).
    pub fn latency(&self) -> Option<u64> {
        self.done_tick.map(|done| done.saturating_sub(self.tick))
    }
}

/// Deterministic counters of one streaming run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamStats {
    /// Arrivals presented to the gateway.
    pub arrivals: u64,
    /// Arrivals admitted (and therefore served).
    pub admitted: u64,
    /// Arrivals turned away with a [`RejectReason`].
    pub rejected: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches closed by [`BatchClose::Size`].
    pub size_closes: u64,
    /// Batches closed by [`BatchClose::Deadline`].
    pub deadline_closes: u64,
    /// Batches closed by [`BatchClose::Flush`].
    pub flush_closes: u64,
    /// Modeled tick the last batch finished (0 if none ran).
    pub done_tick: u64,
    /// The cluster's engine counters after the run (lifetime).
    pub engine: EngineStats,
}

impl fmt::Display for StreamStats {
    /// One-line run summary, e.g.
    /// `48 arrivals: 45 admitted / 3 rejected over 7 batches (4 size, 2 deadline, 1 flush), done at tick 310 | …engine…`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} arrivals: {} admitted / {} rejected over {} batches \
             ({} size, {} deadline, {} flush), done at tick {} | {}",
            self.arrivals,
            self.admitted,
            self.rejected,
            self.batches,
            self.size_closes,
            self.deadline_closes,
            self.flush_closes,
            self.done_tick,
            self.engine,
        )
    }
}

/// The outcome of one streaming run: per-arrival outcomes (in arrival
/// order), the replayable [`ArrivalLog`], and the run counters.
/// `PartialEq`/`Eq` so the replay contract is one `assert_eq!` — every
/// field is deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamReport {
    /// One outcome per arrival, in arrival (sequence) order.
    pub outcomes: Vec<StreamOutcome>,
    /// The replayable record of the run.
    pub log: ArrivalLog,
    /// Run counters.
    pub stats: StreamStats,
}

impl StreamReport {
    /// Modeled latencies of the admitted queries, sorted ascending.
    pub fn latencies(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.outcomes.iter().filter_map(StreamOutcome::latency).collect();
        out.sort_unstable();
        out
    }

    /// Nearest-rank percentile (`pct` in 0..=100) of the modeled
    /// latencies; `None` if nothing was admitted.
    pub fn latency_percentile(&self, pct: usize) -> Option<u64> {
        let lat = self.latencies();
        let rank = pct.min(100).saturating_mul(lat.len().saturating_sub(1)) / 100;
        lat.get(rank).copied()
    }

    /// The sequence numbers the gateway rejected, with their reasons.
    pub fn rejections(&self) -> Vec<(usize, RejectReason)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(seq, o)| match o.result {
                Err(reason) => Some((seq, reason)),
                Ok(_) => None,
            })
            .collect()
    }
}

/// Live progress of a streaming run, pushed to the caller's sink (or
/// over the channel in [`StreamGateway::run_channel`]) as it happens.
///
/// Event *order* within a batch's responses follows execution, so the
/// threaded mode may interleave differently run to run; the
/// [`StreamReport`] is the deterministic record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamEvent {
    /// Arrival `seq` passed admission at `tick`.
    Admitted {
        /// Stream sequence number (index into the trace / outcomes).
        seq: usize,
        /// Its arrival tick.
        tick: u64,
    },
    /// Arrival `seq` was turned away.
    Rejected {
        /// Stream sequence number.
        seq: usize,
        /// Its arrival tick.
        tick: u64,
        /// Why.
        reason: RejectReason,
    },
    /// The open batch closed and was queued for execution.
    BatchClosed {
        /// Index into [`ArrivalLog::batches`].
        batch: usize,
        /// Queries in it.
        size: usize,
        /// What closed it.
        closed_by: BatchClose,
        /// Its first arrival's tick.
        open_tick: u64,
        /// The tick it closed.
        close_tick: u64,
    },
    /// One response, the moment its graph group finished.
    Response {
        /// Stream sequence number of the answered query.
        seq: usize,
        /// The response.
        response: QueryResponse,
    },
    /// A batch's modeled execution window completed; its shard depths
    /// were released.
    BatchDone {
        /// Index into [`ArrivalLog::batches`].
        batch: usize,
        /// Modeled completion tick.
        done_tick: u64,
    },
}

/// A replay diverged from its [`ArrivalLog`] — different trace,
/// different fleet, or a truncated/foreign log. Reported, never
/// panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayMismatch {
    /// The batch where the divergence surfaced, if it got that far.
    pub batch: Option<usize>,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl fmt::Display for ReplayMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.batch {
            Some(batch) => write!(f, "replay diverged at batch {batch}: {}", self.detail),
            None => write!(f, "replay diverged: {}", self.detail),
        }
    }
}

impl std::error::Error for ReplayMismatch {}

/// A batch that left the batcher and awaits the server.
struct ClosedBatch {
    /// Global batch index (== its slot in [`ArrivalLog::batches`]).
    index: usize,
    seqs: Vec<usize>,
    open_tick: u64,
    close_tick: u64,
    closed_by: BatchClose,
}

/// The batch the modeled server is currently busy with.
struct InFlight {
    batch: usize,
    done_tick: u64,
    /// Admission depth to release at `done_tick`, per charged shard.
    releases: BTreeMap<usize, usize>,
}

/// The gateway's event machine for one run: admission, the open
/// batch, the closed-batch queue, and the modeled server, all driven
/// by logical arrival ticks. Every decision is a pure function of
/// (trace, config, fleet), which is the whole replay story.
struct Session<'a> {
    cluster: &'a mut PaCluster,
    config: StreamConfig,
    threaded: bool,
    replay: Option<&'a ArrivalLog>,
    /// Every arrival seen, indexed by sequence number.
    arrived: Vec<Arrival>,
    outcomes: Vec<StreamOutcome>,
    /// Admitted-but-unfinished queries per admission shard.
    depths: BTreeMap<usize, usize>,
    /// Replica placement of the most recent batch that *split* each
    /// graph (from its `ServeLog` fork events): admission charges the
    /// least-loaded member instead of only the home shard. A graph
    /// served unsplit drops back to home-shard accounting.
    replica_sets: BTreeMap<GraphId, Vec<usize>>,
    /// The shard each admitted query's depth was charged to, by
    /// sequence number — releases must decrement the shard that was
    /// actually charged, not the recomputed home shard.
    charged: BTreeMap<usize, usize>,
    /// The open batch's sequence numbers.
    open: Vec<usize>,
    open_tick: u64,
    closed: VecDeque<ClosedBatch>,
    in_flight: Option<InFlight>,
    /// Tick the modeled server is next free.
    free_at: u64,
    /// Latest arrival tick seen (monotonicity watermark).
    last_tick: u64,
    /// Batches issued so far (assigns [`ClosedBatch::index`]).
    batch_seq: usize,
    batches: Vec<BatchRecord>,
    mismatch: Option<ReplayMismatch>,
}

/// The three logical-time event kinds, in tie-break priority order at
/// an equal tick: a batch completion releases depth *before* the
/// deadline check closes the open batch, which happens *before* the
/// server picks up new work.
enum Pending {
    Done,
    DeadlineClose,
    ServeStart,
}

impl<'a> Session<'a> {
    fn new(
        cluster: &'a mut PaCluster,
        config: StreamConfig,
        threaded: bool,
        replay: Option<&'a ArrivalLog>,
    ) -> Session<'a> {
        Session {
            cluster,
            config,
            threaded,
            replay,
            arrived: Vec::new(),
            outcomes: Vec::new(),
            depths: BTreeMap::new(),
            replica_sets: BTreeMap::new(),
            charged: BTreeMap::new(),
            open: Vec::new(),
            open_tick: 0,
            closed: VecDeque::new(),
            in_flight: None,
            free_at: 0,
            last_tick: 0,
            batch_seq: 0,
            batches: Vec::new(),
            mismatch: None,
        }
    }

    fn reject(&mut self, arrival: Arrival, reason: RejectReason, sink: &mut dyn FnMut(StreamEvent)) {
        let seq = self.outcomes.len();
        sink(StreamEvent::Rejected {
            seq,
            tick: arrival.tick,
            reason,
        });
        self.outcomes.push(StreamOutcome {
            tick: arrival.tick,
            result: Err(reason),
            batch: None,
            done_tick: None,
        });
        self.arrived.push(arrival);
    }

    /// The shard an arrival's admission depth is charged to, with the
    /// depth already held there: the least-loaded member of the
    /// graph's current replica set (ascending shard order breaks
    /// ties), or the home shard when the graph is unsplit.
    fn admission_shard(&self, graph: GraphId, home: usize) -> (usize, usize) {
        let mut best: Option<(usize, usize)> = None;
        if let Some(set) = self.replica_sets.get(&graph) {
            for &shard in set {
                let depth = self.depths.get(&shard).copied().unwrap_or(0);
                if best.is_none_or(|(_, held)| depth < held) {
                    best = Some((shard, depth));
                }
            }
        }
        best.unwrap_or((home, self.depths.get(&home).copied().unwrap_or(0)))
    }

    /// One arrival: advance logical time to its tick (firing every
    /// due close/serve/done event first), then run admission.
    fn on_arrival(&mut self, arrival: Arrival, sink: &mut dyn FnMut(StreamEvent)) {
        if arrival.tick < self.last_tick {
            let reason = RejectReason::TickRegression {
                tick: arrival.tick,
                last: self.last_tick,
            };
            self.reject(arrival, reason, sink);
            return;
        }
        self.last_tick = arrival.tick;
        self.advance(arrival.tick, sink);
        if self.cluster.graph(arrival.graph).is_none() {
            let reason = RejectReason::UnknownGraph(arrival.graph);
            self.reject(arrival, reason, sink);
            return;
        }
        let home = self.cluster.shard_of(arrival.graph);
        let (shard, depth) = self.admission_shard(arrival.graph, home);
        if depth >= self.config.high_water {
            let reason = RejectReason::ShardSaturated {
                shard,
                depth,
                high_water: self.config.high_water,
            };
            self.reject(arrival, reason, sink);
            return;
        }
        *self.depths.entry(shard).or_insert(0) += 1;
        let seq = self.outcomes.len();
        self.charged.insert(seq, shard);
        sink(StreamEvent::Admitted {
            seq,
            tick: arrival.tick,
        });
        if self.open.is_empty() {
            self.open_tick = arrival.tick;
        }
        self.open.push(seq);
        self.outcomes.push(StreamOutcome {
            tick: arrival.tick,
            // Placeholder until the batch serves; every admitted query
            // is served before the report is assembled (or the run
            // aborts into a ReplayMismatch and the report is dropped).
            result: Ok(QueryResponse::Failed(crate::dispatch::FailReason::NeverScheduled)),
            batch: None,
            done_tick: None,
        });
        self.arrived.push(arrival);
        if self.open.len() >= self.config.max_batch.max(1) {
            self.close_open(self.last_tick, BatchClose::Size, sink);
        }
    }

    /// Fires every due event up to logical time `now`, in tick order
    /// with the [`Pending`] tie-break.
    fn advance(&mut self, now: u64, sink: &mut dyn FnMut(StreamEvent)) {
        loop {
            if self.mismatch.is_some() {
                return;
            }
            let mut best: Option<(u64, Pending)> = None;
            let mut offer = |tick: u64, kind: Pending| {
                if tick <= now && best.as_ref().is_none_or(|&(t, _)| tick < t) {
                    best = Some((tick, kind));
                }
            };
            if let Some(flight) = &self.in_flight {
                offer(flight.done_tick, Pending::Done);
            }
            if !self.open.is_empty() {
                offer(
                    self.open_tick.saturating_add(self.config.max_wait_ticks),
                    Pending::DeadlineClose,
                );
            }
            if self.in_flight.is_none() {
                if let Some(front) = self.closed.front() {
                    offer(front.close_tick.max(self.free_at), Pending::ServeStart);
                }
            }
            match best {
                None => return,
                Some((_, Pending::Done)) => self.finish_in_flight(sink),
                Some((tick, Pending::DeadlineClose)) => {
                    self.close_open(tick, BatchClose::Deadline, sink);
                }
                Some((tick, Pending::ServeStart)) => self.serve_next(tick, sink),
            }
        }
    }

    /// Moves the open batch onto the closed queue.
    fn close_open(&mut self, close_tick: u64, closed_by: BatchClose, sink: &mut dyn FnMut(StreamEvent)) {
        if self.open.is_empty() {
            return;
        }
        let seqs = std::mem::take(&mut self.open);
        let index = self.batch_seq;
        self.batch_seq += 1;
        for &seq in &seqs {
            if let Some(outcome) = self.outcomes.get_mut(seq) {
                outcome.batch = Some(index);
            }
        }
        sink(StreamEvent::BatchClosed {
            batch: index,
            size: seqs.len(),
            closed_by,
            open_tick: self.open_tick,
            close_tick,
        });
        self.closed.push_back(ClosedBatch {
            index,
            seqs,
            open_tick: self.open_tick,
            close_tick,
            closed_by,
        });
    }

    /// The modeled server finished its batch: release the admitted
    /// depth its queries held.
    fn finish_in_flight(&mut self, sink: &mut dyn FnMut(StreamEvent)) {
        let Some(flight) = self.in_flight.take() else {
            return;
        };
        for (shard, count) in flight.releases {
            if let Some(depth) = self.depths.get_mut(&shard) {
                *depth = depth.saturating_sub(count);
            }
        }
        sink(StreamEvent::BatchDone {
            batch: flight.batch,
            done_tick: flight.done_tick,
        });
    }

    /// Executes the next closed batch on the cluster and models its
    /// completion against the deterministic pre-steal plan.
    fn serve_next(&mut self, start: u64, sink: &mut dyn FnMut(StreamEvent)) {
        let Some(batch) = self.closed.pop_front() else {
            return;
        };
        let queries: Vec<(GraphId, Query)> = batch
            .seqs
            .iter()
            .filter_map(|&seq| self.arrived.get(seq))
            .map(|a| (a.graph, a.query.clone()))
            .collect();
        let ticks: Vec<(usize, u64)> = batch
            .seqs
            .iter()
            .filter_map(|&seq| self.arrived.get(seq).map(|a| (seq, a.tick)))
            .collect();
        // Replay: the recorded frame must match this batch exactly
        // before its ServeLog is trusted for placement.
        let mut recorded: Option<&ServeLog> = None;
        if let Some(log) = self.replay {
            let Some(rec) = log.batches.get(batch.index) else {
                self.mismatch = Some(ReplayMismatch {
                    batch: Some(batch.index),
                    detail: format!(
                        "the recorded log has only {} batches",
                        log.batches.len()
                    ),
                });
                return;
            };
            if rec.open_tick != batch.open_tick
                || rec.close_tick != batch.close_tick
                || rec.closed_by != batch.closed_by
                || rec.queries != ticks
            {
                self.mismatch = Some(ReplayMismatch {
                    batch: Some(batch.index),
                    detail: format!(
                        "batch frame diverged: recorded \
                         [{}..{}] {:?} with {} queries, replayed \
                         [{}..{}] {:?} with {} queries",
                        rec.open_tick,
                        rec.close_tick,
                        rec.closed_by,
                        rec.queries.len(),
                        batch.open_tick,
                        batch.close_tick,
                        batch.closed_by,
                        ticks.len(),
                    ),
                });
                return;
            }
            if rec.serve.assignments.len() != self.cluster.shards() {
                self.mismatch = Some(ReplayMismatch {
                    batch: Some(batch.index),
                    detail: format!(
                        "recorded placement spans {} shards, cluster has {}",
                        rec.serve.assignments.len(),
                        self.cluster.shards()
                    ),
                });
                return;
            }
            recorded = Some(&rec.serve);
        }
        // The pre-steal LPT plan — a pure function of (fleet, demand
        // history, batch) — is the latency model's placement. Computed
        // before run_batch: the batch itself updates demand history.
        let plan = self.cluster.planned_execution(&queries);
        let seqs = &batch.seqs;
        let mut relay = |local: usize, resp: &QueryResponse| {
            if let Some(&seq) = seqs.get(local) {
                sink(StreamEvent::Response {
                    seq,
                    response: resp.clone(),
                });
            }
        };
        let mode = match recorded {
            Some(log) => ExecMode::Replay(log),
            None if self.threaded => ExecMode::Threaded,
            None => ExecMode::Sequential,
        };
        let report = self.cluster.run_batch(&queries, mode, Some(&mut relay));
        // The record a replayed batch logs is the recorded ServeLog
        // itself (steal events included): the executed placement is
        // checked against it, so the replayed report — the nested
        // logs too — bit-matches the original.
        let serve_log = match recorded {
            Some(rec) => {
                if report.log.assignments != rec.assignments {
                    self.mismatch = Some(ReplayMismatch {
                        batch: Some(batch.index),
                        detail: format!(
                            "executed placement {:?} diverged from the recorded {:?}",
                            report.log.assignments, rec.assignments
                        ),
                    });
                    return;
                }
                rec.clone()
            }
            None => report.log,
        };
        // Refresh the replica view for later admissions: a graph this
        // batch *split* admits against its replica set from now on; a
        // graph it served unsplit falls back to home-shard accounting.
        // Fork events are planner output (pre-steal, mode-independent),
        // so replay sees the identical admission sequence.
        for (graph, _) in &queries {
            self.replica_sets.remove(graph);
        }
        for event in &serve_log.forks {
            self.replica_sets.insert(event.graph, event.shards.clone());
        }
        // Model per-query completion: each planned shard retires its
        // queries in order at `work_per_tick` cost units per tick.
        let mut done = start;
        let mut modeled: Vec<Option<u64>> = vec![None; queries.len()];
        for shard_plan in &plan {
            let mut tick = start;
            for &local in shard_plan {
                let work = report
                    .responses
                    .get(local)
                    .map(|resp| {
                        let cost = resp.cost();
                        cost.rounds as u64 + cost.messages
                    })
                    .unwrap_or(0);
                let service = work
                    .checked_div(self.config.work_per_tick)
                    .unwrap_or(work)
                    .max(1);
                tick = tick.saturating_add(service);
                if let Some(slot) = modeled.get_mut(local) {
                    *slot = Some(tick);
                }
                done = done.max(tick);
            }
        }
        for (local, &seq) in batch.seqs.iter().enumerate() {
            // Plan-time failures appear on no shard; model them as
            // instant (the plan answers them before execution).
            let done_tick = modeled.get(local).copied().flatten().unwrap_or(start);
            if let (Some(outcome), Some(resp)) =
                (self.outcomes.get_mut(seq), report.responses.get(local))
            {
                outcome.result = Ok(resp.clone());
                outcome.done_tick = Some(done_tick);
            }
        }
        let mut releases: BTreeMap<usize, usize> = BTreeMap::new();
        for &seq in &batch.seqs {
            // Release the shard admission actually charged (a replica
            // member for split graphs, the home shard otherwise).
            let shard = match self.charged.remove(&seq) {
                Some(shard) => shard,
                None => match self.arrived.get(seq) {
                    Some(a) => self.cluster.shard_of(a.graph),
                    None => continue,
                },
            };
            *releases.entry(shard).or_insert(0) += 1;
        }
        self.batches.push(BatchRecord {
            open_tick: batch.open_tick,
            close_tick: batch.close_tick,
            closed_by: batch.closed_by,
            start_tick: start,
            done_tick: done,
            queries: ticks,
            serve: serve_log,
        });
        self.free_at = done;
        self.in_flight = Some(InFlight {
            batch: batch.index,
            done_tick: done,
            releases,
        });
    }

    /// End of stream: flush the open batch and drain every queued
    /// event to quiescence.
    fn finish(&mut self, sink: &mut dyn FnMut(StreamEvent)) {
        self.advance(self.last_tick, sink);
        self.close_open(self.last_tick, BatchClose::Flush, sink);
        self.advance(u64::MAX, sink);
    }

    fn into_report(self) -> (StreamReport, Option<ReplayMismatch>) {
        let mut stats = StreamStats {
            arrivals: self.outcomes.len() as u64,
            done_tick: self.batches.last().map(|b| b.done_tick).unwrap_or(0),
            engine: self.cluster.stats().engine,
            ..StreamStats::default()
        };
        for outcome in &self.outcomes {
            match outcome.result {
                Ok(_) => stats.admitted += 1,
                Err(_) => stats.rejected += 1,
            }
        }
        stats.batches = self.batches.len() as u64;
        for batch in &self.batches {
            match batch.closed_by {
                BatchClose::Size => stats.size_closes += 1,
                BatchClose::Deadline => stats.deadline_closes += 1,
                BatchClose::Flush => stats.flush_closes += 1,
            }
        }
        (
            StreamReport {
                outcomes: self.outcomes,
                log: ArrivalLog {
                    batches: self.batches,
                },
                stats,
            },
            self.mismatch,
        )
    }
}

/// The streaming front-end: owns a [`PaCluster`] and drives arrival
/// traces (or a live channel) through admission, adaptive batching,
/// and the shared batch core. See the module docs for the full story.
pub struct StreamGateway {
    cluster: PaCluster,
    config: StreamConfig,
}

impl StreamGateway {
    /// A gateway over `cluster` with the given tuning.
    pub fn new(cluster: PaCluster, config: StreamConfig) -> StreamGateway {
        StreamGateway { cluster, config }
    }

    /// The active tuning.
    pub fn config(&self) -> StreamConfig {
        self.config
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &PaCluster {
        &self.cluster
    }

    /// The underlying cluster, mutably — e.g. to register graphs
    /// between runs.
    pub fn cluster_mut(&mut self) -> &mut PaCluster {
        &mut self.cluster
    }

    /// Dissolves the gateway back into its cluster (warm engines and
    /// demand history intact).
    pub fn into_cluster(self) -> PaCluster {
        self.cluster
    }

    fn drive(
        &mut self,
        arrivals: impl Iterator<Item = Arrival>,
        threaded: bool,
        replay: Option<&ArrivalLog>,
        sink: &mut dyn FnMut(StreamEvent),
    ) -> (StreamReport, Option<ReplayMismatch>) {
        let mut session = Session::new(&mut self.cluster, self.config, threaded, replay);
        for arrival in arrivals {
            session.on_arrival(arrival, sink);
        }
        session.finish(sink);
        session.into_report()
    }

    /// Streams `trace` through the gateway with threaded batch
    /// execution (the production mode). The report is bit-identical
    /// to [`StreamGateway::run_sequential`] on the same trace, except
    /// that nested [`ServeLog::steals`] (and stolen placements) may
    /// differ — stealing never changes responses, modeled ticks, or
    /// engine counters.
    pub fn run(&mut self, trace: &[Arrival]) -> StreamReport {
        self.run_with(trace, &mut |_| {})
    }

    /// [`StreamGateway::run`] with a live [`StreamEvent`] sink:
    /// admissions, rejections, batch boundaries, and per-query
    /// responses as they happen.
    pub fn run_with(
        &mut self,
        trace: &[Arrival],
        sink: &mut dyn FnMut(StreamEvent),
    ) -> StreamReport {
        let (report, _) = self.drive(trace.iter().cloned(), true, None, sink);
        report
    }

    /// Streams `trace` with the deterministic sequential executor —
    /// the reference mode replays and tests compare against.
    pub fn run_sequential(&mut self, trace: &[Arrival]) -> StreamReport {
        let (report, _) = self.drive(trace.iter().cloned(), false, None, &mut |_| {});
        report
    }

    /// Live-channel mode: arrivals stream in over `arrivals` (the
    /// run ends when every sender is dropped), progress streams out
    /// as [`StreamEvent`]s over `events` — per-query responses
    /// included, so a caller gets answers while later queries are
    /// still arriving. Identical semantics to [`StreamGateway::run`]
    /// on the equivalent trace slice.
    pub fn run_channel(
        &mut self,
        arrivals: mpsc::Receiver<Arrival>,
        events: &mpsc::Sender<StreamEvent>,
    ) -> StreamReport {
        let mut sink = |event: StreamEvent| {
            // A dropped listener only mutes progress; the report still
            // carries everything.
            let _ = events.send(event);
        };
        let (report, _) = self.drive(arrivals.into_iter(), true, None, &mut sink);
        report
    }

    /// Re-drives `trace` against a recorded [`ArrivalLog`], placing
    /// every batch exactly as recorded (nested [`ServeLog`]s included,
    /// executed on the calling thread like
    /// [`PaCluster::serve_replay`]). On an identically prepared
    /// gateway this reproduces the recorded run **bit-for-bit** —
    /// responses, rejections, batch boundaries, modeled ticks,
    /// placements, engine counters.
    ///
    /// # Errors
    /// [`ReplayMismatch`] if the trace or fleet diverges from what the
    /// log recorded (wrong batch framing, missing batches, foreign
    /// placement). The gateway stops at the divergence; no panic.
    pub fn replay(
        &mut self,
        trace: &[Arrival],
        log: &ArrivalLog,
    ) -> Result<StreamReport, ReplayMismatch> {
        let (report, mismatch) = self.drive(trace.iter().cloned(), false, Some(log), &mut |_| {});
        match mismatch {
            Some(mismatch) => Err(mismatch),
            None => Ok(report),
        }
    }
}

/// Stamps a batch workload with seeded, deterministic arrival ticks:
/// bursty inter-arrival gaps with mean ≈ `mean_gap` ticks (a quarter
/// of arrivals land in a burst at gap 0, the rest draw uniformly from
/// `1..=2·mean_gap`). `mean_gap = 0` puts the whole trace on tick 0.
/// Fully deterministic in `(queries, seed, mean_gap)`.
pub fn stamp_arrivals(
    queries: Vec<(GraphId, Query)>,
    seed: u64,
    mean_gap: u64,
) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(word_fingerprint([seed, 0x57A3, mean_gap]));
    let mut tick = 0u64;
    queries
        .into_iter()
        .map(|(graph, query)| {
            let gap = if mean_gap == 0 || rng.random::<f64>() < 0.25 {
                0
            } else {
                rng.random_range(1..=mean_gap.saturating_mul(2).max(1))
            };
            tick = tick.saturating_add(gap);
            Arrival { tick, graph, query }
        })
        .collect()
}

/// [`mixed_workload`] stamped with deterministic arrival ticks — the
/// one trace generator the stream harness and the tests share.
pub fn mixed_arrivals(
    cluster: &PaCluster,
    count: usize,
    seed: u64,
    mean_gap: u64,
) -> Vec<Arrival> {
    stamp_arrivals(mixed_workload(cluster, count, seed), seed, mean_gap)
}

/// [`zipf_workload`] stamped with deterministic arrival ticks: skewed
/// graph popularity under a bursty arrival process.
pub fn zipf_arrivals(
    cluster: &PaCluster,
    count: usize,
    seed: u64,
    exponent: f64,
    mean_gap: u64,
) -> Vec<Arrival> {
    stamp_arrivals(zipf_workload(cluster, count, seed, exponent), seed, mean_gap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    fn small_cluster(shards: usize) -> PaCluster {
        let mut cluster = PaCluster::new(shards);
        cluster.add_graph(GraphId(1), gen::grid(4, 5));
        cluster.add_graph(GraphId(2), gen::path(18));
        cluster.add_graph(GraphId(3), gen::gnp_connected(20, 0.2, 5));
        cluster
    }

    fn mst_at(tick: u64, graph: u64) -> Arrival {
        Arrival {
            tick,
            graph: GraphId(graph),
            query: Query::Mst,
        }
    }

    #[test]
    fn size_close_splits_a_burst() {
        let config = StreamConfig::new().with_max_batch(2).with_max_wait_ticks(100);
        let mut gateway = StreamGateway::new(small_cluster(2), config);
        let trace: Vec<Arrival> = (0..5).map(|i| mst_at(i, 1 + i % 2)).collect();
        let report = gateway.run(&trace);
        assert_eq!(report.stats.admitted, 5);
        assert_eq!(report.stats.batches, 3);
        assert_eq!(report.stats.size_closes, 2);
        assert_eq!(report.stats.flush_closes, 1, "the odd query flushes");
        assert_eq!(
            report.log.batches[0].queries,
            vec![(0, 0), (1, 1)],
            "batch 0 is the first two arrivals with their ticks"
        );
        assert!(report.outcomes.iter().all(|o| o.result.is_ok()));
    }

    #[test]
    fn deadline_close_bounds_a_trickle() {
        let config = StreamConfig::new().with_max_batch(100).with_max_wait_ticks(10);
        let mut gateway = StreamGateway::new(small_cluster(2), config);
        // Two arrivals inside one window, a straggler far past it.
        let trace = vec![mst_at(0, 1), mst_at(4, 2), mst_at(50, 1)];
        let report = gateway.run(&trace);
        assert_eq!(report.stats.batches, 2);
        assert_eq!(report.stats.deadline_closes, 1);
        assert_eq!(report.stats.flush_closes, 1);
        let first = &report.log.batches[0];
        assert_eq!(
            (first.open_tick, first.close_tick, first.closed_by),
            (0, 10, BatchClose::Deadline),
            "the window closes exactly at open + max_wait"
        );
        // The straggler's latency is not inflated by the early batch.
        assert_eq!(report.outcomes[2].batch, Some(1));
    }

    #[test]
    fn unknown_graph_and_tick_regression_reject_typed() {
        let mut gateway = StreamGateway::new(small_cluster(2), StreamConfig::new());
        let trace = vec![mst_at(5, 1), mst_at(6, 99), mst_at(2, 2)];
        let report = gateway.run(&trace);
        assert!(report.outcomes[0].result.is_ok());
        assert_eq!(
            report.outcomes[1].result,
            Err(RejectReason::UnknownGraph(GraphId(99)))
        );
        assert_eq!(
            report.outcomes[2].result,
            Err(RejectReason::TickRegression { tick: 2, last: 6 })
        );
        assert_eq!(report.stats.rejected, 2);
        // Typed, but the operator diagnostics stay readable.
        assert!(RejectReason::UnknownGraph(GraphId(99))
            .to_string()
            .contains("g99 is not registered"));
        assert!(RejectReason::TickRegression { tick: 2, last: 6 }
            .to_string()
            .contains("regresses"));
        let saturated = RejectReason::ShardSaturated {
            shard: 1,
            depth: 8,
            high_water: 8,
        };
        assert!(saturated.to_string().contains("high water 8"));
    }

    #[test]
    fn backpressure_rejects_until_depth_releases() {
        // One graph, one shard: depth is global. High water 2, and the
        // first batch (size 2) stays in flight long enough that the
        // burst's tail is rejected — then a later arrival, past the
        // modeled done tick, is admitted again.
        let config = StreamConfig::new()
            .with_max_batch(2)
            .with_max_wait_ticks(1000)
            .with_high_water(2)
            .with_work_per_tick(1);
        let mut cluster = PaCluster::new(1);
        cluster.add_graph(GraphId(1), gen::grid(4, 5));
        let mut gateway = StreamGateway::new(cluster, config);
        let trace = vec![
            mst_at(0, 1),
            mst_at(0, 1),
            mst_at(1, 1), // burst tail: depth still 2 (batch in flight)
            mst_at(1_000_000, 1), // long after the batch drains
        ];
        let report = gateway.run(&trace);
        assert!(report.outcomes[0].result.is_ok());
        assert!(report.outcomes[1].result.is_ok());
        assert!(
            matches!(
                report.outcomes[2].result,
                Err(RejectReason::ShardSaturated {
                    shard: 0,
                    depth: 2,
                    high_water: 2,
                })
            ),
            "{:?}",
            report.outcomes[2].result
        );
        assert!(
            report.outcomes[3].result.is_ok(),
            "depth releases once the batch's modeled window completes"
        );
        assert_eq!(report.rejections().len(), 1);
    }

    #[test]
    fn modeled_ticks_follow_the_plan_and_the_work_rate() {
        let config = StreamConfig::new().with_work_per_tick(0);
        let mut gateway = StreamGateway::new(small_cluster(1), config);
        let trace = vec![mst_at(0, 1), mst_at(0, 1)];
        let report = gateway.run(&trace);
        // work_per_tick 0: each query takes its whole cost in ticks,
        // serially on the single shard.
        let costs: Vec<u64> = report
            .outcomes
            .iter()
            .map(|o| {
                let resp = o.result.as_ref().unwrap();
                resp.cost().rounds as u64 + resp.cost().messages
            })
            .collect();
        assert_eq!(report.outcomes[0].done_tick, Some(costs[0]));
        assert_eq!(report.outcomes[1].done_tick, Some(costs[0] + costs[1]));
        assert_eq!(report.stats.done_tick, costs[0] + costs[1]);
        assert_eq!(report.latency_percentile(0), Some(costs[0]));
        assert_eq!(report.latency_percentile(100), Some(costs[0] + costs[1]));
        assert_eq!(report.latency_percentile(50), Some(costs[0]));
        // An empty report has no percentiles.
        let empty = StreamGateway::new(small_cluster(1), StreamConfig::new()).run(&[]);
        assert_eq!(empty.latency_percentile(50), None);
    }

    #[test]
    fn threaded_and_sequential_runs_agree() {
        let trace = mixed_arrivals(&small_cluster(3), 40, 11, 6);
        let mut threaded = StreamGateway::new(small_cluster(3), StreamConfig::new());
        let mut sequential = StreamGateway::new(small_cluster(3), StreamConfig::new());
        let a = threaded.run(&trace);
        let b = sequential.run_sequential(&trace);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.stats, b.stats);
        // Batch framing matches too; only nested steal placement may
        // differ between the executors.
        for (x, y) in a.log.batches.iter().zip(&b.log.batches) {
            assert_eq!(x.queries, y.queries);
            assert_eq!(
                (x.open_tick, x.close_tick, x.closed_by, x.start_tick, x.done_tick),
                (y.open_tick, y.close_tick, y.closed_by, y.start_tick, y.done_tick)
            );
        }
    }

    #[test]
    fn replay_reproduces_a_threaded_run_bit_for_bit() {
        let trace = mixed_arrivals(&small_cluster(3), 48, 23, 4);
        let config = StreamConfig::new().with_max_batch(8).with_max_wait_ticks(12);
        let mut gateway = StreamGateway::new(small_cluster(3), config);
        let mut events = Vec::new();
        let report = gateway.run_with(&trace, &mut |e| events.push(e));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, StreamEvent::Response { .. })),
            "responses stream out per query"
        );
        let mut fresh = StreamGateway::new(small_cluster(3), config);
        let replayed = fresh.replay(&trace, &report.log).expect("log matches");
        // The whole report — outcomes, every batch record including
        // the nested ServeLog placements and steals, stats — is equal.
        assert_eq!(replayed, report);
    }

    #[test]
    fn replay_rejects_a_diverged_trace() {
        let trace = mixed_arrivals(&small_cluster(2), 12, 7, 3);
        let mut gateway = StreamGateway::new(small_cluster(2), StreamConfig::new());
        let report = gateway.run(&trace);
        // Same log, shifted trace: the batch framing diverges.
        let shifted: Vec<Arrival> = trace
            .iter()
            .cloned()
            .map(|mut a| {
                a.tick = a.tick.saturating_add(1);
                a
            })
            .collect();
        let mut fresh = StreamGateway::new(small_cluster(2), StreamConfig::new());
        let err = fresh.replay(&shifted, &report.log).unwrap_err();
        assert!(err.to_string().contains("diverged"), "{err}");
        // A truncated log is a typed mismatch too, not a panic.
        let mut truncated = report.log.clone();
        truncated.batches.pop();
        let mut fresh = StreamGateway::new(small_cluster(2), StreamConfig::new());
        assert!(fresh.replay(&trace, &truncated).is_err());
    }

    #[test]
    fn run_channel_streams_events_and_matches_the_slice_run() {
        let trace = mixed_arrivals(&small_cluster(2), 20, 31, 5);
        let (atx, arx) = mpsc::channel::<Arrival>();
        let (etx, erx) = mpsc::channel::<StreamEvent>();
        for a in &trace {
            atx.send(a.clone()).unwrap();
        }
        drop(atx);
        let mut gateway = StreamGateway::new(small_cluster(2), StreamConfig::new());
        let live = gateway.run_channel(arx, &etx);
        drop(etx);
        let events: Vec<StreamEvent> = erx.iter().collect();
        let responses = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Response { .. }))
            .count();
        assert_eq!(responses as u64, live.stats.admitted);
        let batch_events = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::BatchClosed { .. }))
            .count();
        assert_eq!(batch_events as u64, live.stats.batches);
        // The channel run is the slice run.
        let slice = StreamGateway::new(small_cluster(2), StreamConfig::new()).run(&trace);
        assert_eq!(live.outcomes, slice.outcomes);
        assert_eq!(live.stats, slice.stats);
    }

    #[test]
    fn arrival_generators_are_deterministic_and_monotone() {
        let cluster = small_cluster(2);
        let a = mixed_arrivals(&cluster, 30, 5, 8);
        assert_eq!(a, mixed_arrivals(&cluster, 30, 5, 8));
        assert!(a.windows(2).all(|w| w[0].tick <= w[1].tick), "monotone");
        assert!(a.iter().any(|x| x.tick > 0), "gaps actually advance time");
        let z = zipf_arrivals(&cluster, 30, 5, 2.0, 8);
        assert_eq!(z, zipf_arrivals(&cluster, 30, 5, 2.0, 8));
        let hot = cluster.graph_ids()[0];
        assert!(z.iter().filter(|x| x.graph == hot).count() * 2 > z.len());
        // mean_gap 0 is one burst at tick 0.
        assert!(stamp_arrivals(mixed_workload(&cluster, 10, 3), 3, 0)
            .iter()
            .all(|x| x.tick == 0));
    }

    #[test]
    fn replicated_graph_admits_against_its_replica_set() {
        use crate::service::ReplicaPolicy;
        // One hot graph on a 4-shard cluster. After a batch splits the
        // graph over replica shards, later arrivals are charged to the
        // least-loaded replica member — admitting where home-shard
        // accounting (the control fleet) rejects.
        let fleet = |replicas: bool| {
            let mut cluster = PaCluster::new(4);
            cluster.add_graph(GraphId(1), gen::grid(5, 5));
            if replicas {
                cluster.set_replica_policy(ReplicaPolicy::new(0.5, 3));
            }
            cluster
        };
        let config = StreamConfig::new()
            .with_max_batch(3)
            .with_max_wait_ticks(10)
            .with_high_water(4)
            .with_work_per_tick(1);
        // Warm-up solve (batch 0, unsplit: the core is cold), then a
        // burst of three that batch 1 serves split three ways.
        let mut trace = vec![mst_at(0, 1), mst_at(50, 1), mst_at(50, 1), mst_at(50, 1)];
        // Learn batch 1's modeled start tick, then land two probes
        // exactly there: the burst's depth is still held, the split
        // has just been recorded.
        let probe_tick = {
            let report = StreamGateway::new(fleet(true), config).run(&trace);
            report.log.batches[1].start_tick
        };
        trace.push(mst_at(probe_tick, 1));
        trace.push(mst_at(probe_tick, 1));
        let mut gateway = StreamGateway::new(fleet(true), config);
        let report = gateway.run(&trace);
        assert!(
            !report.log.batches[1].serve.forks.is_empty(),
            "the burst batch splits the hot graph"
        );
        assert_eq!(
            report.stats.rejected,
            0,
            "replica-set accounting spreads the held depth: {:?}",
            report.rejections()
        );
        // Control: the same trace with replicas disabled piles every
        // charge on the home shard, and the second probe bounces.
        let mut control_gateway = StreamGateway::new(fleet(false), config);
        let control = control_gateway.run(&trace);
        assert!(control.log.batches[1].serve.forks.is_empty());
        assert!(
            matches!(
                control.outcomes[5].result,
                Err(RejectReason::ShardSaturated { .. })
            ),
            "{:?}",
            control.outcomes[5].result
        );
        // The widened admission stays deterministic: the sequential
        // executor and a bit-for-bit replay agree.
        let sequential = StreamGateway::new(fleet(true), config).run_sequential(&trace);
        assert_eq!(sequential.outcomes, report.outcomes);
        assert_eq!(sequential.stats, report.stats);
        let mut fresh = StreamGateway::new(fleet(true), config);
        let replayed = fresh.replay(&trace, &report.log).expect("log matches");
        assert_eq!(replayed, report);
    }

    #[test]
    fn warm_state_persists_across_batches_like_the_batch_path() {
        // The same queries streamed in two batches must hit the warm
        // cache exactly like two serve() calls would.
        let trace = vec![
            Arrival {
                tick: 0,
                graph: GraphId(1),
                query: Query::Kdom { k: 6 },
            },
            Arrival {
                tick: 100,
                graph: GraphId(1),
                query: Query::Kdom { k: 6 },
            },
        ];
        let config = StreamConfig::new().with_max_wait_ticks(10);
        let mut gateway = StreamGateway::new(small_cluster(2), config);
        let report = gateway.run(&trace);
        assert_eq!(report.stats.batches, 2);
        let mut cluster = small_cluster(2);
        cluster.serve(&[(GraphId(1), Query::Kdom { k: 6 })]);
        let batch = cluster.serve(&[(GraphId(1), Query::Kdom { k: 6 })]);
        assert_eq!(report.stats.engine, batch.stats.engine);
    }
}
