//! Corollary A.3: `k`-dominating sets of size `O(n/k)`.
//!
//! The paper: *"a simple generalization of our sub-part division
//! algorithm"* — run Algorithm 6 with completion threshold `k/6` instead
//! of `D`; the sub-part representatives form the dominating set. Each
//! complete sub-part has at least `k/6` nodes (so there are at most
//! `6n/k` representatives) and its spanning tree has depth `O(k)` (so
//! every node is within `k` hops of its representative — the `4D` bound
//! of Lemma 6.4 with `D = k/6` gives `4k/6 < k`).

use rmo_congest::CostReport;
use rmo_graph::{bfs_distances, Graph, NodeId};

use rmo_core::{EngineConfig, PaEngine};

/// Result of [`k_dominating_set`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KDomResult {
    /// The dominating set (sub-part representatives).
    pub set: Vec<NodeId>,
    /// Max hop distance from any node to the set (must be ≤ `k`).
    pub max_distance: usize,
    /// Measured cost (the division plus one PA-scale labeling pass).
    pub cost: CostReport,
}

/// Computes a `k`-dominating set of size `O(n/k)`, using a fresh
/// one-shot [`PaEngine`] session.
///
/// # Panics
/// Panics if `k == 0` or the graph is disconnected/empty.
pub fn k_dominating_set(g: &Graph, k: usize) -> KDomResult {
    let mut engine = PaEngine::new(g, EngineConfig::new());
    k_dominating_set_with_engine(&mut engine, k)
}

/// [`k_dominating_set`] on a long-lived engine session. The Algorithm 6
/// division is memoized per threshold, so repeated queries with the same
/// `k` (and the eccentricity estimator built on top) are charged only
/// the final labeling pass.
///
/// # Panics
/// Panics if `k == 0`.
pub fn k_dominating_set_with_engine(engine: &mut PaEngine<'_>, k: usize) -> KDomResult {
    // rmo-lint: allow(R1) — run_query rejects k == 0 as Failed before dispatching here; direct callers own the documented contract.
    assert!(k > 0, "k must be positive");
    let g = engine.graph();
    let threshold = k.div_ceil(6);
    let (res, division_cost) = engine.whole_graph_division(threshold);
    let set: Vec<NodeId> = (0..res.division.num_subparts())
        .map(|s| res.division.rep_of_subpart(s))
        .collect();
    // The distributed algorithm reaches its representative along the
    // sub-part tree; graph distance is at most that tree distance, so the
    // multi-source eccentricity is the honest upper-bound check.
    let max_distance = multi_source_ecc(g, &set);
    let cost = division_cost + CostReport::new(2, 2 * g.n() as u64);
    KDomResult {
        set,
        max_distance,
        cost,
    }
}

/// Max distance from any node to the nearest node of `sources`.
fn multi_source_ecc(g: &Graph, sources: &[NodeId]) -> usize {
    let mut best = vec![usize::MAX; g.n()];
    for &s in sources {
        for (v, d) in bfs_distances(g, s).into_iter().enumerate() {
            if d < best[v] {
                best[v] = d;
            }
        }
    }
    best.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    fn check(g: &Graph, k: usize) -> KDomResult {
        let res = k_dominating_set(g, k);
        assert!(
            res.max_distance <= k,
            "k = {k}: some node is {} hops from the set",
            res.max_distance
        );
        assert!(
            res.set.len() <= (6 * g.n()) / k + 1,
            "k = {k}: set size {} exceeds 6n/k = {}",
            res.set.len(),
            6 * g.n() / k
        );
        res
    }

    #[test]
    fn path_k_domination() {
        let g = gen::path(120);
        for k in [6, 12, 30, 60] {
            check(&g, k);
        }
    }

    #[test]
    fn grid_k_domination() {
        let g = gen::grid(10, 12);
        for k in [6, 12, 24] {
            check(&g, k);
        }
    }

    #[test]
    fn random_graph_k_domination() {
        let g = gen::gnp_connected(100, 0.04, 3);
        check(&g, 12);
    }

    #[test]
    fn small_k_yields_large_set() {
        let g = gen::path(30);
        let res = check(&g, 6);
        assert!(res.set.len() >= 30 / 12, "k=6 forces many representatives");
    }

    #[test]
    fn k_not_divisible_by_six_still_bounded() {
        // Regression: floor(k/6) thresholds broke the 6n/k size bound for
        // k ∈ {7..11, 13..17, ...}; the ceiling fixes it.
        let g = gen::grid(20, 30);
        for k in [7usize, 11, 16, 23] {
            check(&g, k);
        }
    }

    #[test]
    fn k_larger_than_graph_gives_single_rep() {
        let g = gen::grid(4, 4);
        let res = k_dominating_set(&g, 1000);
        assert_eq!(res.set.len(), 1, "one sub-part spans everything");
        assert!(res.max_distance <= 6, "grid diameter bounds the distance");
    }
}
