//! Thurimella's connected-component labeling as one PA call
//! (Appendix A.2 of the paper).
//!
//! Input: the network `G` and a subgraph `H ⊆ E(G)`. Output: a label per
//! node such that `ℓ(u) = ℓ(v)` iff `u` and `v` are in the same connected
//! component of `H`. The paper observes this "is easily cast as an
//! instance of PA, by having each part elect a leader … and use the
//! leader's ID as a label" — which is exactly what this module does: the
//! parts are the `H`-components (each connected in `G`), and one `Min`
//! aggregation over node ids labels everyone.

use rmo_congest::CostReport;
use rmo_graph::{DisjointSets, EdgeId, Graph, Partition};

use rmo_core::{Aggregate, EngineConfig, PaConfig, PaEngine, PaError};

/// Component labels plus the measured PA cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    /// `labels[v]` — the minimum node id in `v`'s `H`-component.
    pub labels: Vec<u64>,
    /// Dense component index per node (derived from labels).
    pub component_of: Vec<usize>,
    /// Number of `H`-components.
    pub num_components: usize,
    /// Measured cost (one PA call).
    pub cost: CostReport,
}

/// Labels the connected components of the subgraph given by `h_edges`,
/// using a fresh one-shot [`PaEngine`] session. Callers issuing several
/// labelings on one graph should hold an engine and use
/// [`component_labels_with_engine`] so the BFS tree and per-partition
/// artifacts are reused.
///
/// # Errors
/// Propagates [`PaError`] (the graph must be connected, per CONGEST).
pub fn component_labels(
    g: &Graph,
    h_edges: &[EdgeId],
    config: &PaConfig,
) -> Result<ComponentLabels, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    component_labels_with_engine(&mut engine, h_edges)
}

/// Labels the connected components of the subgraph given by `h_edges` on
/// a long-lived engine session (one PA call; repeated labelings of the
/// same `H` hit the artifact cache).
///
/// # Errors
/// Propagates [`PaError`].
pub fn component_labels_with_engine(
    engine: &mut PaEngine<'_>,
    h_edges: &[EdgeId],
) -> Result<ComponentLabels, PaError> {
    let g = engine.graph();
    // H-components as a partition of V (connected in H => connected in G).
    let mut dsu = DisjointSets::new(g.n());
    for &e in h_edges {
        let (u, v) = g.endpoints(e);
        dsu.union(u, v);
    }
    let mut remap = std::collections::HashMap::new();
    let mut part_of = vec![0usize; g.n()];
    for (v, slot) in part_of.iter_mut().enumerate() {
        let r = dsu.find(v);
        let next = remap.len();
        *slot = *remap.entry(r).or_insert(next);
    }
    let values: Vec<u64> = (0..g.n() as u64).collect();
    let parts = Partition::new(g, part_of)?;
    let res = engine.solve(&parts, &values, Aggregate::Min)?;
    let labels = res.node_values.clone();
    // Dense component ids from labels.
    let mut seen = std::collections::HashMap::new();
    let component_of: Vec<usize> = labels
        .iter()
        .map(|&l| {
            let next = seen.len();
            *seen.entry(l).or_insert(next)
        })
        .collect();
    Ok(ComponentLabels {
        labels,
        num_components: seen.len(),
        component_of,
        cost: res.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    #[test]
    fn labels_match_h_connectivity() {
        let g = gen::grid(5, 5);
        // H = horizontal edges only -> components are the rows.
        let h: Vec<EdgeId> = g
            .edges()
            .filter(|&(_, u, v, _)| u / 5 == v / 5)
            .map(|(e, _, _, _)| e)
            .collect();
        let out = component_labels(&g, &h, &PaConfig::default()).unwrap();
        assert_eq!(out.num_components, 5);
        for u in 0..25 {
            for v in 0..25 {
                assert_eq!(
                    out.labels[u] == out.labels[v],
                    u / 5 == v / 5,
                    "nodes {u},{v}"
                );
            }
        }
    }

    #[test]
    fn empty_h_gives_singletons() {
        let g = gen::cycle(7);
        let out = component_labels(&g, &[], &PaConfig::default()).unwrap();
        assert_eq!(out.num_components, 7);
        for v in 0..7 {
            assert_eq!(out.labels[v], v as u64, "own id is the only candidate");
        }
    }

    #[test]
    fn full_h_gives_one_component() {
        let g = gen::grid(4, 4);
        let all: Vec<EdgeId> = (0..g.m()).collect();
        let out = component_labels(&g, &all, &PaConfig::default()).unwrap();
        assert_eq!(out.num_components, 1);
        assert!(out.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn labels_are_min_ids() {
        let g = gen::path(9);
        // H = two segments: edges 0..3 (nodes 0..4) and 5..7 (nodes 5..8).
        let h: Vec<EdgeId> = vec![0, 1, 2, 3, 5, 6, 7];
        let out = component_labels(&g, &h, &PaConfig::default()).unwrap();
        for v in 0..5 {
            assert_eq!(out.labels[v], 0);
        }
        for v in 5..9 {
            assert_eq!(out.labels[v], 5);
        }
    }
}
