//! Approximate eccentricity and radius via k-dominating sets.
//!
//! The paper's Corollary A.3 discussion notes that `O(n/k)`-size
//! k-dominating sets power `(1+ε)`-approximate eccentricity computation
//! (Holzer–Wattenhofer). The reduction: BFS from every node of a
//! k-dominating set `S`; then for any `v`, `ecc(v)` is within `±k` of
//! `max_{s∈S} (d(v, s) + ecc_S(s))`-style combinations. This module
//! implements the additive-`k` estimator
//!
//! `est(v) = max_{s∈S} d(v, s) + k`,
//!
//! which satisfies `ecc(v) ≤ est(v) ≤ ecc(v) + k`: every node is within
//! `k` of a dominator, so the farthest dominator under-shoots the true
//! eccentricity by at most `k` and over-shoots it never.
//!
//! with every BFS costed at `O(D)` rounds / `O(m)` messages and `|S|`
//! BFS waves pipelined over the k-dominating set.

use rmo_congest::CostReport;
use rmo_graph::{bfs_distances, Graph, NodeId};

use crate::kdom::k_dominating_set_with_engine;
use rmo_core::{EngineConfig, PaEngine};

/// Result of [`approx_eccentricities`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EccentricityResult {
    /// Per-node eccentricity estimates, each within `[ecc(v), ecc(v)+k]`.
    pub estimates: Vec<usize>,
    /// Estimated radius (min estimate).
    pub radius_estimate: usize,
    /// Estimated diameter (max estimate).
    pub diameter_estimate: usize,
    /// The k-dominating set used.
    pub dominating_set: Vec<NodeId>,
    /// Measured cost: the k-domination run plus `|S|` pipelined BFS waves.
    pub cost: CostReport,
}

/// Computes additive-`k` eccentricity over-estimates for every node,
/// using a fresh one-shot [`PaEngine`] session.
///
/// # Panics
/// Panics if `k == 0` or the graph is disconnected/empty.
pub fn approx_eccentricities(g: &Graph, k: usize) -> EccentricityResult {
    let mut engine = PaEngine::new(g, EngineConfig::new());
    approx_eccentricities_with_engine(&mut engine, k)
}

/// [`approx_eccentricities`] on a long-lived engine session (the
/// underlying k-domination division is memoized per `k`).
///
/// # Panics
/// Panics if `k == 0`.
pub fn approx_eccentricities_with_engine(
    engine: &mut PaEngine<'_>,
    k: usize,
) -> EccentricityResult {
    // rmo-lint: allow(R1) — run_query rejects k == 0 as Failed before dispatching here; direct callers own the documented contract.
    assert!(k > 0, "k must be positive");
    let g = engine.graph();
    let kd = k_dominating_set_with_engine(engine, k);
    let mut cost = kd.cost;
    // BFS from every dominator: |S| waves, pipelined over the BFS tree —
    // rounds O(D + |S|), messages O(|S| * m); we charge each BFS's
    // messages exactly and the pipelined round bound.
    let mut max_to_set = vec![0usize; g.n()];
    let mut max_depth = 0usize;
    for &s in &kd.set {
        let dist = bfs_distances(g, s);
        max_depth = max_depth.max(dist.iter().copied().max().expect("non-empty"));
        for (v, d) in dist.into_iter().enumerate() {
            max_to_set[v] = max_to_set[v].max(d);
        }
        cost += CostReport::new(0, 2 * g.m() as u64);
    }
    cost += CostReport::new(max_depth + kd.set.len(), 0);
    let estimates: Vec<usize> = max_to_set.iter().map(|&d| d + k).collect();
    let radius_estimate = estimates.iter().copied().min().unwrap_or(0);
    let diameter_estimate = estimates.iter().copied().max().unwrap_or(0);
    EccentricityResult {
        estimates,
        radius_estimate,
        diameter_estimate,
        dominating_set: kd.set,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::{eccentricity, gen};

    fn check_bounds(g: &Graph, k: usize) {
        let res = approx_eccentricities(g, k);
        for v in 0..g.n() {
            let true_ecc = eccentricity(g, v);
            assert!(
                res.estimates[v] >= true_ecc,
                "node {v}: estimate {} below true {true_ecc}",
                res.estimates[v]
            );
            assert!(
                res.estimates[v] <= true_ecc + k,
                "node {v}: estimate {} above true {true_ecc} + k",
                res.estimates[v]
            );
        }
    }

    #[test]
    fn path_eccentricities() {
        check_bounds(&gen::path(60), 6);
        check_bounds(&gen::path(60), 12);
    }

    #[test]
    fn grid_eccentricities() {
        check_bounds(&gen::grid(8, 10), 6);
    }

    #[test]
    fn random_graph_eccentricities() {
        check_bounds(&gen::gnp_connected(70, 0.06, 3), 6);
    }

    #[test]
    fn diameter_and_radius_sandwich() {
        let g = gen::grid(6, 12);
        let res = approx_eccentricities(&g, 6);
        let true_diam = rmo_graph::diameter_exact(&g);
        assert!(res.diameter_estimate >= true_diam);
        assert!(res.diameter_estimate <= true_diam + 6);
        let true_radius = (0..g.n()).map(|v| eccentricity(&g, v)).min().unwrap();
        assert!(res.radius_estimate >= true_radius);
        assert!(res.radius_estimate <= true_radius + 6);
    }

    #[test]
    fn small_k_is_tighter() {
        let g = gen::path(80);
        let tight = approx_eccentricities(&g, 4);
        let loose = approx_eccentricities(&g, 40);
        let slack_tight: usize = (0..g.n())
            .map(|v| tight.estimates[v] - eccentricity(&g, v))
            .max()
            .unwrap();
        let slack_loose: usize = (0..g.n())
            .map(|v| loose.estimates[v] - eccentricity(&g, v))
            .max()
            .unwrap();
        assert!(
            slack_tight <= slack_loose + 8,
            "smaller k cannot be much worse"
        );
        assert!(tight.dominating_set.len() >= loose.dominating_set.len());
    }
}
