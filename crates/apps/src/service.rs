//! `PaCluster` — a sharded, concurrent multi-graph serving layer.
//!
//! The paper's Theorem 1.2 infrastructure is reusable *per graph*; a
//! [`rmo_core::PaEngine`] captures that for one session. A service under
//! mixed traffic holds **many** graphs at once, so the cluster:
//!
//! * owns a fleet of registered graphs and batches each graph's queries
//!   into one **graph group** per batch (same-graph, then same-affinity
//!   queries back-to-back — see [`Query::affinity`] — maximizing warm
//!   cache hits without changing any answer);
//! * **places** groups on shards by policy ([`SchedulePolicy`]): the
//!   default `Balanced` mode estimates each group's work
//!   ([`Query::weight`], superseded by observed demand history once a
//!   graph has served traffic) and runs an LPT assignment — heaviest
//!   group first, onto the least-loaded shard — while the legacy
//!   `Pinned` mode hashes each [`GraphId`] to a fixed shard;
//! * optionally **splits** one hot graph's group across shards
//!   ([`ReplicaPolicy`], off by default): a group whose estimated work
//!   exceeds a threshold fraction of the mean per-shard load is cut
//!   into contiguous chunks, each riding its own fork of the graph's
//!   warmed engine ([`rmo_core::EngineCore::fork`] — stage-1 tree,
//!   artifact cache, and division memo cloned, counters fresh) and
//!   LPT-placed on a distinct shard; after the batch exactly one warm
//!   core is re-parked (lowest replica index) with every other
//!   replica's counters absorbed into it, and each fork is recorded as
//!   a [`ReplicaEvent`] in the batch's [`ServeLog`];
//! * serves the shards on `std::thread::scope` workers that stream
//!   responses back over an `mpsc` channel ([`PaCluster::serve`]); in
//!   `Balanced` mode an **idle worker steals** whole parked graph
//!   groups from the most loaded shard's tail (legal because a group's
//!   [`rmo_core::EngineCore`] is `Send` and parked between groups),
//!   and every steal is recorded in an epoch log ([`ServeLog`]);
//! * replays any recorded final assignment deterministically on the
//!   calling thread ([`PaCluster::serve_replay`]), with
//!   [`PaCluster::serve_sequential`] as the no-steal reference replay;
//! * parks each engine's warm state ([`rmo_core::EngineCore`]) between
//!   batches, so a follow-up batch on the same fleet starts hot.
//!
//! # Determinism contract
//!
//! Threaded and sequential serving produce **bit-identical** responses
//! and engine counters *regardless of placement or stealing*: a batch
//! has exactly one group per graph, the group's internal order is fixed
//! by the scheduler, and the group's engine travels with it — so which
//! shard executes a group can affect only wall-clock timing, never
//! results or per-query [`rmo_congest::CostReport`]s. On top of that,
//! [`PaCluster::serve_replay`] fed a threaded run's [`ServeLog`]
//! reproduces the identical *final assignment* (steals included), so
//! even the per-shard placement bookkeeping bit-matches. The
//! `tests/cluster_serve.rs` suite pins both levels.
//!
//! ```rust
//! use rmo_apps::service::{GraphId, PaCluster};
//! use rmo_apps::dispatch::Query;
//! use rmo_core::Aggregate;
//! use rmo_graph::gen;
//!
//! let mut cluster = PaCluster::new(2);
//! cluster.add_graph(GraphId(7), gen::grid(4, 4));
//! cluster.add_graph(GraphId(8), gen::path(12));
//! let rows = gen::grid_row_partition(4, 4);
//! let report = cluster.serve(&[
//!     (GraphId(7), Query::Pa {
//!         assignment: rows.clone(),
//!         values: (0..16).collect(),
//!         agg: Aggregate::Min,
//!     }),
//!     (GraphId(8), Query::Mst),
//!     (GraphId(7), Query::Pa {
//!         assignment: rows,
//!         values: (16..32).collect(),
//!         agg: Aggregate::Min,
//!     }),
//! ]);
//! assert!(report.responses.iter().all(|r| r.is_ok()));
//! // The two same-partition Pa queries were batched back-to-back:
//! assert_eq!(report.stats.engine.hits, 1);
//! // The log records where every group ran; replaying it on an equal
//! // cluster reproduces the batch bit-for-bit.
//! let replay = {
//!     let mut fresh = PaCluster::new(2);
//!     fresh.add_graph(GraphId(7), gen::grid(4, 4));
//!     fresh.add_graph(GraphId(8), gen::path(12));
//!     fresh.serve_replay(&[
//!         (GraphId(7), Query::Pa {
//!             assignment: gen::grid_row_partition(4, 4),
//!             values: (0..16).collect(),
//!             agg: Aggregate::Min,
//!         }),
//!         (GraphId(8), Query::Mst),
//!         (GraphId(7), Query::Pa {
//!             assignment: gen::grid_row_partition(4, 4),
//!             values: (16..32).collect(),
//!             agg: Aggregate::Min,
//!         }),
//!     ], &report.log)
//! };
//! assert_eq!(replay.responses, report.responses);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rmo_graph::{gen, Graph};

use rmo_core::{
    word_fingerprint, Aggregate, EngineConfig, EngineCore, EngineStats, PaEngine, PaError,
};

use crate::dispatch::{run_query, FailReason, Query, QueryResponse, VerifyCheck};

/// The cluster-wide name of a registered graph. The `Pinned` policy
/// hashes the id (stable FNV-1a), so ids chosen by the caller —
/// database keys, tenant ids — spread over shards without coordination;
/// the `Balanced` policy places by estimated work instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphId(pub u64);

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// How the batch scheduler places graph groups on shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Every graph is pinned to `stable_hash(id) % shards` for the
    /// cluster's lifetime, and workers never steal. Placement is
    /// workload-oblivious: a hot graph (or several graphs hashing to
    /// one shard) serializes on one worker while the rest idle.
    Pinned,
    /// The default: an LPT (longest-processing-time-first) assignment
    /// of graph groups by estimated work — [`Query::weight`] a priori,
    /// observed demand history once a graph has served traffic — plus
    /// run-time work stealing between the threaded workers. Every steal
    /// lands in the batch's [`ServeLog`] so the placement is replayable.
    #[default]
    Balanced,
}

/// A registered graph: the topology plus the engine profile its
/// sessions run with.
struct GraphSlot {
    graph: Graph,
    config: EngineConfig,
}

/// One recorded steal: during a threaded `Balanced` batch, the idle
/// worker `to` took graph `graph`'s whole group from shard `from`'s
/// queue tail. `epoch` is the global steal sequence number within the
/// batch (steals are totally ordered by the scheduler lock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEvent {
    /// Position in the batch's global steal order (0-based).
    pub epoch: u64,
    /// The stolen graph group.
    pub graph: GraphId,
    /// The shard it was queued on.
    pub from: usize,
    /// The worker that took and executed it.
    pub to: usize,
}

/// How the `Balanced` planner splits one hot graph's group across
/// shards (see the replica-scheduling paragraph in the module docs).
///
/// A group is eligible when its estimated work exceeds
/// `threshold × mean per-shard load` of the batch, the graph's engine
/// is already warm (forking a cold core would just build stage 1
/// twice), and the group holds more than one query. An eligible group
/// is cut into up to `max_replicas` contiguous chunks (never more than
/// there are shards or queries), each riding a fork of the warmed
/// [`EngineCore`] and LPT-placed on a distinct shard.
///
/// The default is [`ReplicaPolicy::disabled`]: splitting is strictly
/// opt-in, so existing single-group placement behavior is unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaPolicy {
    /// Split when a group's estimated work exceeds this multiple of
    /// the batch's mean per-shard load.
    pub threshold: f64,
    /// Upper bound on chunks per graph (`1` disables splitting).
    pub max_replicas: usize,
}

impl Default for ReplicaPolicy {
    fn default() -> ReplicaPolicy {
        ReplicaPolicy::disabled()
    }
}

impl ReplicaPolicy {
    /// Replica scheduling off: no group is ever split (the default).
    pub fn disabled() -> ReplicaPolicy {
        ReplicaPolicy {
            threshold: f64::INFINITY,
            max_replicas: 1,
        }
    }

    /// Split groups heavier than `threshold × mean shard load` into up
    /// to `max_replicas` chunks.
    ///
    /// # Panics
    /// Panics if `max_replicas` is zero or `threshold` is not positive.
    pub fn new(threshold: f64, max_replicas: usize) -> ReplicaPolicy {
        assert!(max_replicas >= 1, "a group is at least one chunk");
        assert!(threshold > 0.0, "a non-positive threshold splits noise");
        ReplicaPolicy {
            threshold,
            max_replicas,
        }
    }
}

/// One recorded fork: the planner split `graph`'s group into
/// `replicas` contiguous chunks, initially placed on `shards`
/// (indexed by replica; steals may move chunks afterwards, like any
/// group). Events land in [`ServeLog::forks`] in plan order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaEvent {
    /// The split graph.
    pub graph: GraphId,
    /// How many chunks the group was cut into (≥ 2).
    pub replicas: usize,
    /// The initial (pre-steal) shard of each chunk, indexed by replica;
    /// all distinct.
    pub shards: Vec<usize>,
}

/// The placement record of one batch: where every graph group actually
/// executed, plus the steal events that moved groups off their initial
/// LPT shard. Feeding a log back through [`PaCluster::serve_replay`]
/// reproduces the identical final assignment — the cluster's
/// determinism contract extended over stealing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeLog {
    /// Per shard, the graph groups it executed, in execution order.
    pub assignments: Vec<Vec<GraphId>>,
    /// Aligned with `assignments`: the replica index of each executed
    /// chunk (`0` for unsplit groups). Hand-built or hand-edited logs
    /// may leave entries out; a missing index replays as replica 0.
    pub replica_indices: Vec<Vec<usize>>,
    /// Every steal, in epoch order (empty for sequential/pinned runs).
    pub steals: Vec<StealEvent>,
    /// Every planner fork of this batch, in plan order.
    pub forks: Vec<ReplicaEvent>,
}

/// Per-shard serving counters for one batch.
///
/// Deliberately not `PartialEq`: `busy` is wall-clock and never
/// reproducible, so equality on this type would be timing-flaky.
/// Determinism assertions compare [`ClusterStats::engine`], the
/// responses, and the [`ServeLog`] instead.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Queries this shard served.
    pub queries: u64,
    /// Graphs this shard executed, in execution order (mirrors the
    /// batch's [`ServeLog::assignments`] entry).
    pub graph_ids: Vec<GraphId>,
    /// Graph groups this shard stole from other shards' queues.
    pub stolen: u64,
    /// Replica chunks (pieces of a split hot group) this shard ran.
    pub replicas: u64,
    /// Time the worker spent serving (from first job to last).
    pub busy: Duration,
}

/// Aggregated cluster counters: the whole fleet's engine economics plus
/// per-shard utilization. (Not `PartialEq` — see [`ShardStats`]; the
/// deterministic slice is [`ClusterStats::engine`].)
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Queries served over the cluster lifetime.
    pub queries: u64,
    /// Queries that returned [`QueryResponse::Failed`].
    pub failed: u64,
    /// The cluster's shard count.
    pub shards: usize,
    /// Graph groups stolen across shards over the cluster lifetime
    /// (nonzero only for threaded `Balanced` serving).
    pub steals: u64,
    /// [`rmo_core::EngineCore::fork`] calls over the cluster lifetime
    /// (replica engines created by the planner).
    pub forks: u64,
    /// Replica chunks executed over the cluster lifetime (a split into
    /// `k` chunks counts `k`).
    pub replicas: u64,
    /// Graphs with a live (warm) engine.
    pub warm_graphs: usize,
    /// Every engine's counters, merged ([`EngineStats::merge`]).
    pub engine: EngineStats,
    /// Per-shard counters for the most recent batch (empty until the
    /// first batch).
    pub per_shard: Vec<ShardStats>,
}

impl fmt::Display for ClusterStats {
    /// One-line fleet summary, e.g.
    /// `42 queries (0 failed) on 6 warm graphs over 4 shards, 2 stolen, 3 forks/4 replica runs | hits/misses/evictions 18/12/0 (60.0% hit), …`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries ({} failed) on {} warm graphs over {} shards, {} stolen, \
             {} forks/{} replica runs | {}",
            self.queries,
            self.failed,
            self.warm_graphs,
            self.shards,
            self.steals,
            self.forks,
            self.replicas,
            self.engine,
        )
    }
}

/// The outcome of one [`PaCluster::serve`] batch.
#[derive(Debug)]
pub struct ServeReport {
    /// One response per submitted query, in submission order.
    pub responses: Vec<QueryResponse>,
    /// Cluster counters after this batch (lifetime engine stats,
    /// per-shard numbers for this batch).
    pub stats: ClusterStats,
    /// Where every graph group executed (feed back through
    /// [`PaCluster::serve_replay`] to reproduce the placement).
    pub log: ServeLog,
    /// Wall-clock time of the batch.
    pub wall: Duration,
}

impl ServeReport {
    /// Mean shard utilization in `[0, 1]`: serving time summed over
    /// shards, divided by `shards × wall`. 1.0 means every worker was
    /// busy the whole batch.
    pub fn utilization(&self) -> f64 {
        let shards = self.stats.per_shard.len().max(1);
        let busy: f64 = self
            .stats
            .per_shard
            .iter()
            .map(|s| s.busy.as_secs_f64())
            .sum();
        let denom = shards as f64 * self.wall.as_secs_f64();
        if denom == 0.0 {
            0.0
        } else {
            (busy / denom).min(1.0)
        }
    }
}

/// What `std::thread::JoinHandle::join` / `catch_unwind` hand back from
/// a panicking shard.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// One graph's whole slice of a batch: every query index for the graph
/// (affinity-batched, execution order), the group's estimated work, and
/// the graph's parked warm engine if it has one. Groups are the unit of
/// placement *and* of stealing — an `EngineCore` is `Send` and parked
/// between groups, so a group can hop shards without any engine state
/// being shared across threads.
struct Group {
    id: GraphId,
    indices: Vec<usize>,
    weight: u64,
    core: Option<EngineCore>,
    /// Which chunk of a split group this is (`0` for unsplit groups —
    /// and for the chunk that will survive as the re-parked core).
    replica: usize,
    /// Total chunks the graph's group was cut into this batch (`1`
    /// when unsplit).
    replicas: usize,
}

/// The shared scheduler state of one running batch, behind one mutex:
/// per-shard group queues, their remaining (stealable) work, the epoch
/// log, and everything workers bank as groups finish. Lock hold times
/// are queue operations only — all serving happens outside the lock.
struct SchedState {
    queues: Vec<VecDeque<Group>>,
    /// Queued (not yet in-flight) weight per shard — what victim
    /// selection compares.
    loads: Vec<u64>,
    steals: Vec<StealEvent>,
    /// Execution order per shard: the final assignment the log records.
    assignments: Vec<Vec<GraphId>>,
    /// Replica index per executed chunk, aligned with `assignments`.
    replica_indices: Vec<Vec<usize>>,
    /// Warm cores banked as each group finishes, tagged with their
    /// replica index (survives worker panics in *other* groups).
    finished: Vec<(GraphId, usize, EngineCore)>,
    stats: Vec<ShardStats>,
}

impl SchedState {
    fn new(shard_groups: Vec<Vec<Group>>) -> SchedState {
        let shards = shard_groups.len();
        let loads = shard_groups
            .iter()
            .map(|groups| groups.iter().map(|g| g.weight).sum())
            .collect();
        SchedState {
            queues: shard_groups.into_iter().map(VecDeque::from).collect(),
            loads,
            steals: Vec::new(),
            assignments: vec![Vec::new(); shards],
            replica_indices: vec![Vec::new(); shards],
            finished: Vec::new(),
            stats: vec![ShardStats::default(); shards],
        }
    }

    /// Replica bookkeeping for a chunk `worker` is about to execute:
    /// the replica index (aligned with the assignment push) and the
    /// per-shard replica counter. Shared by the pop and steal paths of
    /// [`SchedState::next_group`].
    fn note_replica(&mut self, worker: usize, group: &Group) {
        if let Some(indices) = self.replica_indices.get_mut(worker) {
            indices.push(group.replica);
        }
        if group.replicas > 1 {
            if let Some(stats) = self.stats.get_mut(worker) {
                stats.replicas += 1;
            }
        }
    }

    /// The next group `worker` should execute: its own queue's front,
    /// or — when `steal` and its queue is drained — the tail of the
    /// most loaded shard's queue (ties to the lowest shard index; the
    /// tail is the lightest end under LPT ordering, minimizing
    /// disturbance). Steals are recorded in epoch order. `None` means
    /// the worker is done.
    fn next_group(&mut self, worker: usize, steal: bool) -> Option<Group> {
        if let Some(group) = self.queues[worker].pop_front() {
            self.loads[worker] -= group.weight;
            self.assignments[worker].push(group.id);
            self.note_replica(worker, &group);
            return Some(group);
        }
        if !steal {
            return None;
        }
        let victim = (0..self.queues.len())
            .filter(|&s| s != worker && !self.queues[s].is_empty())
            .max_by_key(|&s| (self.loads[s], std::cmp::Reverse(s)))?;
        let group = self.queues[victim].pop_back()?;
        self.loads[victim] -= group.weight;
        self.steals.push(StealEvent {
            epoch: self.steals.len() as u64,
            graph: group.id,
            from: victim,
            to: worker,
        });
        self.stats[worker].stolen += 1;
        self.assignments[worker].push(group.id);
        self.note_replica(worker, &group);
        Some(group)
    }
}

/// Locks `state`, shrugging off poison: workers only panic *outside*
/// lock sections (while serving queries), so the state is consistent
/// even after a poisoned flag.
fn lock(state: &Mutex<SchedState>) -> std::sync::MutexGuard<'_, SchedState> {
    state.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Rearranges a batch's groups into a previously recorded final
/// assignment (cores travel with their groups).
///
/// # Panics
/// Panics if the log's shard count differs from the cluster's, or its
/// assignments do not cover this batch's graph groups exactly.
fn apply_log(shard_groups: Vec<Vec<Group>>, log: &ServeLog) -> Vec<Vec<Group>> {
    assert_eq!(
        log.assignments.len(),
        shard_groups.len(),
        "replay log was recorded on {} shards, this cluster has {}",
        log.assignments.len(),
        shard_groups.len()
    );
    let mut pool: BTreeMap<(GraphId, usize), Group> = shard_groups
        .into_iter()
        .flatten()
        .map(|group| ((group.id, group.replica), group))
        .collect();
    let out: Vec<Vec<Group>> = log
        .assignments
        .iter()
        .enumerate()
        .map(|(shard, ids)| {
            ids.iter()
                .enumerate()
                .map(|(i, id)| {
                    // Hand-built logs may omit replica indices; a missing
                    // entry replays as replica 0 (always the right answer
                    // for unsplit groups).
                    let replica = log
                        .replica_indices
                        .get(shard)
                        .and_then(|v| v.get(i))
                        .copied()
                        .unwrap_or(0);
                    pool.remove(&(*id, replica)).unwrap_or_else(|| {
                        panic!("replay log names graph {id}, which has no group in this batch")
                    })
                })
                .collect()
        })
        .collect();
    assert!(
        pool.is_empty(),
        "replay log does not place every graph group of this batch (missing {:?})",
        pool.keys().collect::<Vec<_>>()
    );
    out
}

/// Numerator/denominator of the per-batch demand decay: every batch,
/// each graph's history keeps 3/4 of its mass before absorbing the new
/// observations at full weight, making the weight estimate an EWMA with
/// an effective window of ~4 batches. Integer math, so the decay is
/// bit-identical on every platform and serving mode.
const DEMAND_DECAY_NUM: u64 = 3;
const DEMAND_DECAY_DEN: u64 = 4;

/// Deterministic per-graph demand history: observed serving work
/// (rounds + messages of every response), which supersedes the a-priori
/// [`Query::weight`] estimate once a graph has traffic. Responses are
/// deterministic, so both serving modes accumulate identical history.
///
/// The window **decays**: each batch ages every graph's accumulators by
/// [`DEMAND_DECAY_NUM`]`/`[`DEMAND_DECAY_DEN`] before new observations
/// land, so a drifting workload (a graph whose queries got cheaper, or
/// a graph that went cold) stops steering LPT placement with stale
/// weights — a graph with no recent traffic decays back to the a-priori
/// estimate entirely.
#[derive(Debug, Clone, Copy, Default)]
struct GroupHistory {
    queries: u64,
    work: u64,
}

impl GroupHistory {
    /// Ages the window by one batch. Both accumulators shrink by the
    /// same factor, so the mean work per query is preserved; only the
    /// window's *mass* (its resistance to new evidence) fades.
    fn decay(&mut self) {
        self.queries = self.queries * DEMAND_DECAY_NUM / DEMAND_DECAY_DEN;
        self.work = self.work * DEMAND_DECAY_NUM / DEMAND_DECAY_DEN;
    }

    /// Records one served query's deterministic cost.
    fn observe(&mut self, work: u64) {
        self.queries += 1;
        self.work += work;
    }

    /// Mean observed work per query, if the window still holds traffic.
    fn mean_work(&self) -> Option<u64> {
        (self.queries > 0).then(|| (self.work / self.queries).max(1))
    }

    /// Whether the window has fully decayed (entry should be dropped).
    fn is_spent(&self) -> bool {
        self.queries == 0
    }
}

/// Which execution engine a batch runs on. Crate-visible so the
/// streaming front-end ([`crate::stream::StreamGateway`]) can drive the
/// same batch lifecycle as the public `serve*` entry points.
pub(crate) enum ExecMode<'a> {
    /// One scoped worker per shard, stealing enabled under `Balanced`.
    Threaded,
    /// Shard by shard on the calling thread, no steals.
    Sequential,
    /// Shard by shard on the calling thread, groups pre-placed by a
    /// recorded [`ServeLog`].
    Replay(&'a ServeLog),
}

/// A per-response streaming hook: called with `(batch-local index,
/// response)` the moment each response exists — from the collector as
/// worker groups finish in the threaded mode, in execution order on the
/// calling thread otherwise, and up front for plan-time failures. The
/// response still lands in the batch's [`ServeReport`] afterwards; the
/// hook is how the streaming front-end pushes responses to clients
/// before the batch completes.
pub(crate) type ResponseHook<'a> = &'a mut dyn FnMut(usize, &QueryResponse);

/// A sharded worker pool owning one [`PaEngine`] session per registered
/// graph (see the module docs for the full serving story).
pub struct PaCluster {
    shards: usize,
    policy: SchedulePolicy,
    /// When (and how far) the `Balanced` planner splits hot groups
    /// into replica chunks. Disabled by default.
    replica_policy: ReplicaPolicy,
    /// `BTreeMap` so every iteration order is deterministic.
    slots: BTreeMap<GraphId, GraphSlot>,
    /// Parked warm engine state, keyed like `slots`. Engines are built
    /// lazily: a graph that never sees a query never pays election+BFS.
    cores: BTreeMap<GraphId, EngineCore>,
    /// Observed per-graph demand (drives `Balanced` group weights).
    /// Decays every batch (see [`GroupHistory`]), so drifting workloads
    /// don't steer LPT placement with stale weights.
    history: BTreeMap<GraphId, GroupHistory>,
    /// Lifetime query counters (engine stats live in `cores`).
    served: u64,
    failed: u64,
    stolen_total: u64,
    forks_total: u64,
    replicas_total: u64,
    last_shard_stats: Vec<ShardStats>,
}

impl PaCluster {
    /// A cluster with `shards` worker threads, no graphs yet, and the
    /// default [`SchedulePolicy::Balanced`] scheduler.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> PaCluster {
        PaCluster::with_policy(shards, SchedulePolicy::default())
    }

    /// A cluster with an explicit scheduling policy.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_policy(shards: usize, policy: SchedulePolicy) -> PaCluster {
        assert!(shards > 0, "a cluster needs at least one shard");
        PaCluster {
            shards,
            policy,
            replica_policy: ReplicaPolicy::disabled(),
            slots: BTreeMap::new(),
            cores: BTreeMap::new(),
            history: BTreeMap::new(),
            served: 0,
            failed: 0,
            stolen_total: 0,
            forks_total: 0,
            replicas_total: 0,
            last_shard_stats: Vec::new(),
        }
    }

    /// The active scheduling policy.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Switches the scheduling policy for subsequent batches (warm
    /// engines and demand history are kept — placement does not affect
    /// responses, so this is always safe).
    pub fn set_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// The active replica policy (see [`ReplicaPolicy`]).
    pub fn replica_policy(&self) -> ReplicaPolicy {
        self.replica_policy
    }

    /// Switches the replica policy for subsequent batches. Like
    /// [`PaCluster::set_policy`], always safe: splitting moves *where*
    /// queries execute (and which fork of a warm engine serves them),
    /// never what they answer. Splitting only happens under
    /// [`SchedulePolicy::Balanced`].
    pub fn set_replica_policy(&mut self, policy: ReplicaPolicy) {
        self.replica_policy = policy;
    }

    /// Registers `graph` under `id` with the default (deterministic)
    /// engine profile. See [`PaCluster::add_graph_with_config`].
    pub fn add_graph(&mut self, id: GraphId, graph: Graph) {
        self.add_graph_with_config(id, graph, EngineConfig::new());
    }

    /// Registers `graph` under `id`; its session will run with `config`.
    /// The panicking convenience over [`PaCluster::register`].
    ///
    /// # Panics
    /// Panics if `id` is already registered, or the graph is empty or
    /// disconnected (the CONGEST network is one component).
    pub fn add_graph_with_config(&mut self, id: GraphId, graph: Graph, config: EngineConfig) {
        self.register(id, graph, config)
            .unwrap_or_else(|e| panic!("graph {id} rejected: {e}"));
    }

    /// Registers `graph` under `id`, validating it **once** for the
    /// session's whole lifetime: the graph must be non-empty and
    /// connected (the CONGEST network is one component). Downstream
    /// engine construction and [`PaEngine::pipeline_for`] then never
    /// trip over a disconnected fleet graph mid-batch.
    ///
    /// # Errors
    /// [`PaError::Disconnected`] for an empty or disconnected graph.
    ///
    /// # Panics
    /// Panics if `id` is already registered (a programmer error, unlike
    /// a bad graph, which may come from data).
    pub fn register(
        &mut self,
        id: GraphId,
        graph: Graph,
        config: EngineConfig,
    ) -> Result<(), PaError> {
        if graph.n() == 0 || !graph.is_connected() {
            return Err(PaError::Disconnected);
        }
        let prev = self.slots.insert(id, GraphSlot { graph, config });
        assert!(prev.is_none(), "graph {id} registered twice");
        Ok(())
    }

    /// The shard the `Pinned` policy routes `id` to: a stable hash of
    /// the id, so the mapping survives restarts and is identical on
    /// every platform (the hash consumes the full `u64` id — no `usize`
    /// round trip). Under `Balanced` this is only the hash, not the
    /// placement.
    // `x % shards` is < shards, which is a `usize`: no truncation.
    #[allow(clippy::cast_possible_truncation)]
    pub fn shard_of(&self, id: GraphId) -> usize {
        (word_fingerprint([id.0]) % self.shards as u64) as usize
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The registered graph ids, in sorted order.
    pub fn graph_ids(&self) -> Vec<GraphId> {
        self.slots.keys().copied().collect()
    }

    /// The registered graph under `id`, if any.
    pub fn graph(&self, id: GraphId) -> Option<&Graph> {
        self.slots.get(&id).map(|s| &s.graph)
    }

    /// Current cluster counters (lifetime queries + all warm engines,
    /// per-shard numbers from the most recent batch).
    pub fn stats(&self) -> ClusterStats {
        let mut engine = EngineStats::default();
        // BTreeMap-ordered graph walk: deterministic merge order.
        for id in self.slots.keys() {
            if let Some(core) = self.cores.get(id) {
                engine.merge(&core.stats());
            }
        }
        ClusterStats {
            queries: self.served,
            failed: self.failed,
            shards: self.shards,
            steals: self.stolen_total,
            forks: self.forks_total,
            replicas: self.replicas_total,
            warm_graphs: self.cores.len(),
            engine,
            per_shard: self.last_shard_stats.clone(),
        }
    }

    /// A group's work estimate: observed demand history when the graph
    /// has served traffic (mean work × query count), otherwise the
    /// a-priori [`Query::weight`] sum. Never zero, so LPT ties stay
    /// well-defined.
    fn group_weight(&self, id: GraphId, indices: &[usize], queries: &[(GraphId, Query)]) -> u64 {
        let graph = &self.slots[&id].graph;
        match self.history.get(&id).and_then(GroupHistory::mean_work) {
            Some(mean) => mean * indices.len() as u64,
            None => indices
                .iter()
                .map(|&idx| queries[idx].1.weight(graph.n(), graph.m()))
                .sum::<u64>()
                .max(1),
        }
    }

    /// How many chunks the planner cuts `group` into: 1 (no split)
    /// unless replica scheduling is enabled under `Balanced`, the
    /// graph's engine is warm (forking a cold core would rebuild stage
    /// 1 twice for nothing), the group holds more than one query, and
    /// its estimated work clears `threshold × mean_load` — then the
    /// configured cap, bounded by the shard count (every chunk gets a
    /// distinct shard) and the query count (every chunk gets work).
    fn replica_fanout(&self, group: &Group, mean_load: u64) -> usize {
        let policy = self.replica_policy;
        if policy.max_replicas <= 1
            || self.policy != SchedulePolicy::Balanced
            || !self.cores.contains_key(&group.id)
            || group.indices.len() <= 1
        {
            return 1;
        }
        // f64 comparison: the disabled threshold (∞) never splits, and
        // integer weights stay exact far past any realistic batch.
        if group.weight as f64 <= policy.threshold * mean_load as f64 {
            return 1;
        }
        policy
            .max_replicas
            .min(self.shards)
            .min(group.indices.len())
    }

    /// Builds the batch plan: one [`Group`] per referenced graph
    /// (first-appearance order; affinity classes batched inside, in
    /// first-appearance order with submission order inside a class),
    /// hot groups split into replica chunks per [`ReplicaPolicy`],
    /// placed per the active policy. Queries naming unregistered graphs
    /// are answered immediately with [`QueryResponse::Failed`] instead
    /// of scheduling (or panicking) — one bad query never kills a batch.
    #[allow(clippy::type_complexity)]
    fn plan(
        &self,
        queries: &[(GraphId, Query)],
    ) -> (
        Vec<Vec<Group>>,
        Vec<Option<QueryResponse>>,
        Vec<ReplicaEvent>,
    ) {
        let mut responses: Vec<Option<QueryResponse>> = vec![None; queries.len()];
        let mut order: Vec<GraphId> = Vec::new();
        let mut by_graph: BTreeMap<GraphId, Vec<usize>> = BTreeMap::new();
        for (idx, (id, _)) in queries.iter().enumerate() {
            if !self.slots.contains_key(id) {
                responses[idx] = Some(QueryResponse::Failed(FailReason::UnregisteredGraph {
                    id: id.0,
                }));
                continue;
            }
            by_graph
                .entry(*id)
                .or_insert_with(|| {
                    order.push(*id);
                    Vec::new()
                })
                .push(idx);
        }
        let groups: Vec<Group> = order
            .into_iter()
            .map(|id| {
                // `order` records exactly the first appearance of every
                // `by_graph` key, so the entry is always present; an empty
                // group (no indices) would simply serve no queries.
                let mut indices = by_graph.remove(&id).unwrap_or_default();
                let mut class_rank: BTreeMap<u64, usize> = BTreeMap::new();
                for &idx in &indices {
                    let next = class_rank.len();
                    class_rank.entry(queries[idx].1.affinity()).or_insert(next);
                }
                // Stable sort: submission order survives within a class.
                indices.sort_by_key(|&idx| class_rank[&queries[idx].1.affinity()]);
                let weight = self.group_weight(id, &indices, queries);
                Group {
                    id,
                    indices,
                    weight,
                    core: None,
                    replica: 0,
                    replicas: 1,
                }
            })
            .collect();

        // Replica pass: cut each hot group into contiguous chunks, one
        // fork of the warmed engine per chunk ([`replica_fanout`] is 1
        // for everything unless the policy is enabled under Balanced).
        // Runs before the LPT sort, in first-appearance order, so the
        // fork record is deterministic in the (workload, history) pair.
        let total: u64 = groups.iter().map(|group| group.weight).sum();
        let mean_load = total.checked_div(self.shards as u64).unwrap_or(0).max(1);
        let mut forks: Vec<ReplicaEvent> = Vec::new();
        let mut chunked: Vec<Group> = Vec::with_capacity(groups.len());
        for mut group in groups {
            let k = self.replica_fanout(&group, mean_load);
            if k <= 1 {
                chunked.push(group);
                continue;
            }
            forks.push(ReplicaEvent {
                graph: group.id,
                replicas: k,
                shards: vec![0; k],
            });
            let indices = std::mem::take(&mut group.indices);
            let len = indices.len();
            for replica in 0..k {
                // Contiguous boundaries by integer interpolation: chunk
                // sizes differ by at most one and the affinity-batched
                // order is preserved inside each chunk.
                let start = (replica * len).checked_div(k).unwrap_or(0);
                let end = ((replica + 1) * len).checked_div(k).unwrap_or(0);
                let chunk: Vec<usize> = indices.get(start..end).unwrap_or_default().to_vec();
                let weight = group
                    .weight
                    .saturating_mul(chunk.len() as u64)
                    .checked_div(len as u64)
                    .unwrap_or(1)
                    .max(1);
                chunked.push(Group {
                    id: group.id,
                    indices: chunk,
                    weight,
                    core: None,
                    replica,
                    replicas: k,
                });
            }
        }
        let mut groups = chunked;

        let mut shard_groups: Vec<Vec<Group>> = (0..self.shards).map(|_| Vec::new()).collect();
        // Where each split chunk landed, for the fork record and the
        // distinct-shard constraint below.
        let mut chunk_shards: BTreeMap<(GraphId, usize), usize> = BTreeMap::new();
        match self.policy {
            SchedulePolicy::Pinned => {
                for group in groups {
                    let shard = self.shard_of(group.id);
                    shard_groups[shard].push(group);
                }
            }
            SchedulePolicy::Balanced => {
                // LPT: heaviest first (stable sort keeps first-appearance
                // order among equal weights), each onto the least-loaded
                // shard, ties to the lowest index. Deterministic in the
                // (workload, history) pair.
                groups.sort_by_key(|group| std::cmp::Reverse(group.weight));
                let mut loads = vec![0u64; self.shards];
                for group in groups {
                    // Chunks of one split graph must land on distinct
                    // shards: mask the shards its siblings already took
                    // out of the selection (fanout ≤ shards guarantees
                    // an unmasked shard remains), restore after.
                    let mut masked: Vec<(usize, u64)> = Vec::new();
                    if group.replicas > 1 {
                        for (_, &taken) in
                            chunk_shards.range((group.id, 0)..=(group.id, usize::MAX))
                        {
                            if let Some(load) = loads.get_mut(taken) {
                                masked.push((taken, *load));
                                *load = u64::MAX;
                            }
                        }
                    }
                    // Least-loaded shard, ties to the lowest index. The
                    // constructor guarantees at least one shard, so the
                    // fold over indices 1.. always has a valid start.
                    let mut shard = 0usize;
                    for s in 1..self.shards {
                        if loads[s] < loads[shard] {
                            shard = s;
                        }
                    }
                    for (taken, load) in masked {
                        if let Some(slot) = loads.get_mut(taken) {
                            *slot = load;
                        }
                    }
                    if group.replicas > 1 {
                        chunk_shards.insert((group.id, group.replica), shard);
                    }
                    loads[shard] += group.weight;
                    shard_groups[shard].push(group);
                }
            }
        }
        for event in &mut forks {
            event.shards = (0..event.replicas)
                .map(|replica| {
                    chunk_shards
                        .get(&(event.graph, replica))
                        .copied()
                        .unwrap_or(0)
                })
                .collect();
        }
        (shard_groups, responses, forks)
    }

    /// One worker's serving loop: pull groups off the shared scheduler
    /// (stealing when allowed and idle), rehydrate or build each
    /// group's engine, dispatch its queries in order, and bank the warm
    /// core back as soon as the group finishes.
    ///
    /// Panics are contained **per group**: a poisoned query costs its
    /// own group's in-flight engine and the group's remaining queries,
    /// and the worker keeps serving. This keeps the set of served
    /// groups — and therefore every engine counter and the demand
    /// history — independent of placement and steal timing even when a
    /// batch panics; the first payload is returned for re-raising.
    fn run_worker(
        shard: usize,
        steal: bool,
        state: &Mutex<SchedState>,
        slots: &BTreeMap<GraphId, GraphSlot>,
        queries: &[(GraphId, Query)],
        emit: &mut dyn FnMut(usize, QueryResponse),
    ) -> Option<PanicPayload> {
        // rmo-lint: allow(D3) — wall-clock feeds per-shard busy-time stats only, never a scheduling decision.
        let start = Instant::now();
        let mut first_panic: Option<PanicPayload> = None;
        loop {
            let next = lock(state).next_group(shard, steal);
            let Some(mut group) = next else { break };
            // Responses written before a panic are kept (each response
            // slot is set at most once), so the emit closure is
            // unwind-safe in both serving modes.
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let slot = &slots[&group.id];
                let mut engine = match group.core.take() {
                    Some(core) => PaEngine::from_core(&slot.graph, core),
                    None => PaEngine::new(&slot.graph, slot.config),
                };
                for &idx in &group.indices {
                    emit(idx, run_query(&mut engine, &queries[idx].1));
                }
                engine.into_core()
            }));
            match result {
                Ok(core) => {
                    let mut st = lock(state);
                    st.finished.push((group.id, group.replica, core));
                    st.stats[shard].queries += group.indices.len() as u64;
                }
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        let busy = start.elapsed();
        lock(state).stats[shard].busy = busy;
        first_panic
    }

    /// Runs every worker concurrently (one scoped thread per shard),
    /// streaming `(index, response)` pairs back over an `mpsc` channel
    /// while the calling thread collects. Panics contained by the
    /// workers come back as payloads instead of poisoning the batch.
    fn run_threaded(
        slots: &BTreeMap<GraphId, GraphSlot>,
        state: &Mutex<SchedState>,
        shards: usize,
        steal: bool,
        queries: &[(GraphId, Query)],
        responses: &mut [Option<QueryResponse>],
        mut hook: Option<ResponseHook<'_>>,
    ) -> Vec<PanicPayload> {
        let mut panics = Vec::new();
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, QueryResponse)>();
            let handles: Vec<_> = (0..shards)
                .map(|shard| {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut emit = |idx: usize, resp: QueryResponse| {
                            // The collector drains until every sender
                            // drops, so a send only fails if the batch is
                            // already unwinding — dropping the response
                            // then degrades that query to `Failed`.
                            let _ = tx.send((idx, resp));
                        };
                        Self::run_worker(shard, steal, state, slots, queries, &mut emit)
                    })
                })
                .collect();
            drop(tx);
            // Every worker eventually drops its sender (group panics are
            // contained inside run_worker), so the drain terminates. The
            // hook runs on the collecting thread, so streaming callers
            // see responses the moment a worker produces them.
            for (idx, resp) in rx {
                if let Some(h) = hook.as_mut() {
                    h(idx, &resp);
                }
                responses[idx] = Some(resp);
            }
            panics = handles
                .into_iter()
                .filter_map(|h| match h.join() {
                    Ok(contained) => contained,
                    Err(payload) => Some(payload),
                })
                .collect();
        });
        panics
    }

    /// Runs every worker on the calling thread, in shard order, no
    /// stealing — the deterministic reference executor, with the same
    /// per-group panic containment as the threaded mode.
    fn run_on_caller(
        slots: &BTreeMap<GraphId, GraphSlot>,
        state: &Mutex<SchedState>,
        shards: usize,
        queries: &[(GraphId, Query)],
        responses: &mut [Option<QueryResponse>],
        mut hook: Option<ResponseHook<'_>>,
    ) -> Vec<PanicPayload> {
        let mut panics = Vec::new();
        for shard in 0..shards {
            let hook = &mut hook;
            let mut emit = |idx: usize, resp: QueryResponse| {
                if let Some(h) = hook.as_mut() {
                    h(idx, &resp);
                }
                responses[idx] = Some(resp);
            };
            if let Some(payload) = Self::run_worker(shard, false, state, slots, queries, &mut emit)
            {
                panics.push(payload);
            }
        }
        panics
    }

    /// The shared batch lifecycle every serving mode runs: plan, check
    /// out parked cores into their groups, execute (the one step that
    /// differs), bank everything back, update demand history. Keeping
    /// this in one place is part of the determinism story — no mode can
    /// drift from another's bookkeeping.
    ///
    /// Panic safety: panics are contained per *group* (see
    /// [`PaCluster::run_worker`]) — every healthy group still serves,
    /// finished groups' warm cores are banked as they complete, and
    /// queued groups keep their cores, so one poisoned query costs
    /// exactly its own group's in-flight engine and remaining queries,
    /// never the fleet's; counters and cores are absorbed before the
    /// first panic is resumed. Because healthy groups serve regardless
    /// of where the panic happened, the post-panic cluster state is
    /// still identical across serving modes and steal timings.
    pub(crate) fn run_batch(
        &mut self,
        queries: &[(GraphId, Query)],
        mode: ExecMode<'_>,
        mut hook: Option<ResponseHook<'_>>,
    ) -> ServeReport {
        // rmo-lint: allow(D3) — wall-clock measures the batch for ServeReport::wall only; no control flow reads it.
        let start = Instant::now();
        let (mut shard_groups, mut responses, forks) = self.plan(queries);
        // Plan-time failures (unregistered graphs) are final the moment
        // the batch is planned; streaming callers hear about them before
        // any execution.
        if let Some(h) = hook.as_mut() {
            for (idx, resp) in responses.iter().enumerate() {
                if let Some(resp) = resp {
                    h(idx, resp);
                }
            }
        }
        // Fork warmed cores for split groups before execution (on the
        // calling thread, outside any scheduler lock): replica 0 rides
        // the original core, higher replicas ride fresh forks. The plan
        // only splits warm graphs, so the removal always finds a core —
        // but a miss just degrades that graph to cold chunks.
        let mut replica_cores: BTreeMap<(GraphId, usize), EngineCore> = BTreeMap::new();
        for event in &forks {
            if let Some(core) = self.cores.remove(&event.graph) {
                for replica in 1..event.replicas {
                    replica_cores.insert((event.graph, replica), core.fork());
                    self.forks_total += 1;
                }
                replica_cores.insert((event.graph, 0), core);
            }
        }
        for groups in &mut shard_groups {
            for group in groups.iter_mut() {
                group.core = if group.replicas > 1 {
                    replica_cores.remove(&(group.id, group.replica))
                } else {
                    self.cores.remove(&group.id)
                };
            }
        }
        if let ExecMode::Replay(log) = mode {
            shard_groups = apply_log(shard_groups, log);
        }
        let steal = matches!(mode, ExecMode::Threaded) && self.policy == SchedulePolicy::Balanced;
        let state = Mutex::new(SchedState::new(shard_groups));
        let panics = match mode {
            ExecMode::Threaded => Self::run_threaded(
                &self.slots,
                &state,
                self.shards,
                steal,
                queries,
                &mut responses,
                hook,
            ),
            ExecMode::Sequential | ExecMode::Replay(_) => Self::run_on_caller(
                &self.slots,
                &state,
                self.shards,
                queries,
                &mut responses,
                hook,
            ),
        };
        let mut state = state.into_inner().unwrap_or_else(|p| p.into_inner());

        // Bank warm cores: finished groups, plus groups a panic left
        // queued (their engines never ran this batch). A split graph
        // banks several replicas; the deterministic survivor rule keeps
        // the lowest replica index (the chunk that rode the original
        // core) and absorbs every other replica's counters into it —
        // BTreeMap order, never completion order, so the re-parked
        // state is identical across serving modes and steal timings.
        let mut banked: BTreeMap<GraphId, BTreeMap<usize, EngineCore>> = BTreeMap::new();
        for (id, replica, core) in state.finished.drain(..) {
            banked.entry(id).or_default().insert(replica, core);
        }
        for queue in &mut state.queues {
            for group in queue.drain(..) {
                if let Some(core) = group.core {
                    banked
                        .entry(group.id)
                        .or_default()
                        .insert(group.replica, core);
                }
            }
        }
        for (id, replicas) in banked {
            let mut replicas = replicas.into_values();
            if let Some(mut survivor) = replicas.next() {
                for replica in replicas {
                    survivor.absorb(replica);
                }
                self.cores.insert(id, survivor);
            }
        }
        let log = ServeLog {
            assignments: state.assignments,
            replica_indices: state.replica_indices,
            steals: state.steals,
            forks,
        };
        let mut per_shard = state.stats;
        for (shard, stats) in per_shard.iter_mut().enumerate() {
            stats.graph_ids = log.assignments[shard].clone();
        }
        self.last_shard_stats = per_shard;
        self.stolen_total += log.steals.len() as u64;
        self.replicas_total += self
            .last_shard_stats
            .iter()
            .map(|stats| stats.replicas)
            .sum::<u64>();
        let answered = responses.iter().flatten();
        self.served += answered.clone().count() as u64;
        self.failed += answered.filter(|r| !r.is_ok()).count() as u64;
        // Demand history for future LPT placement: identical in every
        // mode because responses (and their costs) are deterministic.
        // Age the whole window first (graphs with no traffic this batch
        // decay too — that is the point), then absorb this batch's
        // observations at full weight.
        self.history.retain(|_, h| {
            h.decay();
            !h.is_spent()
        });
        for ((id, _), resp) in queries.iter().zip(&responses) {
            if let Some(resp) = resp {
                if self.slots.contains_key(id) {
                    self.history
                        .entry(*id)
                        .or_default()
                        .observe(resp.cost().rounds as u64 + resp.cost().messages);
                }
            }
        }

        if let Some(payload) = panics.into_iter().next() {
            std::panic::resume_unwind(payload);
        }
        let responses: Vec<QueryResponse> = responses
            .into_iter()
            .map(|r| r.unwrap_or(QueryResponse::Failed(FailReason::NeverScheduled)))
            .collect();
        ServeReport {
            stats: self.stats(),
            responses,
            log,
            wall: start.elapsed(),
        }
    }

    /// Serves a batch concurrently: one worker thread per shard, each
    /// pulling graph groups off the shared scheduler — stealing from
    /// loaded shards when idle under [`SchedulePolicy::Balanced`] — and
    /// streaming `(index, response)` pairs back over an `mpsc` channel.
    ///
    /// Responses come back in submission order; results and per-query
    /// costs are bit-identical to [`PaCluster::serve_sequential`]
    /// *regardless of stealing* (see the determinism contract in the
    /// module docs), and [`ServeReport::log`] records the placement for
    /// an exact [`PaCluster::serve_replay`].
    ///
    /// # Panics
    /// Panics if a query hits a contract violation in its application
    /// (the first group panic is re-raised — after every *other* group
    /// has served and banked its warm engine and counters, so the
    /// post-panic cluster state is deterministic). Unregistered graphs
    /// do *not* panic; they answer [`QueryResponse::Failed`] per query.
    pub fn serve(&mut self, queries: &[(GraphId, Query)]) -> ServeReport {
        self.run_batch(queries, ExecMode::Threaded, None)
    }

    /// Serves a batch on the calling thread: the *same* plan as
    /// [`PaCluster::serve`], executed shard by shard with no steals. The
    /// deterministic reference mode — responses and engine counters
    /// bit-match the threaded mode; only wall-clock timing and (when
    /// steals happened) the per-shard placement differ.
    ///
    /// # Panics
    /// Panics if a group panics (contained and re-raised like
    /// [`PaCluster::serve`]).
    pub fn serve_sequential(&mut self, queries: &[(GraphId, Query)]) -> ServeReport {
        self.run_batch(queries, ExecMode::Sequential, None)
    }

    /// Serves a batch on the calling thread with the groups pre-placed
    /// by `log` — typically a prior [`PaCluster::serve`]'s
    /// [`ServeReport::log`] on an identically prepared cluster. The
    /// replay reproduces the recorded run bit-for-bit: responses,
    /// engine counters, *and* per-shard placement (queries served,
    /// graphs executed, execution order), steals included.
    ///
    /// # Panics
    /// Panics if the log does not match this batch's graph groups or
    /// shard count, or if a group panics.
    pub fn serve_replay(&mut self, queries: &[(GraphId, Query)], log: &ServeLog) -> ServeReport {
        self.run_batch(queries, ExecMode::Replay(log), None)
    }

    /// The deterministic pre-execution placement of a batch: for each
    /// shard, the batch-local query indices in planned execution order
    /// (graph groups in queue order, affinity classes inside each
    /// group). This is the assignment the scheduler computes *before*
    /// any worker runs — the threaded mode may steal groups away from
    /// it at run time — so it is a pure function of the registered
    /// fleet, the demand history, and the queries, identical in every
    /// serving mode. The streaming front-end models per-query
    /// completion ticks against it, which is what keeps modeled
    /// latencies independent of run-time stealing — and replica chunks
    /// appear on their own shards, so a split hot graph's modeled
    /// critical path actually drops. Queries that fail at plan time
    /// (unregistered graphs) appear on no shard.
    pub fn planned_execution(&self, queries: &[(GraphId, Query)]) -> Vec<Vec<usize>> {
        let (shard_groups, _, _) = self.plan(queries);
        shard_groups
            .into_iter()
            .map(|groups| {
                groups
                    .into_iter()
                    .flat_map(|group| group.indices)
                    .collect()
            })
            .collect()
    }
}

/// The shared generator behind [`mixed_workload`] and [`zipf_workload`]:
/// `pick_graph` chooses which registered graph (by index into the sorted
/// id list) each query targets.
fn pooled_workload(
    cluster: &PaCluster,
    count: usize,
    seed: u64,
    mut pick_graph: impl FnMut(&mut StdRng) -> usize,
) -> Vec<(GraphId, Query)> {
    let ids = cluster.graph_ids();
    assert!(!ids.is_empty(), "workload needs at least one graph");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e21_ed5e);
    // Per-graph pools of cache-affine inputs. Pool seeds mix (seed, id,
    // stream tag, index) through the stable FNV fingerprint so no two
    // streams collapse onto each other (plain `seed ^ (id << k) ^ i`
    // degenerates to `seed ^ i` for id 0, correlating the partition and
    // subgraph draws).
    struct Pool {
        n: usize,
        partitions: Vec<Vec<usize>>,
        subgraphs: Vec<Vec<usize>>,
        ks: Vec<usize>,
    }
    // `graph_ids()` lists exactly the registered graphs, so the lookup
    // never drops an id and `pools` stays index-aligned with `ids`.
    let pools: Vec<Pool> = ids
        .iter()
        .filter_map(|&id| {
            let g = cluster.graph(id)?;
            let partitions = (0u64..3)
                .map(|i| {
                    let target = (g.n() / 8).clamp(2, 24);
                    gen::random_connected_partition(
                        g,
                        target,
                        word_fingerprint([seed, id.0, 0xA, i]),
                    )
                    .assignment()
                    .to_vec()
                })
                .collect();
            let subgraphs = (0u64..3)
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(word_fingerprint([seed, id.0, 0xB, i]));
                    (0..g.m()).filter(|_| rng.random::<f64>() < 0.6).collect()
                })
                .collect();
            Some(Pool {
                n: g.n(),
                partitions,
                subgraphs,
                ks: vec![6, 10],
            })
        })
        .collect();
    let checks = [
        VerifyCheck::ConnectedSpanning,
        VerifyCheck::SpanningTree,
        VerifyCheck::Cut,
        VerifyCheck::Bipartite,
        VerifyCheck::Forest,
    ];
    (0..count)
        .map(|_| {
            let which = pick_graph(&mut rng);
            let (id, pool) = (ids[which], &pools[which]);
            let n = pool.n;
            let query = match rng.random_range(0..100u32) {
                // Half the traffic: PA solves over pooled partitions.
                0..=49 => Query::Pa {
                    assignment: pool.partitions[rng.random_range(0..pool.partitions.len())].clone(),
                    values: (0..n as u64)
                        .map(|v| v.wrapping_mul(rng.random_range(1..64)))
                        .collect(),
                    agg: [Aggregate::Min, Aggregate::Max, Aggregate::Sum]
                        [rng.random_range(0..3usize)],
                },
                // Verification-suite traffic over pooled subgraphs.
                50..=64 => Query::Components {
                    h_edges: pool.subgraphs[rng.random_range(0..pool.subgraphs.len())].clone(),
                },
                65..=77 => Query::Verify {
                    check: checks[rng.random_range(0..checks.len())],
                    h_edges: pool.subgraphs[rng.random_range(0..pool.subgraphs.len())].clone(),
                },
                // Analytics tail.
                78..=84 => Query::Kdom {
                    k: pool.ks[rng.random_range(0..pool.ks.len())],
                },
                85..=89 => Query::Eccentricity {
                    k: pool.ks[rng.random_range(0..pool.ks.len())],
                },
                90..=94 => Query::Mst,
                95..=97 => Query::Sssp {
                    source: rng.random_range(0..n),
                },
                98 => Query::MinCut { trials: 1 },
                _ => Query::Cds {
                    node_weights: (0..n as u64).map(|v| 1 + (v * 7) % 13).collect(),
                },
            };
            (id, query)
        })
        .collect()
}

/// A seeded mixed workload over a cluster's registered graphs: the
/// query mix a PA service sees in the harness `serve` experiment, the
/// `service_throughput` bench, and the determinism tests — mostly PA
/// solves and verification traffic with a tail of heavier analytics
/// (MST, SSSP, eccentricity, small min-cut and CDS runs). Graphs are
/// drawn uniformly; see [`zipf_workload`] for skewed popularity.
///
/// Partitions and subgraphs are drawn from a small per-graph pool
/// (three connected partitions, three edge subsets, two `k` values), so
/// a realistic fraction of queries re-hits warm artifacts. Fully
/// deterministic in `(cluster graphs, count, seed)`.
pub fn mixed_workload(cluster: &PaCluster, count: usize, seed: u64) -> Vec<(GraphId, Query)> {
    let graphs = cluster.graph_ids().len();
    pooled_workload(cluster, count, seed, move |rng| {
        rng.random_range(0..graphs.max(1))
    })
}

/// Like [`mixed_workload`], but graph popularity follows a Zipf law:
/// the `r`-th registered graph (in sorted id order, 0-based) is drawn
/// with probability proportional to `1/(r+1)^exponent`. `exponent = 0`
/// is uniform; realistic serving skew is `0.8–1.5`; large exponents
/// send almost all traffic to the first graph — the hot-graph scenario
/// that starves a hash-pinned scheduler. Fully deterministic in
/// `(cluster graphs, count, seed, exponent)`.
pub fn zipf_workload(
    cluster: &PaCluster,
    count: usize,
    seed: u64,
    exponent: f64,
) -> Vec<(GraphId, Query)> {
    let graphs = cluster.graph_ids().len();
    let weights: Vec<f64> = (0..graphs)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    pooled_workload(cluster, count, seed, move |rng| {
        let mut x = rng.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len().saturating_sub(1)
    })
}

/// The first `count` graph ids that [`SchedulePolicy::Pinned`] would
/// all route to shard `shard` of a `shards`-wide cluster — the
/// adversarial fleet that serializes hash-pinned serving on one worker.
/// Shared by the skew tests, the harness `serve --skew` experiment, and
/// the `service_throughput` bench so all three exercise the same
/// collision structure.
///
/// # Panics
/// Panics if `shard >= shards`.
pub fn colliding_graph_ids(shards: usize, shard: usize, count: usize) -> Vec<GraphId> {
    assert!(shard < shards, "target shard {shard} out of range");
    (0u64..)
        .filter(|&i| word_fingerprint([i]) % shards as u64 == shard as u64)
        .take(count)
        .map(GraphId)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(shards: usize) -> PaCluster {
        let mut cluster = PaCluster::new(shards);
        cluster.add_graph(GraphId(1), gen::grid(4, 5));
        cluster.add_graph(GraphId(2), gen::path(18));
        cluster.add_graph(GraphId(3), gen::gnp_connected(20, 0.2, 5));
        cluster
    }

    #[test]
    fn plan_groups_by_graph_then_affinity() {
        let mut cluster = PaCluster::with_policy(1, SchedulePolicy::Pinned);
        cluster.add_graph(GraphId(1), gen::grid(4, 5));
        cluster.add_graph(GraphId(2), gen::path(18));
        let rows_a = vec![
            0usize, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3,
        ];
        let pa = |assignment: &Vec<usize>, v: u64| Query::Pa {
            assignment: assignment.clone(),
            values: vec![v; 20],
            agg: Aggregate::Min,
        };
        let whole = vec![0usize; 20];
        // Interleaved graphs and partitions on one shard.
        let queries = vec![
            (GraphId(1), pa(&rows_a, 1)),
            (GraphId(2), Query::Mst),
            (GraphId(1), pa(&whole, 2)),
            (GraphId(1), pa(&rows_a, 3)),
            (GraphId(2), Query::Mst),
        ];
        let (shard_groups, prefailed, forks) = cluster.plan(&queries);
        assert!(prefailed.iter().all(|r| r.is_none()));
        assert!(forks.is_empty(), "replicas are strictly opt-in");
        assert_eq!(shard_groups.len(), 1);
        // Graph 1 first (first appearance), its rows_a class batched
        // (indices 0 then 3), then whole (2); then graph 2's group.
        let ids: Vec<GraphId> = shard_groups[0].iter().map(|g| g.id).collect();
        assert_eq!(ids, vec![GraphId(1), GraphId(2)]);
        assert_eq!(shard_groups[0][0].indices, vec![0, 3, 2]);
        assert_eq!(shard_groups[0][1].indices, vec![1, 4]);
        assert!(shard_groups[0].iter().all(|g| g.weight > 0));
        // Serving it agrees with the plan.
        let report = cluster.serve(&queries);
        assert!(report.responses.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn lpt_spreads_groups_by_weight() {
        let mut cluster = PaCluster::with_policy(2, SchedulePolicy::Balanced);
        cluster.add_graph(GraphId(1), gen::grid(8, 8));
        cluster.add_graph(GraphId(2), gen::path(10));
        cluster.add_graph(GraphId(3), gen::path(11));
        cluster.add_graph(GraphId(4), gen::path(12));
        let pa = |n: usize| Query::Pa {
            assignment: vec![0; n],
            values: vec![1; n],
            agg: Aggregate::Sum,
        };
        // One heavy MST group on the big grid, three light Pa groups.
        let queries = vec![
            (GraphId(2), pa(10)),
            (GraphId(1), Query::Mst),
            (GraphId(3), pa(11)),
            (GraphId(4), pa(12)),
        ];
        let (shard_groups, _, _) = cluster.plan(&queries);
        // LPT: the heavy group goes first, alone on shard 0; the light
        // groups pile onto shard 1 until it catches up.
        assert_eq!(shard_groups[0].len(), 1);
        assert_eq!(shard_groups[0][0].id, GraphId(1));
        assert_eq!(shard_groups[1].len(), 3);
        // And a hot graph with *all* the traffic forms one unsplittable
        // group (stealing granularity is the whole graph).
        let hot: Vec<_> = (0..6).map(|_| (GraphId(2), pa(10))).collect();
        let (shard_groups, _, _) = cluster.plan(&hot);
        let non_empty: Vec<usize> = shard_groups
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(s, _)| s)
            .collect();
        assert_eq!(non_empty.len(), 1, "one graph, one group, one shard");
        assert_eq!(shard_groups[non_empty[0]][0].indices.len(), 6);
    }

    #[test]
    fn steal_takes_the_most_loaded_tail() {
        let group = |id: u64, weight: u64| Group {
            id: GraphId(id),
            indices: Vec::new(),
            weight,
            core: None,
            replica: 0,
            replicas: 1,
        };
        let mut state = SchedState::new(vec![
            vec![group(1, 10), group(2, 5)],
            vec![group(3, 2)],
            Vec::new(),
        ]);
        assert_eq!(state.loads, vec![15, 2, 0]);
        // Worker 2 is idle: it steals from shard 0 (most loaded), from
        // the *tail* (the lighter group 2), then keeps draining.
        let stolen: Vec<GraphId> =
            std::iter::from_fn(|| state.next_group(2, true).map(|g| g.id)).collect();
        assert_eq!(stolen, vec![GraphId(2), GraphId(1), GraphId(3)]);
        assert_eq!(state.loads, vec![0, 0, 0]);
        assert_eq!(state.assignments[2], stolen);
        assert_eq!(state.stats[2].stolen, 3);
        // The epoch log is totally ordered and names every move.
        let moves: Vec<(u64, GraphId, usize, usize)> = state
            .steals
            .iter()
            .map(|s| (s.epoch, s.graph, s.from, s.to))
            .collect();
        assert_eq!(
            moves,
            vec![
                (0, GraphId(2), 0, 2),
                (1, GraphId(1), 0, 2),
                (2, GraphId(3), 1, 2),
            ]
        );
        // With stealing off, an idle worker just stops.
        assert!(state.next_group(0, false).is_none());
    }

    #[test]
    fn replica_plan_splits_the_hot_group_onto_distinct_shards() {
        let mut cluster = PaCluster::with_policy(4, SchedulePolicy::Balanced);
        cluster.add_graph(GraphId(1), gen::grid(5, 5));
        cluster.add_graph(GraphId(2), gen::path(12));
        cluster.set_replica_policy(ReplicaPolicy::new(0.5, 3));
        let rows: Vec<usize> = (0..25).map(|v| v / 5).collect();
        let pa = |v: u64| Query::Pa {
            assignment: rows.clone(),
            values: vec![v; 25],
            agg: Aggregate::Sum,
        };
        let hot: Vec<_> = (0..6u64).map(|v| (GraphId(1), pa(v))).collect();
        // Cold graphs never split: there is no warm core to fork.
        let (_, _, forks) = cluster.plan(&hot);
        assert!(forks.is_empty(), "cold graphs are never split");
        // Warm the hot graph, then the same batch splits three ways.
        cluster.serve_sequential(&[(GraphId(1), pa(99))]);
        let (shard_groups, _, forks) = cluster.plan(&hot);
        assert_eq!(forks.len(), 1, "{forks:?}");
        let event = &forks[0];
        assert_eq!(event.graph, GraphId(1));
        assert_eq!(event.replicas, 3);
        let mut distinct = event.shards.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(
            distinct.len(),
            3,
            "chunks land on distinct shards: {:?}",
            event.shards
        );
        // The chunks partition the six queries contiguously, two each,
        // and each chunk knows its replica coordinates.
        let mut chunks: Vec<(usize, usize, Vec<usize>)> = shard_groups
            .iter()
            .flatten()
            .filter(|g| g.id == GraphId(1))
            .map(|g| (g.replica, g.replicas, g.indices.clone()))
            .collect();
        chunks.sort();
        let sizes: Vec<usize> = chunks.iter().map(|(_, _, idx)| idx.len()).collect();
        assert_eq!(sizes, vec![2, 2, 2]);
        assert!(chunks.iter().all(|&(_, total, _)| total == 3));
        let flat: Vec<usize> = chunks.into_iter().flat_map(|(_, _, idx)| idx).collect();
        assert_eq!(flat, vec![0, 1, 2, 3, 4, 5], "contiguous in plan order");
    }

    #[test]
    fn replica_chunks_fold_into_one_demand_history() {
        let mut windows = Vec::new();
        for threaded in [true, false] {
            let mut cluster = PaCluster::with_policy(4, SchedulePolicy::Balanced);
            cluster.add_graph(GraphId(1), gen::grid(5, 5));
            cluster.set_replica_policy(ReplicaPolicy::new(0.5, 4));
            let rows: Vec<usize> = (0..25).map(|v| v / 5).collect();
            let pa = |v: u64| Query::Pa {
                assignment: rows.clone(),
                values: vec![v; 25],
                agg: Aggregate::Sum,
            };
            cluster.serve_sequential(&[(GraphId(1), pa(0))]);
            let hot: Vec<_> = (1..9u64).map(|v| (GraphId(1), pa(v))).collect();
            let report = if threaded {
                cluster.serve(&hot)
            } else {
                cluster.serve_sequential(&hot)
            };
            assert!(!report.log.forks.is_empty(), "the hot group split");
            // Demand attribution is per *graph*, not per replica: all
            // eight chunked queries land in one window, so the EWMA
            // keeps estimating the graph's full demand after a split.
            let h = cluster.history[&GraphId(1)];
            assert_eq!(h.queries, 8, "one window, one count per query");
            assert!(h.mean_work().is_some());
            // Decay math on the folded window: both accumulators age by
            // exactly 3/4, preserving the mean work per query.
            let mut aged = h;
            aged.decay();
            assert_eq!(aged.queries, 6);
            assert_eq!(aged.work, h.work * 3 / 4);
            windows.push((h.queries, h.work));
        }
        assert_eq!(windows[0], windows[1], "history is mode-independent");
    }

    #[test]
    fn demand_history_decays_toward_recent_traffic() {
        let mut h = GroupHistory::default();
        // An established heavy window: mean 1000 per query.
        for _ in 0..20 {
            h.observe(1000);
        }
        assert_eq!(h.mean_work(), Some(1000));
        // The workload drifts: six batches of cheap queries. The EWMA
        // (decay then absorb) must converge toward the recent mean
        // instead of anchoring on the stale heavy window.
        for _ in 0..6 {
            h.decay();
            for _ in 0..20 {
                h.observe(10);
            }
        }
        let mean = h.mean_work().expect("window still has traffic");
        assert!(
            (10..100).contains(&mean),
            "EWMA must track the recent cheap traffic, got {mean}"
        );
        // Decay preserves the mean while traffic continues...
        let mut steady = GroupHistory::default();
        for _ in 0..4 {
            steady.decay();
            for _ in 0..10 {
                steady.observe(500);
            }
        }
        let steady_mean = steady.mean_work().expect("live window");
        assert!(
            (450..=560).contains(&steady_mean),
            "equal scaling keeps the mean near 500 (integer truncation \
             aside), got {steady_mean}"
        );
        // ...and an un-driven window decays to nothing, restoring the
        // a-priori estimate.
        let mut idle = h;
        while !idle.is_spent() {
            idle.decay();
        }
        assert_eq!(idle.mean_work(), None);
    }

    #[test]
    fn stale_history_is_dropped_by_batches_elsewhere() {
        let mut cluster = small_cluster(2);
        cluster.serve(&[(GraphId(1), Query::Mst)]);
        assert!(
            cluster.history.contains_key(&GraphId(1)),
            "served graph gains a demand window"
        );
        // Batches that never touch graph 1 age its window away; the
        // graph then falls back to the a-priori Query::weight estimate.
        for _ in 0..20 {
            cluster.serve(&[(GraphId(2), Query::Kdom { k: 6 })]);
        }
        assert!(
            !cluster.history.contains_key(&GraphId(1)),
            "a cold graph's window fully decays"
        );
        assert!(
            cluster.history.contains_key(&GraphId(2)),
            "the live graph keeps its window"
        );
    }

    #[test]
    fn unknown_graph_fails_per_query_without_killing_the_batch() {
        for threaded in [true, false] {
            let mut cluster = small_cluster(2);
            let queries = vec![
                (GraphId(99), Query::Mst),
                (GraphId(1), Query::Kdom { k: 6 }),
                (GraphId(98), Query::Mst),
            ];
            let report = if threaded {
                cluster.serve(&queries)
            } else {
                cluster.serve_sequential(&queries)
            };
            assert!(
                matches!(&report.responses[0], QueryResponse::Failed(m) if m.to_string().contains("not registered")),
                "unregistered graph answers Failed, got {:?}",
                report.responses[0]
            );
            assert!(report.responses[1].is_ok(), "healthy query still served");
            assert!(!report.responses[2].is_ok());
            assert_eq!(report.stats.failed, 2);
            assert_eq!(report.stats.queries, 3, "failures still count as served");
        }
    }

    #[test]
    fn batching_turns_repeat_partitions_into_hits() {
        let mut cluster = small_cluster(2);
        let rows: Vec<usize> = (0..20).map(|v| v / 5).collect();
        let pa = |v: u64| Query::Pa {
            assignment: rows.clone(),
            values: vec![v; 20],
            agg: Aggregate::Sum,
        };
        // Same partition three times, interleaved with another graph.
        let queries = vec![
            (GraphId(1), pa(1)),
            (GraphId(2), Query::Kdom { k: 6 }),
            (GraphId(1), pa(2)),
            (GraphId(2), Query::Kdom { k: 6 }),
            (GraphId(1), pa(3)),
        ];
        let report = cluster.serve(&queries);
        assert!(report.responses.iter().all(|r| r.is_ok()));
        assert_eq!(report.stats.engine.hits, 2, "2nd and 3rd Pa are warm");
        assert_eq!(report.stats.engine.division_hits, 1, "2nd kdom memoized");
        // Warm state survives into the next batch.
        let report = cluster.serve(&[(GraphId(1), pa(9))]);
        assert_eq!(report.stats.engine.hits, 3);
    }

    #[test]
    fn register_rejects_disconnected_graphs_without_panicking() {
        let mut cluster = small_cluster(2);
        // Two disjoint edges: connected() is false.
        let disconnected = Graph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]).unwrap();
        let err = cluster
            .register(GraphId(9), disconnected, EngineConfig::new())
            .unwrap_err();
        assert!(matches!(err, PaError::Disconnected), "{err:?}");
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(cluster
            .register(GraphId(9), empty, EngineConfig::new())
            .is_err());
        // The rejected id stays free for a valid registration.
        cluster
            .register(GraphId(9), gen::path(5), EngineConfig::new())
            .unwrap();
        assert!(cluster.graph(GraphId(9)).is_some());
    }

    #[test]
    fn stats_display_mentions_the_fleet() {
        let mut cluster = small_cluster(4);
        let report = cluster.serve(&[(GraphId(2), Query::Mst)]);
        let line = report.stats.to_string();
        assert!(line.contains("1 queries (0 failed)"), "{line}");
        assert!(line.contains("over 4 shards"), "{line}");
        assert!(line.contains("stolen"), "{line}");
        assert!(line.contains("0 forks/0 replica runs"), "{line}");
        assert!(line.contains("hits/misses"), "{line}");
    }

    #[test]
    fn mixed_workload_is_deterministic_and_covers_graphs() {
        let cluster = small_cluster(2);
        let a = mixed_workload(&cluster, 40, 9);
        let b = mixed_workload(&cluster, 40, 9);
        assert_eq!(a, b, "same seed, same workload");
        let c = mixed_workload(&cluster, 40, 10);
        assert_ne!(a, c, "different seed, different workload");
        for id in cluster.graph_ids() {
            assert!(a.iter().any(|(g, _)| *g == id), "graph {id} unused");
        }
    }

    #[test]
    fn zipf_workload_concentrates_on_the_hot_graph() {
        let cluster = small_cluster(2);
        let w = zipf_workload(&cluster, 60, 7, 2.5);
        assert_eq!(w, zipf_workload(&cluster, 60, 7, 2.5), "deterministic");
        let hot = cluster.graph_ids()[0];
        let hot_count = w.iter().filter(|(id, _)| *id == hot).count();
        assert!(
            hot_count * 2 > w.len(),
            "exponent 2.5 concentrates most traffic on the first graph, got {hot_count}/{}",
            w.len()
        );
        // The skewed stream still serves clean.
        let mut cluster = small_cluster(3);
        let report = cluster.serve(&w);
        assert!(report.responses.iter().all(|r| r.is_ok()));
    }
}
