//! `PaCluster` — a sharded, concurrent multi-graph serving layer.
//!
//! The paper's Theorem 1.2 infrastructure is reusable *per graph*; a
//! [`rmo_core::PaEngine`] captures that for one session. A service under
//! mixed traffic holds **many** graphs at once, so the cluster:
//!
//! * owns a fleet of registered graphs, each pinned to one **shard** by
//!   a stable hash of its [`GraphId`] — all queries for a graph are
//!   served by the same worker, so its engine (tree, artifact cache,
//!   division memo) never migrates and never needs locking;
//! * routes a batch of [`Query`]s through a deterministic **scheduler**
//!   that reorders each shard's queue to put same-graph and then
//!   same-affinity queries back-to-back (see [`Query::affinity`]),
//!   maximizing warm-cache hits without changing any answer;
//! * serves the shards on `std::thread::scope` workers that stream
//!   responses back over an `mpsc` channel ([`PaCluster::serve`]), or
//!   replays the identical per-shard schedules on the calling thread
//!   ([`PaCluster::serve_sequential`]);
//! * parks each engine's warm state ([`rmo_core::EngineCore`]) between
//!   batches, so a follow-up batch on the same fleet starts hot.
//!
//! # Determinism contract
//!
//! Threaded and sequential serving produce **bit-identical** responses
//! and engine counters: shards own disjoint graph sets, engines are
//! per-graph, and each shard executes its schedule in a fixed order, so
//! thread interleaving can affect only wall-clock timing, never results
//! or per-query [`rmo_congest::CostReport`]s. The
//! `tests/cluster_serve.rs` suite pins this.
//!
//! ```rust
//! use rmo_apps::service::{GraphId, PaCluster};
//! use rmo_apps::dispatch::Query;
//! use rmo_core::Aggregate;
//! use rmo_graph::gen;
//!
//! let mut cluster = PaCluster::new(2);
//! cluster.add_graph(GraphId(7), gen::grid(4, 4));
//! cluster.add_graph(GraphId(8), gen::path(12));
//! let rows = gen::grid_row_partition(4, 4);
//! let report = cluster.serve(&[
//!     (GraphId(7), Query::Pa {
//!         assignment: rows.clone(),
//!         values: (0..16).collect(),
//!         agg: Aggregate::Min,
//!     }),
//!     (GraphId(8), Query::Mst),
//!     (GraphId(7), Query::Pa {
//!         assignment: rows,
//!         values: (16..32).collect(),
//!         agg: Aggregate::Min,
//!     }),
//! ]);
//! assert!(report.responses.iter().all(|r| r.is_ok()));
//! // The two same-partition Pa queries were batched back-to-back:
//! assert_eq!(report.stats.engine.hits, 1);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rmo_graph::{gen, Graph};

use rmo_core::{Aggregate, EngineConfig, EngineCore, EngineStats, PaEngine};

use crate::dispatch::{run_query, Query, QueryResponse, VerifyCheck};

/// The cluster-wide name of a registered graph. Routing hashes the id
/// (stable FNV-1a), so ids chosen by the caller — database keys,
/// tenant ids — spread over shards without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphId(pub u64);

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A registered graph: the topology plus the engine profile its
/// sessions run with.
struct GraphSlot {
    graph: Graph,
    config: EngineConfig,
    shard: usize,
}

/// Per-shard serving counters for one batch.
///
/// Deliberately not `PartialEq`: `busy` is wall-clock and never
/// reproducible, so equality on this type would be timing-flaky.
/// Determinism assertions compare [`ClusterStats::engine`] (and the
/// responses themselves) instead.
#[derive(Debug, Clone, Default)]
pub struct ShardStats {
    /// Queries this shard served.
    pub queries: u64,
    /// Graphs this shard touched, in schedule order.
    pub graph_ids: Vec<GraphId>,
    /// Time the worker spent serving (from first job to last).
    pub busy: Duration,
}

/// Aggregated cluster counters: the whole fleet's engine economics plus
/// per-shard utilization. (Not `PartialEq` — see [`ShardStats`]; the
/// deterministic slice is [`ClusterStats::engine`].)
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Queries served over the cluster lifetime.
    pub queries: u64,
    /// Queries that returned [`QueryResponse::Failed`].
    pub failed: u64,
    /// The cluster's shard count.
    pub shards: usize,
    /// Graphs with a live (warm) engine.
    pub warm_graphs: usize,
    /// Every engine's counters, merged ([`EngineStats::merge`]).
    pub engine: EngineStats,
    /// Per-shard counters for the most recent batch (empty until the
    /// first batch).
    pub per_shard: Vec<ShardStats>,
}

impl fmt::Display for ClusterStats {
    /// One-line fleet summary, e.g.
    /// `42 queries (0 failed) on 6 warm graphs over 4 shards | hits/misses/evictions 18/12/0 (60.0% hit), …`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} queries ({} failed) on {} warm graphs over {} shards | {}",
            self.queries, self.failed, self.warm_graphs, self.shards, self.engine,
        )
    }
}

/// The outcome of one [`PaCluster::serve`] batch.
#[derive(Debug)]
pub struct ServeReport {
    /// One response per submitted query, in submission order.
    pub responses: Vec<QueryResponse>,
    /// Cluster counters after this batch (lifetime engine stats,
    /// per-shard numbers for this batch).
    pub stats: ClusterStats,
    /// Wall-clock time of the batch.
    pub wall: Duration,
}

impl ServeReport {
    /// Mean shard utilization in `[0, 1]`: serving time summed over
    /// shards, divided by `shards × wall`. 1.0 means every worker was
    /// busy the whole batch.
    pub fn utilization(&self) -> f64 {
        let shards = self.stats.per_shard.len().max(1);
        let busy: f64 = self
            .stats
            .per_shard
            .iter()
            .map(|s| s.busy.as_secs_f64())
            .sum();
        let denom = shards as f64 * self.wall.as_secs_f64();
        if denom == 0.0 {
            0.0
        } else {
            (busy / denom).min(1.0)
        }
    }
}

/// One shard's schedule: query indices into the submitted batch, in
/// execution order.
type ShardSchedule = Vec<usize>;

/// What `std::thread::JoinHandle::join` / `catch_unwind` hand back from
/// a panicking shard.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// What a shard worker hands back besides the streamed responses.
struct ShardOutcome {
    cores: Vec<(GraphId, EngineCore)>,
    stats: ShardStats,
}

/// A sharded worker pool owning one [`PaEngine`] session per registered
/// graph (see the module docs for the full serving story).
pub struct PaCluster {
    shards: usize,
    /// `BTreeMap` so every iteration order is deterministic.
    slots: BTreeMap<GraphId, GraphSlot>,
    /// Parked warm engine state, keyed like `slots`. Engines are built
    /// lazily: a graph that never sees a query never pays election+BFS.
    cores: HashMap<GraphId, EngineCore>,
    /// Lifetime query counters (engine stats live in `cores`).
    served: u64,
    failed: u64,
    last_shard_stats: Vec<ShardStats>,
}

impl PaCluster {
    /// A cluster with `shards` worker threads and no graphs yet.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> PaCluster {
        assert!(shards > 0, "a cluster needs at least one shard");
        PaCluster {
            shards,
            slots: BTreeMap::new(),
            cores: HashMap::new(),
            served: 0,
            failed: 0,
            last_shard_stats: Vec::new(),
        }
    }

    /// Registers `graph` under `id` with the default (deterministic)
    /// engine profile. See [`PaCluster::add_graph_with_config`].
    pub fn add_graph(&mut self, id: GraphId, graph: Graph) {
        self.add_graph_with_config(id, graph, EngineConfig::new());
    }

    /// Registers `graph` under `id`; its session will run with `config`.
    /// The graph is pinned to shard [`PaCluster::shard_of`]`(id)` for the
    /// cluster's lifetime.
    ///
    /// # Panics
    /// Panics if `id` is already registered, or the graph is empty or
    /// disconnected (the CONGEST network is one component).
    pub fn add_graph_with_config(&mut self, id: GraphId, graph: Graph, config: EngineConfig) {
        assert!(graph.n() > 0, "cluster graphs must be non-empty");
        assert!(graph.is_connected(), "cluster graphs must be connected");
        let shard = self.shard_of(id);
        let prev = self.slots.insert(
            id,
            GraphSlot {
                graph,
                config,
                shard,
            },
        );
        assert!(prev.is_none(), "graph {id} registered twice");
    }

    /// The shard that owns `id`: a stable hash of the id, so the mapping
    /// survives restarts and is identical on every platform (the hash
    /// consumes the full `u64` id — no `usize` round trip). Every query
    /// for `id` is served by this shard's worker.
    pub fn shard_of(&self, id: GraphId) -> usize {
        (rmo_core::word_fingerprint([id.0]) % self.shards as u64) as usize
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The registered graph ids, in sorted order.
    pub fn graph_ids(&self) -> Vec<GraphId> {
        self.slots.keys().copied().collect()
    }

    /// The registered graph under `id`, if any.
    pub fn graph(&self, id: GraphId) -> Option<&Graph> {
        self.slots.get(&id).map(|s| &s.graph)
    }

    /// Current cluster counters (lifetime queries + all warm engines,
    /// per-shard numbers from the most recent batch).
    pub fn stats(&self) -> ClusterStats {
        let mut engine = EngineStats::default();
        // BTreeMap-ordered graph walk: deterministic merge order.
        for id in self.slots.keys() {
            if let Some(core) = self.cores.get(id) {
                engine.merge(&core.stats());
            }
        }
        ClusterStats {
            queries: self.served,
            failed: self.failed,
            shards: self.shards,
            warm_graphs: self.cores.len(),
            engine,
            per_shard: self.last_shard_stats.clone(),
        }
    }

    /// Builds each shard's schedule: queries are pinned to their graph's
    /// shard, then reordered *within the shard* to group same-graph
    /// queries back-to-back (graphs in first-appearance order) and,
    /// within a graph, same-affinity queries back-to-back (classes in
    /// first-appearance order, submission order inside a class). The
    /// grouping changes only engine temperature, never answers.
    ///
    /// # Panics
    /// Panics if a query names an unregistered graph.
    fn schedule(&self, queries: &[(GraphId, Query)]) -> Vec<ShardSchedule> {
        // First-appearance ranks make the sort stable and deterministic.
        let mut graph_rank: HashMap<GraphId, usize> = HashMap::new();
        let mut class_rank: HashMap<(GraphId, u64), usize> = HashMap::new();
        let mut keyed: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(queries.len());
        for (idx, (id, query)) in queries.iter().enumerate() {
            let slot = self
                .slots
                .get(id)
                .unwrap_or_else(|| panic!("query {idx} names unregistered graph {id}"));
            let next = graph_rank.len();
            let grank = *graph_rank.entry(*id).or_insert(next);
            let next = class_rank.len();
            let crank = *class_rank.entry((*id, query.affinity())).or_insert(next);
            keyed.push((slot.shard, grank, crank, idx));
        }
        let mut schedules: Vec<ShardSchedule> = vec![Vec::new(); self.shards];
        keyed.sort_unstable();
        for (shard, _, _, idx) in keyed {
            schedules[shard].push(idx);
        }
        schedules
    }

    /// Runs one shard's schedule on the current thread: rehydrate or
    /// build the engine per graph, dispatch every query in order, park
    /// the engines again. `emit` receives `(query index, response)` as
    /// each query completes — the threaded mode hands it an `mpsc`
    /// sender, the sequential mode a vector push.
    fn run_shard(
        slots: &BTreeMap<GraphId, GraphSlot>,
        schedule: &[usize],
        queries: &[(GraphId, Query)],
        mut cores: HashMap<GraphId, EngineCore>,
        emit: &mut dyn FnMut(usize, QueryResponse),
    ) -> ShardOutcome {
        let start = Instant::now();
        let mut engines: HashMap<GraphId, PaEngine<'_>> = HashMap::new();
        let mut stats = ShardStats::default();
        for &idx in schedule {
            let (id, query) = &queries[idx];
            let engine = engines.entry(*id).or_insert_with(|| {
                let slot = &slots[id];
                match cores.remove(id) {
                    Some(core) => PaEngine::from_core(&slot.graph, core),
                    None => PaEngine::new(&slot.graph, slot.config),
                }
            });
            if stats.graph_ids.last() != Some(id) {
                stats.graph_ids.push(*id);
            }
            emit(idx, run_query(engine, query));
            stats.queries += 1;
        }
        let cores = {
            // Park in sorted order so downstream aggregation (and any
            // future persistence) sees a deterministic sequence.
            let mut parked: Vec<(GraphId, PaEngine<'_>)> = engines.into_iter().collect();
            parked.sort_by_key(|(id, _)| *id);
            parked
                .into_iter()
                .map(|(id, engine)| (id, engine.into_core()))
                .collect()
        };
        stats.busy = start.elapsed();
        ShardOutcome { cores, stats }
    }

    /// Takes the parked cores a schedule will need, grouped per shard.
    fn checkout_cores(
        &mut self,
        schedules: &[ShardSchedule],
        queries: &[(GraphId, Query)],
    ) -> Vec<HashMap<GraphId, EngineCore>> {
        let mut out: Vec<HashMap<GraphId, EngineCore>> =
            (0..self.shards).map(|_| HashMap::new()).collect();
        for (shard, schedule) in schedules.iter().enumerate() {
            for &idx in schedule {
                let id = queries[idx].0;
                if let Some(core) = self.cores.remove(&id) {
                    out[shard].insert(id, core);
                }
            }
        }
        out
    }

    /// Banks a batch's outcomes back into the cluster. `responses` may
    /// contain `None` holes when a shard panicked mid-batch; only the
    /// queries actually answered count.
    fn absorb(&mut self, outcomes: Vec<ShardOutcome>, responses: &[Option<QueryResponse>]) {
        let mut per_shard = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            for (id, core) in outcome.cores {
                self.cores.insert(id, core);
            }
            per_shard.push(outcome.stats);
        }
        self.last_shard_stats = per_shard;
        let answered = responses.iter().flatten();
        self.served += answered.clone().count() as u64;
        self.failed += answered.filter(|r| !r.is_ok()).count() as u64;
    }

    /// Executes all shard schedules concurrently: one scoped worker per
    /// shard, streaming `(index, response)` pairs back over an `mpsc`
    /// channel while the calling thread collects. A panicking worker
    /// yields `Err(payload)` in its slot instead of poisoning the batch.
    fn run_threaded(
        slots: &BTreeMap<GraphId, GraphSlot>,
        schedules: &[ShardSchedule],
        mut shard_cores: Vec<HashMap<GraphId, EngineCore>>,
        queries: &[(GraphId, Query)],
        responses: &mut [Option<QueryResponse>],
    ) -> Vec<Result<ShardOutcome, PanicPayload>> {
        let mut outcomes = Vec::new();
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, QueryResponse)>();
            let handles: Vec<_> = schedules
                .iter()
                .zip(shard_cores.drain(..))
                .map(|(schedule, cores)| {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        let mut emit = |idx: usize, resp: QueryResponse| {
                            tx.send((idx, resp)).expect("collector outlives workers")
                        };
                        Self::run_shard(slots, schedule, queries, cores, &mut emit)
                    })
                })
                .collect();
            drop(tx);
            // Workers that panic drop their sender mid-unwind, so the
            // drain terminates once every worker finished either way.
            for (idx, resp) in rx {
                responses[idx] = Some(resp);
            }
            outcomes = handles.into_iter().map(|h| h.join()).collect();
        });
        outcomes
    }

    /// Executes all shard schedules on the calling thread, in shard
    /// order — the deterministic reference for [`Self::run_threaded`],
    /// with the same per-shard panic containment.
    fn run_all_sequential(
        slots: &BTreeMap<GraphId, GraphSlot>,
        schedules: &[ShardSchedule],
        mut shard_cores: Vec<HashMap<GraphId, EngineCore>>,
        queries: &[(GraphId, Query)],
        responses: &mut [Option<QueryResponse>],
    ) -> Vec<Result<ShardOutcome, PanicPayload>> {
        schedules
            .iter()
            .zip(shard_cores.drain(..))
            .map(|(schedule, cores)| {
                // Mirrors the thread boundary of the concurrent mode:
                // responses written before a panic are kept, the rest of
                // the shard unwinds. The slice-write emit closure is
                // unwind-safe (each slot is set at most once, atomically).
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut emit = |idx: usize, resp: QueryResponse| responses[idx] = Some(resp);
                    Self::run_shard(slots, schedule, queries, cores, &mut emit)
                }))
            })
            .collect()
    }

    /// The shared batch lifecycle both serving modes run: schedule,
    /// check out parked cores, execute (the one step that differs),
    /// collect, absorb. Keeping this in one place is part of the
    /// determinism story — the sequential replay cannot drift from the
    /// threaded mode's bookkeeping.
    ///
    /// Panic safety: outcomes from healthy shards are absorbed (warm
    /// cores re-parked, counters banked) *before* any worker panic is
    /// resumed, so one poisoned query costs its own shard's in-flight
    /// engines, never the fleet's.
    fn run_batch(&mut self, queries: &[(GraphId, Query)], threaded: bool) -> ServeReport {
        let start = Instant::now();
        let schedules = self.schedule(queries);
        let shard_cores = self.checkout_cores(&schedules, queries);

        let mut responses: Vec<Option<QueryResponse>> = vec![None; queries.len()];
        let executor = if threaded {
            Self::run_threaded
        } else {
            Self::run_all_sequential
        };
        let results = executor(
            &self.slots,
            &schedules,
            shard_cores,
            queries,
            &mut responses,
        );

        let mut first_panic: Option<PanicPayload> = None;
        let outcomes: Vec<ShardOutcome> = results
            .into_iter()
            .filter_map(|r| match r {
                Ok(outcome) => Some(outcome),
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                    None
                }
            })
            .collect();
        self.absorb(outcomes, &responses);
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
        let responses: Vec<QueryResponse> = responses
            .into_iter()
            .map(|r| r.expect("every scheduled query responds"))
            .collect();
        ServeReport {
            stats: self.stats(),
            responses,
            wall: start.elapsed(),
        }
    }

    /// Serves a batch concurrently: one worker thread per shard, each
    /// executing its schedule on the engines it owns and streaming
    /// `(index, response)` pairs back over an `mpsc` channel.
    ///
    /// Responses come back in submission order; results and per-query
    /// costs are bit-identical to [`PaCluster::serve_sequential`] (see
    /// the determinism contract in the module docs).
    ///
    /// # Panics
    /// Panics if a query names an unregistered graph, or a worker
    /// panics (the first worker panic is re-raised — after healthy
    /// shards' warm engines and counters have been banked).
    pub fn serve(&mut self, queries: &[(GraphId, Query)]) -> ServeReport {
        self.run_batch(queries, true)
    }

    /// Serves a batch on the calling thread: the *same* per-shard
    /// schedules as [`PaCluster::serve`], executed shard by shard. The
    /// deterministic reference mode — responses and engine counters
    /// bit-match the threaded mode; only wall-clock timing differs.
    ///
    /// # Panics
    /// Panics if a query names an unregistered graph, or a shard
    /// panics (contained and re-raised like [`PaCluster::serve`]).
    pub fn serve_sequential(&mut self, queries: &[(GraphId, Query)]) -> ServeReport {
        self.run_batch(queries, false)
    }
}

/// A seeded mixed workload over a cluster's registered graphs: the
/// query mix a PA service sees in the harness `serve` experiment, the
/// `service_throughput` bench, and the determinism tests — mostly PA
/// solves and verification traffic with a tail of heavier analytics
/// (MST, SSSP, eccentricity, small min-cut and CDS runs).
///
/// Partitions and subgraphs are drawn from a small per-graph pool
/// (three connected partitions, three edge subsets, two `k` values), so
/// a realistic fraction of queries re-hits warm artifacts. Fully
/// deterministic in `(cluster graphs, count, seed)`.
pub fn mixed_workload(cluster: &PaCluster, count: usize, seed: u64) -> Vec<(GraphId, Query)> {
    let ids = cluster.graph_ids();
    assert!(!ids.is_empty(), "workload needs at least one graph");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5e21_ed5e);
    // Per-graph pools of cache-affine inputs.
    struct Pool {
        partitions: Vec<Vec<usize>>,
        subgraphs: Vec<Vec<usize>>,
        ks: Vec<usize>,
    }
    let pools: Vec<Pool> = ids
        .iter()
        .map(|&id| {
            let g = cluster.graph(id).expect("registered");
            let partitions = (0..3)
                .map(|i| {
                    let target = (g.n() / 8).clamp(2, 24);
                    gen::random_connected_partition(g, target, seed ^ (id.0 << 3) ^ i)
                        .assignment()
                        .to_vec()
                })
                .collect();
            let subgraphs = (0..3)
                .map(|i| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (id.0 << 5) ^ i);
                    (0..g.m()).filter(|_| rng.random::<f64>() < 0.6).collect()
                })
                .collect();
            Pool {
                partitions,
                subgraphs,
                ks: vec![6, 10],
            }
        })
        .collect();
    let checks = [
        VerifyCheck::ConnectedSpanning,
        VerifyCheck::SpanningTree,
        VerifyCheck::Cut,
        VerifyCheck::Bipartite,
        VerifyCheck::Forest,
    ];
    (0..count)
        .map(|_| {
            let which = rng.random_range(0..ids.len());
            let (id, pool) = (ids[which], &pools[which]);
            let g = cluster.graph(id).expect("registered");
            let n = g.n();
            let query = match rng.random_range(0..100u32) {
                // Half the traffic: PA solves over pooled partitions.
                0..=49 => Query::Pa {
                    assignment: pool.partitions[rng.random_range(0..pool.partitions.len())].clone(),
                    values: (0..n as u64)
                        .map(|v| v.wrapping_mul(rng.random_range(1..64)))
                        .collect(),
                    agg: [Aggregate::Min, Aggregate::Max, Aggregate::Sum]
                        [rng.random_range(0..3usize)],
                },
                // Verification-suite traffic over pooled subgraphs.
                50..=64 => Query::Components {
                    h_edges: pool.subgraphs[rng.random_range(0..pool.subgraphs.len())].clone(),
                },
                65..=77 => Query::Verify {
                    check: checks[rng.random_range(0..checks.len())],
                    h_edges: pool.subgraphs[rng.random_range(0..pool.subgraphs.len())].clone(),
                },
                // Analytics tail.
                78..=84 => Query::Kdom {
                    k: pool.ks[rng.random_range(0..pool.ks.len())],
                },
                85..=89 => Query::Eccentricity {
                    k: pool.ks[rng.random_range(0..pool.ks.len())],
                },
                90..=94 => Query::Mst,
                95..=97 => Query::Sssp {
                    source: rng.random_range(0..n),
                },
                98 => Query::MinCut { trials: 1 },
                _ => Query::Cds {
                    node_weights: (0..n as u64).map(|v| 1 + (v * 7) % 13).collect(),
                },
            };
            (id, query)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster(shards: usize) -> PaCluster {
        let mut cluster = PaCluster::new(shards);
        cluster.add_graph(GraphId(1), gen::grid(4, 5));
        cluster.add_graph(GraphId(2), gen::path(18));
        cluster.add_graph(GraphId(3), gen::gnp_connected(20, 0.2, 5));
        cluster
    }

    #[test]
    fn scheduler_groups_by_graph_then_affinity() {
        let cluster = small_cluster(1);
        let rows_a = vec![
            0usize, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3,
        ];
        let pa = |assignment: &Vec<usize>, v: u64| Query::Pa {
            assignment: assignment.clone(),
            values: vec![v; 20],
            agg: Aggregate::Min,
        };
        let whole = vec![0usize; 20];
        // Interleaved graphs and partitions on one shard.
        let queries = vec![
            (GraphId(1), pa(&rows_a, 1)),
            (GraphId(2), Query::Mst),
            (GraphId(1), pa(&whole, 2)),
            (GraphId(1), pa(&rows_a, 3)),
            (GraphId(2), Query::Mst),
        ];
        let schedules = cluster.schedule(&queries);
        // One shard; graph 1 first (first appearance), its rows_a class
        // batched (indices 0 then 3), then whole (2); then graph 2.
        assert_eq!(schedules.len(), 1);
        assert_eq!(schedules[0], vec![0, 3, 2, 1, 4]);
    }

    #[test]
    #[should_panic(expected = "unregistered graph")]
    fn unknown_graph_panics() {
        let cluster = small_cluster(2);
        let _ = cluster.schedule(&[(GraphId(99), Query::Mst)]);
    }

    #[test]
    fn batching_turns_repeat_partitions_into_hits() {
        let mut cluster = small_cluster(2);
        let rows: Vec<usize> = (0..20).map(|v| v / 5).collect();
        let pa = |v: u64| Query::Pa {
            assignment: rows.clone(),
            values: vec![v; 20],
            agg: Aggregate::Sum,
        };
        // Same partition three times, interleaved with another graph.
        let queries = vec![
            (GraphId(1), pa(1)),
            (GraphId(2), Query::Kdom { k: 6 }),
            (GraphId(1), pa(2)),
            (GraphId(2), Query::Kdom { k: 6 }),
            (GraphId(1), pa(3)),
        ];
        let report = cluster.serve(&queries);
        assert!(report.responses.iter().all(|r| r.is_ok()));
        assert_eq!(report.stats.engine.hits, 2, "2nd and 3rd Pa are warm");
        assert_eq!(report.stats.engine.division_hits, 1, "2nd kdom memoized");
        // Warm state survives into the next batch.
        let report = cluster.serve(&[(GraphId(1), pa(9))]);
        assert_eq!(report.stats.engine.hits, 3);
    }

    #[test]
    fn stats_display_mentions_the_fleet() {
        let mut cluster = small_cluster(4);
        let report = cluster.serve(&[(GraphId(2), Query::Mst)]);
        let line = report.stats.to_string();
        assert!(line.contains("1 queries (0 failed)"), "{line}");
        assert!(line.contains("over 4 shards"), "{line}");
        assert!(line.contains("hits/misses"), "{line}");
    }

    #[test]
    fn mixed_workload_is_deterministic_and_covers_graphs() {
        let cluster = small_cluster(2);
        let a = mixed_workload(&cluster, 40, 9);
        let b = mixed_workload(&cluster, 40, 9);
        assert_eq!(a, b, "same seed, same workload");
        let c = mixed_workload(&cluster, 40, 10);
        assert_ne!(a, c, "different seed, different workload");
        for id in cluster.graph_ids() {
            assert!(a.iter().any(|(g, _)| *g == id), "graph {id} unused");
        }
    }
}
