//! Corollary A.1: graph verification problems (after Das Sarma et al.).
//!
//! Given the network `G` and a subgraph `H` (an edge subset, each node
//! knowing its incident `H`-edges), verify global predicates about `H` in
//! `Õ(D + √n)` rounds and `Õ(m)` messages. All verifiers here reduce to
//! [`component_labels`](crate::components::component_labels()) (one PA
//! call) plus `O(1)` tree aggregations, exactly as in the paper's
//! Appendix A.2.
//!
//! Every verifier comes in two forms: a one-shot wrapper taking
//! `(g, …, &PaConfig)` that spins up a fresh [`PaEngine`], and a
//! `*_with_engine` form that runs on a caller-held session so that
//! repeated queries on one network reuse the BFS tree and the cached
//! per-partition artifacts (the intended shape for serving many
//! verification queries).

use rmo_congest::CostReport;
use rmo_graph::{num::ceil_log2, EdgeId, Graph};

use crate::components::component_labels_with_engine;
use rmo_core::{EngineConfig, PaConfig, PaEngine, PaError};

/// A verification verdict plus its measured cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The predicate's truth value.
    pub holds: bool,
    /// Measured cost.
    pub cost: CostReport,
}

/// Verifies that `H` is connected and spans all of `V`.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_connected_spanning(
    g: &Graph,
    h_edges: &[EdgeId],
    config: &PaConfig,
) -> Result<Verdict, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    verify_connected_spanning_with_engine(&mut engine, h_edges)
}

/// [`verify_connected_spanning`] on a long-lived engine session.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_connected_spanning_with_engine(
    engine: &mut PaEngine<'_>,
    h_edges: &[EdgeId],
) -> Result<Verdict, PaError> {
    let labels = component_labels_with_engine(engine, h_edges)?;
    // One more tree aggregation (Or over "label differs from neighbor")
    // is dominated by the PA cost; charge a broadcast's worth.
    let cost = labels.cost + CostReport::new(2, 2 * engine.graph().n() as u64);
    Ok(Verdict {
        holds: labels.num_components == 1,
        cost,
    })
}

/// Verifies that `H` is a spanning tree of `G`: connected, spanning, and
/// exactly `n − 1` edges (counted by a tree aggregation).
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_spanning_tree(
    g: &Graph,
    h_edges: &[EdgeId],
    config: &PaConfig,
) -> Result<Verdict, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    verify_spanning_tree_with_engine(&mut engine, h_edges)
}

/// [`verify_spanning_tree`] on a long-lived engine session.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_spanning_tree_with_engine(
    engine: &mut PaEngine<'_>,
    h_edges: &[EdgeId],
) -> Result<Verdict, PaError> {
    let g = engine.graph();
    let conn = verify_connected_spanning_with_engine(engine, h_edges)?;
    let mut set: Vec<EdgeId> = h_edges.to_vec();
    set.sort_unstable();
    set.dedup();
    let holds = conn.holds && set.len() == g.n().saturating_sub(1);
    // Counting |H| is a Sum convergecast on the BFS tree: O(D), O(n).
    let cost = conn.cost + CostReport::new(2, 2 * g.n() as u64);
    Ok(Verdict { holds, cost })
}

/// Verifies that `H` is a cut of `G`: removing `H`'s edges disconnects
/// the graph.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_cut(g: &Graph, h_edges: &[EdgeId], config: &PaConfig) -> Result<Verdict, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    verify_cut_with_engine(&mut engine, h_edges)
}

/// [`verify_cut`] on a long-lived engine session.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_cut_with_engine(
    engine: &mut PaEngine<'_>,
    h_edges: &[EdgeId],
) -> Result<Verdict, PaError> {
    let g = engine.graph();
    let keep: Vec<EdgeId> = {
        let h: std::collections::HashSet<EdgeId> = h_edges.iter().copied().collect();
        (0..g.m()).filter(|e| !h.contains(e)).collect()
    };
    let labels = component_labels_with_engine(engine, &keep)?;
    Ok(Verdict {
        holds: labels.num_components > 1,
        cost: labels.cost + CostReport::new(2, 2 * g.n() as u64),
    })
}

/// Verifies that the subgraph `H` is bipartite.
///
/// Each `H`-component is 2-colored by depth parity along a rooted
/// spanning tree of the component (which the PA machinery maintains —
/// see the paper's footnote 4), then every `H`-edge checks its endpoints
/// disagree; the verdicts combine with one `Or` aggregation.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_bipartite(
    g: &Graph,
    h_edges: &[EdgeId],
    config: &PaConfig,
) -> Result<Verdict, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    verify_bipartite_with_engine(&mut engine, h_edges)
}

/// [`verify_bipartite`] on a long-lived engine session.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_bipartite_with_engine(
    engine: &mut PaEngine<'_>,
    h_edges: &[EdgeId],
) -> Result<Verdict, PaError> {
    let g = engine.graph();
    let labels = component_labels_with_engine(engine, h_edges)?;
    // 2-color every H-component by BFS parity (the component spanning
    // trees of footnote 4), then test all H-edges.
    let mut color = vec![u8::MAX; g.n()];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); g.n()];
    for &e in h_edges {
        let (u, v) = g.endpoints(e);
        adj[u].push(v);
        adj[v].push(u);
    }
    for start in 0..g.n() {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        let mut q = std::collections::VecDeque::from([start]);
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if color[v] == u8::MAX {
                    color[v] = 1 - color[u];
                    q.push_back(v);
                }
            }
        }
    }
    let holds = h_edges.iter().all(|&e| {
        let (u, v) = g.endpoints(e);
        color[u] != color[v]
    });
    // Parity labeling rides the component spanning trees (O(D + √n)
    // rounds, O(n) messages) and the check is one round + one Or
    // aggregation.
    let cost = labels.cost + CostReport::new(3, (2 * g.n() + h_edges.len()) as u64);
    Ok(Verdict { holds, cost })
}

/// Verifies that `H` is a forest (acyclic): in every `H`-component,
/// `#edges = #nodes − 1`, checked by two aggregations per component
/// (count nodes; count edges, each charged to its lower-id endpoint).
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_forest(g: &Graph, h_edges: &[EdgeId], config: &PaConfig) -> Result<Verdict, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    verify_forest_with_engine(&mut engine, h_edges)
}

/// [`verify_forest`] on a long-lived engine session.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_forest_with_engine(
    engine: &mut PaEngine<'_>,
    h_edges: &[EdgeId],
) -> Result<Verdict, PaError> {
    let g = engine.graph();
    let labels = component_labels_with_engine(engine, h_edges)?;
    let mut nodes_per = std::collections::HashMap::new();
    let mut edges_per = std::collections::HashMap::new();
    for v in 0..g.n() {
        *nodes_per.entry(labels.component_of[v]).or_insert(0usize) += 1;
    }
    let mut set: Vec<EdgeId> = h_edges.to_vec();
    set.sort_unstable();
    set.dedup();
    for &e in &set {
        let (u, _) = g.endpoints(e);
        *edges_per.entry(labels.component_of[u]).or_insert(0usize) += 1;
    }
    let holds = nodes_per
        .iter()
        .all(|(c, &n)| edges_per.get(c).copied().unwrap_or(0) == n - 1 || n == 1);
    // Two more Sum aggregations ride the same PA machinery.
    let cost = labels.cost + CostReport::new(4, 4 * g.n() as u64);
    Ok(Verdict { holds, cost })
}

/// Verifies `s`–`t` connectivity within the subgraph `H`.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_st_connectivity(
    g: &Graph,
    h_edges: &[EdgeId],
    s: usize,
    t: usize,
    config: &PaConfig,
) -> Result<Verdict, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    verify_st_connectivity_with_engine(&mut engine, h_edges, s, t)
}

/// [`verify_st_connectivity`] on a long-lived engine session.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_st_connectivity_with_engine(
    engine: &mut PaEngine<'_>,
    h_edges: &[EdgeId],
    s: usize,
    t: usize,
) -> Result<Verdict, PaError> {
    let labels = component_labels_with_engine(engine, h_edges)?;
    Ok(Verdict {
        holds: labels.labels[s] == labels.labels[t],
        cost: labels.cost + CostReport::new(2, 2 * engine.graph().n() as u64),
    })
}

/// Verifies that `H` is a **minimum** spanning tree of `G` (the MST
/// verification problem of Das Sarma et al.).
///
/// Uses the cycle property: a spanning tree `T` is minimum iff every
/// non-tree edge is at least as heavy as every edge on the tree path
/// between its endpoints. Distributedly this is the classic
/// King-style verification riding `O(log n)` PA-scale labelings; here
/// each non-tree edge checks the max tree-path weight (computed on the
/// rooted tree), and the verdicts combine with one `Or` aggregation.
///
/// Ties are allowed (an equal-weight swap keeps minimality).
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_mst(g: &Graph, h_edges: &[EdgeId], config: &PaConfig) -> Result<Verdict, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    verify_mst_with_engine(&mut engine, h_edges)
}

/// [`verify_mst`] on a long-lived engine session.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_mst_with_engine(
    engine: &mut PaEngine<'_>,
    h_edges: &[EdgeId],
) -> Result<Verdict, PaError> {
    let g = engine.graph();
    let tree_check = verify_spanning_tree_with_engine(engine, h_edges)?;
    if !tree_check.holds {
        return Ok(tree_check);
    }
    // Build the rooted tree over H.
    let keep: Vec<bool> = {
        let set: std::collections::HashSet<EdgeId> = h_edges.iter().copied().collect();
        (0..g.m()).map(|e| set.contains(&e)).collect()
    };
    let (h, hmap) = g.edge_subgraph(&keep);
    let (tree, _) = rmo_graph::bfs_tree(&h, 0);
    // Max edge weight on the tree path u..v, by walking to the LCA.
    let path_max = |mut a: usize, mut b: usize| -> u64 {
        let mut best = 0u64;
        while tree.depth_of(a) > tree.depth_of(b) {
            let e = tree.parent_edge_of(a).expect("deeper node");
            best = best.max(g.weight(hmap[e]));
            a = tree.parent_of(a).expect("deeper node");
        }
        while tree.depth_of(b) > tree.depth_of(a) {
            let e = tree.parent_edge_of(b).expect("deeper node");
            best = best.max(g.weight(hmap[e]));
            b = tree.parent_of(b).expect("deeper node");
        }
        while a != b {
            let (ea, eb) = (
                tree.parent_edge_of(a).expect("non-root"),
                tree.parent_edge_of(b).expect("non-root"),
            );
            best = best.max(g.weight(hmap[ea])).max(g.weight(hmap[eb]));
            a = tree.parent_of(a).expect("non-root");
            b = tree.parent_of(b).expect("non-root");
        }
        best
    };
    let holds = g
        .edges()
        .filter(|&(e, _, _, _)| !keep[e])
        .all(|(_, u, v, w)| w >= path_max(u, v));
    // O(log n) labeling passes carry the path maxima distributedly.
    let log_n = ceil_log2(g.n().max(2)) as u64;
    let cost = tree_check.cost + CostReport::new(2 * tree.depth() + 2, 2 * (g.m() as u64) * log_n);
    Ok(Verdict { holds, cost })
}

/// Verifies that the **network itself** is 2-edge-connected: for every
/// bridge candidate the components of `G − e` are inspected. The
/// distributed algorithm runs Thurimella's biconnectivity labeling (one
/// PA-scale pass per Õ(1) sketch round); here the verdict is computed
/// against the centralized Hopcroft–Tarjan oracle while the cost of the
/// PA passes is charged, keeping the measured complexity honest.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_two_edge_connected(g: &Graph, config: &PaConfig) -> Result<Verdict, PaError> {
    let mut engine = PaEngine::new(g, EngineConfig::from(*config));
    verify_two_edge_connected_with_engine(&mut engine)
}

/// [`verify_two_edge_connected`] on a long-lived engine session.
///
/// # Errors
/// Propagates [`PaError`].
pub fn verify_two_edge_connected_with_engine(
    engine: &mut PaEngine<'_>,
) -> Result<Verdict, PaError> {
    let g = engine.graph();
    // Cost: one component labeling (the sparse-certificate pass).
    let all: Vec<EdgeId> = (0..g.m()).collect();
    let labels = component_labels_with_engine(engine, &all)?;
    let holds = rmo_graph::is_two_edge_connected(g);
    let log_n = ceil_log2(g.n().max(2)) as u64;
    Ok(Verdict {
        holds,
        cost: labels.cost + CostReport::new(2, 2 * g.n() as u64 * log_n),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::{gen, reference};

    #[test]
    fn spanning_tree_accepted() {
        let g = gen::grid_weighted(5, 5, 2);
        let mst = reference::kruskal(&g);
        let v = verify_spanning_tree(&g, &mst.edges, &PaConfig::default()).unwrap();
        assert!(v.holds);
    }

    #[test]
    fn spanning_tree_with_missing_edge_rejected() {
        let g = gen::grid_weighted(5, 5, 2);
        let mut edges = reference::kruskal(&g).edges;
        edges.pop();
        let v = verify_spanning_tree(&g, &edges, &PaConfig::default()).unwrap();
        assert!(!v.holds);
    }

    #[test]
    fn tree_plus_extra_edge_rejected() {
        let g = gen::grid_weighted(4, 4, 1);
        let mut edges = reference::kruskal(&g).edges;
        let extra = (0..g.m()).find(|e| !edges.contains(e)).unwrap();
        edges.push(extra);
        let v = verify_spanning_tree(&g, &edges, &PaConfig::default()).unwrap();
        assert!(!v.holds, "n edges cannot be a tree");
    }

    #[test]
    fn connectivity_detects_split() {
        let g = gen::path(10);
        let all: Vec<EdgeId> = (0..g.m()).collect();
        assert!(
            verify_connected_spanning(&g, &all, &PaConfig::default())
                .unwrap()
                .holds
        );
        let missing_middle: Vec<EdgeId> = (0..g.m()).filter(|&e| e != 4).collect();
        assert!(
            !verify_connected_spanning(&g, &missing_middle, &PaConfig::default())
                .unwrap()
                .holds
        );
    }

    #[test]
    fn cut_verification() {
        let g = gen::dumbbell(4, 1);
        let bridge = g.edge_between(3, 4).unwrap();
        assert!(
            verify_cut(&g, &[bridge], &PaConfig::default())
                .unwrap()
                .holds
        );
        // A non-cut: one intra-clique edge.
        let inner = g.edge_between(0, 1).unwrap();
        assert!(
            !verify_cut(&g, &[inner], &PaConfig::default())
                .unwrap()
                .holds
        );
    }

    #[test]
    fn bipartite_verification() {
        // Even cycle: bipartite. Odd cycle: not.
        let even = gen::cycle(8);
        let all_even: Vec<EdgeId> = (0..even.m()).collect();
        assert!(
            verify_bipartite(&even, &all_even, &PaConfig::default())
                .unwrap()
                .holds
        );
        let odd = gen::cycle(9);
        let all_odd: Vec<EdgeId> = (0..odd.m()).collect();
        assert!(
            !verify_bipartite(&odd, &all_odd, &PaConfig::default())
                .unwrap()
                .holds
        );
    }

    #[test]
    fn bipartite_on_forest_always_holds() {
        let g = gen::grid(4, 6);
        let mst = reference::kruskal(&g);
        assert!(
            verify_bipartite(&g, &mst.edges, &PaConfig::default())
                .unwrap()
                .holds
        );
    }

    #[test]
    fn forest_verification() {
        let g = gen::grid_weighted(5, 5, 1);
        let cfg = PaConfig::default();
        let mst = reference::kruskal(&g).edges;
        assert!(
            verify_forest(&g, &mst, &cfg).unwrap().holds,
            "a tree is a forest"
        );
        let mut partial = mst.clone();
        partial.truncate(10);
        assert!(
            verify_forest(&g, &partial, &cfg).unwrap().holds,
            "subforests are forests"
        );
        let all: Vec<EdgeId> = (0..g.m()).collect();
        assert!(
            !verify_forest(&g, &all, &cfg).unwrap().holds,
            "grids have cycles"
        );
    }

    #[test]
    fn st_connectivity() {
        let g = gen::path(10);
        let cfg = PaConfig::default();
        let left: Vec<EdgeId> = (0..4).collect(); // connects 0..=4
        assert!(verify_st_connectivity(&g, &left, 0, 4, &cfg).unwrap().holds);
        assert!(!verify_st_connectivity(&g, &left, 0, 9, &cfg).unwrap().holds);
    }

    #[test]
    fn mst_verification_accepts_true_mst() {
        let g = gen::grid_weighted(5, 6, 3);
        let mst = reference::kruskal(&g).edges;
        assert!(verify_mst(&g, &mst, &PaConfig::default()).unwrap().holds);
    }

    #[test]
    fn mst_verification_rejects_heavier_tree() {
        let g = gen::grid_weighted(5, 6, 3);
        let mst = reference::kruskal(&g).edges;
        // Swap one MST edge for a heavier non-tree edge closing the same
        // connectivity: take any non-tree edge, add it, drop the heaviest
        // tree edge on the induced cycle - but pick a WORSE swap instead:
        // remove the lightest tree edge on that cycle.
        let non_tree = (0..g.m()).find(|e| !mst.contains(e)).unwrap();
        let (u, v) = g.endpoints(non_tree);
        // Find a tree edge on the u-v path lighter than the non-tree edge.
        let keep: Vec<bool> = (0..g.m()).map(|e| mst.contains(&e)).collect();
        let (h, hmap) = g.edge_subgraph(&keep);
        let (tree, _) = rmo_graph::bfs_tree(&h, 0);
        let mut path_edges = Vec::new();
        let (mut a, mut b) = (u, v);
        while tree.depth_of(a) > tree.depth_of(b) {
            path_edges.push(hmap[tree.parent_edge_of(a).unwrap()]);
            a = tree.parent_of(a).unwrap();
        }
        while tree.depth_of(b) > tree.depth_of(a) {
            path_edges.push(hmap[tree.parent_edge_of(b).unwrap()]);
            b = tree.parent_of(b).unwrap();
        }
        while a != b {
            path_edges.push(hmap[tree.parent_edge_of(a).unwrap()]);
            path_edges.push(hmap[tree.parent_edge_of(b).unwrap()]);
            a = tree.parent_of(a).unwrap();
            b = tree.parent_of(b).unwrap();
        }
        let lighter = *path_edges
            .iter()
            .find(|&&e| g.weight(e) < g.weight(non_tree))
            .expect("MST path has a lighter edge than the non-tree edge");
        let mut worse: Vec<EdgeId> = mst.iter().copied().filter(|&e| e != lighter).collect();
        worse.push(non_tree);
        let verdict = verify_mst(&g, &worse, &PaConfig::default()).unwrap();
        assert!(!verdict.holds, "swapped-in heavier edge must be detected");
    }

    #[test]
    fn mst_verification_rejects_non_tree() {
        let g = gen::grid_weighted(4, 4, 1);
        let mut edges = reference::kruskal(&g).edges;
        edges.pop();
        assert!(!verify_mst(&g, &edges, &PaConfig::default()).unwrap().holds);
    }

    #[test]
    fn two_edge_connectivity() {
        let cfg = PaConfig::default();
        assert!(
            verify_two_edge_connected(&gen::cycle(8), &cfg)
                .unwrap()
                .holds
        );
        assert!(
            verify_two_edge_connected(&gen::grid(4, 4), &cfg)
                .unwrap()
                .holds
        );
        assert!(
            !verify_two_edge_connected(&gen::dumbbell(4, 1), &cfg)
                .unwrap()
                .holds
        );
        assert!(
            !verify_two_edge_connected(&gen::path(5), &cfg)
                .unwrap()
                .holds
        );
    }
}
