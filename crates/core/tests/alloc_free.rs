//! Regression guard: a warm cache-hit [`PaEngine::solve_on`] performs
//! **zero** heap allocation. The wave plan is precomputed per partition,
//! the router batches, informed/active sets and climb stamps live in the
//! engine's [`SolveScratch`], and the caller-owned `PaResult` buffer is
//! recycled; once everything has grown to the workload's high-water
//! mark, a solve must never touch the allocator again.
//!
//! Pinned with a counting global allocator. This file holds a single
//! `#[test]` (integration tests each get their own binary), so no
//! concurrent test can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rmo_core::{Aggregate, EngineConfig, PaEngine, PaInstance, PaResult};
use rmo_graph::{gen, Partition};

/// System allocator wrapper counting every allocation/reallocation.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during_solves(
    engine: &mut PaEngine<'_>,
    inst: &PaInstance<'_>,
    out: &mut PaResult,
    solves: usize,
) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..solves {
        engine.solve_on(inst, out).expect("warm solve succeeds");
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Minimum allocation count over several measurement windows. The solve
/// is deterministic — if *it* allocated on warm calls, every window
/// would show it — so the minimum filters out the libtest harness
/// thread's own incidental allocations landing in a window.
fn min_allocs_over_windows(
    engine: &mut PaEngine<'_>,
    inst: &PaInstance<'_>,
    out: &mut PaResult,
    windows: usize,
    solves: usize,
) -> usize {
    (0..windows)
        .map(|_| allocs_during_solves(engine, inst, out, solves))
        .min()
        .expect("at least one window")
}

#[test]
fn warm_cache_hit_solves_do_not_allocate() {
    let g = gen::grid(8, 12);
    let parts = Partition::new(&g, gen::grid_row_partition(8, 12)).unwrap();
    let values: Vec<u64> = (0..g.n() as u64).map(|v| (v * 31) % 97).collect();
    let inst = PaInstance::from_partition(&g, parts, values, Aggregate::Min).unwrap();

    let mut engine = PaEngine::new(&g, EngineConfig::new());
    let mut out = PaResult::default();
    // Warm-up: the first solve builds stage 1 + artifacts and grows every
    // recycled buffer; a second pass catches any lazily-sized arena.
    let warmup = allocs_during_solves(&mut engine, &inst, &mut out, 2);
    assert!(warmup > 0, "cold solves build the pipeline");

    let reference = out.clone();
    let warm = min_allocs_over_windows(&mut engine, &inst, &mut out, 4, 25);
    assert_eq!(
        warm, 0,
        "warm cache-hit solve_on must be allocation-free \
         (warm-up allocated {warmup}, warm solves allocated {warm})"
    );
    // The recycled buffers still produce the exact same answer.
    assert_eq!(out, reference, "warm solves are bit-identical");
    assert!(
        engine.stats().hits > 0,
        "measurement windows were cache hits"
    );
}
