//! Consistency between Algorithm 2's *behavioral* verdict (did the wave
//! cover everyone within `b` iterations?) and the *structural* block
//! count — on random instances, the two notions of "block parameter
//! exceeds `b`" must agree.

use proptest::prelude::*;

use rmo_core::solve::{PaSetup, Variant};
use rmo_core::subparts_det::deterministic_division;
use rmo_core::verify_block::verify_block_parameter;
use rmo_core::{Aggregate, PaInstance};
use rmo_graph::{bfs_tree, gen};
use rmo_shortcut::alg8::{construct_deterministic, DetParams};
use rmo_shortcut::Shortcut;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn algorithm2_verdict_matches_structural_blocks(
        n in 10usize..70,
        extra in 0usize..50,
        seed in 0u64..200,
        parts_n in 1usize..6,
        budget_pick in 1usize..6,
    ) {
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let g = gen::random_connected(n, m, seed);
        let parts = gen::random_connected_partition(&g, parts_n, seed ^ 11);
        let inst = PaInstance::from_partition(
            &g,
            parts.clone(),
            vec![0; n],
            Aggregate::Sum,
        ).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let leaders: Vec<usize> = parts.part_ids().map(|p| parts.members(p)[0]).collect();
        let d = tree.depth().max(1);
        let division = deterministic_division(&g, &parts, d).division;
        let terminals: Vec<Vec<usize>> =
            parts.part_ids().map(|p| division.reps_of_part(p)).collect();
        let built = construct_deterministic(
            &g, &tree, &parts, &terminals,
            DetParams::new(4, 2, parts.num_parts()),
        );
        let sc = built.shortcut;

        // Structural block counts per part (singleton blocks for direct).
        let structural: Vec<usize> = parts
            .part_ids()
            .map(|p| {
                if sc.is_direct(p) {
                    division.subpart_count_of_part(p)
                } else {
                    sc.blocks_for_terminals(&g, &tree, p, &terminals[p]).len()
                }
            })
            .collect();
        let verdict = verify_block_parameter(
            &inst,
            &PaSetup {
                tree: &tree,
                shortcut: &sc,
                division: &division,
                leaders: &leaders,
                block_budget: budget_pick,
            },
            Variant::Deterministic,
        );
        for p in parts.part_ids() {
            // The wave needs at most `structural[p]` iterations; it cannot
            // exceed the budget if blocks fit (sufficiency). It may still
            // finish early when the wave leaps blocks through part edges,
            // so only the sufficiency direction is exact.
            if structural[p] <= budget_pick {
                prop_assert!(
                    !verdict.exceeds[p],
                    "part {} with {} blocks flagged at budget {}",
                    p, structural[p], budget_pick
                );
            }
        }
    }

    #[test]
    fn empty_shortcut_needs_subpart_many_iterations(
        len in 8usize..60,
        block in 2usize..8,
    ) {
        // A path split into k sub-parts with NO shortcut: the wave needs
        // exactly k iterations, so budget k-1 must flag, budget k must pass.
        let len = (len / block) * block; // multiple of block
        prop_assume!(len >= 2 * block);
        let g = gen::path(len);
        let parts = rmo_graph::Partition::whole(&g).unwrap();
        let inst = PaInstance::from_partition(
            &g, parts.clone(), vec![0; len], Aggregate::Sum,
        ).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = Shortcut::empty(1);
        let k = len / block;
        let division = rmo_core::SubPartDivision::new(
            &g,
            &parts,
            (0..len).map(|v| v / block).collect(),
            (0..len).map(|v| if v % block == 0 { None } else { Some(v - 1) }).collect(),
            (0..k).map(|s| s * block).collect(),
        ).unwrap();
        let setup = |b: usize| PaSetup {
            tree: &tree,
            shortcut: &sc,
            division: &division,
            leaders: &[0],
            block_budget: b,
        };
        let fail = verify_block_parameter(&inst, &setup(k - 1), Variant::Deterministic);
        prop_assert!(fail.exceeds[0], "budget k-1 must be insufficient");
        let pass = verify_block_parameter(&inst, &setup(k), Variant::Deterministic);
        prop_assert!(!pass.exceeds[0], "budget k must suffice");
    }
}
