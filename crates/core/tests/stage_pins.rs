//! Golden per-stage round/message pins for the PA pipeline.
//!
//! Captured on the pre-flat-arena implementation (the PR that rewrote
//! `TreeRouter`/alg7/alg8/`run_wave` around recycled scratch arenas) and
//! asserted ever since: the rewrite — and any future one — must keep
//! every stage's round/message counts and routed values bit-identical.
//! Wall time is the only thing allowed to change.
//!
//! Three workload shapes: a grid with row parts (wide, shallow), a path
//! with block parts (deep, maximally contended), and a random connected
//! graph with random regions (irregular). For each: stage 1
//! (election + BFS), stage 3 (deterministic division), stage 4
//! (Algorithm 8 shortcut), Lemma 4.2 routing (upcast + downcast, with
//! value fingerprints), and the engine end-to-end (cold build + warm
//! cache-hit solve).

use rmo_congest::programs::bfs::run_bfs;
use rmo_congest::programs::leader::run_leader_election;
use rmo_congest::{DowncastJob, Network, TreeRouter, UpcastJob};
use rmo_core::subparts_det::deterministic_division;
use rmo_core::{Aggregate, EngineConfig, PaEngine, PaInstance};
use rmo_graph::{gen, Graph, NodeId, Partition};

fn workloads() -> Vec<(&'static str, Graph, Partition)> {
    let mut out = Vec::new();
    let g = gen::grid(8, 8);
    let parts = Partition::new(&g, gen::grid_row_partition(8, 8)).expect("rows connect");
    out.push(("grid", g, parts));
    let g = gen::path(64);
    let parts = Partition::new(&g, gen::path_blocks(64, 8)).expect("blocks connect");
    out.push(("path", g, parts));
    let g = gen::random_connected(60, 150, 5);
    let parts = gen::random_connected_partition(&g, 6, 11);
    out.push(("gnp", g, parts));
    out
}

/// A compact order-sensitive fingerprint of a value sequence.
fn fp(values: impl IntoIterator<Item = u64>) -> u64 {
    values
        .into_iter()
        .fold(0xcbf2_9ce4_8422_2325, |acc: u64, v| {
            (acc ^ v).wrapping_mul(0x0000_0100_0000_01b3)
        })
}

fn stage_counts() -> Vec<(String, usize, u64)> {
    let mut out = Vec::new();
    for (label, g, parts) in workloads() {
        let net = Network::new(&g, 3);
        let (root, _, elect) = run_leader_election(&g, &net).expect("terminates");
        let (tree, _, bfs) = run_bfs(&g, &net, root).expect("terminates");
        let c1 = elect + bfs;
        out.push((format!("{label}/stage1"), c1.rounds, c1.messages));

        let d = tree.depth().max(1);
        let div = deterministic_division(&g, &parts, d);
        out.push((
            format!("{label}/division"),
            div.cost.rounds,
            div.cost.messages,
        ));

        let terminals: Vec<Vec<NodeId>> = parts
            .part_ids()
            .map(|p| div.division.reps_of_part(p))
            .collect();
        let sc = rmo_shortcut::alg8::construct_deterministic(
            &g,
            &tree,
            &parts,
            &terminals,
            rmo_shortcut::alg8::DetParams::new(2, 2, parts.num_parts()),
        );
        out.push((
            format!("{label}/shortcut"),
            sc.cost.rounds,
            sc.cost.messages,
        ));

        // Routing: one job per part, all rooted at the tree root so the
        // casts contend on the upper tree edges.
        let router = TreeRouter::new(&tree);
        let up_jobs: Vec<UpcastJob> = parts
            .part_ids()
            .map(|p| UpcastJob {
                subtree: p,
                root: tree.root(),
                sources: parts
                    .members(p)
                    .iter()
                    .map(|&v| (v, v as u64 + 1))
                    .collect(),
            })
            .collect();
        let up = router.upcast(&up_jobs, u64::wrapping_add);
        out.push((format!("{label}/upcast"), up.cost.rounds, up.cost.messages));
        out.push((
            format!("{label}/upcast_agg"),
            0,
            fp(up.aggregates.iter().map(|a| a.unwrap_or(u64::MAX))),
        ));
        let down_jobs: Vec<DowncastJob> = parts
            .part_ids()
            .map(|p| DowncastJob {
                subtree: p,
                root: tree.root(),
                value: 1000 + p as u64,
                destinations: parts.members(p).to_vec(),
            })
            .collect();
        let down = router.downcast(&down_jobs);
        out.push((
            format!("{label}/downcast"),
            down.cost.rounds,
            down.cost.messages,
        ));
        out.push((
            format!("{label}/downcast_recv"),
            0,
            fp(down
                .received
                .iter()
                .flatten()
                .map(|&(s, v)| (s as u64) << 32 | v)),
        ));

        // Engine end-to-end: the cold solve charges election + BFS +
        // stages 2–4 + the wave; the warm solve is the cache-hit path.
        let vals: Vec<u64> = (0..g.n() as u64)
            .map(|v| v.wrapping_mul(0x9e37_79b9))
            .collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), vals, Aggregate::Min)
            .expect("valid instance");
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let cold = engine.solve_instance(&inst).expect("solves");
        out.push((
            format!("{label}/engine_cold"),
            cold.cost.rounds,
            cold.cost.messages,
        ));
        out.push((format!("{label}/engine_values"), 0, fp(cold.node_values)));
        let warm = engine.solve_instance(&inst).expect("solves");
        out.push((
            format!("{label}/engine_warm"),
            warm.cost.rounds,
            warm.cost.messages,
        ));
    }
    out
}

#[test]
fn pipeline_stage_counts_are_pinned() {
    let actual = stage_counts();
    let expected: Vec<(String, usize, u64)> = EXPECTED
        .iter()
        .map(|&(n, r, m)| (n.to_string(), r, m))
        .collect();
    let formatted: String = actual
        .iter()
        .map(|(n, r, m)| format!("    (\"{n}\", {r}, {m}),\n"))
        .collect();
    assert_eq!(
        actual, expected,
        "pinned pipeline stage counts drifted — if the change is an \
         intentional semantic change (not a perf rewrite), re-pin with:\n{formatted}"
    );
}

/// `(entry, rounds, messages-or-fingerprint)` — see module docs.
const EXPECTED: &[(&str, usize, u64)] = &[
    ("grid/stage1", 24, 1131),
    ("grid/division", 129, 1960),
    ("grid/shortcut", 35, 150),
    ("grid/upcast", 11, 223),
    ("grid/upcast_agg", 0, 11809336925340121701),
    ("grid/downcast", 14, 142),
    ("grid/downcast_recv", 0, 13159963736839143301),
    ("grid/engine_cold", 251, 3783),
    ("grid/engine_values", 0, 2881715486837125157),
    ("grid/engine_warm", 30, 264),
    ("path/stage1", 80, 694),
    // The path/grid division + routing rows coincide with the grid by
    // construction: both carve 64 nodes into eight blocks {8p..8p+8},
    // so part memberships (and thus division work and routed values)
    // are identical node-id sets.
    ("path/division", 129, 1960),
    ("path/shortcut", 129, 232),
    ("path/upcast", 38, 1066),
    ("path/upcast_agg", 0, 11809336925340121701),
    ("path/downcast", 42, 162),
    ("path/downcast_recv", 0, 13159963736839143301),
    ("path/engine_cold", 551, 3863),
    ("path/engine_values", 0, 2881715486837125157),
    ("path/engine_warm", 93, 540),
    ("gnp/stage1", 12, 1291),
    ("gnp/division", 53, 922),
    ("gnp/shortcut", 26, 145),
    ("gnp/upcast", 8, 115),
    ("gnp/upcast_agg", 0, 16471472808482471931),
    ("gnp/downcast", 7, 87),
    ("gnp/downcast_recv", 0, 17719816387951414822),
    ("gnp/engine_cold", 212, 3049),
    ("gnp/engine_values", 0, 10697206274894757293),
    ("gnp/engine_warm", 42, 420),
];
