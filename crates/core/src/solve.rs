//! Algorithm 1: solving PA given a shortcut and a sub-part division.
//!
//! Phase A broadcasts the leader's message `mᵢ` through the part:
//!
//! 1. the leader routes `mᵢ` up its own sub-part tree to its
//!    representative;
//! 2. for up to `b` iterations: `BlockRoute` spreads `mᵢ` to every
//!    representative of every block containing an informed active
//!    representative (the only step that touches shortcut edges — and only
//!    representatives use it, which is the `Õ(m)` message bound of
//!    Observation 4.3); the informed representatives broadcast down their
//!    sub-part trees; informed nodes notify same-part neighbors across
//!    sub-part boundaries; freshly notified nodes climb to their own
//!    representatives, which become the next iteration's active set.
//!
//! Phase B computes `f(Pᵢ)` at the leader *symmetrically* (the same wave
//! run in reverse: every broadcast becomes an aggregating convergecast
//! with identical round and message counts), and phase C broadcasts the
//! result back out — again the same wave. We therefore charge phases B
//! and C the measured cost of phase A each; the aggregate value itself is
//! the fold of the part's values, which is order-independent because `f`
//! is commutative and associative (Definition 1.1), and is checked
//! against the instance's reference in every test.
//!
//! The deterministic variant runs `BlockRoute` at CONGEST capacity 1 with
//! the Lemma 4.2 tie-breaking. The randomized variant (Section 4.2)
//! staggers parts by an independent uniform delay in `[c]` and runs
//! meta-rounds of `⌈log₂ n⌉` CONGEST rounds each, letting every edge
//! flush its `O(log n)` queued messages — `O(D log n)` rounds per block
//! iteration plus the one-off delay, i.e. `Õ(bD + c)` in total.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rmo_congest::router::{DowncastBatch, RouterScratch, TreeRouter, UpcastBatch};
use rmo_congest::CostReport;
use rmo_graph::{num::ceil_log2, Graph, NodeId, Partition, RootedTree};
use rmo_shortcut::Shortcut;

use crate::instance::{PaError, PaInstance};
use crate::subparts::SubPartDivision;

/// Which variant of Algorithm 1 to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Lemma 4.2 tie-breaking at capacity 1: `Õ(b(D + c))` rounds.
    Deterministic,
    /// Random part delays + `O(log n)` meta-rounds: `Õ(bD + c)` rounds
    /// w.h.p.
    Randomized {
        /// Seed for the per-part delays.
        seed: u64,
    },
}

/// The outcome of a PA run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaResult {
    /// Aggregate per part.
    pub aggregates: Vec<u64>,
    /// Aggregate delivered at each node (its part's aggregate).
    pub node_values: Vec<u64>,
    /// Total measured cost (all three phases).
    pub cost: CostReport,
    /// Cost of the broadcast wave alone (phase A) — what Algorithm 2
    /// charges per verification.
    pub broadcast_cost: CostReport,
    /// Block iterations each part needed (≤ its block count).
    pub iterations_per_part: Vec<usize>,
}

impl PaResult {
    /// The aggregate value node `v` learned.
    pub fn value_at(&self, v: NodeId) -> u64 {
        self.node_values[v]
    }
}

impl Default for PaResult {
    /// An empty result buffer for [`solve_with`] to fill; its vectors are
    /// recycled across solves.
    fn default() -> PaResult {
        PaResult {
            aggregates: Vec::new(),
            node_values: Vec::new(),
            cost: CostReport::zero(),
            broadcast_cost: CostReport::zero(),
            iterations_per_part: Vec::new(),
        }
    }
}

/// Borrowed views of the infrastructure one Algorithm 1 run needs: the
/// BFS tree, the tree-restricted shortcut, the sub-part division, the
/// part leaders, and the block-iteration budget `b`.
///
/// Grouping these replaces the old seven-positional-argument entry
/// points; [`crate::engine::PaEngine`] builds and caches the owned
/// counterparts and hands out setups per partition.
#[derive(Debug, Clone, Copy)]
pub struct PaSetup<'a> {
    /// The (global BFS) spanning tree the shortcut restricts to.
    pub tree: &'a RootedTree,
    /// The tree-restricted shortcut.
    pub shortcut: &'a Shortcut,
    /// The sub-part division (Algorithm 3 or 6 output).
    pub division: &'a SubPartDivision,
    /// `leaders[i]` — the known leader `lᵢ` of part `i` (Appendix B
    /// removes this assumption; see [`crate::leaderless`]).
    pub leaders: &'a [NodeId],
    /// The bound `b` on block iterations; pass the shortcut's
    /// (terminal-)block parameter.
    pub block_budget: usize,
}

/// Runs Algorithm 1 on prepared infrastructure.
///
/// Convenience wrapper over [`solve_with`] that builds the
/// [`WavePlan`] and a fresh [`SolveScratch`] per call; repeated solves
/// over one partition should cache both (what
/// [`crate::engine::PaEngine`] does).
///
/// # Errors
/// [`PaError::BlockBudgetExceeded`] if some part is not covered within
/// `setup.block_budget` iterations — the failure Algorithm 2 detects.
pub fn solve_on(
    inst: &PaInstance<'_>,
    setup: &PaSetup<'_>,
    variant: Variant,
) -> Result<PaResult, PaError> {
    let plan = WavePlan::build(
        inst.graph(),
        setup.tree,
        setup.shortcut,
        setup.division,
        inst.partition(),
    );
    let mut scratch = SolveScratch::new();
    let mut out = PaResult::default();
    solve_with(inst, setup, &plan, variant, &mut scratch, &mut out)?;
    Ok(out)
}

/// Runs Algorithm 1 into a reusable result buffer, threading recycled
/// scratch arenas through every stage: once `scratch` and `out` have
/// warmed up to the workload size, a solve performs no heap allocation.
///
/// `plan` must have been built (via [`WavePlan::build`]) for exactly the
/// instance's partition and the setup's tree/shortcut/division.
///
/// # Errors
/// [`PaError::BlockBudgetExceeded`] if some part is not covered within
/// `setup.block_budget` iterations.
pub fn solve_with(
    inst: &PaInstance<'_>,
    setup: &PaSetup<'_>,
    plan: &WavePlan,
    variant: Variant,
    scratch: &mut SolveScratch,
    out: &mut PaResult,
) -> Result<(), PaError> {
    let SolveScratch { wave, outcome } = scratch;
    run_wave_with(inst, setup, plan, variant, wave, outcome);
    if let Some(v) = outcome.informed.iter().position(|&i| !i) {
        return Err(PaError::BlockBudgetExceeded {
            part: inst.partition().part_of(v),
            budget: setup.block_budget,
        });
    }
    // Phases B (convergecast of f) and C (broadcast of the result) replay
    // the wave's communication pattern; their cost equals phase A's.
    out.cost = outcome.cost + outcome.cost + outcome.cost;
    out.broadcast_cost = outcome.cost;
    out.iterations_per_part.clear();
    out.iterations_per_part
        .extend_from_slice(&outcome.iterations_per_part);
    let parts = inst.partition();
    out.aggregates.clear();
    for p in parts.part_ids() {
        out.aggregates.push(inst.reference_aggregate(p));
    }
    let PaResult {
        aggregates,
        node_values,
        ..
    } = out;
    node_values.clear();
    for v in 0..inst.graph().n() {
        node_values.push(aggregates.get(parts.part_of(v)).copied().unwrap_or(0));
    }
    Ok(())
}

/// One global iteration of the wave, for tracing (Figure 4 of the paper
/// shows exactly this progression).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaveIteration {
    /// Blocks routed by `BlockRoute` this iteration.
    pub blocks_routed: usize,
    /// Sub-parts that spread their message this iteration.
    pub subparts_spread: usize,
    /// Total nodes informed after this iteration.
    pub informed_after: usize,
    /// Representatives active (set `A`) entering the next iteration.
    pub active_after: usize,
}

/// Outcome of the phase-A wave: cost, per-part iteration counts, and
/// whether every node was informed (used directly by Algorithm 2).
#[derive(Debug, Clone)]
pub struct WaveOutcome {
    /// Measured cost of the wave.
    pub cost: CostReport,
    /// Block iterations per part.
    pub iterations_per_part: Vec<usize>,
    /// Nodes informed (all true on success).
    pub informed: Vec<bool>,
    /// Per-global-iteration trace.
    pub trace: Vec<WaveIteration>,
}

impl Default for WaveOutcome {
    /// An empty outcome buffer for `run_wave_with` to fill; its vectors
    /// are recycled across solves.
    fn default() -> WaveOutcome {
        WaveOutcome {
            cost: CostReport::zero(),
            iterations_per_part: Vec::new(),
            informed: Vec::new(),
            trace: Vec::new(),
        }
    }
}

/// Runs phase A (the broadcast wave) and reports the outcome without
/// failing on budget overruns — Algorithm 2 needs the raw outcome.
pub fn broadcast_wave_outcome(
    inst: &PaInstance<'_>,
    setup: &PaSetup<'_>,
    variant: Variant,
) -> WaveOutcome {
    let plan = WavePlan::build(
        inst.graph(),
        setup.tree,
        setup.shortcut,
        setup.division,
        inst.partition(),
    );
    let mut scratch = WaveScratch::default();
    let mut out = WaveOutcome::default();
    run_wave_with(inst, setup, &plan, variant, &mut scratch, &mut out);
    out
}

/// The partition-level routing plan of the wave: the terminal-block
/// structure (block roots, terminals, rep→block map) plus the shortcut's
/// congestion estimate for the randomized variant's delays.
///
/// This is everything `run_wave_with` needs beyond the [`PaSetup`] views
/// that does *not* depend on the aggregated values — so
/// [`crate::engine::PaEngine`] builds it once per partition (inside
/// [`crate::pipeline::build_artifacts`]) and every warm solve reuses it,
/// instead of rebuilding the old per-solve `BTreeMap` block index.
#[derive(Debug, Clone, Default)]
pub struct WavePlan {
    /// Routing root per block.
    block_root: Vec<NodeId>,
    /// CSR offsets into `term` (length `blocks + 1`).
    term_off: Vec<usize>,
    /// Block terminals, concatenated.
    term: Vec<NodeId>,
    /// Block of each representative (`usize::MAX` for non-reps).
    block_of_rep: Vec<usize>,
    /// Max shortcut congestion over all edges (randomized delays).
    c_est: usize,
}

impl WavePlan {
    /// Builds the plan for one partition: per part, either singleton
    /// blocks per representative (direct parts — the wave spreads via
    /// part edges only) or the shortcut's terminal blocks.
    pub fn build(
        g: &Graph,
        tree: &RootedTree,
        shortcut: &Shortcut,
        division: &SubPartDivision,
        parts: &Partition,
    ) -> WavePlan {
        let mut plan = WavePlan {
            block_of_rep: vec![usize::MAX; g.n()],
            term_off: vec![0],
            ..WavePlan::default()
        };
        for p in parts.part_ids() {
            let reps = division.reps_of_part(p);
            if shortcut.is_direct(p) {
                for &r in &reps {
                    let id = plan.block_root.len();
                    plan.block_root.push(r);
                    plan.term.push(r);
                    plan.term_off.push(plan.term.len());
                    if let Some(slot) = plan.block_of_rep.get_mut(r) {
                        *slot = id;
                    }
                }
            } else {
                for b in shortcut.blocks_for_terminals(g, tree, p, &reps) {
                    let id = plan.block_root.len();
                    for &t in &b.part_nodes {
                        if let Some(slot) = plan.block_of_rep.get_mut(t) {
                            *slot = id;
                        }
                    }
                    plan.block_root.push(b.root);
                    plan.term.extend_from_slice(&b.part_nodes);
                    plan.term_off.push(plan.term.len());
                }
            }
        }
        plan.c_est = shortcut.congestion_map(g).into_iter().max().unwrap_or(0);
        plan
    }

    /// Number of blocks across all parts.
    pub fn num_blocks(&self) -> usize {
        self.block_root.len()
    }

    fn block_of(&self, r: NodeId) -> usize {
        self.block_of_rep.get(r).copied().unwrap_or(usize::MAX)
    }

    fn root_of(&self, b: usize) -> NodeId {
        self.block_root.get(b).copied().unwrap_or(0)
    }

    fn terminals(&self, b: usize) -> &[NodeId] {
        let lo = self.term_off.get(b).copied().unwrap_or(self.term.len());
        let hi = self.term_off.get(b + 1).copied().unwrap_or(self.term.len());
        self.term.get(lo..hi).unwrap_or(&[])
    }
}

/// Recycled wave-internal arenas (see [`SolveScratch`]).
#[derive(Debug, Default)]
struct WaveScratch {
    router: RouterScratch,
    up: UpcastBatch,
    down: DowncastBatch,
    /// Informed-representative set: membership bits + insertion list
    /// (what the old per-solve `BTreeSet` held; iteration order differs
    /// but every consumer sorts or is order-independent).
    rep_in: Vec<bool>,
    rep_list: Vec<NodeId>,
    subpart_spread: Vec<bool>,
    block_done: Vec<bool>,
    exhausted: Vec<bool>,
    active: Vec<Vec<NodeId>>,
    /// `(block, seq, rep)` triples of one part's active reps; sorting
    /// reproduces the old `BTreeMap` grouping (ascending block, reps in
    /// active order).
    srcs: Vec<(usize, usize, NodeId)>,
    touched_blocks: Vec<usize>,
    spreading: Vec<usize>,
    newly_touched: Vec<NodeId>,
    /// Climb dedup stamps, per node: `stamp[v] == climb_gen` means `v`'s
    /// parent edge was already charged this global iteration. Never
    /// cleared — the generation bump invalidates all stamps at once.
    climb_stamp: Vec<u64>,
    climb_gen: u64,
}

/// Marks `r` informed-as-representative; true if it was new.
fn rep_insert(rep_in: &mut [bool], rep_list: &mut Vec<NodeId>, r: NodeId) -> bool {
    match rep_in.get_mut(r) {
        Some(slot) if !*slot => {
            *slot = true;
            rep_list.push(r);
            true
        }
        _ => false,
    }
}

/// Reusable state for allocation-free solves: the wave's arenas (router
/// scratch and batches, informed/active sets, climb stamps) plus the
/// wave-outcome buffer. One instance serves any number of solves over
/// any partitions; buffers grow to the high-water mark and stay.
#[derive(Debug, Default)]
pub struct SolveScratch {
    wave: WaveScratch,
    outcome: WaveOutcome,
}

impl SolveScratch {
    /// A fresh scratch; arenas grow on first use and are recycled after.
    pub fn new() -> SolveScratch {
        SolveScratch::default()
    }
}

fn run_wave_with(
    inst: &PaInstance<'_>,
    setup: &PaSetup<'_>,
    plan: &WavePlan,
    variant: Variant,
    scratch: &mut WaveScratch,
    out: &mut WaveOutcome,
) {
    let PaSetup {
        tree,
        shortcut: _,
        division,
        leaders,
        block_budget,
    } = *setup;
    let g = inst.graph();
    let parts = inst.partition();
    let n = g.n();
    let np = parts.num_parts();
    let nb = plan.num_blocks();
    assert_eq!(leaders.len(), np, "one leader per part");

    // Randomized variant setup: capacity, meta-round factor, part delays.
    let (capacity, meta_factor, max_delay) = match variant {
        Variant::Deterministic => (1usize, 1usize, 0usize),
        Variant::Randomized { seed } => {
            let k = ceil_log2(n.max(2)).max(1);
            let c_est = plan.c_est;
            let mut rng = StdRng::seed_from_u64(seed);
            let max_delay = if c_est > 1 {
                // Each part delays itself uniformly in [c]; only the max
                // delay shows up in the global round count.
                (0..np)
                    .map(|_| rng.random_range(0..c_est))
                    .max()
                    .unwrap_or(0)
            } else {
                0
            };
            (k, k, max_delay)
        }
    };
    let router = TreeRouter::with_capacity(tree, capacity);

    let WaveOutcome {
        cost,
        iterations_per_part: iterations,
        informed,
        trace,
    } = out;
    informed.clear();
    informed.resize(n, false);
    iterations.clear();
    iterations.resize(np, 0);
    trace.clear();
    let WaveScratch {
        router: rscratch,
        up,
        down,
        rep_in,
        rep_list,
        subpart_spread,
        block_done,
        exhausted,
        active,
        srcs,
        touched_blocks,
        spreading,
        newly_touched,
        climb_stamp,
        climb_gen,
    } = scratch;
    rep_in.clear();
    rep_in.resize(n, false);
    rep_list.clear();
    subpart_spread.clear();
    subpart_spread.resize(division.num_subparts(), false);
    block_done.clear();
    block_done.resize(nb, false);
    exhausted.clear();
    exhausted.resize(np, false);
    for a in active.iter_mut() {
        a.clear(); // stale entries past np stay empty and are harmless
    }
    if active.len() < np {
        active.resize_with(np, Vec::new);
    }
    if climb_stamp.len() < n {
        climb_stamp.resize(n, 0); // stale stamps never match a fresh gen
    }

    let mut rounds = max_delay;
    let mut messages = 0u64;

    // Line 8: route m_i from l_i to r(l_i) along the sub-part tree.
    let mut init_rounds = 0usize;
    for p in parts.part_ids() {
        let Some(&li) = leaders.get(p) else { continue };
        if let Some(i) = informed.get_mut(li) {
            *i = true;
        }
        let r = division.rep_of(li);
        messages += division.depth_of(li) as u64;
        init_rounds = init_rounds.max(division.depth_of(li));
        if let Some(i) = informed.get_mut(r) {
            *i = true;
        }
        rep_insert(rep_in, rep_list, r);
        if let Some(a) = active.get_mut(p) {
            a.push(r);
        }
    }
    rounds += init_rounds;

    // The wave. Global iterations run all parts in lockstep; per-part
    // iteration counters enforce the block budget individually.
    let global_cap = block_budget.max(1) + nb + 2;
    for _ in 0..global_cap {
        if active.iter().all(Vec::is_empty) {
            break;
        }
        // --- Step 1 (lines 11-12): BlockRoute on the active reps. ---
        up.clear();
        down.clear();
        touched_blocks.clear();
        for p in parts.part_ids() {
            let Some(act) = active.get_mut(p) else {
                continue;
            };
            if act.is_empty() {
                continue;
            }
            let Some(it) = iterations.get_mut(p) else {
                continue;
            };
            if *it >= block_budget.max(1) {
                // Budget exhausted: the part stops participating entirely
                // (Algorithm 2 relies on this to detect oversized block
                // parameters).
                act.clear();
                if let Some(e) = exhausted.get_mut(p) {
                    *e = true;
                }
                continue;
            }
            *it += 1;
            srcs.clear();
            for (seq, &r) in act.iter().enumerate() {
                let b = plan.block_of(r);
                debug_assert!(b != usize::MAX, "active rep {r} has a block");
                if !block_done.get(b).copied().unwrap_or(true) {
                    srcs.push((b, seq, r));
                }
            }
            srcs.sort_unstable();
            for grp in srcs.chunk_by(|a, b| a.0 == b.0) {
                let Some(&(b, _, _)) = grp.first() else {
                    continue;
                };
                if let Some(d) = block_done.get_mut(b) {
                    *d = true;
                }
                touched_blocks.push(b);
                let root = plan.root_of(b);
                up.begin_job(b, root);
                for &(_, _, r) in grp {
                    up.push_source(r, 1);
                }
                down.begin_job(b, root, 1);
                for &t in plan.terminals(b) {
                    down.push_destination(t);
                }
            }
            act.clear();
        }
        if !up.is_empty() {
            let up_cost = router.upcast_batch(up, rscratch, |a, _| a);
            let down_cost = router.downcast_batch(down, rscratch);
            rounds += (up_cost.rounds + down_cost.rounds) * meta_factor;
            messages += up_cost.messages + down_cost.messages;
        }
        // All terminals of a routed block are now informed representatives;
        // step 2 below spreads every informed rep's un-spread sub-part.
        for &b in touched_blocks.iter() {
            for &t in plan.terminals(b) {
                if let Some(i) = informed.get_mut(t) {
                    *i = true;
                }
                rep_insert(rep_in, rep_list, t);
            }
        }

        // --- Step 2 (lines 13-14): informed reps broadcast in their sub-parts. ---
        let mut step2_depth = 0usize;
        spreading.clear();
        for &r in rep_list.iter() {
            let s = division.subpart_of(r);
            if !subpart_spread.get(s).copied().unwrap_or(true)
                && !exhausted
                    .get(division.part_of_subpart(s))
                    .copied()
                    .unwrap_or(true)
            {
                spreading.push(s);
            }
        }
        spreading.sort_unstable();
        spreading.dedup();
        for &s in spreading.iter() {
            if let Some(sp) = subpart_spread.get_mut(s) {
                *sp = true;
            }
            step2_depth = step2_depth.max(division.subpart_depth(s));
            messages += (division.members(s).len() - 1) as u64;
            for &v in division.members(s) {
                if let Some(i) = informed.get_mut(v) {
                    *i = true;
                }
            }
        }
        rounds += step2_depth;

        // --- Step 3 (line 15): notify across sub-part boundaries. ---
        newly_touched.clear();
        if !spreading.is_empty() {
            rounds += 1;
        }
        for &s in spreading.iter() {
            let p = division.part_of_subpart(s);
            for &u in division.members(s) {
                for (v, _) in g.neighbors(u) {
                    if parts.part_of(v) == p && division.subpart_of(v) != s {
                        messages += 1;
                        if let Some(i) = informed.get_mut(v) {
                            if !*i {
                                *i = true;
                                newly_touched.push(v);
                            }
                        }
                    }
                }
            }
        }

        // --- Step 4 (lines 16-18): climb to representatives. ---
        *climb_gen += 1;
        let gen = *climb_gen;
        let mut climb_count = 0u64;
        let mut step4_depth = 0usize;
        newly_touched.sort_unstable();
        newly_touched.dedup();
        for &v in newly_touched.iter() {
            let s = division.subpart_of(v);
            if subpart_spread.get(s).copied().unwrap_or(false) {
                continue;
            }
            step4_depth = step4_depth.max(division.depth_of(v));
            let mut cur = v;
            while let Some(parent) = division.parent_of(cur) {
                match climb_stamp.get_mut(cur) {
                    Some(st) if *st == gen => break, // merged with an earlier climb
                    Some(st) => {
                        *st = gen;
                        climb_count += 1;
                    }
                    None => break,
                }
                cur = parent;
            }
            let r = division.rep_of(v);
            if let Some(i) = informed.get_mut(r) {
                *i = true;
            }
            if rep_insert(rep_in, rep_list, r) {
                let p = division.part_of_subpart(s);
                if let Some(a) = active.get_mut(p) {
                    if !a.contains(&r) {
                        a.push(r);
                    }
                }
            }
        }
        messages += climb_count;
        rounds += step4_depth;
        trace.push(WaveIteration {
            blocks_routed: touched_blocks.len(),
            subparts_spread: spreading.len(),
            informed_after: informed.iter().filter(|&&i| i).count(),
            active_after: active.iter().map(Vec::len).sum(),
        });
    }

    *cost = CostReport::with_capacity(rounds, messages, capacity);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::subparts::SubPartDivision;
    use rmo_graph::{bfs_tree, gen, Partition};
    use rmo_shortcut::trivial::trivial_shortcut_with_threshold;
    use rmo_shortcut::Shortcut;

    fn min_leaders(parts: &Partition) -> Vec<NodeId> {
        parts.part_ids().map(|p| parts.members(p)[0]).collect()
    }

    fn run(
        inst: &PaInstance<'_>,
        tree: &RootedTree,
        shortcut: &Shortcut,
        division: &SubPartDivision,
        leaders: &[NodeId],
        variant: Variant,
        block_budget: usize,
    ) -> Result<PaResult, PaError> {
        solve_on(
            inst,
            &PaSetup {
                tree,
                shortcut,
                division,
                leaders,
                block_budget,
            },
            variant,
        )
    }

    /// Full-tree shortcut + one-sub-part-per-part division: the simplest
    /// valid configuration (b = 1).
    fn simple_setup(
        g: &rmo_graph::Graph,
        parts: &Partition,
    ) -> (RootedTree, Shortcut, SubPartDivision, Vec<NodeId>) {
        let (tree, _) = bfs_tree(g, 0);
        let sc = trivial_shortcut_with_threshold(g, &tree, parts, 1);
        let leaders = min_leaders(parts);
        let division = SubPartDivision::one_per_part(g, parts, &leaders);
        (tree, sc, division, leaders)
    }

    #[test]
    fn grid_rows_min_aggregate() {
        let g = gen::grid(6, 6);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 6)).unwrap();
        let values: Vec<u64> = (0..36).map(|v| (v as u64 * 7919) % 1000).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Min).unwrap();
        let (tree, sc, division, leaders) = simple_setup(&g, &parts);
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &leaders,
            Variant::Deterministic,
            1,
        )
        .unwrap();
        for v in 0..36 {
            assert_eq!(res.value_at(v), inst.reference_aggregate_of(v));
        }
        assert!(res.iterations_per_part.iter().all(|&i| i <= 1));
    }

    #[test]
    fn all_aggregates_work() {
        let g = gen::cycle(12);
        let parts = Partition::new(&g, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]).unwrap();
        for f in Aggregate::all() {
            let values: Vec<u64> = (0..12).map(|v| (v as u64).wrapping_mul(37) % 50).collect();
            let inst = PaInstance::from_partition(&g, parts.clone(), values, f).unwrap();
            let (tree, sc, division, leaders) = simple_setup(&g, &parts);
            let res = run(
                &inst,
                &tree,
                &sc,
                &division,
                &leaders,
                Variant::Deterministic,
                1,
            )
            .unwrap();
            for p in parts.part_ids() {
                assert_eq!(res.aggregates[p], inst.reference_aggregate(p), "{f:?}");
            }
        }
    }

    #[test]
    fn randomized_variant_matches_reference() {
        let g = gen::grid(5, 8);
        let parts = Partition::new(&g, gen::grid_row_partition(5, 8)).unwrap();
        let values: Vec<u64> = (0..40).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Sum).unwrap();
        let (tree, sc, division, leaders) = simple_setup(&g, &parts);
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &leaders,
            Variant::Randomized { seed: 5 },
            1,
        )
        .unwrap();
        for v in 0..40 {
            assert_eq!(res.value_at(v), inst.reference_aggregate_of(v));
        }
        assert!(
            res.cost.capacity_multiplier > 1,
            "meta-rounds use batched capacity"
        );
    }

    #[test]
    fn direct_parts_spread_without_shortcut() {
        // Empty shortcut: singleton blocks, wave spreads via part edges
        // between sub-parts.
        let g = gen::path(24);
        let parts = Partition::new(&g, gen::path_blocks(24, 8)).unwrap();
        let values: Vec<u64> = (0..24).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Max).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = Shortcut::empty(parts.num_parts());
        let leaders = min_leaders(&parts);
        let division = SubPartDivision::one_per_part(&g, &parts, &leaders);
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &leaders,
            Variant::Deterministic,
            1,
        )
        .unwrap();
        for p in parts.part_ids() {
            assert_eq!(res.aggregates[p], inst.reference_aggregate(p));
        }
    }

    #[test]
    fn budget_zero_like_failure_detected() {
        // A part with two sub-parts and NO shortcut needs >= 2 iterations;
        // budget 1 must fail...  unless the leader's sub-part alone covers
        // it. Build a path with a 2-sub-part division by hand.
        let g = gen::path(8);
        let parts = Partition::whole(&g).unwrap();
        let values = vec![1u64; 8];
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = Shortcut::empty(1);
        // Two sub-parts: {0..3} rep 0, {4..7} rep 4.
        let division = SubPartDivision::new(
            &g,
            &parts,
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            vec![
                None,
                Some(0),
                Some(1),
                Some(2),
                None,
                Some(4),
                Some(5),
                Some(6),
            ],
            vec![0, 4],
        )
        .unwrap();
        // Budget 2 suffices: leader's sub-part spreads (iter 1), neighbor
        // notification reaches node 4's sub-part, which spreads in iter 2.
        let ok = run(
            &inst,
            &tree,
            &sc,
            &division,
            &[0],
            Variant::Deterministic,
            2,
        );
        assert!(ok.is_ok());
        // Budget 1: the second sub-part's rep never gets to spread.
        let err = run(
            &inst,
            &tree,
            &sc,
            &division,
            &[0],
            Variant::Deterministic,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, PaError::BlockBudgetExceeded { .. }));
    }

    #[test]
    fn message_cost_linear_for_simple_setup() {
        let g = gen::grid(8, 8);
        let parts = Partition::new(&g, gen::grid_row_partition(8, 8)).unwrap();
        let values: Vec<u64> = (0..64).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Min).unwrap();
        let (tree, sc, division, leaders) = simple_setup(&g, &parts);
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &leaders,
            Variant::Deterministic,
            1,
        )
        .unwrap();
        // Õ(m): with b=1 and one sub-part per part, each phase is O(n + m)
        // plus one BlockRoute (O(#reps * D)).
        let bound = 3 * (4 * g.m() as u64 + 8 * 64);
        assert!(
            res.cost.messages <= bound,
            "messages {} > {bound}",
            res.cost.messages
        );
    }

    #[test]
    fn wave_trace_shows_monotone_progress() {
        let g = gen::path(32);
        let parts = Partition::whole(&g).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![1; 32], Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = Shortcut::empty(1);
        let mut parent: Vec<Option<NodeId>> = Vec::new();
        for v in 0..32usize {
            parent.push(if v % 8 == 0 { None } else { Some(v - 1) });
        }
        let division = SubPartDivision::new(
            &g,
            &parts,
            (0..32).map(|v| v / 8).collect(),
            parent,
            vec![0, 8, 16, 24],
        )
        .unwrap();
        let wave = crate::solve::broadcast_wave_outcome(
            &inst,
            &PaSetup {
                tree: &tree,
                shortcut: &sc,
                division: &division,
                leaders: &[0],
                block_budget: 4,
            },
            Variant::Deterministic,
        );
        assert_eq!(wave.trace.len(), 4, "one global iteration per sub-part hop");
        let mut prev = 0;
        for it in &wave.trace {
            assert!(it.informed_after >= prev, "coverage is monotone");
            prev = it.informed_after;
        }
        assert_eq!(wave.trace.last().unwrap().informed_after, 32);
        assert_eq!(wave.trace.last().unwrap().active_after, 0);
        assert!(wave.trace.iter().all(|it| it.subparts_spread <= 1));
    }

    #[test]
    fn iterations_respect_block_structure() {
        // Direct path split into k sub-parts: the wave needs ~k iterations.
        let g = gen::path(32);
        let parts = Partition::whole(&g).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![1; 32], Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = Shortcut::empty(1);
        // 4 sub-parts of 8, reps at their left ends.
        let mut parent: Vec<Option<NodeId>> = Vec::new();
        for v in 0..32usize {
            parent.push(if v % 8 == 0 { None } else { Some(v - 1) });
        }
        let division = SubPartDivision::new(
            &g,
            &parts,
            (0..32).map(|v| v / 8).collect(),
            parent,
            vec![0, 8, 16, 24],
        )
        .unwrap();
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &[0],
            Variant::Deterministic,
            4,
        )
        .unwrap();
        assert_eq!(res.aggregates[0], 32);
        assert_eq!(
            res.iterations_per_part[0], 4,
            "one hop of sub-parts per iteration"
        );
    }
}
