//! Algorithm 1: solving PA given a shortcut and a sub-part division.
//!
//! Phase A broadcasts the leader's message `mᵢ` through the part:
//!
//! 1. the leader routes `mᵢ` up its own sub-part tree to its
//!    representative;
//! 2. for up to `b` iterations: `BlockRoute` spreads `mᵢ` to every
//!    representative of every block containing an informed active
//!    representative (the only step that touches shortcut edges — and only
//!    representatives use it, which is the `Õ(m)` message bound of
//!    Observation 4.3); the informed representatives broadcast down their
//!    sub-part trees; informed nodes notify same-part neighbors across
//!    sub-part boundaries; freshly notified nodes climb to their own
//!    representatives, which become the next iteration's active set.
//!
//! Phase B computes `f(Pᵢ)` at the leader *symmetrically* (the same wave
//! run in reverse: every broadcast becomes an aggregating convergecast
//! with identical round and message counts), and phase C broadcasts the
//! result back out — again the same wave. We therefore charge phases B
//! and C the measured cost of phase A each; the aggregate value itself is
//! the fold of the part's values, which is order-independent because `f`
//! is commutative and associative (Definition 1.1), and is checked
//! against the instance's reference in every test.
//!
//! The deterministic variant runs `BlockRoute` at CONGEST capacity 1 with
//! the Lemma 4.2 tie-breaking. The randomized variant (Section 4.2)
//! staggers parts by an independent uniform delay in `[c]` and runs
//! meta-rounds of `⌈log₂ n⌉` CONGEST rounds each, letting every edge
//! flush its `O(log n)` queued messages — `O(D log n)` rounds per block
//! iteration plus the one-off delay, i.e. `Õ(bD + c)` in total.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rmo_congest::router::{DowncastJob, TreeRouter, UpcastJob};
use rmo_congest::CostReport;
use rmo_graph::{num::ceil_log2, NodeId, RootedTree};
use rmo_shortcut::Shortcut;

use crate::instance::{PaError, PaInstance};
use crate::subparts::SubPartDivision;

/// Which variant of Algorithm 1 to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Lemma 4.2 tie-breaking at capacity 1: `Õ(b(D + c))` rounds.
    Deterministic,
    /// Random part delays + `O(log n)` meta-rounds: `Õ(bD + c)` rounds
    /// w.h.p.
    Randomized {
        /// Seed for the per-part delays.
        seed: u64,
    },
}

/// The outcome of a PA run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaResult {
    /// Aggregate per part.
    pub aggregates: Vec<u64>,
    /// Aggregate delivered at each node (its part's aggregate).
    pub node_values: Vec<u64>,
    /// Total measured cost (all three phases).
    pub cost: CostReport,
    /// Cost of the broadcast wave alone (phase A) — what Algorithm 2
    /// charges per verification.
    pub broadcast_cost: CostReport,
    /// Block iterations each part needed (≤ its block count).
    pub iterations_per_part: Vec<usize>,
}

impl PaResult {
    /// The aggregate value node `v` learned.
    pub fn value_at(&self, v: NodeId) -> u64 {
        self.node_values[v]
    }
}

/// Borrowed views of the infrastructure one Algorithm 1 run needs: the
/// BFS tree, the tree-restricted shortcut, the sub-part division, the
/// part leaders, and the block-iteration budget `b`.
///
/// Grouping these replaces the old seven-positional-argument entry
/// points; [`crate::engine::PaEngine`] builds and caches the owned
/// counterparts and hands out setups per partition.
#[derive(Debug, Clone, Copy)]
pub struct PaSetup<'a> {
    /// The (global BFS) spanning tree the shortcut restricts to.
    pub tree: &'a RootedTree,
    /// The tree-restricted shortcut.
    pub shortcut: &'a Shortcut,
    /// The sub-part division (Algorithm 3 or 6 output).
    pub division: &'a SubPartDivision,
    /// `leaders[i]` — the known leader `lᵢ` of part `i` (Appendix B
    /// removes this assumption; see [`crate::leaderless`]).
    pub leaders: &'a [NodeId],
    /// The bound `b` on block iterations; pass the shortcut's
    /// (terminal-)block parameter.
    pub block_budget: usize,
}

/// Runs Algorithm 1 on prepared infrastructure.
///
/// # Errors
/// [`PaError::BlockBudgetExceeded`] if some part is not covered within
/// `setup.block_budget` iterations — the failure Algorithm 2 detects.
pub fn solve_on(
    inst: &PaInstance<'_>,
    setup: &PaSetup<'_>,
    variant: Variant,
) -> Result<PaResult, PaError> {
    let wave = broadcast_wave(inst, setup, variant)?;
    // Phases B (convergecast of f) and C (broadcast of the result) replay
    // the wave's communication pattern; their cost equals phase A's.
    let cost = wave.cost + wave.cost + wave.cost;
    let parts = inst.partition();
    let aggregates: Vec<u64> = parts
        .part_ids()
        .map(|p| inst.reference_aggregate(p))
        .collect();
    let node_values: Vec<u64> = (0..inst.graph().n())
        .map(|v| aggregates[parts.part_of(v)])
        .collect();
    Ok(PaResult {
        aggregates,
        node_values,
        cost,
        broadcast_cost: wave.cost,
        iterations_per_part: wave.iterations_per_part,
    })
}

/// One global iteration of the wave, for tracing (Figure 4 of the paper
/// shows exactly this progression).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WaveIteration {
    /// Blocks routed by `BlockRoute` this iteration.
    pub blocks_routed: usize,
    /// Sub-parts that spread their message this iteration.
    pub subparts_spread: usize,
    /// Total nodes informed after this iteration.
    pub informed_after: usize,
    /// Representatives active (set `A`) entering the next iteration.
    pub active_after: usize,
}

/// Outcome of the phase-A wave: cost, per-part iteration counts, and
/// whether every node was informed (used directly by Algorithm 2).
#[derive(Debug, Clone)]
pub struct WaveOutcome {
    /// Measured cost of the wave.
    pub cost: CostReport,
    /// Block iterations per part.
    pub iterations_per_part: Vec<usize>,
    /// Nodes informed (all true on success).
    pub informed: Vec<bool>,
    /// Per-global-iteration trace.
    pub trace: Vec<WaveIteration>,
}

/// Runs phase A (the broadcast wave) and reports the outcome without
/// failing on budget overruns — Algorithm 2 needs the raw outcome.
pub fn broadcast_wave_outcome(
    inst: &PaInstance<'_>,
    setup: &PaSetup<'_>,
    variant: Variant,
) -> WaveOutcome {
    run_wave(inst, setup, variant)
}

fn broadcast_wave(
    inst: &PaInstance<'_>,
    setup: &PaSetup<'_>,
    variant: Variant,
) -> Result<WaveOutcome, PaError> {
    let outcome = run_wave(inst, setup, variant);
    if let Some(v) = outcome.informed.iter().position(|&i| !i) {
        return Err(PaError::BlockBudgetExceeded {
            part: inst.partition().part_of(v),
            budget: setup.block_budget,
        });
    }
    Ok(outcome)
}

fn run_wave(inst: &PaInstance<'_>, setup: &PaSetup<'_>, variant: Variant) -> WaveOutcome {
    let PaSetup {
        tree,
        shortcut,
        division,
        leaders,
        block_budget,
    } = *setup;
    let g = inst.graph();
    let parts = inst.partition();
    let n = g.n();
    assert_eq!(leaders.len(), parts.num_parts(), "one leader per part");

    // Block structure per part, with representatives as terminals.
    // Global block ids for the router's tie-breaking.
    struct BlockInfo {
        root: NodeId,
        terminals: Vec<NodeId>,
    }
    let mut blocks: Vec<BlockInfo> = Vec::new();
    let mut block_of_rep: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut blocks_of_part: Vec<Vec<usize>> = vec![Vec::new(); parts.num_parts()];
    for p in parts.part_ids() {
        let reps = division.reps_of_part(p);
        if shortcut.is_direct(p) {
            // Singleton blocks: the wave spreads via part edges only.
            for &r in &reps {
                let id = blocks.len();
                blocks.push(BlockInfo {
                    root: r,
                    terminals: vec![r],
                });
                block_of_rep.insert(r, id);
                blocks_of_part[p].push(id);
            }
        } else {
            for b in shortcut.blocks_for_terminals(g, tree, p, &reps) {
                let id = blocks.len();
                for &t in &b.part_nodes {
                    block_of_rep.insert(t, id);
                }
                blocks_of_part[p].push(id);
                blocks.push(BlockInfo {
                    root: b.root,
                    terminals: b.part_nodes,
                });
            }
        }
    }

    // Randomized variant setup: capacity, meta-round factor, part delays.
    let (capacity, meta_factor, max_delay) = match variant {
        Variant::Deterministic => (1usize, 1usize, 0usize),
        Variant::Randomized { seed } => {
            let k = ceil_log2(n.max(2)).max(1);
            let c_est = shortcut.congestion_map(g).into_iter().max().unwrap_or(0);
            let mut rng = StdRng::seed_from_u64(seed);
            let max_delay = if c_est > 1 {
                // Each part delays itself uniformly in [c]; only the max
                // delay shows up in the global round count.
                (0..parts.num_parts())
                    .map(|_| rng.random_range(0..c_est))
                    .max()
                    .unwrap_or(0)
            } else {
                0
            };
            (k, k, max_delay)
        }
    };
    let router = TreeRouter::with_capacity(tree, capacity);

    let mut informed = vec![false; n];
    let mut rep_informed: BTreeSet<NodeId> = BTreeSet::new();
    let mut subpart_spread: Vec<bool> = vec![false; division.num_subparts()];
    let mut block_done: Vec<bool> = vec![false; blocks.len()];
    let mut active: Vec<Vec<NodeId>> = vec![Vec::new(); parts.num_parts()]; // A per part
    let mut exhausted = vec![false; parts.num_parts()];
    let mut iterations = vec![0usize; parts.num_parts()];
    let mut rounds = max_delay;
    let mut messages = 0u64;

    // Line 8: route m_i from l_i to r(l_i) along the sub-part tree.
    let mut init_rounds = 0usize;
    for p in parts.part_ids() {
        let li = leaders[p];
        informed[li] = true;
        let r = division.rep_of(li);
        messages += division.depth_of(li) as u64;
        init_rounds = init_rounds.max(division.depth_of(li));
        informed[r] = true;
        rep_informed.insert(r);
        active[p].push(r);
    }
    rounds += init_rounds;

    // The wave. Global iterations run all parts in lockstep; per-part
    // iteration counters enforce the block budget individually.
    let mut trace: Vec<WaveIteration> = Vec::new();
    let global_cap = block_budget.max(1) + blocks.len() + 2;
    for _ in 0..global_cap {
        if active.iter().all(Vec::is_empty) {
            break;
        }
        // --- Step 1 (lines 11-12): BlockRoute on the active reps. ---
        let mut up_jobs: Vec<UpcastJob> = Vec::new();
        let mut down_jobs: Vec<DowncastJob> = Vec::new();
        let mut touched_blocks: Vec<usize> = Vec::new();
        for p in parts.part_ids() {
            if active[p].is_empty() {
                continue;
            }
            if iterations[p] >= block_budget.max(1) {
                // Budget exhausted: the part stops participating entirely
                // (Algorithm 2 relies on this to detect oversized block
                // parameters).
                active[p].clear();
                exhausted[p] = true;
                continue;
            }
            iterations[p] += 1;
            let mut sources_by_block: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
            for &r in &active[p] {
                let b = block_of_rep[&r];
                if !block_done[b] {
                    sources_by_block.entry(b).or_default().push(r);
                }
            }
            for (b, sources) in sources_by_block {
                block_done[b] = true;
                touched_blocks.push(b);
                up_jobs.push(UpcastJob {
                    subtree: b,
                    root: blocks[b].root,
                    sources: sources.into_iter().map(|s| (s, 1)).collect(),
                });
                down_jobs.push(DowncastJob {
                    subtree: b,
                    root: blocks[b].root,
                    value: 1,
                    destinations: blocks[b].terminals.clone(),
                });
            }
            active[p].clear();
        }
        if !up_jobs.is_empty() {
            let up = router.upcast(&up_jobs, |a, _| a);
            let down = router.downcast(&down_jobs);
            rounds += (up.cost.rounds + down.cost.rounds) * meta_factor;
            messages += up.cost.messages + down.cost.messages;
        }
        // All terminals of a routed block are now informed representatives;
        // step 2 below spreads every informed rep's un-spread sub-part.
        for &b in &touched_blocks {
            for &t in &blocks[b].terminals {
                informed[t] = true;
                rep_informed.insert(t);
            }
        }

        // --- Step 2 (lines 13-14): informed reps broadcast in their sub-parts. ---
        let mut step2_depth = 0usize;
        let mut spreading: Vec<usize> = Vec::new();
        for &r in rep_informed.iter() {
            let s = division.subpart_of(r);
            if !subpart_spread[s] && !exhausted[division.part_of_subpart(s)] {
                spreading.push(s);
            }
        }
        spreading.sort_unstable();
        spreading.dedup();
        for &s in &spreading {
            subpart_spread[s] = true;
            step2_depth = step2_depth.max(division.subpart_depth(s));
            messages += (division.members(s).len() - 1) as u64;
            for &v in division.members(s) {
                informed[v] = true;
            }
        }
        rounds += step2_depth;

        // --- Step 3 (line 15): notify across sub-part boundaries. ---
        let mut newly_touched: Vec<NodeId> = Vec::new();
        if !spreading.is_empty() {
            rounds += 1;
        }
        for &s in &spreading {
            let p = division.part_of_subpart(s);
            for &u in division.members(s) {
                for (v, _) in g.neighbors(u) {
                    if parts.part_of(v) == p && division.subpart_of(v) != s {
                        messages += 1;
                        if !informed[v] {
                            informed[v] = true;
                            newly_touched.push(v);
                        }
                    }
                }
            }
        }

        // --- Step 4 (lines 16-18): climb to representatives. ---
        let mut climb_edges: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let mut step4_depth = 0usize;
        newly_touched.sort_unstable();
        newly_touched.dedup();
        for &v in &newly_touched {
            let s = division.subpart_of(v);
            if subpart_spread[s] {
                continue;
            }
            step4_depth = step4_depth.max(division.depth_of(v));
            let mut cur = v;
            while let Some(parent) = division.parent_of(cur) {
                if !climb_edges.insert((cur, parent)) {
                    break; // merged with an earlier climb
                }
                cur = parent;
            }
            let r = division.rep_of(v);
            informed[r] = true;
            if rep_informed.insert(r) {
                let p = division.part_of_subpart(s);
                if !active[p].contains(&r) {
                    active[p].push(r);
                }
            }
        }
        messages += climb_edges.len() as u64;
        rounds += step4_depth;
        trace.push(WaveIteration {
            blocks_routed: touched_blocks.len(),
            subparts_spread: spreading.len(),
            informed_after: informed.iter().filter(|&&i| i).count(),
            active_after: active.iter().map(Vec::len).sum(),
        });
    }

    WaveOutcome {
        cost: CostReport::with_capacity(rounds, messages, capacity),
        iterations_per_part: iterations,
        informed,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::subparts::SubPartDivision;
    use rmo_graph::{bfs_tree, gen, Partition};
    use rmo_shortcut::trivial::trivial_shortcut_with_threshold;
    use rmo_shortcut::Shortcut;

    fn min_leaders(parts: &Partition) -> Vec<NodeId> {
        parts.part_ids().map(|p| parts.members(p)[0]).collect()
    }

    fn run(
        inst: &PaInstance<'_>,
        tree: &RootedTree,
        shortcut: &Shortcut,
        division: &SubPartDivision,
        leaders: &[NodeId],
        variant: Variant,
        block_budget: usize,
    ) -> Result<PaResult, PaError> {
        solve_on(
            inst,
            &PaSetup {
                tree,
                shortcut,
                division,
                leaders,
                block_budget,
            },
            variant,
        )
    }

    /// Full-tree shortcut + one-sub-part-per-part division: the simplest
    /// valid configuration (b = 1).
    fn simple_setup(
        g: &rmo_graph::Graph,
        parts: &Partition,
    ) -> (RootedTree, Shortcut, SubPartDivision, Vec<NodeId>) {
        let (tree, _) = bfs_tree(g, 0);
        let sc = trivial_shortcut_with_threshold(g, &tree, parts, 1);
        let leaders = min_leaders(parts);
        let division = SubPartDivision::one_per_part(g, parts, &leaders);
        (tree, sc, division, leaders)
    }

    #[test]
    fn grid_rows_min_aggregate() {
        let g = gen::grid(6, 6);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 6)).unwrap();
        let values: Vec<u64> = (0..36).map(|v| (v as u64 * 7919) % 1000).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Min).unwrap();
        let (tree, sc, division, leaders) = simple_setup(&g, &parts);
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &leaders,
            Variant::Deterministic,
            1,
        )
        .unwrap();
        for v in 0..36 {
            assert_eq!(res.value_at(v), inst.reference_aggregate_of(v));
        }
        assert!(res.iterations_per_part.iter().all(|&i| i <= 1));
    }

    #[test]
    fn all_aggregates_work() {
        let g = gen::cycle(12);
        let parts = Partition::new(&g, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]).unwrap();
        for f in Aggregate::all() {
            let values: Vec<u64> = (0..12).map(|v| (v as u64).wrapping_mul(37) % 50).collect();
            let inst = PaInstance::from_partition(&g, parts.clone(), values, f).unwrap();
            let (tree, sc, division, leaders) = simple_setup(&g, &parts);
            let res = run(
                &inst,
                &tree,
                &sc,
                &division,
                &leaders,
                Variant::Deterministic,
                1,
            )
            .unwrap();
            for p in parts.part_ids() {
                assert_eq!(res.aggregates[p], inst.reference_aggregate(p), "{f:?}");
            }
        }
    }

    #[test]
    fn randomized_variant_matches_reference() {
        let g = gen::grid(5, 8);
        let parts = Partition::new(&g, gen::grid_row_partition(5, 8)).unwrap();
        let values: Vec<u64> = (0..40).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Sum).unwrap();
        let (tree, sc, division, leaders) = simple_setup(&g, &parts);
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &leaders,
            Variant::Randomized { seed: 5 },
            1,
        )
        .unwrap();
        for v in 0..40 {
            assert_eq!(res.value_at(v), inst.reference_aggregate_of(v));
        }
        assert!(
            res.cost.capacity_multiplier > 1,
            "meta-rounds use batched capacity"
        );
    }

    #[test]
    fn direct_parts_spread_without_shortcut() {
        // Empty shortcut: singleton blocks, wave spreads via part edges
        // between sub-parts.
        let g = gen::path(24);
        let parts = Partition::new(&g, gen::path_blocks(24, 8)).unwrap();
        let values: Vec<u64> = (0..24).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Max).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = Shortcut::empty(parts.num_parts());
        let leaders = min_leaders(&parts);
        let division = SubPartDivision::one_per_part(&g, &parts, &leaders);
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &leaders,
            Variant::Deterministic,
            1,
        )
        .unwrap();
        for p in parts.part_ids() {
            assert_eq!(res.aggregates[p], inst.reference_aggregate(p));
        }
    }

    #[test]
    fn budget_zero_like_failure_detected() {
        // A part with two sub-parts and NO shortcut needs >= 2 iterations;
        // budget 1 must fail...  unless the leader's sub-part alone covers
        // it. Build a path with a 2-sub-part division by hand.
        let g = gen::path(8);
        let parts = Partition::whole(&g).unwrap();
        let values = vec![1u64; 8];
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = Shortcut::empty(1);
        // Two sub-parts: {0..3} rep 0, {4..7} rep 4.
        let division = SubPartDivision::new(
            &g,
            &parts,
            vec![0, 0, 0, 0, 1, 1, 1, 1],
            vec![
                None,
                Some(0),
                Some(1),
                Some(2),
                None,
                Some(4),
                Some(5),
                Some(6),
            ],
            vec![0, 4],
        )
        .unwrap();
        // Budget 2 suffices: leader's sub-part spreads (iter 1), neighbor
        // notification reaches node 4's sub-part, which spreads in iter 2.
        let ok = run(
            &inst,
            &tree,
            &sc,
            &division,
            &[0],
            Variant::Deterministic,
            2,
        );
        assert!(ok.is_ok());
        // Budget 1: the second sub-part's rep never gets to spread.
        let err = run(
            &inst,
            &tree,
            &sc,
            &division,
            &[0],
            Variant::Deterministic,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, PaError::BlockBudgetExceeded { .. }));
    }

    #[test]
    fn message_cost_linear_for_simple_setup() {
        let g = gen::grid(8, 8);
        let parts = Partition::new(&g, gen::grid_row_partition(8, 8)).unwrap();
        let values: Vec<u64> = (0..64).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Min).unwrap();
        let (tree, sc, division, leaders) = simple_setup(&g, &parts);
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &leaders,
            Variant::Deterministic,
            1,
        )
        .unwrap();
        // Õ(m): with b=1 and one sub-part per part, each phase is O(n + m)
        // plus one BlockRoute (O(#reps * D)).
        let bound = 3 * (4 * g.m() as u64 + 8 * 64);
        assert!(
            res.cost.messages <= bound,
            "messages {} > {bound}",
            res.cost.messages
        );
    }

    #[test]
    fn wave_trace_shows_monotone_progress() {
        let g = gen::path(32);
        let parts = Partition::whole(&g).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![1; 32], Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = Shortcut::empty(1);
        let mut parent: Vec<Option<NodeId>> = Vec::new();
        for v in 0..32usize {
            parent.push(if v % 8 == 0 { None } else { Some(v - 1) });
        }
        let division = SubPartDivision::new(
            &g,
            &parts,
            (0..32).map(|v| v / 8).collect(),
            parent,
            vec![0, 8, 16, 24],
        )
        .unwrap();
        let wave = crate::solve::broadcast_wave_outcome(
            &inst,
            &PaSetup {
                tree: &tree,
                shortcut: &sc,
                division: &division,
                leaders: &[0],
                block_budget: 4,
            },
            Variant::Deterministic,
        );
        assert_eq!(wave.trace.len(), 4, "one global iteration per sub-part hop");
        let mut prev = 0;
        for it in &wave.trace {
            assert!(it.informed_after >= prev, "coverage is monotone");
            prev = it.informed_after;
        }
        assert_eq!(wave.trace.last().unwrap().informed_after, 32);
        assert_eq!(wave.trace.last().unwrap().active_after, 0);
        assert!(wave.trace.iter().all(|it| it.subparts_spread <= 1));
    }

    #[test]
    fn iterations_respect_block_structure() {
        // Direct path split into k sub-parts: the wave needs ~k iterations.
        let g = gen::path(32);
        let parts = Partition::whole(&g).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![1; 32], Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = Shortcut::empty(1);
        // 4 sub-parts of 8, reps at their left ends.
        let mut parent: Vec<Option<NodeId>> = Vec::new();
        for v in 0..32usize {
            parent.push(if v % 8 == 0 { None } else { Some(v - 1) });
        }
        let division = SubPartDivision::new(
            &g,
            &parts,
            (0..32).map(|v| v / 8).collect(),
            parent,
            vec![0, 8, 16, 24],
        )
        .unwrap();
        let res = run(
            &inst,
            &tree,
            &sc,
            &division,
            &[0],
            Variant::Deterministic,
            4,
        )
        .unwrap();
        assert_eq!(res.aggregates[0], 32);
        assert_eq!(
            res.iterations_per_part[0], 4,
            "one hop of sub-parts per iteration"
        );
    }
}
