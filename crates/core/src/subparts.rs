//! Sub-part divisions (Definition 4.1).
//!
//! A sub-part division refines every part into `Õ(|Pᵢ|/D)` sub-parts,
//! each with a spanning tree of diameter `O(D)` rooted at its
//! **representative**. Representatives are the only nodes allowed to use
//! shortcut edges — the paper's key message-saving device (Section 3.2).

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use rmo_graph::{Graph, NodeId, Partition};

/// Errors from validating a [`SubPartDivision`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivisionError {
    /// A sub-part spans two different parts.
    CrossesParts { subpart: usize },
    /// A node's tree parent is not a graph neighbor.
    BadParent { node: NodeId },
    /// A node's tree parent is in a different sub-part.
    ParentOutsideSubpart { node: NodeId },
    /// A sub-part's parent pointers do not reach its representative.
    NotATree { subpart: usize },
    /// A representative is not a member of its own sub-part.
    RepOutside { subpart: usize },
}

impl fmt::Display for DivisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivisionError::CrossesParts { subpart } => {
                write!(f, "sub-part {subpart} crosses part boundaries")
            }
            DivisionError::BadParent { node } => {
                write!(f, "node {node}'s sub-part parent is not a neighbor")
            }
            DivisionError::ParentOutsideSubpart { node } => {
                write!(f, "node {node}'s parent lies outside its sub-part")
            }
            DivisionError::NotATree { subpart } => {
                write!(f, "sub-part {subpart}'s parents do not form a tree")
            }
            DivisionError::RepOutside { subpart } => {
                write!(f, "sub-part {subpart}'s representative is not a member")
            }
        }
    }
}

impl std::error::Error for DivisionError {}

/// A sub-part division: per-node sub-part assignment, per-sub-part
/// representative, and an in-sub-part spanning tree as parent pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubPartDivision {
    /// `subpart_of[v]` — global sub-part id of node `v`.
    subpart_of: Vec<usize>,
    /// `parent[v]` — `v`'s parent in its sub-part tree (`None` at reps).
    parent: Vec<Option<NodeId>>,
    /// `rep[s]` — representative of sub-part `s`.
    rep: Vec<NodeId>,
    /// `members[s]` — nodes of sub-part `s`.
    members: Vec<Vec<NodeId>>,
    /// `part_of_subpart[s]` — the part containing sub-part `s`.
    part_of_subpart: Vec<usize>,
    /// `depth[v]` — depth of `v` in its sub-part tree.
    depth: Vec<usize>,
}

impl SubPartDivision {
    /// Assembles and validates a division from raw arrays.
    ///
    /// `subpart_of` assigns each node a dense sub-part id; `parent` gives
    /// each non-representative node its tree parent (a same-sub-part
    /// graph neighbor); `rep` lists each sub-part's representative.
    ///
    /// # Errors
    /// Returns [`DivisionError`] describing the first violated invariant.
    pub fn new(
        g: &Graph,
        parts: &Partition,
        subpart_of: Vec<usize>,
        parent: Vec<Option<NodeId>>,
        rep: Vec<NodeId>,
    ) -> Result<SubPartDivision, DivisionError> {
        let num = rep.len();
        let mut members = vec![Vec::new(); num];
        for (v, &s) in subpart_of.iter().enumerate() {
            members[s].push(v);
        }
        let mut part_of_subpart = vec![0usize; num];
        for s in 0..num {
            if !members[s].contains(&rep[s]) {
                return Err(DivisionError::RepOutside { subpart: s });
            }
            let p = parts.part_of(rep[s]);
            part_of_subpart[s] = p;
            for &v in &members[s] {
                if parts.part_of(v) != p {
                    return Err(DivisionError::CrossesParts { subpart: s });
                }
            }
        }
        // Parent sanity + depth via BFS from each rep along child lists.
        let n = g.n();
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n {
            match parent[v] {
                None => {
                    // must be the rep of its sub-part
                    if rep[subpart_of[v]] != v {
                        return Err(DivisionError::NotATree {
                            subpart: subpart_of[v],
                        });
                    }
                }
                Some(p) => {
                    if g.edge_between(v, p).is_none() {
                        return Err(DivisionError::BadParent { node: v });
                    }
                    if subpart_of[p] != subpart_of[v] {
                        return Err(DivisionError::ParentOutsideSubpart { node: v });
                    }
                    children[p].push(v);
                }
            }
        }
        let mut depth = vec![usize::MAX; n];
        for s in 0..num {
            let r = rep[s];
            depth[r] = 0;
            let mut q = VecDeque::from([r]);
            let mut seen = 1;
            while let Some(u) = q.pop_front() {
                for &c in &children[u] {
                    depth[c] = depth[u] + 1;
                    seen += 1;
                    q.push_back(c);
                }
            }
            if seen != members[s].len() {
                return Err(DivisionError::NotATree { subpart: s });
            }
        }
        Ok(SubPartDivision {
            subpart_of,
            parent,
            rep,
            members,
            part_of_subpart,
            depth,
        })
    }

    /// The trivial division: every part is a single sub-part whose
    /// representative is the given leader and whose tree is a BFS tree of
    /// the part from the leader.
    ///
    /// # Panics
    /// Panics if a leader is outside its part.
    pub fn one_per_part(g: &Graph, parts: &Partition, leaders: &[NodeId]) -> SubPartDivision {
        assert_eq!(leaders.len(), parts.num_parts());
        let n = g.n();
        let mut subpart_of = vec![0usize; n];
        let mut parent = vec![None; n];
        for p in parts.part_ids() {
            let leader = leaders[p];
            assert_eq!(parts.part_of(leader), p, "leader {leader} outside part {p}");
            for &v in parts.members(p) {
                subpart_of[v] = p;
            }
            // BFS within the part from the leader.
            let mut q = VecDeque::from([leader]);
            let mut seen: BTreeMap<NodeId, ()> = BTreeMap::from([(leader, ())]);
            while let Some(u) = q.pop_front() {
                let mut nbrs: Vec<_> = g.neighbors(u).map(|(w, _)| w).collect();
                nbrs.sort_unstable();
                for w in nbrs {
                    if parts.part_of(w) == p && !seen.contains_key(&w) {
                        seen.insert(w, ());
                        parent[w] = Some(u);
                        q.push_back(w);
                    }
                }
            }
        }
        SubPartDivision::new(g, parts, subpart_of, parent, leaders.to_vec())
            .expect("per-part BFS trees are valid")
    }

    /// Number of sub-parts.
    pub fn num_subparts(&self) -> usize {
        self.rep.len()
    }

    /// Sub-part id of node `v`.
    pub fn subpart_of(&self, v: NodeId) -> usize {
        self.subpart_of[v]
    }

    /// Representative of sub-part `s`.
    pub fn rep_of_subpart(&self, s: usize) -> NodeId {
        self.rep[s]
    }

    /// Representative of the sub-part containing `v` (the paper's `r(v)`).
    pub fn rep_of(&self, v: NodeId) -> NodeId {
        self.rep[self.subpart_of[v]]
    }

    /// Members of sub-part `s`.
    pub fn members(&self, s: usize) -> &[NodeId] {
        &self.members[s]
    }

    /// Tree parent of `v` inside its sub-part (`None` at representatives).
    pub fn parent_of(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// Depth of `v` in its sub-part tree (representatives have depth 0).
    pub fn depth_of(&self, v: NodeId) -> usize {
        self.depth[v]
    }

    /// Depth of sub-part `s`'s tree (max member depth).
    pub fn subpart_depth(&self, s: usize) -> usize {
        self.members[s]
            .iter()
            .map(|&v| self.depth[v])
            .max()
            .unwrap_or(0)
    }

    /// The part containing sub-part `s`.
    pub fn part_of_subpart(&self, s: usize) -> usize {
        self.part_of_subpart[s]
    }

    /// Sub-part ids belonging to part `p`.
    pub fn subparts_of_part(&self, p: usize) -> Vec<usize> {
        (0..self.num_subparts())
            .filter(|&s| self.part_of_subpart[s] == p)
            .collect()
    }

    /// Representatives of part `p` (the set `Rᵢ` of Algorithm 1).
    pub fn reps_of_part(&self, p: usize) -> Vec<NodeId> {
        self.subparts_of_part(p)
            .into_iter()
            .map(|s| self.rep[s])
            .collect()
    }

    /// Max sub-part tree depth over all sub-parts (bounds the rounds of
    /// intra-sub-part broadcast phases).
    pub fn max_depth(&self) -> usize {
        (0..self.num_subparts())
            .map(|s| self.subpart_depth(s))
            .max()
            .unwrap_or(0)
    }

    /// Number of sub-parts of part `p`.
    pub fn subpart_count_of_part(&self, p: usize) -> usize {
        self.subparts_of_part(p).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    #[test]
    fn one_per_part_is_valid() {
        let g = gen::grid(4, 5);
        let parts = Partition::new(&g, gen::grid_row_partition(4, 5)).unwrap();
        let leaders: Vec<NodeId> = parts.part_ids().map(|p| parts.members(p)[0]).collect();
        let d = SubPartDivision::one_per_part(&g, &parts, &leaders);
        assert_eq!(d.num_subparts(), 4);
        for p in 0..4 {
            assert_eq!(d.reps_of_part(p), vec![leaders[p]]);
            assert_eq!(d.subpart_depth(p), 4, "row of 5 from its end has depth 4");
        }
        for v in 0..g.n() {
            assert_eq!(d.rep_of(v), leaders[parts.part_of(v)]);
        }
    }

    #[test]
    fn rejects_cross_part_subpart() {
        let g = gen::path(4);
        let parts = Partition::new(&g, vec![0, 0, 1, 1]).unwrap();
        let err = SubPartDivision::new(
            &g,
            &parts,
            vec![0, 0, 0, 1],
            vec![None, Some(0), Some(1), None],
            vec![0, 3],
        )
        .unwrap_err();
        assert_eq!(err, DivisionError::CrossesParts { subpart: 0 });
    }

    #[test]
    fn rejects_non_neighbor_parent() {
        let g = gen::path(4);
        let parts = Partition::whole(&g).unwrap();
        let err = SubPartDivision::new(
            &g,
            &parts,
            vec![0, 0, 0, 0],
            vec![None, Some(0), Some(0), Some(2)], // 2's parent 0 is not adjacent
            vec![0],
        )
        .unwrap_err();
        assert_eq!(err, DivisionError::BadParent { node: 2 });
    }

    #[test]
    fn rejects_cycle() {
        let g = gen::cycle(4);
        let parts = Partition::whole(&g).unwrap();
        // 1 <- 2 <- 3 <- ... wait: make 2 and 3 point at each other.
        let err = SubPartDivision::new(
            &g,
            &parts,
            vec![0, 0, 0, 0],
            vec![None, Some(0), Some(3), Some(2)],
            vec![0],
        )
        .unwrap_err();
        assert_eq!(err, DivisionError::NotATree { subpart: 0 });
    }

    #[test]
    fn depths_computed() {
        let g = gen::path(5);
        let parts = Partition::whole(&g).unwrap();
        let d = SubPartDivision::one_per_part(&g, &parts, &[2]);
        assert_eq!(d.depth_of(2), 0);
        assert_eq!(d.depth_of(0), 2);
        assert_eq!(d.depth_of(4), 2);
        assert_eq!(d.max_depth(), 2);
    }
}
