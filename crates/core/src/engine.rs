//! `PaEngine` — a long-lived PA session that owns the network once and
//! caches pipeline artifacts across calls.
//!
//! The paper's whole point (Theorem 1.2) is that the Part-Wise
//! Aggregation infrastructure is *reusable*: leader election and the BFS
//! tree depend only on the graph, and the partition-specific stages
//! (part leaders, sub-part division, tree-restricted shortcut, block
//! budget) depend only on the partition — not on the aggregated values.
//! Borůvka runs PA `O(log n)` times on one tree, the min-cut sketches
//! run `polylog(n)` aggregations, and the verification suite composes
//! several PA calls per query.
//!
//! [`PaEngine`] makes that reuse the API default:
//!
//! * constructed once per graph, it owns the [`Network`] and runs
//!   election + BFS exactly once (lazily, at the first solve or tree
//!   access — sessions that only need divisions never simulate it);
//! * every solve looks its partition up in an LRU-bounded memo keyed by
//!   a fingerprint of the part vector, rebuilding stages 2–4 only on a
//!   miss;
//! * costs are charged *incrementally*: election + BFS on the first
//!   solve, stage 2–4 setup once per distinct partition, and only the
//!   three wave phases on a cache hit;
//! * [`EngineStats`] surfaces hit/miss/eviction counters so harness
//!   experiments and benches can report the savings.
//!
//! # Quickstart
//!
//! ```rust
//! use rmo_graph::gen;
//! use rmo_core::{Aggregate, EngineConfig, PaEngine};
//!
//! let g = gen::grid(8, 8);
//! let parts = gen::grid_row_partition(8, 8);
//! let parts = rmo_graph::Partition::new(&g, parts).unwrap();
//! let values: Vec<u64> = (0..g.n() as u64).collect();
//!
//! let mut engine = PaEngine::new(&g, EngineConfig::new());
//! let first = engine.solve(&parts, &values, Aggregate::Min).unwrap();
//! let second = engine.solve(&parts, &values, Aggregate::Min).unwrap();
//! assert_eq!(first.aggregates, second.aggregates);
//! // The second call reuses the cached tree + shortcut + division:
//! assert!(second.cost.rounds < first.cost.rounds);
//! assert_eq!(engine.stats().hits, 1);
//! ```

use std::collections::BTreeMap;
use std::sync::OnceLock;

use rmo_congest::programs::bfs::run_bfs;
use rmo_congest::programs::leader::run_leader_election;
use rmo_congest::{CostReport, Network};
use rmo_graph::{Graph, Partition, RootedTree};

use crate::aggregate::Aggregate;
use crate::batch::{batch_on, BatchResult};
use crate::instance::{PaError, PaInstance};
use crate::pipeline::{build_artifacts, PaConfig, PipelineArtifacts, ShortcutStrategy};
use crate::solve::{solve_with, PaResult, SolveScratch, Variant};
use crate::subparts_det::{deterministic_division, DetDivisionResult};

/// Default number of distinct partitions the artifact cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 8;

/// Which sub-part division algorithm the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivisionStrategy {
    /// Algorithm 6 (deterministic star joining).
    Deterministic,
    /// Algorithm 3 (randomized).
    Randomized,
}

/// Builder-style configuration of a [`PaEngine`] session.
///
/// Subsumes the old `PaConfig` constructors: `EngineConfig::new()` is the
/// paper's deterministic headline, [`EngineConfig::randomized`] and
/// [`EngineConfig::trivial`] switch whole profiles, and the narrow
/// setters ([`shortcut`](EngineConfig::shortcut),
/// [`division`](EngineConfig::division), [`seed`](EngineConfig::seed),
/// [`cache_capacity`](EngineConfig::cache_capacity)) tweak one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Algorithm 1 variant.
    pub variant: Variant,
    /// Shortcut construction strategy.
    pub shortcut: ShortcutStrategy,
    /// Sub-part division algorithm.
    pub division: DivisionStrategy,
    /// Master seed (network IDs, divisions, delays).
    pub seed: u64,
    /// LRU bound on cached partitions (≥ 1).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::new()
    }
}

impl EngineConfig {
    /// The paper's deterministic headline: Algorithm 8 shortcuts,
    /// Algorithm 6 divisions, deterministic Algorithm 1.
    pub fn new() -> EngineConfig {
        EngineConfig {
            variant: Variant::Deterministic,
            shortcut: ShortcutStrategy::Deterministic,
            division: DivisionStrategy::Deterministic,
            seed: 0,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }

    /// Switches to the fully deterministic profile (the default).
    pub fn deterministic(mut self) -> EngineConfig {
        self.variant = Variant::Deterministic;
        self.shortcut = ShortcutStrategy::Deterministic;
        self.division = DivisionStrategy::Deterministic;
        self
    }

    /// Switches to the paper's randomized headline (`Õ(bD + c)` rounds
    /// w.h.p.) with the given seed.
    pub fn randomized(mut self, seed: u64) -> EngineConfig {
        self.variant = Variant::Randomized { seed };
        self.shortcut = ShortcutStrategy::Randomized;
        self.division = DivisionStrategy::Randomized;
        self.seed = seed;
        self
    }

    /// Switches to the trivial-shortcut profile (the `Õ(D + √n)`
    /// worst-case bound).
    pub fn trivial(mut self) -> EngineConfig {
        self.variant = Variant::Deterministic;
        self.shortcut = ShortcutStrategy::Trivial;
        self.division = DivisionStrategy::Deterministic;
        self
    }

    /// Overrides the shortcut construction strategy.
    pub fn shortcut(mut self, strategy: ShortcutStrategy) -> EngineConfig {
        self.shortcut = strategy;
        self
    }

    /// Overrides the sub-part division algorithm.
    pub fn division(mut self, strategy: DivisionStrategy) -> EngineConfig {
        self.division = strategy;
        self
    }

    /// Overrides the master seed. When the randomized Algorithm 1
    /// variant is active, its per-part-delay seed follows the master
    /// seed too, so `.randomized(0).seed(42)` behaves like
    /// `.randomized(42)`.
    pub fn seed(mut self, seed: u64) -> EngineConfig {
        self.seed = seed;
        if matches!(self.variant, Variant::Randomized { .. }) {
            self.variant = Variant::Randomized { seed };
        }
        self
    }

    /// Overrides how many distinct partitions the cache retains.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn cache_capacity(mut self, capacity: usize) -> EngineConfig {
        assert!(capacity > 0, "the artifact cache needs room for one entry");
        self.cache_capacity = capacity;
        self
    }

    /// The equivalent one-shot [`PaConfig`] (what the legacy pipeline
    /// entry points consume).
    pub fn pa(&self) -> PaConfig {
        PaConfig {
            variant: self.variant,
            shortcut: self.shortcut,
            deterministic_division: self.division == DivisionStrategy::Deterministic,
            seed: self.seed,
        }
    }
}

impl From<PaConfig> for EngineConfig {
    fn from(config: PaConfig) -> EngineConfig {
        EngineConfig {
            variant: config.variant,
            shortcut: config.shortcut,
            division: if config.deterministic_division {
                DivisionStrategy::Deterministic
            } else {
                DivisionStrategy::Randomized
            },
            seed: config.seed,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// Counters a [`PaEngine`] accumulates across its lifetime.
///
/// Stats from several engines (a sharded cluster) combine with
/// [`EngineStats::merge`]; the [`std::fmt::Display`] form is the
/// one-line hit/miss/eviction summary the harness tables print.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Artifact-cache hits (pipeline stages 2–4 skipped).
    pub hits: u64,
    /// Artifact-cache misses (stages 2–4 built).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Hits on the whole-graph division memo
    /// ([`PaEngine::whole_graph_division`] — a separate cache from the
    /// pipeline artifacts).
    pub division_hits: u64,
    /// Misses on the whole-graph division memo (division built).
    pub division_misses: u64,
    /// PA solves served (including the solve inside each batch).
    pub solves: u64,
    /// Batched solves served.
    pub batches: u64,
    /// Total cost charged to this session's callers across all solves,
    /// batches, and division misses (setup shares included). Serving
    /// schedulers use this as *demand history*: `charged / solves` is a
    /// cheap per-call work estimate for load balancing
    /// ([`EngineStats::mean_solve_work`]).
    pub charged: CostReport,
    /// Distinct partitions currently cached.
    pub cached_partitions: usize,
    /// Election + BFS cost, paid once per engine — zero until stage 1
    /// has run (it runs lazily, at the first solve or tree access).
    pub base_cost: CostReport,
}

impl EngineStats {
    /// Folds another engine's counters into this one (counters add,
    /// base costs compose sequentially). Serving layers use this to
    /// aggregate a whole fleet of sessions into one report.
    pub fn merge(&mut self, other: &EngineStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.division_hits += other.division_hits;
        self.division_misses += other.division_misses;
        self.solves += other.solves;
        self.batches += other.batches;
        self.charged += other.charged;
        self.cached_partitions += other.cached_partitions;
        self.base_cost += other.base_cost;
    }

    /// Mean work (rounds + messages) charged per solve — the engine-side
    /// cost estimate a serving scheduler can consult when sizing this
    /// session's future load (zero before the first solve).
    pub fn mean_solve_work(&self) -> u64 {
        (self.charged.rounds as u64 + self.charged.messages)
            .checked_div(self.solves)
            .unwrap_or(0)
    }

    /// Artifact-cache hit rate in `[0, 1]` (zero when nothing was looked
    /// up yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

impl std::fmt::Display for EngineStats {
    /// One-line cache economics summary, e.g.
    /// `hits/misses/evictions 8/4/1 (66.7% hit), divisions 2/1, 12 solves (2 batched), 3 live, base 42r/1234m`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits/misses/evictions {}/{}/{} ({:.1}% hit), divisions {}/{}, \
             {} solves ({} batched), {} live, base {}r/{}m",
            self.hits,
            self.misses,
            self.evictions,
            100.0 * self.hit_rate(),
            self.division_hits,
            self.division_misses,
            self.solves,
            self.batches,
            self.cached_partitions,
            self.base_cost.rounds,
            self.base_cost.messages,
        )
    }
}

#[derive(Clone)]
struct CacheEntry {
    /// The full part vector, to rule out fingerprint collisions.
    assignment: Vec<usize>,
    artifacts: PipelineArtifacts,
    last_used: u64,
    /// Whether this entry's stage 2–4 setup cost has been charged to a
    /// caller yet. [`PaEngine::pipeline_for`] builds without charging;
    /// the first solve that consumes the entry picks the cost up.
    setup_charged: bool,
}

/// Everything a [`PaEngine`] owns besides the graph borrow: the
/// simulated network, the lazily-built stage 1 (election + BFS), the
/// per-partition artifact cache, the division memo, and the counters.
///
/// The split exists for serving layers: an `EngineCore` is `'static`,
/// [`Send`], and survives independently of any graph reference, so a
/// multi-graph cluster can park the warm state of a session between
/// requests (or ship it to a worker thread) and rehydrate a live
/// [`PaEngine`] with [`PaEngine::from_core`] when the next query for
/// that graph arrives. A core remembers a stable fingerprint of the
/// graph it was built against and refuses rehydration onto any other.
pub struct EngineCore {
    config: EngineConfig,
    pa: PaConfig,
    net: Network,
    /// Stage 1 (leader election + BFS tree) and its cost, built on first
    /// use so sessions that never need the tree (k-domination's
    /// divisions) never simulate it. `OnceLock` rather than `OnceCell`
    /// so the core stays `Send + Sync` and can cross shard threads.
    stage1: OnceLock<(RootedTree, CostReport)>,
    base_charged: bool,
    cache: BTreeMap<u64, CacheEntry>,
    division_cache: BTreeMap<usize, DetDivisionResult>,
    /// Recycled per-solve arenas: once warmed up to the workload size, a
    /// cache-hit [`PaEngine::solve_on`] performs zero heap allocations.
    scratch: SolveScratch,
    clock: u64,
    stats: EngineStats,
    /// [`graph_fingerprint`] of the graph this core was built against.
    graph_fp: u64,
}

impl EngineCore {
    /// Lifetime counters of the session this core belongs to (see
    /// [`PaEngine::stats`]).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cached_partitions: self.cache.len(),
            base_cost: self
                .stage1
                .get()
                .map(|(_, cost)| *cost)
                .unwrap_or_else(CostReport::zero),
            ..self.stats
        }
    }

    /// The session configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Stable fingerprint of the graph this core is bound to (what
    /// [`PaEngine::from_core`] checks).
    pub fn graph_fingerprint(&self) -> u64 {
        self.graph_fp
    }

    /// Clones this core's warm state into a replica with fresh counters.
    ///
    /// The replica shares nothing mutable with the original: the stage-1
    /// tree, the per-partition artifact cache, and the division memo are
    /// cloned (no artifact is rebuilt, so the replica serves the same
    /// cache hits the original would), while [`EngineStats`] start from
    /// zero so replica work is attributable. Cost provenance stays
    /// single-charge: the clone carries the stage-1 *tree* but a zero
    /// stage-1 cost with `base_charged` already set, so a fleet of
    /// replicas never re-charges election + BFS a second time. A core
    /// forked before stage 1 exists simply lets each side build (and
    /// account) its own tree lazily.
    ///
    /// Serving schedulers use this to split one hot graph's batch across
    /// shards and later fold the replicas back with [`EngineCore::absorb`].
    pub fn fork(&self) -> EngineCore {
        let stage1 = OnceLock::new();
        if let Some((tree, _)) = self.stage1.get() {
            let _ = stage1.set((tree.clone(), CostReport::zero()));
        }
        EngineCore {
            config: self.config,
            pa: self.pa,
            net: self.net.clone(),
            stage1,
            base_charged: true,
            cache: self
                .cache
                .iter()
                .map(|(fp, entry)| (*fp, entry.clone()))
                .collect(),
            division_cache: self.division_cache.clone(),
            scratch: SolveScratch::new(),
            clock: self.clock,
            stats: EngineStats::default(),
            graph_fp: self.graph_fp,
        }
    }

    /// Folds a replica's counters back into this core (the inverse of
    /// [`EngineCore::fork`], run once per replica after a split batch).
    ///
    /// Only the raw lifetime counters merge — `cached_partitions` and
    /// `base_cost` are derived from live state at [`EngineCore::stats`]
    /// time, so absorbing never double-counts them — and the replica's
    /// caches are dropped: the survivor keeps its own warm artifacts,
    /// which the fork guaranteed are a superset of what the batch
    /// started from.
    pub fn absorb(&mut self, replica: EngineCore) {
        self.stats.merge(&replica.stats);
    }
}

impl std::fmt::Debug for EngineCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineCore")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// A PA session bound to one graph: election + BFS run once per engine
/// (lazily, at the first solve or tree access), pipeline artifacts are
/// memoized per partition, and all solves charge only their incremental
/// cost (see the module docs).
///
/// A `PaEngine` is a borrowed view: the graph reference plus an owned
/// [`EngineCore`] holding all mutable session state. [`PaEngine::into_core`]
/// and [`PaEngine::from_core`] split and rejoin the two, which is how
/// sharded serving layers persist warm sessions across requests.
pub struct PaEngine<'g> {
    graph: &'g Graph,
    core: EngineCore,
}

impl std::fmt::Debug for PaEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaEngine")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("config", &self.core.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a word stream, one byte at a time (little-endian).
fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Stable FNV-1a fingerprint of a `u64` word stream — the
/// width-independent sibling of [`partition_fingerprint`] (which takes
/// part vectors as `usize`s, hashing each as a `u64`). Serving layers
/// hash `u64` graph ids with this so shard routing is identical on
/// 32- and 64-bit targets.
pub fn word_fingerprint(words: impl IntoIterator<Item = u64>) -> u64 {
    fnv1a(words)
}

/// Stable FNV-1a fingerprint of a partition's part vector.
///
/// This keys the artifact cache (with a full-vector equality check on
/// hit, so collisions cost a rebuild, never a wrong answer) and is the
/// natural affinity key for schedulers that batch same-partition
/// queries. Unlike `DefaultHasher`, the value is specified and identical
/// across Rust versions and platforms, so cache accounting is
/// reproducible everywhere.
pub fn partition_fingerprint(assignment: &[usize]) -> u64 {
    fnv1a(assignment.iter().map(|&p| p as u64))
}

/// Stable FNV-1a fingerprint of a graph: node count, then every edge as
/// `(u, v, weight)` in edge-id order. Two graphs fingerprint equal iff
/// they have identical topology *and* weights, which is exactly the
/// "same session state applies" condition [`PaEngine::from_core`] needs.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    fnv1a(
        std::iter::once(g.n() as u64)
            .chain(g.edges().flat_map(|(_, u, v, w)| [u as u64, v as u64, w])),
    )
}

impl<'g> PaEngine<'g> {
    /// Builds the session: assigns KT0 identifiers and validates the
    /// graph. Stage 1 (leader election + BFS on the real CONGEST
    /// simulator) runs lazily at the first solve or [`PaEngine::tree`]
    /// access, is paid exactly once, and is charged to the first solve.
    ///
    /// # Panics
    /// Panics if the graph is empty or disconnected (the CONGEST network
    /// is one component).
    pub fn new(graph: &'g Graph, config: EngineConfig) -> PaEngine<'g> {
        assert!(graph.n() > 0, "PaEngine needs a non-empty graph");
        assert!(graph.is_connected(), "PaEngine needs a connected graph");
        assert!(config.cache_capacity > 0, "cache capacity must be >= 1");
        let pa = config.pa();
        let net = Network::new(graph, config.seed);
        PaEngine {
            graph,
            core: EngineCore {
                config,
                pa,
                net,
                stage1: OnceLock::new(),
                base_charged: false,
                cache: BTreeMap::new(),
                division_cache: BTreeMap::new(),
                scratch: SolveScratch::new(),
                clock: 0,
                stats: EngineStats::default(),
                graph_fp: graph_fingerprint(graph),
            },
        }
    }

    /// Rehydrates a session from a parked [`EngineCore`]: the warm
    /// caches, tree, and counters pick up exactly where
    /// [`PaEngine::into_core`] left off.
    ///
    /// # Panics
    /// Panics if `core` was built against a different graph (by stable
    /// fingerprint — node count, edges, and weights must all match).
    pub fn from_core(graph: &'g Graph, core: EngineCore) -> PaEngine<'g> {
        assert_eq!(
            core.graph_fp,
            graph_fingerprint(graph),
            "EngineCore rehydrated onto a different graph"
        );
        PaEngine { graph, core }
    }

    /// Releases the graph borrow and hands back the owned session state
    /// (tree, artifact cache, counters) for parking or for shipping to
    /// another thread. The inverse of [`PaEngine::from_core`].
    pub fn into_core(self) -> EngineCore {
        self.core
    }

    /// Builds a session around an already-paid-for tree. `base_cost` is
    /// whatever the caller actually spent obtaining it (zero if it is
    /// being reused from another session).
    pub fn with_tree(
        graph: &'g Graph,
        config: EngineConfig,
        tree: RootedTree,
        base_cost: CostReport,
    ) -> PaEngine<'g> {
        let engine = PaEngine::new(graph, config);
        engine
            .core
            .stage1
            .set((tree, base_cost))
            .expect("fresh engine has no stage-1 state");
        engine
    }

    /// Stage 1, built on first use: flood-max election + distributed BFS
    /// on the simulator, with their measured cost.
    fn stage1(&self) -> &(RootedTree, CostReport) {
        self.core.stage1.get_or_init(|| {
            let (root, _, elect_cost) = run_leader_election(self.graph, &self.core.net)
                .expect("election terminates on a connected graph");
            let (tree, _, bfs_cost) =
                run_bfs(self.graph, &self.core.net, root).expect("BFS terminates");
            (tree, elect_cost + bfs_cost)
        })
    }

    /// Derives a session for a reweighted copy of this engine's graph
    /// (same nodes, same edges, possibly different weights), reusing the
    /// already-built BFS tree instead of re-running election + BFS.
    ///
    /// Election and BFS are weight-oblivious, so the tree is valid as-is;
    /// the derived engine charges no base cost. The min-cut sketches use
    /// this to amortize stage 1 across all sampled perturbations.
    ///
    /// # Panics
    /// Panics if `graph` is not topology-identical to this engine's.
    pub fn for_reweighted<'h>(&self, graph: &'h Graph) -> PaEngine<'h> {
        assert!(
            same_topology(self.graph, graph),
            "for_reweighted needs an identical topology"
        );
        PaEngine::with_tree(
            graph,
            self.core.config,
            self.tree().clone(),
            CostReport::zero(),
        )
    }

    /// The graph this session is bound to.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The simulated network (KT0 identifiers, ports).
    pub fn network(&self) -> &Network {
        &self.core.net
    }

    /// The session's BFS tree, shared by every solve (built on first
    /// access).
    pub fn tree(&self) -> &RootedTree {
        &self.stage1().0
    }

    /// The session configuration.
    pub fn config(&self) -> EngineConfig {
        self.core.config
    }

    /// Lifetime counters, including the one-off election + BFS cost
    /// (zero while stage 1 has not run yet).
    pub fn stats(&self) -> EngineStats {
        self.core.stats()
    }

    fn assert_same_graph(&self, inst: &PaInstance<'_>) {
        let ig = inst.graph();
        assert!(
            std::ptr::eq(ig, self.graph) || same_topology(self.graph, ig),
            "instance graph must match the engine's graph topology"
        );
    }

    /// Ensures artifacts for `inst`'s partition are cached (building them
    /// on a miss) and returns the cache key. Charging is separate — see
    /// [`PaEngine::take_pending_setup`].
    fn ensure_artifacts(&mut self, inst: &PaInstance<'_>) -> u64 {
        let assignment = inst.partition().assignment();
        let key = partition_fingerprint(assignment);
        self.core.clock += 1;
        let clock = self.core.clock;
        let cached = match self.core.cache.get_mut(&key) {
            Some(entry) if entry.assignment == assignment => {
                entry.last_used = clock;
                true
            }
            Some(_) => {
                // Fingerprint collision: evict the stale partition.
                self.core.cache.remove(&key);
                false
            }
            None => false,
        };
        if cached {
            self.core.stats.hits += 1;
            return key;
        }
        self.core.stats.misses += 1;
        let artifacts = {
            let tree = &self.stage1().0;
            build_artifacts(inst, &self.core.pa, tree)
        };
        if self.core.cache.len() >= self.core.config.cache_capacity {
            if let Some((&lru, _)) = self.core.cache.iter().min_by_key(|(_, e)| e.last_used) {
                self.core.cache.remove(&lru);
                self.core.stats.evictions += 1;
            }
        }
        self.core.cache.insert(
            key,
            CacheEntry {
                assignment: assignment.to_vec(),
                artifacts,
                last_used: clock,
                setup_charged: false,
            },
        );
        key
    }

    /// The entry's stage 2–4 setup cost if no caller has been charged for
    /// it yet (a [`PaEngine::pipeline_for`] pre-warm leaves it pending),
    /// zero afterwards.
    fn take_pending_setup(&mut self, key: u64) -> CostReport {
        let entry = self.core.cache.get_mut(&key).expect("entry just ensured");
        if entry.setup_charged {
            CostReport::zero()
        } else {
            entry.setup_charged = true;
            entry.artifacts.setup_cost
        }
    }

    /// The cost to charge this call beyond the waves themselves: stage
    /// 2–4 setup when not yet charged for this partition, plus election +
    /// BFS exactly once per engine.
    fn incremental_cost(&mut self, setup_cost: CostReport) -> CostReport {
        let mut extra = setup_cost;
        if !self.core.base_charged {
            self.core.base_charged = true;
            extra += self.stage1().1;
        }
        extra
    }

    /// Charges the one-off election + BFS cost to the caller if no solve
    /// has charged it yet (returns zero afterwards). Solves do this
    /// implicitly; callers that only derive reweighted trial sessions
    /// from this engine (min-cut) call it explicitly so the shared tree
    /// is still paid for exactly once.
    pub fn charge_base(&mut self) -> CostReport {
        self.incremental_cost(CostReport::zero())
    }

    /// Builds (or fetches) the pipeline artifacts for a partition without
    /// solving anything — a pre-warm/inspection entry point. The entry's
    /// stage 2–4 setup cost stays *pending*: the first solve that
    /// consumes this partition is charged it, preserving the
    /// charged-once-per-partition invariant.
    ///
    /// # Errors
    /// Propagates [`PaError`] from instance validation (e.g. a partition
    /// with a disconnected part, or one that does not match this graph)
    /// instead of aborting — serving layers turn this into a per-query
    /// failure rather than killing a worker.
    pub fn pipeline_for(&mut self, parts: &Partition) -> Result<&PipelineArtifacts, PaError> {
        let inst = PaInstance::from_partition(
            self.graph,
            parts.clone(),
            vec![0; self.graph.n()],
            Aggregate::Min,
        )?;
        let key = self.ensure_artifacts(&inst);
        Ok(&self.core.cache[&key].artifacts)
    }

    /// Solves one PA instance over `parts`: every node of every part
    /// learns `agg` folded over the part's `values`.
    ///
    /// # Errors
    /// Propagates [`PaError`] from instance validation and Algorithm 1.
    pub fn solve(
        &mut self,
        parts: &Partition,
        values: &[u64],
        agg: Aggregate,
    ) -> Result<PaResult, PaError> {
        let inst = PaInstance::from_partition(self.graph, parts.clone(), values.to_vec(), agg)?;
        self.solve_instance(&inst)
    }

    /// Solves an already-validated instance. The instance's graph must be
    /// this engine's graph (or a topology-identical reweighting of it).
    ///
    /// # Errors
    /// Propagates [`PaError`] from Algorithm 1.
    ///
    /// # Panics
    /// Panics if the instance's graph topology differs from the engine's.
    pub fn solve_instance(&mut self, inst: &PaInstance<'_>) -> Result<PaResult, PaError> {
        let mut out = PaResult::default();
        self.solve_on(inst, &mut out)?;
        Ok(out)
    }

    /// Solves an already-validated instance into a caller-owned result
    /// buffer, recycling the session's solve arenas. This is the
    /// allocation-free serving path: once the engine and `out` have
    /// warmed up on a partition, a cache-hit solve performs zero heap
    /// allocations (pinned by `tests/alloc_free.rs`).
    ///
    /// # Errors
    /// Propagates [`PaError`] from Algorithm 1.
    ///
    /// # Panics
    /// Panics if the instance's graph topology differs from the engine's.
    pub fn solve_on(&mut self, inst: &PaInstance<'_>, out: &mut PaResult) -> Result<(), PaError> {
        self.assert_same_graph(inst);
        self.core.stats.solves += 1;
        let key = self.ensure_artifacts(inst);
        let setup_cost = self.take_pending_setup(key);
        let extra = self.incremental_cost(setup_cost);
        let variant = self.core.pa.variant;
        let _ = self.tree(); // force stage 1 before the split borrows below
        let core = &mut self.core;
        // rmo-lint: allow(P1) — ensure_artifacts inserted this key above
        let entry = core.cache.get(&key).expect("entry just ensured");
        // rmo-lint: allow(P1) — self.tree() initialized stage 1 above
        let (tree, _) = core.stage1.get().expect("stage 1 built above");
        let setup = entry.artifacts.setup(tree);
        solve_with(
            inst,
            &setup,
            &entry.artifacts.wave_plan,
            variant,
            &mut core.scratch,
            out,
        )?;
        out.cost += extra;
        core.stats.charged += out.cost;
        Ok(())
    }

    /// Solves `k` aggregations over one partition with a single pipelined
    /// wave (see [`crate::batch`]).
    ///
    /// # Errors
    /// Propagates [`PaError`]; every value set must have length `n`.
    ///
    /// # Panics
    /// Panics if `value_sets` is empty or a set has the wrong length.
    pub fn solve_batch(
        &mut self,
        parts: &Partition,
        value_sets: &[Vec<u64>],
        agg: Aggregate,
    ) -> Result<BatchResult, PaError> {
        assert!(!value_sets.is_empty(), "batch needs at least one value set");
        let inst =
            PaInstance::from_partition(self.graph, parts.clone(), value_sets[0].clone(), agg)?;
        self.core.stats.batches += 1;
        self.core.stats.solves += 1;
        let key = self.ensure_artifacts(&inst);
        let setup_cost = self.take_pending_setup(key);
        let extra = self.incremental_cost(setup_cost);
        let variant = self.core.pa.variant;
        let entry = &self.core.cache[&key];
        let mut result = batch_on(
            &inst,
            value_sets,
            &entry.artifacts.setup(self.tree()),
            variant,
        )?;
        result.cost += extra;
        self.core.stats.charged += result.cost;
        Ok(result)
    }

    /// The Algorithm 6 division of the whole graph with completion
    /// threshold `completion`, memoized per threshold (Corollary A.3:
    /// k-dominating sets are "a simple generalization of our sub-part
    /// division algorithm"). The cached cost is charged on the miss only.
    ///
    /// Returns the division result and the cost to charge this call.
    pub fn whole_graph_division(&mut self, completion: usize) -> (&DetDivisionResult, CostReport) {
        if self.core.division_cache.contains_key(&completion) {
            self.core.stats.division_hits += 1;
            return (&self.core.division_cache[&completion], CostReport::zero());
        }
        self.core.stats.division_misses += 1;
        let parts = Partition::whole(self.graph).expect("engine graph is connected");
        let res = deterministic_division(self.graph, &parts, completion);
        let cost = res.cost;
        self.core.stats.charged += cost;
        self.core.division_cache.insert(completion, res);
        (&self.core.division_cache[&completion], cost)
    }
}

/// Same node count and identical edge lists (endpoints, not weights).
fn same_topology(a: &Graph, b: &Graph) -> bool {
    a.n() == b.n()
        && a.m() == b.m()
        && a.edges()
            .zip(b.edges())
            .all(|((ea, ua, va, _), (eb, ub, vb, _))| ea == eb && ua == ub && va == vb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::solve_pa;
    use rmo_graph::gen;

    fn grid_instance() -> (Graph, Partition, Vec<u64>) {
        let g = gen::grid(6, 8);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 8)).unwrap();
        let values: Vec<u64> = (0..g.n() as u64).map(|v| (v * 31) % 97).collect();
        (g, parts, values)
    }

    #[test]
    fn engine_matches_one_shot_pipeline() {
        let (g, parts, values) = grid_instance();
        for config in [
            EngineConfig::new(),
            EngineConfig::new().randomized(3),
            EngineConfig::new().trivial().seed(1),
        ] {
            let mut engine = PaEngine::new(&g, config);
            let inst =
                PaInstance::from_partition(&g, parts.clone(), values.clone(), Aggregate::Min)
                    .unwrap();
            let ours = engine.solve(&parts, &values, Aggregate::Min).unwrap();
            let legacy = solve_pa(&inst, &config.pa()).unwrap();
            assert_eq!(ours.aggregates, legacy.aggregates, "{config:?}");
            assert_eq!(ours.node_values, legacy.node_values);
            assert_eq!(ours.cost, legacy.cost, "first solve pays full setup");
            assert_eq!(ours.broadcast_cost, legacy.broadcast_cost);
        }
    }

    #[test]
    fn cache_hit_skips_setup() {
        let (g, parts, values) = grid_instance();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let first = engine.solve(&parts, &values, Aggregate::Sum).unwrap();
        let second = engine.solve(&parts, &values, Aggregate::Sum).unwrap();
        assert_eq!(first.aggregates, second.aggregates);
        // Hit: only the three wave phases are charged.
        assert_eq!(second.cost, second.broadcast_cost.repeated(3));
        assert!(second.cost.rounds < first.cost.rounds);
        assert!(second.cost.messages < first.cost.messages);
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.cached_partitions, 1);
    }

    #[test]
    fn fork_preserves_warm_artifacts_with_fresh_counters() {
        let (g, parts, values) = grid_instance();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let original = engine.solve(&parts, &values, Aggregate::Sum).unwrap();
        let mut core = engine.into_core();

        // The replica starts with zeroed counters but the full warm
        // state: same cached partitions, no base cost to re-charge.
        let replica = core.fork();
        let fresh = replica.stats();
        assert_eq!((fresh.hits, fresh.misses, fresh.solves), (0, 0, 0));
        assert_eq!(fresh.cached_partitions, 1, "artifact cache cloned");
        assert_eq!(
            fresh.base_cost,
            CostReport::zero(),
            "stage 1 is never charged twice across a fork"
        );

        // A solve on the replica is a pure cache hit — fork rebuilt
        // nothing, so the hit-rate economics survive the split.
        let mut forked = PaEngine::from_core(&g, replica);
        let warm = forked.solve(&parts, &values, Aggregate::Sum).unwrap();
        assert_eq!(warm.aggregates, original.aggregates);
        assert_eq!(warm.cost, warm.broadcast_cost.repeated(3));
        let after = forked.stats();
        assert_eq!((after.hits, after.misses), (1, 0));
        assert!((after.hit_rate() - 1.0).abs() < 1e-12);

        // Absorbing folds the replica's raw counters back into the
        // survivor without double-counting derived fields.
        let before = core.stats();
        core.absorb(forked.into_core());
        let merged = core.stats();
        assert_eq!(merged.hits, before.hits + 1);
        assert_eq!(merged.misses, before.misses);
        assert_eq!(merged.solves, before.solves + 1);
        assert_eq!(merged.cached_partitions, 1, "derived from live cache");
        assert_eq!(merged.base_cost, before.base_cost, "charged exactly once");
        assert_eq!(merged.charged, before.charged + warm.cost);
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted() {
        let g = gen::grid(4, 12);
        let mut engine = PaEngine::new(&g, EngineConfig::new().cache_capacity(2));
        let values = vec![1u64; g.n()];
        let partitions: Vec<Partition> = (1..=3)
            .map(|rows| Partition::new(&g, (0..g.n()).map(|v| (v / 12) / rows).collect()).unwrap())
            .collect();
        for parts in &partitions {
            engine.solve(parts, &values, Aggregate::Sum).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 1, "capacity 2 evicts the LRU entry");
        assert_eq!(stats.cached_partitions, 2);
        // The evicted (least recently used) partition rebuilds; the most
        // recent one hits.
        engine
            .solve(&partitions[2], &values, Aggregate::Sum)
            .unwrap();
        assert_eq!(engine.stats().hits, 1);
        engine
            .solve(&partitions[0], &values, Aggregate::Sum)
            .unwrap();
        assert_eq!(engine.stats().misses, 4);
    }

    #[test]
    fn batch_charges_setup_once() {
        let (g, parts, values) = grid_instance();
        let sets: Vec<Vec<u64>> = (0..4u64)
            .map(|i| values.iter().map(|v| v + i).collect())
            .collect();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let batch = engine.solve_batch(&parts, &sets, Aggregate::Max).unwrap();
        let again = engine.solve_batch(&parts, &sets, Aggregate::Max).unwrap();
        assert_eq!(batch.aggregates, again.aggregates);
        assert!(again.cost.rounds < batch.cost.rounds);
        assert_eq!(engine.stats().batches, 2);
    }

    #[test]
    fn pipeline_for_is_memoized() {
        let (g, parts, _) = grid_instance();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let budget = engine.pipeline_for(&parts).unwrap().block_budget;
        assert_eq!(engine.pipeline_for(&parts).unwrap().block_budget, budget);
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn pipeline_for_propagates_invalid_partitions() {
        let (g, _, _) = grid_instance();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        // A part vector of the wrong length is a PaError, not an abort —
        // the engine (and any shard worker holding it) stays usable.
        let bad = Partition::new(&g, vec![0; 3]);
        assert!(bad.is_err(), "wrong-length partition never validates");
        let parts = Partition::new(&g, vec![0; g.n()]).unwrap();
        assert!(engine.pipeline_for(&parts).is_ok());
    }

    #[test]
    fn charged_work_accumulates_per_solve() {
        let (g, parts, values) = grid_instance();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        assert_eq!(engine.stats().mean_solve_work(), 0, "no history yet");
        let first = engine.solve(&parts, &values, Aggregate::Min).unwrap();
        assert_eq!(engine.stats().charged, first.cost);
        let second = engine.solve(&parts, &values, Aggregate::Min).unwrap();
        assert_eq!(engine.stats().charged, first.cost + second.cost);
        let mean = engine.stats().mean_solve_work();
        assert!(mean > 0, "two solves give a nonzero demand estimate");
        // merge folds charged work like every other counter.
        let mut merged = engine.stats();
        merged.merge(&engine.stats());
        assert_eq!(
            merged.charged,
            engine.stats().charged + engine.stats().charged
        );
    }

    #[test]
    fn prewarmed_setup_is_charged_to_the_first_solve() {
        let (g, parts, values) = grid_instance();
        let mut cold = PaEngine::new(&g, EngineConfig::new());
        let baseline = cold.solve(&parts, &values, Aggregate::Min).unwrap();
        // Pre-warming via pipeline_for must not make the setup vanish
        // from the session's accounting: the first solve that consumes
        // the entry still pays it.
        let mut warmed = PaEngine::new(&g, EngineConfig::new());
        let _ = warmed.pipeline_for(&parts).unwrap();
        let first = warmed.solve(&parts, &values, Aggregate::Min).unwrap();
        assert_eq!(first.cost, baseline.cost, "setup charged exactly once");
        let second = warmed.solve(&parts, &values, Aggregate::Min).unwrap();
        assert_eq!(second.cost, second.broadcast_cost.repeated(3));
    }

    #[test]
    fn stage1_is_lazy_for_division_only_sessions() {
        let g = gen::path(40);
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let (_, cost) = engine.whole_graph_division(4);
        assert!(cost.messages > 0);
        // No solve or tree access happened: election + BFS never ran.
        assert_eq!(engine.stats().base_cost, CostReport::zero());
        // First tree access builds it.
        assert!(engine.tree().n() == 40);
        assert!(engine.stats().base_cost.messages > 0);
    }

    #[test]
    fn master_seed_follows_into_randomized_variant() {
        let cfg = EngineConfig::new().randomized(0).seed(42);
        assert_eq!(cfg.variant, Variant::Randomized { seed: 42 });
        assert_eq!(cfg.seed, 42);
        let det = EngineConfig::new().seed(42);
        assert_eq!(det.variant, Variant::Deterministic);
    }

    #[test]
    fn reweighted_session_shares_the_tree() {
        let g = gen::grid_weighted(5, 5, 2);
        let engine = PaEngine::new(&g, EngineConfig::new());
        let perturbed = g.reweighted(|_, w| w * 2 + 1);
        let mut derived = engine.for_reweighted(&perturbed);
        assert_eq!(derived.tree().root(), engine.tree().root());
        assert_eq!(derived.stats().base_cost, CostReport::zero());
        let parts = Partition::whole(&perturbed).unwrap();
        let res = derived
            .solve(&parts, &vec![1; perturbed.n()], Aggregate::Sum)
            .unwrap();
        assert_eq!(res.aggregates[0], 25);
    }

    #[test]
    #[should_panic(expected = "identical topology")]
    fn reweighted_rejects_different_topology() {
        let g = gen::grid(4, 4);
        let other = gen::path(16);
        let engine = PaEngine::new(&g, EngineConfig::new());
        let _ = engine.for_reweighted(&other);
    }

    #[test]
    fn whole_graph_division_is_cached() {
        let g = gen::path(48);
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let (_, first_cost) = engine.whole_graph_division(4);
        assert!(first_cost.messages > 0, "miss charges the division");
        let (res, second_cost) = engine.whole_graph_division(4);
        assert!(res.division.num_subparts() > 1);
        assert_eq!(second_cost, CostReport::zero(), "hit is free");
        let stats = engine.stats();
        assert_eq!((stats.division_hits, stats.division_misses), (1, 1));
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 0),
            "division memo has its own counters"
        );
    }

    #[test]
    fn partition_fingerprint_is_the_specified_fnv1a() {
        // FNV-1a is fully specified: pin a value so any accidental change
        // to the hash (or to byte order) fails loudly. A stable cache key
        // is what makes cluster cost accounting reproducible across
        // toolchains.
        let fp = partition_fingerprint(&[0, 1, 1]);
        assert_eq!(fp, partition_fingerprint(&[0, 1, 1]));
        assert_ne!(fp, partition_fingerprint(&[0, 1, 2]));
        assert_eq!(partition_fingerprint(&[]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(partition_fingerprint(&[0]), 0xa8c7_f832_281a_39c5);
    }

    #[test]
    fn core_roundtrip_preserves_warm_state() {
        let (g, parts, values) = grid_instance();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let first = engine.solve(&parts, &values, Aggregate::Min).unwrap();
        // Park the session, rehydrate it, and keep solving: the cache,
        // tree, and counters all survive the trip through EngineCore.
        let core = engine.into_core();
        assert_eq!(core.stats().misses, 1);
        let mut engine = PaEngine::from_core(&g, core);
        let second = engine.solve(&parts, &values, Aggregate::Min).unwrap();
        assert_eq!(first.aggregates, second.aggregates);
        assert_eq!(second.cost, second.broadcast_cost.repeated(3), "warm hit");
        assert_eq!(engine.stats().hits, 1);
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn core_rejects_rehydration_onto_another_graph() {
        let g = gen::grid(4, 4);
        let other = gen::path(16);
        let core = PaEngine::new(&g, EngineConfig::new()).into_core();
        let _ = PaEngine::from_core(&other, core);
    }

    // PaEngine/EngineCore Send-ness is pinned where it is relied on:
    // tests/cluster_serve.rs (the shard workers' contract) and the
    // congest-level const audit cover it.

    #[test]
    fn stats_merge_adds_counters() {
        let (g, parts, values) = grid_instance();
        let mut a = PaEngine::new(&g, EngineConfig::new());
        let mut b = PaEngine::new(&g, EngineConfig::new().seed(1));
        a.solve(&parts, &values, Aggregate::Min).unwrap();
        a.solve(&parts, &values, Aggregate::Min).unwrap();
        b.solve(&parts, &values, Aggregate::Max).unwrap();
        let mut merged = a.stats();
        merged.merge(&b.stats());
        assert_eq!(merged.solves, 3);
        assert_eq!((merged.hits, merged.misses), (1, 2));
        assert_eq!(merged.cached_partitions, 2);
        assert_eq!(merged.base_cost, a.stats().base_cost + b.stats().base_cost);
        // The Display form carries the headline counters.
        let line = merged.to_string();
        assert!(line.contains("hits/misses/evictions 1/2/0"), "{line}");
        assert!(line.contains("3 solves"), "{line}");
    }

    #[test]
    fn config_roundtrips_through_paconfig() {
        let cfg = EngineConfig::new().randomized(9).cache_capacity(3);
        let back: EngineConfig = cfg.pa().into();
        assert_eq!(back.variant, cfg.variant);
        assert_eq!(back.shortcut, cfg.shortcut);
        assert_eq!(back.division, cfg.division);
        assert_eq!(back.seed, cfg.seed);
    }
}
