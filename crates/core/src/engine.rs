//! `PaEngine` — a long-lived PA session that owns the network once and
//! caches pipeline artifacts across calls.
//!
//! The paper's whole point (Theorem 1.2) is that the Part-Wise
//! Aggregation infrastructure is *reusable*: leader election and the BFS
//! tree depend only on the graph, and the partition-specific stages
//! (part leaders, sub-part division, tree-restricted shortcut, block
//! budget) depend only on the partition — not on the aggregated values.
//! Borůvka runs PA `O(log n)` times on one tree, the min-cut sketches
//! run `polylog(n)` aggregations, and the verification suite composes
//! several PA calls per query.
//!
//! [`PaEngine`] makes that reuse the API default:
//!
//! * constructed once per graph, it owns the [`Network`] and runs
//!   election + BFS exactly once (lazily, at the first solve or tree
//!   access — sessions that only need divisions never simulate it);
//! * every solve looks its partition up in an LRU-bounded memo keyed by
//!   a fingerprint of the part vector, rebuilding stages 2–4 only on a
//!   miss;
//! * costs are charged *incrementally*: election + BFS on the first
//!   solve, stage 2–4 setup once per distinct partition, and only the
//!   three wave phases on a cache hit;
//! * [`EngineStats`] surfaces hit/miss/eviction counters so harness
//!   experiments and benches can report the savings.
//!
//! # Quickstart
//!
//! ```rust
//! use rmo_graph::gen;
//! use rmo_core::{Aggregate, EngineConfig, PaEngine};
//!
//! let g = gen::grid(8, 8);
//! let parts = gen::grid_row_partition(8, 8);
//! let parts = rmo_graph::Partition::new(&g, parts).unwrap();
//! let values: Vec<u64> = (0..g.n() as u64).collect();
//!
//! let mut engine = PaEngine::new(&g, EngineConfig::new());
//! let first = engine.solve(&parts, &values, Aggregate::Min).unwrap();
//! let second = engine.solve(&parts, &values, Aggregate::Min).unwrap();
//! assert_eq!(first.aggregates, second.aggregates);
//! // The second call reuses the cached tree + shortcut + division:
//! assert!(second.cost.rounds < first.cost.rounds);
//! assert_eq!(engine.stats().hits, 1);
//! ```

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};

use rmo_congest::programs::bfs::run_bfs;
use rmo_congest::programs::leader::run_leader_election;
use rmo_congest::{CostReport, Network};
use rmo_graph::{Graph, Partition, RootedTree};

use crate::aggregate::Aggregate;
use crate::batch::{batch_on, BatchResult};
use crate::instance::{PaError, PaInstance};
use crate::pipeline::{build_artifacts, PaConfig, PipelineArtifacts, ShortcutStrategy};
use crate::solve::{solve_on, PaResult, Variant};
use crate::subparts_det::{deterministic_division, DetDivisionResult};

/// Default number of distinct partitions the artifact cache retains.
pub const DEFAULT_CACHE_CAPACITY: usize = 8;

/// Which sub-part division algorithm the pipeline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivisionStrategy {
    /// Algorithm 6 (deterministic star joining).
    Deterministic,
    /// Algorithm 3 (randomized).
    Randomized,
}

/// Builder-style configuration of a [`PaEngine`] session.
///
/// Subsumes the old `PaConfig` constructors: `EngineConfig::new()` is the
/// paper's deterministic headline, [`EngineConfig::randomized`] and
/// [`EngineConfig::trivial`] switch whole profiles, and the narrow
/// setters ([`shortcut`](EngineConfig::shortcut),
/// [`division`](EngineConfig::division), [`seed`](EngineConfig::seed),
/// [`cache_capacity`](EngineConfig::cache_capacity)) tweak one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Algorithm 1 variant.
    pub variant: Variant,
    /// Shortcut construction strategy.
    pub shortcut: ShortcutStrategy,
    /// Sub-part division algorithm.
    pub division: DivisionStrategy,
    /// Master seed (network IDs, divisions, delays).
    pub seed: u64,
    /// LRU bound on cached partitions (≥ 1).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::new()
    }
}

impl EngineConfig {
    /// The paper's deterministic headline: Algorithm 8 shortcuts,
    /// Algorithm 6 divisions, deterministic Algorithm 1.
    pub fn new() -> EngineConfig {
        EngineConfig {
            variant: Variant::Deterministic,
            shortcut: ShortcutStrategy::Deterministic,
            division: DivisionStrategy::Deterministic,
            seed: 0,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }

    /// Switches to the fully deterministic profile (the default).
    pub fn deterministic(mut self) -> EngineConfig {
        self.variant = Variant::Deterministic;
        self.shortcut = ShortcutStrategy::Deterministic;
        self.division = DivisionStrategy::Deterministic;
        self
    }

    /// Switches to the paper's randomized headline (`Õ(bD + c)` rounds
    /// w.h.p.) with the given seed.
    pub fn randomized(mut self, seed: u64) -> EngineConfig {
        self.variant = Variant::Randomized { seed };
        self.shortcut = ShortcutStrategy::Randomized;
        self.division = DivisionStrategy::Randomized;
        self.seed = seed;
        self
    }

    /// Switches to the trivial-shortcut profile (the `Õ(D + √n)`
    /// worst-case bound).
    pub fn trivial(mut self) -> EngineConfig {
        self.variant = Variant::Deterministic;
        self.shortcut = ShortcutStrategy::Trivial;
        self.division = DivisionStrategy::Deterministic;
        self
    }

    /// Overrides the shortcut construction strategy.
    pub fn shortcut(mut self, strategy: ShortcutStrategy) -> EngineConfig {
        self.shortcut = strategy;
        self
    }

    /// Overrides the sub-part division algorithm.
    pub fn division(mut self, strategy: DivisionStrategy) -> EngineConfig {
        self.division = strategy;
        self
    }

    /// Overrides the master seed. When the randomized Algorithm 1
    /// variant is active, its per-part-delay seed follows the master
    /// seed too, so `.randomized(0).seed(42)` behaves like
    /// `.randomized(42)`.
    pub fn seed(mut self, seed: u64) -> EngineConfig {
        self.seed = seed;
        if matches!(self.variant, Variant::Randomized { .. }) {
            self.variant = Variant::Randomized { seed };
        }
        self
    }

    /// Overrides how many distinct partitions the cache retains.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn cache_capacity(mut self, capacity: usize) -> EngineConfig {
        assert!(capacity > 0, "the artifact cache needs room for one entry");
        self.cache_capacity = capacity;
        self
    }

    /// The equivalent one-shot [`PaConfig`] (what the legacy pipeline
    /// entry points consume).
    pub fn pa(&self) -> PaConfig {
        PaConfig {
            variant: self.variant,
            shortcut: self.shortcut,
            deterministic_division: self.division == DivisionStrategy::Deterministic,
            seed: self.seed,
        }
    }
}

impl From<PaConfig> for EngineConfig {
    fn from(config: PaConfig) -> EngineConfig {
        EngineConfig {
            variant: config.variant,
            shortcut: config.shortcut,
            division: if config.deterministic_division {
                DivisionStrategy::Deterministic
            } else {
                DivisionStrategy::Randomized
            },
            seed: config.seed,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// Counters a [`PaEngine`] accumulates across its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Artifact-cache hits (pipeline stages 2–4 skipped).
    pub hits: u64,
    /// Artifact-cache misses (stages 2–4 built).
    pub misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Hits on the whole-graph division memo
    /// ([`PaEngine::whole_graph_division`] — a separate cache from the
    /// pipeline artifacts).
    pub division_hits: u64,
    /// Misses on the whole-graph division memo (division built).
    pub division_misses: u64,
    /// PA solves served (including the solve inside each batch).
    pub solves: u64,
    /// Batched solves served.
    pub batches: u64,
    /// Distinct partitions currently cached.
    pub cached_partitions: usize,
    /// Election + BFS cost, paid once per engine — zero until stage 1
    /// has run (it runs lazily, at the first solve or tree access).
    pub base_cost: CostReport,
}

struct CacheEntry {
    /// The full part vector, to rule out fingerprint collisions.
    assignment: Vec<usize>,
    artifacts: PipelineArtifacts,
    last_used: u64,
    /// Whether this entry's stage 2–4 setup cost has been charged to a
    /// caller yet. [`PaEngine::pipeline_for`] builds without charging;
    /// the first solve that consumes the entry picks the cost up.
    setup_charged: bool,
}

/// A PA session bound to one graph: election + BFS run once per engine
/// (lazily, at the first solve or tree access), pipeline artifacts are
/// memoized per partition, and all solves charge only their incremental
/// cost (see the module docs).
pub struct PaEngine<'g> {
    graph: &'g Graph,
    config: EngineConfig,
    pa: PaConfig,
    net: Network,
    /// Stage 1 (leader election + BFS tree) and its cost, built on first
    /// use so sessions that never need the tree (k-domination's
    /// divisions) never simulate it.
    stage1: std::cell::OnceCell<(RootedTree, CostReport)>,
    base_charged: bool,
    cache: HashMap<u64, CacheEntry>,
    division_cache: HashMap<usize, DetDivisionResult>,
    clock: u64,
    stats: EngineStats,
}

impl std::fmt::Debug for PaEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PaEngine")
            .field("n", &self.graph.n())
            .field("m", &self.graph.m())
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

fn fingerprint(assignment: &[usize]) -> u64 {
    let mut h = DefaultHasher::new();
    assignment.hash(&mut h);
    h.finish()
}

impl<'g> PaEngine<'g> {
    /// Builds the session: assigns KT0 identifiers and validates the
    /// graph. Stage 1 (leader election + BFS on the real CONGEST
    /// simulator) runs lazily at the first solve or [`PaEngine::tree`]
    /// access, is paid exactly once, and is charged to the first solve.
    ///
    /// # Panics
    /// Panics if the graph is empty or disconnected (the CONGEST network
    /// is one component).
    pub fn new(graph: &'g Graph, config: EngineConfig) -> PaEngine<'g> {
        assert!(graph.n() > 0, "PaEngine needs a non-empty graph");
        assert!(graph.is_connected(), "PaEngine needs a connected graph");
        assert!(config.cache_capacity > 0, "cache capacity must be >= 1");
        let pa = config.pa();
        let net = Network::new(graph, config.seed);
        PaEngine {
            graph,
            config,
            pa,
            net,
            stage1: std::cell::OnceCell::new(),
            base_charged: false,
            cache: HashMap::new(),
            division_cache: HashMap::new(),
            clock: 0,
            stats: EngineStats::default(),
        }
    }

    /// Builds a session around an already-paid-for tree. `base_cost` is
    /// whatever the caller actually spent obtaining it (zero if it is
    /// being reused from another session).
    pub fn with_tree(
        graph: &'g Graph,
        config: EngineConfig,
        tree: RootedTree,
        base_cost: CostReport,
    ) -> PaEngine<'g> {
        let engine = PaEngine::new(graph, config);
        engine
            .stage1
            .set((tree, base_cost))
            .expect("fresh engine has no stage-1 state");
        engine
    }

    /// Stage 1, built on first use: flood-max election + distributed BFS
    /// on the simulator, with their measured cost.
    fn stage1(&self) -> &(RootedTree, CostReport) {
        self.stage1.get_or_init(|| {
            let (root, _, elect_cost) = run_leader_election(self.graph, &self.net)
                .expect("election terminates on a connected graph");
            let (tree, _, bfs_cost) = run_bfs(self.graph, &self.net, root).expect("BFS terminates");
            (tree, elect_cost + bfs_cost)
        })
    }

    /// Derives a session for a reweighted copy of this engine's graph
    /// (same nodes, same edges, possibly different weights), reusing the
    /// already-built BFS tree instead of re-running election + BFS.
    ///
    /// Election and BFS are weight-oblivious, so the tree is valid as-is;
    /// the derived engine charges no base cost. The min-cut sketches use
    /// this to amortize stage 1 across all sampled perturbations.
    ///
    /// # Panics
    /// Panics if `graph` is not topology-identical to this engine's.
    pub fn for_reweighted<'h>(&self, graph: &'h Graph) -> PaEngine<'h> {
        assert!(
            same_topology(self.graph, graph),
            "for_reweighted needs an identical topology"
        );
        PaEngine::with_tree(graph, self.config, self.tree().clone(), CostReport::zero())
    }

    /// The graph this session is bound to.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The simulated network (KT0 identifiers, ports).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The session's BFS tree, shared by every solve (built on first
    /// access).
    pub fn tree(&self) -> &RootedTree {
        &self.stage1().0
    }

    /// The session configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Lifetime counters, including the one-off election + BFS cost
    /// (zero while stage 1 has not run yet).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cached_partitions: self.cache.len(),
            base_cost: self
                .stage1
                .get()
                .map(|(_, cost)| *cost)
                .unwrap_or_else(CostReport::zero),
            ..self.stats
        }
    }

    fn assert_same_graph(&self, inst: &PaInstance<'_>) {
        let ig = inst.graph();
        assert!(
            std::ptr::eq(ig, self.graph) || same_topology(self.graph, ig),
            "instance graph must match the engine's graph topology"
        );
    }

    /// Ensures artifacts for `inst`'s partition are cached (building them
    /// on a miss) and returns the cache key. Charging is separate — see
    /// [`PaEngine::take_pending_setup`].
    fn ensure_artifacts(&mut self, inst: &PaInstance<'_>) -> u64 {
        let assignment = inst.partition().assignment();
        let key = fingerprint(assignment);
        self.clock += 1;
        let cached = match self.cache.get_mut(&key) {
            Some(entry) if entry.assignment == assignment => {
                entry.last_used = self.clock;
                true
            }
            Some(_) => {
                // Fingerprint collision: evict the stale partition.
                self.cache.remove(&key);
                false
            }
            None => false,
        };
        if cached {
            self.stats.hits += 1;
            return key;
        }
        self.stats.misses += 1;
        let artifacts = {
            let tree = &self.stage1().0;
            build_artifacts(inst, &self.pa, tree)
        };
        if self.cache.len() >= self.config.cache_capacity {
            if let Some((&lru, _)) = self.cache.iter().min_by_key(|(_, e)| e.last_used) {
                self.cache.remove(&lru);
                self.stats.evictions += 1;
            }
        }
        self.cache.insert(
            key,
            CacheEntry {
                assignment: assignment.to_vec(),
                artifacts,
                last_used: self.clock,
                setup_charged: false,
            },
        );
        key
    }

    /// The entry's stage 2–4 setup cost if no caller has been charged for
    /// it yet (a [`PaEngine::pipeline_for`] pre-warm leaves it pending),
    /// zero afterwards.
    fn take_pending_setup(&mut self, key: u64) -> CostReport {
        let entry = self.cache.get_mut(&key).expect("entry just ensured");
        if entry.setup_charged {
            CostReport::zero()
        } else {
            entry.setup_charged = true;
            entry.artifacts.setup_cost
        }
    }

    /// The cost to charge this call beyond the waves themselves: stage
    /// 2–4 setup when not yet charged for this partition, plus election +
    /// BFS exactly once per engine.
    fn incremental_cost(&mut self, setup_cost: CostReport) -> CostReport {
        let mut extra = setup_cost;
        if !self.base_charged {
            self.base_charged = true;
            extra += self.stage1().1;
        }
        extra
    }

    /// Charges the one-off election + BFS cost to the caller if no solve
    /// has charged it yet (returns zero afterwards). Solves do this
    /// implicitly; callers that only derive reweighted trial sessions
    /// from this engine (min-cut) call it explicitly so the shared tree
    /// is still paid for exactly once.
    pub fn charge_base(&mut self) -> CostReport {
        self.incremental_cost(CostReport::zero())
    }

    /// Builds (or fetches) the pipeline artifacts for a partition without
    /// solving anything — a pre-warm/inspection entry point. The entry's
    /// stage 2–4 setup cost stays *pending*: the first solve that
    /// consumes this partition is charged it, preserving the
    /// charged-once-per-partition invariant.
    pub fn pipeline_for(&mut self, parts: &Partition) -> &PipelineArtifacts {
        let inst = PaInstance::from_partition(
            self.graph,
            parts.clone(),
            vec![0; self.graph.n()],
            Aggregate::Min,
        )
        .expect("engine graph is connected and values cover all nodes");
        let key = self.ensure_artifacts(&inst);
        &self.cache[&key].artifacts
    }

    /// Solves one PA instance over `parts`: every node of every part
    /// learns `agg` folded over the part's `values`.
    ///
    /// # Errors
    /// Propagates [`PaError`] from instance validation and Algorithm 1.
    pub fn solve(
        &mut self,
        parts: &Partition,
        values: &[u64],
        agg: Aggregate,
    ) -> Result<PaResult, PaError> {
        let inst = PaInstance::from_partition(self.graph, parts.clone(), values.to_vec(), agg)?;
        self.solve_instance(&inst)
    }

    /// Solves an already-validated instance. The instance's graph must be
    /// this engine's graph (or a topology-identical reweighting of it).
    ///
    /// # Errors
    /// Propagates [`PaError`] from Algorithm 1.
    ///
    /// # Panics
    /// Panics if the instance's graph topology differs from the engine's.
    pub fn solve_instance(&mut self, inst: &PaInstance<'_>) -> Result<PaResult, PaError> {
        self.assert_same_graph(inst);
        self.stats.solves += 1;
        let key = self.ensure_artifacts(inst);
        let setup_cost = self.take_pending_setup(key);
        let extra = self.incremental_cost(setup_cost);
        let variant = self.pa.variant;
        let entry = &self.cache[&key];
        let mut result = solve_on(inst, &entry.artifacts.setup(self.tree()), variant)?;
        result.cost += extra;
        Ok(result)
    }

    /// Solves `k` aggregations over one partition with a single pipelined
    /// wave (see [`crate::batch`]).
    ///
    /// # Errors
    /// Propagates [`PaError`]; every value set must have length `n`.
    ///
    /// # Panics
    /// Panics if `value_sets` is empty or a set has the wrong length.
    pub fn solve_batch(
        &mut self,
        parts: &Partition,
        value_sets: &[Vec<u64>],
        agg: Aggregate,
    ) -> Result<BatchResult, PaError> {
        assert!(!value_sets.is_empty(), "batch needs at least one value set");
        let inst =
            PaInstance::from_partition(self.graph, parts.clone(), value_sets[0].clone(), agg)?;
        self.stats.batches += 1;
        self.stats.solves += 1;
        let key = self.ensure_artifacts(&inst);
        let setup_cost = self.take_pending_setup(key);
        let extra = self.incremental_cost(setup_cost);
        let variant = self.pa.variant;
        let entry = &self.cache[&key];
        let mut result = batch_on(
            &inst,
            value_sets,
            &entry.artifacts.setup(self.tree()),
            variant,
        )?;
        result.cost += extra;
        Ok(result)
    }

    /// The Algorithm 6 division of the whole graph with completion
    /// threshold `completion`, memoized per threshold (Corollary A.3:
    /// k-dominating sets are "a simple generalization of our sub-part
    /// division algorithm"). The cached cost is charged on the miss only.
    ///
    /// Returns the division result and the cost to charge this call.
    pub fn whole_graph_division(&mut self, completion: usize) -> (&DetDivisionResult, CostReport) {
        if self.division_cache.contains_key(&completion) {
            self.stats.division_hits += 1;
            return (&self.division_cache[&completion], CostReport::zero());
        }
        self.stats.division_misses += 1;
        let parts = Partition::whole(self.graph).expect("engine graph is connected");
        let res = deterministic_division(self.graph, &parts, completion);
        let cost = res.cost;
        self.division_cache.insert(completion, res);
        (&self.division_cache[&completion], cost)
    }
}

/// Same node count and identical edge lists (endpoints, not weights).
fn same_topology(a: &Graph, b: &Graph) -> bool {
    a.n() == b.n()
        && a.m() == b.m()
        && a.edges()
            .zip(b.edges())
            .all(|((ea, ua, va, _), (eb, ub, vb, _))| ea == eb && ua == ub && va == vb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::solve_pa;
    use rmo_graph::gen;

    fn grid_instance() -> (Graph, Partition, Vec<u64>) {
        let g = gen::grid(6, 8);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 8)).unwrap();
        let values: Vec<u64> = (0..g.n() as u64).map(|v| (v * 31) % 97).collect();
        (g, parts, values)
    }

    #[test]
    fn engine_matches_one_shot_pipeline() {
        let (g, parts, values) = grid_instance();
        for config in [
            EngineConfig::new(),
            EngineConfig::new().randomized(3),
            EngineConfig::new().trivial().seed(1),
        ] {
            let mut engine = PaEngine::new(&g, config);
            let inst =
                PaInstance::from_partition(&g, parts.clone(), values.clone(), Aggregate::Min)
                    .unwrap();
            let ours = engine.solve(&parts, &values, Aggregate::Min).unwrap();
            let legacy = solve_pa(&inst, &config.pa()).unwrap();
            assert_eq!(ours.aggregates, legacy.aggregates, "{config:?}");
            assert_eq!(ours.node_values, legacy.node_values);
            assert_eq!(ours.cost, legacy.cost, "first solve pays full setup");
            assert_eq!(ours.broadcast_cost, legacy.broadcast_cost);
        }
    }

    #[test]
    fn cache_hit_skips_setup() {
        let (g, parts, values) = grid_instance();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let first = engine.solve(&parts, &values, Aggregate::Sum).unwrap();
        let second = engine.solve(&parts, &values, Aggregate::Sum).unwrap();
        assert_eq!(first.aggregates, second.aggregates);
        // Hit: only the three wave phases are charged.
        assert_eq!(second.cost, second.broadcast_cost.repeated(3));
        assert!(second.cost.rounds < first.cost.rounds);
        assert!(second.cost.messages < first.cost.messages);
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.cached_partitions, 1);
    }

    #[test]
    fn lru_eviction_is_bounded_and_counted() {
        let g = gen::grid(4, 12);
        let mut engine = PaEngine::new(&g, EngineConfig::new().cache_capacity(2));
        let values = vec![1u64; g.n()];
        let partitions: Vec<Partition> = (1..=3)
            .map(|rows| Partition::new(&g, (0..g.n()).map(|v| (v / 12) / rows).collect()).unwrap())
            .collect();
        for parts in &partitions {
            engine.solve(parts, &values, Aggregate::Sum).unwrap();
        }
        let stats = engine.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 1, "capacity 2 evicts the LRU entry");
        assert_eq!(stats.cached_partitions, 2);
        // The evicted (least recently used) partition rebuilds; the most
        // recent one hits.
        engine
            .solve(&partitions[2], &values, Aggregate::Sum)
            .unwrap();
        assert_eq!(engine.stats().hits, 1);
        engine
            .solve(&partitions[0], &values, Aggregate::Sum)
            .unwrap();
        assert_eq!(engine.stats().misses, 4);
    }

    #[test]
    fn batch_charges_setup_once() {
        let (g, parts, values) = grid_instance();
        let sets: Vec<Vec<u64>> = (0..4u64)
            .map(|i| values.iter().map(|v| v + i).collect())
            .collect();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let batch = engine.solve_batch(&parts, &sets, Aggregate::Max).unwrap();
        let again = engine.solve_batch(&parts, &sets, Aggregate::Max).unwrap();
        assert_eq!(batch.aggregates, again.aggregates);
        assert!(again.cost.rounds < batch.cost.rounds);
        assert_eq!(engine.stats().batches, 2);
    }

    #[test]
    fn pipeline_for_is_memoized() {
        let (g, parts, _) = grid_instance();
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let budget = engine.pipeline_for(&parts).block_budget;
        assert_eq!(engine.pipeline_for(&parts).block_budget, budget);
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn prewarmed_setup_is_charged_to_the_first_solve() {
        let (g, parts, values) = grid_instance();
        let mut cold = PaEngine::new(&g, EngineConfig::new());
        let baseline = cold.solve(&parts, &values, Aggregate::Min).unwrap();
        // Pre-warming via pipeline_for must not make the setup vanish
        // from the session's accounting: the first solve that consumes
        // the entry still pays it.
        let mut warmed = PaEngine::new(&g, EngineConfig::new());
        let _ = warmed.pipeline_for(&parts);
        let first = warmed.solve(&parts, &values, Aggregate::Min).unwrap();
        assert_eq!(first.cost, baseline.cost, "setup charged exactly once");
        let second = warmed.solve(&parts, &values, Aggregate::Min).unwrap();
        assert_eq!(second.cost, second.broadcast_cost.repeated(3));
    }

    #[test]
    fn stage1_is_lazy_for_division_only_sessions() {
        let g = gen::path(40);
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let (_, cost) = engine.whole_graph_division(4);
        assert!(cost.messages > 0);
        // No solve or tree access happened: election + BFS never ran.
        assert_eq!(engine.stats().base_cost, CostReport::zero());
        // First tree access builds it.
        assert!(engine.tree().n() == 40);
        assert!(engine.stats().base_cost.messages > 0);
    }

    #[test]
    fn master_seed_follows_into_randomized_variant() {
        let cfg = EngineConfig::new().randomized(0).seed(42);
        assert_eq!(cfg.variant, Variant::Randomized { seed: 42 });
        assert_eq!(cfg.seed, 42);
        let det = EngineConfig::new().seed(42);
        assert_eq!(det.variant, Variant::Deterministic);
    }

    #[test]
    fn reweighted_session_shares_the_tree() {
        let g = gen::grid_weighted(5, 5, 2);
        let engine = PaEngine::new(&g, EngineConfig::new());
        let perturbed = g.reweighted(|_, w| w * 2 + 1);
        let mut derived = engine.for_reweighted(&perturbed);
        assert_eq!(derived.tree().root(), engine.tree().root());
        assert_eq!(derived.stats().base_cost, CostReport::zero());
        let parts = Partition::whole(&perturbed).unwrap();
        let res = derived
            .solve(&parts, &vec![1; perturbed.n()], Aggregate::Sum)
            .unwrap();
        assert_eq!(res.aggregates[0], 25);
    }

    #[test]
    #[should_panic(expected = "identical topology")]
    fn reweighted_rejects_different_topology() {
        let g = gen::grid(4, 4);
        let other = gen::path(16);
        let engine = PaEngine::new(&g, EngineConfig::new());
        let _ = engine.for_reweighted(&other);
    }

    #[test]
    fn whole_graph_division_is_cached() {
        let g = gen::path(48);
        let mut engine = PaEngine::new(&g, EngineConfig::new());
        let (_, first_cost) = engine.whole_graph_division(4);
        assert!(first_cost.messages > 0, "miss charges the division");
        let (res, second_cost) = engine.whole_graph_division(4);
        assert!(res.division.num_subparts() > 1);
        assert_eq!(second_cost, CostReport::zero(), "hit is free");
        let stats = engine.stats();
        assert_eq!((stats.division_hits, stats.division_misses), (1, 1));
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 0),
            "division memo has its own counters"
        );
    }

    #[test]
    fn config_roundtrips_through_paconfig() {
        let cfg = EngineConfig::new().randomized(9).cache_capacity(3);
        let back: EngineConfig = cfg.pa().into();
        assert_eq!(back.variant, cfg.variant);
        assert_eq!(back.shortcut, cfg.shortcut);
        assert_eq!(back.division, cfg.division);
        assert_eq!(back.seed, cfg.seed);
    }
}
