//! Baselines from prior work, for the paper's comparisons.
//!
//! * [`naive_block_pa`] — the pre-paper shortcut algorithm (Section 3.1):
//!   **every** node transmits its value up its block individually, i.e.
//!   Algorithm 1 run with the singleton sub-part division (each node its
//!   own representative). Round-optimal, but `Ω(nD)` messages on the
//!   Figure 2(a) apex grid — the paper's motivating bad example.
//! * [`intra_part_pa`] — no shortcuts at all: a waiting convergecast +
//!   broadcast on each part's own spanning tree. Message-optimal `O(n)`,
//!   but `Ω(part diameter)` rounds — up to `Ω(n)` on high-diameter parts.

use rmo_graph::{NodeId, RootedTree};
use rmo_shortcut::Shortcut;

use crate::instance::{PaError, PaInstance};
use crate::solve::{solve_on, PaResult, PaSetup, Variant};
use crate::subparts::SubPartDivision;

/// The singleton division: every node is its own sub-part and
/// representative. This is what "no sub-part machinery" means.
pub fn singleton_division(inst: &PaInstance<'_>) -> SubPartDivision {
    let g = inst.graph();
    SubPartDivision::new(
        g,
        inst.partition(),
        (0..g.n()).collect(),
        vec![None; g.n()],
        (0..g.n()).collect(),
    )
    .expect("singletons are a valid division")
}

/// Prior-work baseline: block aggregation with **all** nodes using the
/// shortcut (no sub-part division).
///
/// `block_budget` — the block parameter of `shortcut` counted with all
/// part members as terminals (singleton sub-parts make every member a
/// representative).
///
/// # Errors
/// Same conditions as [`solve_on`].
pub fn naive_block_pa(
    inst: &PaInstance<'_>,
    tree: &RootedTree,
    shortcut: &Shortcut,
    leaders: &[NodeId],
    variant: Variant,
    block_budget: usize,
) -> Result<PaResult, PaError> {
    let division = singleton_division(inst);
    solve_on(
        inst,
        &PaSetup {
            tree,
            shortcut,
            division: &division,
            leaders,
            block_budget,
        },
        variant,
    )
}

/// No-shortcut baseline: one sub-part per part (a BFS tree of the part
/// from its leader); the wave is a plain in-part broadcast.
///
/// # Errors
/// Same conditions as [`solve_on`].
pub fn intra_part_pa(
    inst: &PaInstance<'_>,
    tree: &RootedTree,
    leaders: &[NodeId],
    variant: Variant,
) -> Result<PaResult, PaError> {
    let division = SubPartDivision::one_per_part(inst.graph(), inst.partition(), leaders);
    let shortcut = Shortcut::empty(inst.partition().num_parts());
    solve_on(
        inst,
        &PaSetup {
            tree,
            shortcut: &shortcut,
            division: &division,
            leaders,
            block_budget: 1,
        },
        variant,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use rmo_graph::{bfs_tree, gen, Partition};
    use rmo_shortcut::trivial::trivial_shortcut_with_threshold;

    fn min_leaders(parts: &Partition) -> Vec<NodeId> {
        parts.part_ids().map(|p| parts.members(p)[0]).collect()
    }

    #[test]
    fn naive_matches_reference_on_apex_grid() {
        let (depth, width) = (4, 16);
        let g = gen::grid_with_apex(depth, width);
        let parts = Partition::new(&g, gen::grid_row_partition_with_apex(depth, width)).unwrap();
        let values: Vec<u64> = (0..g.n() as u64).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Min).unwrap();
        // Root the BFS tree at the apex: columns become the single block.
        let apex = depth * width;
        let (tree, _) = bfs_tree(&g, apex);
        let sc = trivial_shortcut_with_threshold(&g, &tree, &parts, 1);
        let leaders = min_leaders(&parts);
        let res = naive_block_pa(&inst, &tree, &sc, &leaders, Variant::Deterministic, 1).unwrap();
        for p in parts.part_ids() {
            assert_eq!(res.aggregates[p], inst.reference_aggregate(p));
        }
    }

    #[test]
    fn naive_wastes_messages_on_apex_grid() {
        // The Figure 2 separation, as a test: naive >= ~n*D/4 messages,
        // sub-part-free intra-part baseline O(n) (rows are the parts and
        // they are short here, so intra-part wins on messages).
        let (depth, width) = (8, 32);
        let g = gen::grid_with_apex(depth, width);
        let parts = Partition::new(&g, gen::grid_row_partition_with_apex(depth, width)).unwrap();
        let values: Vec<u64> = (0..g.n() as u64).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Min).unwrap();
        let apex = depth * width;
        let (tree, _) = bfs_tree(&g, apex);
        let sc = trivial_shortcut_with_threshold(&g, &tree, &parts, 1);
        let leaders = min_leaders(&parts);
        let naive = naive_block_pa(&inst, &tree, &sc, &leaders, Variant::Deterministic, 1).unwrap();
        let intra = intra_part_pa(&inst, &tree, &leaders, Variant::Deterministic).unwrap();
        assert!(
            naive.cost.messages > 2 * intra.cost.messages,
            "naive {} should far exceed intra-part {}",
            naive.cost.messages,
            intra.cost.messages
        );
    }

    #[test]
    fn intra_part_matches_reference() {
        let g = gen::grid(6, 9);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 9)).unwrap();
        let values: Vec<u64> = (0..54).map(|v| v as u64 % 13).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let leaders = min_leaders(&parts);
        let res = intra_part_pa(&inst, &tree, &leaders, Variant::Deterministic).unwrap();
        for p in parts.part_ids() {
            assert_eq!(res.aggregates[p], inst.reference_aggregate(p));
        }
    }

    #[test]
    fn intra_part_rounds_track_part_diameter() {
        // One snake-like part covering a path: diameter n-1.
        let g = gen::path(64);
        let parts = Partition::whole(&g).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![1; 64], Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let res = intra_part_pa(&inst, &tree, &[0], Variant::Deterministic).unwrap();
        assert!(
            res.cost.rounds >= 63,
            "broadcasting along the whole part takes its diameter"
        );
    }
}
