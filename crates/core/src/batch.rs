//! Batched PA: `k` aggregations over the **same** partition, pipelined
//! through one wave.
//!
//! Applications routinely aggregate many word-sized values over one
//! partition (the min-cut sketches run `polylog(n)·poly(1/ε)`
//! aggregations; Ghaffari's CDS labels carry `O(1)` values). Running
//! Algorithm 1 `k` times costs `k ×` rounds; but the wave's routes do
//! not depend on the values, so the `k` values can stream behind each
//! other exactly like the pipelined broadcast primitive
//! (`congest::programs::pipeline`, `O(depth + k)` rounds): total rounds
//! `wave + O(k)`, messages `k ×` the wave's.

use rmo_congest::CostReport;

use crate::aggregate::Aggregate;
use crate::instance::{PaError, PaInstance};
use crate::solve::{solve_on, PaSetup, Variant};

/// Result of a batched solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// `aggregates[i][p]` — aggregate of value-set `i` on part `p`.
    pub aggregates: Vec<Vec<u64>>,
    /// Total measured cost of the pipelined batch.
    pub cost: CostReport,
}

/// Solves `k` PA instances (same graph/partition/aggregate, different
/// value sets) with one pipelined wave on prepared infrastructure.
///
/// # Errors
/// Propagates [`PaError`]; every value set must have length `n`.
///
/// # Panics
/// Panics if `value_sets` is empty or a set has the wrong length.
pub fn batch_on(
    inst: &PaInstance<'_>,
    value_sets: &[Vec<u64>],
    setup: &PaSetup<'_>,
    variant: Variant,
) -> Result<BatchResult, PaError> {
    assert!(!value_sets.is_empty(), "batch needs at least one value set");
    let n = inst.graph().n();
    for vs in value_sets {
        assert_eq!(vs.len(), n, "every value set covers all nodes");
    }
    // One wave determines routes and the base cost.
    let base = solve_on(inst, setup, variant)?;
    let k = value_sets.len();
    // Pipelining: each of the three phases streams k words behind each
    // other (+k-1 rounds each); every message now carries per-value copies.
    let cost = CostReport::with_capacity(
        base.cost.rounds + 3 * (k - 1),
        base.cost.messages * k as u64,
        base.cost.capacity_multiplier,
    );
    let f: Aggregate = inst.aggregate();
    let parts = inst.partition();
    let aggregates: Vec<Vec<u64>> = value_sets
        .iter()
        .map(|vs| {
            parts
                .part_ids()
                .map(|p| f.fold(parts.members(p).iter().map(|&v| vs[v])))
                .collect()
        })
        .collect();
    Ok(BatchResult { aggregates, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subparts::SubPartDivision;
    use rmo_graph::{bfs_tree, gen, NodeId, Partition, RootedTree};
    use rmo_shortcut::trivial::trivial_shortcut_with_threshold;
    use rmo_shortcut::Shortcut;

    fn setup(
        g: &rmo_graph::Graph,
        parts: &Partition,
    ) -> (RootedTree, Shortcut, SubPartDivision, Vec<NodeId>) {
        let (tree, _) = bfs_tree(g, 0);
        let sc = trivial_shortcut_with_threshold(g, &tree, parts, 1);
        let leaders: Vec<NodeId> = parts.part_ids().map(|p| parts.members(p)[0]).collect();
        let division = SubPartDivision::one_per_part(g, parts, &leaders);
        (tree, sc, division, leaders)
    }

    fn pa_setup<'a>(
        parts: &'a (RootedTree, Shortcut, SubPartDivision, Vec<NodeId>),
    ) -> PaSetup<'a> {
        PaSetup {
            tree: &parts.0,
            shortcut: &parts.1,
            division: &parts.2,
            leaders: &parts.3,
            block_budget: 1,
        }
    }

    #[test]
    fn batch_matches_individual_answers() {
        let g = gen::grid(6, 6);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 6)).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![0; 36], Aggregate::Max).unwrap();
        let infra = setup(&g, &parts);
        let sets: Vec<Vec<u64>> = (0..5u64)
            .map(|i| (0..36u64).map(|v| (v * 7 + i * 13) % 97).collect())
            .collect();
        let batch = batch_on(&inst, &sets, &pa_setup(&infra), Variant::Deterministic).unwrap();
        for (i, vs) in sets.iter().enumerate() {
            for p in parts.part_ids() {
                let expect = Aggregate::Max.fold(parts.members(p).iter().map(|&v| vs[v]));
                assert_eq!(batch.aggregates[i][p], expect, "set {i} part {p}");
            }
        }
    }

    #[test]
    fn batching_beats_sequential_rounds() {
        let g = gen::grid(5, 20);
        let parts = Partition::new(&g, gen::grid_row_partition(5, 20)).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![0; 100], Aggregate::Sum).unwrap();
        let infra = setup(&g, &parts);
        let single = solve_on(&inst, &pa_setup(&infra), Variant::Deterministic).unwrap();
        let k = 16usize;
        let sets = vec![vec![1u64; 100]; k];
        let batch = batch_on(&inst, &sets, &pa_setup(&infra), Variant::Deterministic).unwrap();
        assert!(
            batch.cost.rounds < k * single.cost.rounds,
            "pipelined {} should beat sequential {}",
            batch.cost.rounds,
            k * single.cost.rounds
        );
        assert_eq!(batch.cost.messages, single.cost.messages * k as u64);
    }

    #[test]
    #[should_panic(expected = "value set covers all nodes")]
    fn rejects_short_value_set() {
        let g = gen::path(4);
        let parts = Partition::whole(&g).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![0; 4], Aggregate::Min).unwrap();
        let infra = setup(&g, &parts);
        let _ = batch_on(
            &inst,
            &[vec![1, 2]],
            &pa_setup(&infra),
            Variant::Deterministic,
        );
    }
}
