//! Algorithm 2: block-parameter verification.
//!
//! Runs Algorithm 1's broadcast wave with an iteration budget `b`. If
//! every node receives the message, the part's block parameter is within
//! budget and one more wave informs everyone of the exact block count;
//! otherwise, nodes that did not receive it tell their part neighbors
//! (one round, `O(m)` messages), and one further wave spreads the verdict
//! to the nodes that *did* receive it — so every node of every part
//! learns whether its part's block parameter exceeds `b` (Lemma 4.5).

use rmo_congest::CostReport;

use crate::instance::PaInstance;
use crate::solve::{broadcast_wave_outcome, PaSetup, Variant};

/// The verdict of Algorithm 2.
#[derive(Debug, Clone)]
pub struct BlockVerification {
    /// `exceeds[p]` — whether part `p`'s block parameter exceeds the
    /// budget `b` under the given shortcut.
    pub exceeds: Vec<bool>,
    /// Measured cost: up to three wave executions plus one notification
    /// round.
    pub cost: CostReport,
}

/// Runs Algorithm 2 with budget `b = setup.block_budget`.
pub fn verify_block_parameter(
    inst: &PaInstance<'_>,
    setup: &PaSetup<'_>,
    variant: Variant,
) -> BlockVerification {
    let g = inst.graph();
    let parts = inst.partition();
    // Line 2: broadcast an arbitrary message with budget b.
    let wave = broadcast_wave_outcome(inst, setup, variant);
    let mut cost = wave.cost;
    let mut exceeds = vec![false; parts.num_parts()];
    for (v, &ok) in wave.informed.iter().enumerate() {
        if !ok {
            exceeds[parts.part_of(v)] = true;
        }
    }
    // Lines 3-4: nodes that did not receive m̄ tell their part neighbors.
    let any_failure = exceeds.iter().any(|&e| e);
    if any_failure {
        let mut notify = 0u64;
        for v in 0..g.n() {
            if !wave.informed[v] {
                notify += g
                    .neighbors(v)
                    .filter(|&(u, _)| parts.part_of(u) == parts.part_of(v))
                    .count() as u64;
            }
        }
        cost += CostReport::new(1, notify);
        // Line 5: one more wave to spread the verdict among informed nodes.
        let spread = broadcast_wave_outcome(inst, setup, variant);
        cost += spread.cost;
    } else {
        // Line 9: all received — one more wave communicates the exact
        // block count (same cost as the first).
        cost += wave.cost;
    }
    BlockVerification { exceeds, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use crate::instance::PaInstance;
    use crate::subparts::SubPartDivision;
    use rmo_graph::{bfs_tree, gen, NodeId, Partition};
    use rmo_shortcut::trivial::trivial_shortcut_with_threshold;

    #[test]
    fn good_shortcut_passes() {
        let g = gen::grid(6, 6);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 6)).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![0; 36], Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = trivial_shortcut_with_threshold(&g, &tree, &parts, 1);
        let leaders: Vec<NodeId> = parts.part_ids().map(|p| parts.members(p)[0]).collect();
        let division = SubPartDivision::one_per_part(&g, &parts, &leaders);
        let v = verify_block_parameter(
            &inst,
            &PaSetup {
                tree: &tree,
                shortcut: &sc,
                division: &division,
                leaders: &leaders,
                block_budget: 1,
            },
            Variant::Deterministic,
        );
        assert!(v.exceeds.iter().all(|&e| !e));
    }

    #[test]
    fn starved_budget_flags_parts() {
        // Empty shortcut + multi-sub-part part: budget 1 cannot cover it.
        let g = gen::path(16);
        let parts = Partition::whole(&g).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![0; 16], Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = rmo_shortcut::Shortcut::empty(1);
        let division = SubPartDivision::new(
            &g,
            &parts,
            (0..16).map(|v| v / 4).collect(),
            (0..16usize)
                .map(|v| if v % 4 == 0 { None } else { Some(v - 1) })
                .collect(),
            vec![0, 4, 8, 12],
        )
        .unwrap();
        let setup = |b: usize| PaSetup {
            tree: &tree,
            shortcut: &sc,
            division: &division,
            leaders: &[0],
            block_budget: b,
        };
        let v = verify_block_parameter(&inst, &setup(1), Variant::Deterministic);
        assert!(v.exceeds[0], "budget 1 cannot cover 4 singleton blocks");
        let v4 = verify_block_parameter(&inst, &setup(4), Variant::Deterministic);
        assert!(!v4.exceeds[0], "budget 4 suffices");
    }

    #[test]
    fn cost_is_about_two_waves_on_success() {
        let g = gen::grid(4, 4);
        let parts = Partition::new(&g, gen::grid_row_partition(4, 4)).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![0; 16], Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let sc = trivial_shortcut_with_threshold(&g, &tree, &parts, 1);
        let leaders: Vec<NodeId> = parts.part_ids().map(|p| parts.members(p)[0]).collect();
        let division = SubPartDivision::one_per_part(&g, &parts, &leaders);
        let setup = PaSetup {
            tree: &tree,
            shortcut: &sc,
            division: &division,
            leaders: &leaders,
            block_budget: 1,
        };
        let wave = broadcast_wave_outcome(&inst, &setup, Variant::Deterministic);
        let v = verify_block_parameter(&inst, &setup, Variant::Deterministic);
        assert_eq!(v.cost.rounds, 2 * wave.cost.rounds);
        assert_eq!(v.cost.messages, 2 * wave.cost.messages);
    }
}
