//! PA problem instances (Definition 1.1).

use std::fmt;

use rmo_graph::{Graph, NodeId, Partition, PartitionError};

use crate::aggregate::Aggregate;

/// Errors constructing or solving a PA instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaError {
    /// The partition was invalid (disconnected part, bad ids, …).
    Partition(PartitionError),
    /// The value array length differed from the node count.
    ValueCountMismatch { expected: usize, got: usize },
    /// The graph must be connected (the CONGEST network is one component).
    Disconnected,
    /// Algorithm 1's wave failed to inform every node within the block
    /// budget — the supplied shortcut's block parameter is too large
    /// (this is exactly what Algorithm 2 detects).
    BlockBudgetExceeded { part: usize, budget: usize },
}

impl fmt::Display for PaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaError::Partition(e) => write!(f, "invalid partition: {e}"),
            PaError::ValueCountMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            PaError::Disconnected => write!(f, "graph must be connected"),
            PaError::BlockBudgetExceeded { part, budget } => {
                write!(
                    f,
                    "part {part} not covered within {budget} block iterations"
                )
            }
        }
    }
}

impl std::error::Error for PaError {}

impl From<PartitionError> for PaError {
    fn from(e: PartitionError) -> PaError {
        PaError::Partition(e)
    }
}

/// A Part-Wise Aggregation instance: graph, connected partition, one value
/// per node, and the aggregate `f`.
#[derive(Debug, Clone)]
pub struct PaInstance<'g> {
    graph: &'g Graph,
    partition: Partition,
    values: Vec<u64>,
    aggregate: Aggregate,
}

impl<'g> PaInstance<'g> {
    /// Builds and validates an instance from a raw part assignment.
    ///
    /// # Errors
    /// Rejects invalid partitions, wrong value counts and disconnected
    /// graphs.
    pub fn new(
        graph: &'g Graph,
        part_of: Vec<usize>,
        values: Vec<u64>,
        aggregate: Aggregate,
    ) -> Result<PaInstance<'g>, PaError> {
        if !graph.is_connected() {
            return Err(PaError::Disconnected);
        }
        if values.len() != graph.n() {
            return Err(PaError::ValueCountMismatch {
                expected: graph.n(),
                got: values.len(),
            });
        }
        let partition = Partition::new(graph, part_of)?;
        Ok(PaInstance {
            graph,
            partition,
            values,
            aggregate,
        })
    }

    /// Builds an instance from an already-validated [`Partition`].
    ///
    /// # Errors
    /// Rejects wrong value counts and disconnected graphs.
    pub fn from_partition(
        graph: &'g Graph,
        partition: Partition,
        values: Vec<u64>,
        aggregate: Aggregate,
    ) -> Result<PaInstance<'g>, PaError> {
        if !graph.is_connected() {
            return Err(PaError::Disconnected);
        }
        if values.len() != graph.n() {
            return Err(PaError::ValueCountMismatch {
                expected: graph.n(),
                got: values.len(),
            });
        }
        Ok(PaInstance {
            graph,
            partition,
            values,
            aggregate,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Node values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Value of node `v`.
    pub fn value_of(&self, v: NodeId) -> u64 {
        self.values[v]
    }

    /// The aggregation function.
    pub fn aggregate(&self) -> Aggregate {
        self.aggregate
    }

    /// Centralized reference: the aggregate of part `p`.
    pub fn reference_aggregate(&self, p: usize) -> u64 {
        self.aggregate
            .fold(self.partition.members(p).iter().map(|&v| self.values[v]))
    }

    /// Centralized reference: the aggregate of the part containing `v`.
    pub fn reference_aggregate_of(&self, v: NodeId) -> u64 {
        self.reference_aggregate(self.partition.part_of(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    #[test]
    fn valid_instance() {
        let g = gen::path(6);
        let inst = PaInstance::new(
            &g,
            vec![0, 0, 0, 1, 1, 1],
            vec![5, 3, 9, 2, 8, 1],
            Aggregate::Min,
        )
        .unwrap();
        assert_eq!(inst.reference_aggregate(0), 3);
        assert_eq!(inst.reference_aggregate(1), 1);
        assert_eq!(inst.reference_aggregate_of(4), 1);
    }

    #[test]
    fn rejects_bad_value_count() {
        let g = gen::path(3);
        let err = PaInstance::new(&g, vec![0, 0, 0], vec![1], Aggregate::Sum).unwrap_err();
        assert_eq!(
            err,
            PaError::ValueCountMismatch {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn rejects_disconnected_graph() {
        let g = rmo_graph::Graph::from_unweighted_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let err = PaInstance::new(&g, vec![0, 0, 1, 1], vec![0; 4], Aggregate::Sum).unwrap_err();
        assert_eq!(err, PaError::Disconnected);
    }

    #[test]
    fn rejects_disconnected_part() {
        let g = gen::path(4);
        let err = PaInstance::new(&g, vec![0, 1, 0, 1], vec![0; 4], Aggregate::Sum).unwrap_err();
        assert!(matches!(err, PaError::Partition(_)));
    }
}
