//! Algorithm 6: deterministic sub-part division.
//!
//! Start with every node as its own sub-part; repeat `O(log n)` times:
//! each *incomplete* sub-part (fewer than `D` nodes) picks an edge to a
//! different sub-part of the same part — preferring incomplete targets —
//! and a **star joining** (Algorithm 5) merges a constant fraction of the
//! incomplete sub-parts into receivers. A sub-part is complete once it has
//! `≥ D` nodes (or spans its whole part). Lemma 6.4: `Õ(D)` rounds,
//! `Õ(n)` messages, sub-part trees of diameter `O(D)`.
//!
//! Merging reorients the joiner's spanning tree: parent pointers along the
//! path from the chosen contact node to the old representative flip, and
//! the contact node hangs onto the receiver — the "star" shape is what
//! keeps the diameter growth additive (Lemma 6.4's core argument).

use std::collections::BTreeMap;

use rmo_congest::CostReport;
use rmo_graph::{num::ceil_log2, Graph, NodeId, Partition};

use crate::star_join::star_joining;
use crate::subparts::SubPartDivision;

/// Result of the deterministic division.
#[derive(Debug, Clone)]
pub struct DetDivisionResult {
    /// The division.
    pub division: SubPartDivision,
    /// Measured cost of all merge iterations.
    pub cost: CostReport,
    /// Outer iterations used.
    pub iterations: usize,
}

/// Runs Algorithm 6 with size threshold `d`.
///
/// # Panics
/// Panics if `d == 0`, or if merging fails to converge within
/// `4⌈log₂ n⌉ + 8` iterations (which would contradict Lemma 6.3's
/// constant-fraction guarantee).
pub fn deterministic_division(g: &Graph, parts: &Partition, d: usize) -> DetDivisionResult {
    assert!(d > 0, "size threshold must be positive");
    let n = g.n();
    // Mutable sub-part state, ids from a global counter.
    let mut sub_of: Vec<usize> = (0..n).collect();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut members: BTreeMap<usize, Vec<NodeId>> = (0..n).map(|v| (v, vec![v])).collect();
    let mut rep: BTreeMap<usize, NodeId> = (0..n).map(|v| (v, v)).collect();
    let mut complete: BTreeMap<usize, bool> = (0..n).map(|v| (v, false)).collect();

    // A sub-part spanning its entire part is complete by definition; a
    // sub-part reaching d nodes is complete by size.
    let finalize = |s: usize,
                    members: &BTreeMap<usize, Vec<NodeId>>,
                    complete: &mut BTreeMap<usize, bool>,
                    parts: &Partition| {
        let ms = &members[&s];
        if ms.len() >= d || ms.len() == parts.part_size(parts.part_of(ms[0])) {
            complete.insert(s, true);
        }
    };
    for v in 0..n {
        finalize(v, &members, &mut complete, parts);
    }

    let mut rounds = 0usize;
    let mut messages = 0u64;
    let max_iters = 4 * ceil_log2(n.max(2)) + 8;
    let mut iterations = 0usize;

    // Re-roots sub-part `j` at contact node `u` and hangs it below `v`.
    // The five trailing parameters are one mutable view of the division
    // under construction; threading them beats a premature struct for a
    // function-local helper.
    #[allow(clippy::too_many_arguments)]
    fn merge_into(
        j: usize,
        u: NodeId,
        v: NodeId,
        target: usize,
        sub_of: &mut [usize],
        parent: &mut [Option<NodeId>],
        members: &mut BTreeMap<usize, Vec<NodeId>>,
        rep: &mut BTreeMap<usize, NodeId>,
        complete: &mut BTreeMap<usize, bool>,
    ) {
        // Flip parents along u -> old rep.
        let mut path = vec![u];
        let mut cur = u;
        while let Some(p) = parent[cur] {
            path.push(p);
            cur = p;
        }
        for w in path.windows(2) {
            parent[w[1]] = Some(w[0]);
        }
        parent[u] = Some(v);
        let moved = members.remove(&j).expect("joiner exists");
        for &w in &moved {
            sub_of[w] = target;
        }
        members
            .get_mut(&target)
            .expect("receiver exists")
            .extend(moved);
        rep.remove(&j);
        complete.remove(&j);
    }

    loop {
        let incomplete: Vec<usize> = complete
            .iter()
            .filter(|&(_, &c)| !c)
            .map(|(&s, _)| s)
            .collect();
        if incomplete.is_empty() {
            break;
        }
        iterations += 1;
        assert!(
            iterations <= max_iters,
            "Algorithm 6 failed to converge in {max_iters} iterations"
        );
        let max_depth = current_max_depth(&members, &parent);
        // --- Choose edges (one intra-sub-part convergecast each). ---
        let mut chosen: BTreeMap<usize, (NodeId, NodeId)> = BTreeMap::new();
        for &s in &incomplete {
            let part = parts.part_of(members[&s][0]);
            let mut best: Option<(bool, NodeId, NodeId)> = None; // (target_complete, u, v)
            for &u in &members[&s] {
                for (v, _) in g.neighbors(u) {
                    if parts.part_of(v) != part || sub_of[v] == s {
                        continue;
                    }
                    let cand = (complete[&sub_of[v]], u, v);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            match best {
                Some((_, u, v)) => {
                    chosen.insert(s, (u, v));
                }
                None => {
                    // No external edge: the sub-part spans its whole part.
                    complete.insert(s, true);
                }
            }
        }
        rounds += 2 * max_depth + 1;
        messages += incomplete
            .iter()
            .map(|s| members[s].len() as u64)
            .sum::<u64>();

        // --- Phase A: merge into complete targets, cascading. ---
        let mut changed = true;
        while changed {
            changed = false;
            let current: Vec<usize> = chosen.keys().copied().collect();
            for s in current {
                if complete.get(&s).copied().unwrap_or(true) {
                    chosen.remove(&s);
                    continue;
                }
                let (u, v) = chosen[&s];
                let target = sub_of[v];
                if target != s && complete[&target] {
                    merge_into(
                        s,
                        u,
                        v,
                        target,
                        &mut sub_of,
                        &mut parent,
                        &mut members,
                        &mut rep,
                        &mut complete,
                    );
                    chosen.remove(&s);
                    messages += members[&target].len() as u64; // leader/rep broadcast
                    changed = true;
                }
            }
        }
        rounds += 2 * max_depth + 1;

        // --- Phase B: star joining among remaining incomplete sub-parts. ---
        let remaining: Vec<usize> = chosen.keys().copied().collect();
        if !remaining.is_empty() {
            let index: BTreeMap<usize, usize> =
                remaining.iter().enumerate().map(|(k, &s)| (s, k)).collect();
            let out_edge: Vec<Option<usize>> = remaining
                .iter()
                .map(|s| {
                    let (_, v) = chosen[s];
                    index.get(&sub_of[v]).copied()
                })
                .collect();
            let ids: Vec<u64> = remaining.iter().map(|&s| rep[&s] as u64 + 1).collect();
            let sj = star_joining(&out_edge, &ids);
            rounds += sj.steps * (2 * max_depth + 1);
            messages += (sj.steps as u64)
                * remaining
                    .iter()
                    .map(|s| members[s].len() as u64)
                    .sum::<u64>();
            for (k, join) in sj.joins.iter().enumerate() {
                if let Some(rk) = join {
                    let s = remaining[k];
                    let (u, v) = chosen[&s];
                    let target = remaining[*rk];
                    // The receiver may itself have been... receivers never
                    // join (star property), so target is alive.
                    merge_into(
                        s,
                        u,
                        v,
                        target,
                        &mut sub_of,
                        &mut parent,
                        &mut members,
                        &mut rep,
                        &mut complete,
                    );
                    messages += members[&target].len() as u64;
                }
            }
        }
        // Completeness by size after the merges.
        let ids_now: Vec<usize> = complete.keys().copied().collect();
        for s in ids_now {
            finalize(s, &members, &mut complete, parts);
        }
        rounds += 2 * current_max_depth(&members, &parent) + 1;
    }

    // Compact ids and build the validated division.
    let live: Vec<usize> = members.keys().copied().collect();
    let remap: BTreeMap<usize, usize> = live.iter().enumerate().map(|(k, &s)| (s, k)).collect();
    let subpart_of: Vec<usize> = sub_of.iter().map(|s| remap[s]).collect();
    let reps: Vec<NodeId> = live.iter().map(|s| rep[s]).collect();
    let division = SubPartDivision::new(g, parts, subpart_of, parent, reps)
        .expect("Algorithm 6 maintains the division invariants");
    DetDivisionResult {
        division,
        cost: CostReport::new(rounds, messages),
        iterations,
    }
}

/// Max depth of any current sub-part tree (for round accounting).
fn current_max_depth(members: &BTreeMap<usize, Vec<NodeId>>, parent: &[Option<NodeId>]) -> usize {
    let mut best = 0;
    for ms in members.values() {
        for &v in ms {
            let mut depth = 0;
            let mut cur = v;
            while let Some(p) = parent[cur] {
                depth += 1;
                cur = p;
            }
            best = best.max(depth);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    #[test]
    fn small_parts_become_single_subparts() {
        let g = gen::grid(4, 4);
        let parts = Partition::new(&g, gen::grid_row_partition(4, 4)).unwrap();
        let res = deterministic_division(&g, &parts, 8);
        // Every row has 4 < 8 nodes; sub-parts complete only by spanning.
        for p in 0..4 {
            assert_eq!(res.division.subpart_count_of_part(p), 1);
        }
    }

    #[test]
    fn large_part_splits_to_about_n_over_d() {
        let g = gen::path(128);
        let parts = Partition::whole(&g).unwrap();
        let d = 16;
        let res = deterministic_division(&g, &parts, d);
        let k = res.division.num_subparts();
        assert!(k >= 128 / (4 * d), "too few sub-parts: {k}");
        assert!(k <= 128 / (d / 2).max(1), "too many sub-parts: {k}");
        // All sub-parts complete: >= d nodes each (or whole part).
        for s in 0..k {
            assert!(res.division.members(s).len() >= d.min(128));
        }
    }

    #[test]
    fn subpart_trees_have_bounded_depth() {
        let g = gen::grid(8, 32);
        let parts = Partition::new(&g, gen::grid_row_partition(8, 32)).unwrap();
        let d = 8;
        let res = deterministic_division(&g, &parts, d);
        assert!(
            res.division.max_depth() <= 6 * d,
            "depth {} exceeds O(d)",
            res.division.max_depth()
        );
    }

    #[test]
    fn iterations_logarithmic() {
        let g = gen::path(256);
        let parts = Partition::whole(&g).unwrap();
        let res = deterministic_division(&g, &parts, 16);
        assert!(
            res.iterations <= 4 * 8 + 8,
            "iterations = {}",
            res.iterations
        );
    }

    #[test]
    fn deterministic_and_repeatable() {
        let g = gen::grid(6, 24);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 24)).unwrap();
        let a = deterministic_division(&g, &parts, 6);
        let b = deterministic_division(&g, &parts, 6);
        assert_eq!(a.division, b.division);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn random_graph_division_is_valid() {
        let g = gen::gnp_connected(90, 0.05, 13);
        let parts = gen::random_connected_partition(&g, 4, 7);
        let res = deterministic_division(&g, &parts, 10);
        for v in 0..g.n() {
            let s = res.division.subpart_of(v);
            assert_eq!(res.division.part_of_subpart(s), parts.part_of(v));
        }
    }

    #[test]
    fn messages_near_linear() {
        let g = gen::path(200);
        let parts = Partition::whole(&g).unwrap();
        let res = deterministic_division(&g, &parts, 20);
        // Õ(n): allow the log n · log* n factors.
        let bound = 200u64 * 8 * 16;
        assert!(
            res.cost.messages <= bound,
            "messages {} > {bound}",
            res.cost.messages
        );
    }
}
