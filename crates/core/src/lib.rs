//! Part-Wise Aggregation (PA) — the paper's primary contribution.
//!
//! PA (Definition 1.1): given a graph `G`, a partition of `V` into
//! connected parts, an `O(log n)`-bit value per node and a commutative
//! associative function `f`, make every node of every part learn the
//! part's aggregate. Theorem 1.2 solves PA in `Õ(bD + c)` rounds
//! (randomized) or `Õ(b(D + c))` rounds (deterministic) with `Õ(m)`
//! messages, where `(b, c)` are the block parameter and congestion of a
//! tree-restricted shortcut.
//!
//! Module map (paper algorithm → module):
//!
//! | Paper | Module |
//! |---|---|
//! | Algorithm 1 (PA given shortcut + division) | [`solve`] |
//! | Algorithm 2 (block-parameter verification) | [`verify_block`] |
//! | Algorithm 3 (randomized sub-part division) | [`subparts_random`] |
//! | Algorithm 5 (deterministic star joining, Cole–Vishkin) | [`star_join`], [`cole_vishkin`] |
//! | Algorithm 6 (deterministic sub-part division) | [`subparts_det`] |
//! | Algorithm 9 (leaderless PA) | [`leaderless`] |
//! | Section 3.1 baselines | [`baseline`] |
//! | End-to-end pipeline (Theorem 1.2) | [`pipeline`] |
//!
//! # Quickstart
//!
//! ```rust
//! use rmo_graph::gen;
//! use rmo_core::{PaInstance, Aggregate, solve_pa, PaConfig};
//!
//! let g = gen::grid(8, 8);
//! let parts = gen::grid_row_partition(8, 8);
//! let values: Vec<u64> = (0..g.n() as u64).collect();
//! let inst = PaInstance::new(&g, parts, values, Aggregate::Min).unwrap();
//! let result = solve_pa(&inst, &PaConfig::default()).unwrap();
//! for v in 0..g.n() {
//!     assert_eq!(result.value_at(v), inst.reference_aggregate_of(v));
//! }
//! ```

pub mod aggregate;
pub mod baseline;
pub mod batch;
pub mod cole_vishkin;
pub mod instance;
pub mod leaderless;
pub mod pipeline;
pub mod solve;
pub mod star_join;
pub mod subparts;
pub mod subparts_det;
pub mod subparts_random;
pub mod verify_block;

pub use aggregate::Aggregate;
pub use batch::{solve_batch, BatchResult};
pub use instance::{PaError, PaInstance};
pub use pipeline::{
    build_pipeline, build_pipeline_with_tree, solve_pa, PaConfig, PaPipeline, ShortcutStrategy,
};
pub use solve::Variant;
pub use solve::{solve_with_parts, PaResult};
pub use subparts::SubPartDivision;
