//! Part-Wise Aggregation (PA) — the paper's primary contribution.
//!
//! PA (Definition 1.1): given a graph `G`, a partition of `V` into
//! connected parts, an `O(log n)`-bit value per node and a commutative
//! associative function `f`, make every node of every part learn the
//! part's aggregate. Theorem 1.2 solves PA in `Õ(bD + c)` rounds
//! (randomized) or `Õ(b(D + c))` rounds (deterministic) with `Õ(m)`
//! messages, where `(b, c)` are the block parameter and congestion of a
//! tree-restricted shortcut.
//!
//! Module map (paper algorithm → module):
//!
//! | Paper | Module |
//! |---|---|
//! | Algorithm 1 (PA given shortcut + division) | [`solve`] |
//! | Algorithm 2 (block-parameter verification) | [`verify_block`] |
//! | Algorithm 3 (randomized sub-part division) | [`subparts_random`] |
//! | Algorithm 5 (deterministic star joining, Cole–Vishkin) | [`star_join`], [`cole_vishkin`] |
//! | Algorithm 6 (deterministic sub-part division) | [`subparts_det`] |
//! | Algorithm 9 (leaderless PA) | [`leaderless`] |
//! | Section 3.1 baselines | [`baseline`] |
//! | End-to-end pipeline (Theorem 1.2) | [`pipeline`] |
//! | Session engine (cached pipelines) | [`engine`] |
//!
//! # Quickstart
//!
//! Construct a [`PaEngine`] once per graph; it runs leader election and
//! BFS exactly once and memoizes the partition-specific pipeline stages
//! (leaders, sub-part division, shortcut) across solves, so repeated
//! aggregations — Borůvka phases, min-cut sketches, verification suites —
//! only pay for the waves themselves:
//!
//! ```rust
//! use rmo_graph::{gen, Partition};
//! use rmo_core::{Aggregate, EngineConfig, PaEngine};
//!
//! let g = gen::grid(8, 8);
//! let parts = Partition::new(&g, gen::grid_row_partition(8, 8)).unwrap();
//! let values: Vec<u64> = (0..g.n() as u64).collect();
//!
//! let mut engine = PaEngine::new(&g, EngineConfig::new());
//! let result = engine.solve(&parts, &values, Aggregate::Min).unwrap();
//! for v in 0..g.n() {
//!     assert_eq!(result.value_at(v), (v / 8 * 8) as u64);
//! }
//! // A second call on the same partition hits the artifact cache:
//! let again = engine.solve(&parts, &values, Aggregate::Min).unwrap();
//! assert!(again.cost.rounds < result.cost.rounds);
//! assert_eq!(engine.stats().hits, 1);
//! ```
//!
//! For one-shot solves, [`solve_pa`] still assembles and tears down the
//! whole pipeline in a single call.

#![forbid(unsafe_code)]

pub mod aggregate;
pub mod baseline;
pub mod batch;
pub mod cole_vishkin;
pub mod engine;
pub mod instance;
pub mod leaderless;
pub mod pipeline;
pub mod solve;
pub mod star_join;
pub mod subparts;
pub mod subparts_det;
pub mod subparts_random;
pub mod verify_block;

pub use aggregate::Aggregate;
pub use batch::{batch_on, BatchResult};
pub use engine::{
    graph_fingerprint, partition_fingerprint, word_fingerprint, DivisionStrategy, EngineConfig,
    EngineCore, EngineStats, PaEngine,
};
pub use instance::{PaError, PaInstance};
pub use pipeline::{
    build_artifacts, build_pipeline, solve_pa, PaConfig, PaPipeline, PipelineArtifacts,
    ShortcutStrategy,
};
pub use solve::{solve_on, solve_with, PaResult, PaSetup, SolveScratch, Variant, WavePlan};
pub use subparts::SubPartDivision;
