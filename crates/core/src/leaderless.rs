//! Algorithm 9: PA without known leaders (Appendix B, Lemma B.1).
//!
//! Start from the singleton partition where every node leads itself;
//! repeat `O(log n)` times: every sub-partition class `P'ᵢ` that has not
//! yet grown to its full part picks an edge leaving it (within its part),
//! a star joining (Algorithm 5) merges a constant fraction of classes,
//! and the PA algorithm `A` — run on the *current* classes, which do know
//! leaders — informs every member of its new leader. After coarsening,
//! every part knows a leader and one final run of `A` solves the original
//! instance. Overhead: `O(log n · log* n)` invocations of `A`.

use std::collections::BTreeMap;

use rmo_congest::CostReport;
use rmo_graph::{num::ceil_log2, NodeId, RootedTree};
use rmo_shortcut::trivial::trivial_shortcut;

use crate::aggregate::Aggregate;
use crate::instance::{PaError, PaInstance};
use crate::solve::{solve_on, PaResult, PaSetup, Variant};
use crate::star_join::star_joining;
use crate::subparts::SubPartDivision;
use rmo_graph::Partition;

/// Result of leaderless PA: the usual [`PaResult`] plus the leaders that
/// were discovered along the way.
#[derive(Debug, Clone)]
pub struct LeaderlessResult {
    /// The PA outcome (total cost includes all coarsening rounds).
    pub result: PaResult,
    /// Discovered leader of each part.
    pub leaders: Vec<NodeId>,
    /// Coarsening iterations used (`O(log n)`).
    pub coarsening_iterations: usize,
}

/// Cost of one invocation of the underlying PA algorithm `A` on the given
/// intermediate classes: a trivial-shortcut, one-sub-part-per-class run.
fn cost_of_a(
    inst: &PaInstance<'_>,
    tree: &RootedTree,
    assignment: &[usize],
    leaders: &[NodeId],
    variant: Variant,
) -> CostReport {
    let g = inst.graph();
    let classes =
        Partition::new(g, assignment.to_vec()).expect("coarsening classes stay connected");
    let dummy = PaInstance::from_partition(g, classes.clone(), vec![0; g.n()], Aggregate::Min)
        .expect("instance stays valid");
    let sc = trivial_shortcut(g, tree, &classes);
    let division = SubPartDivision::one_per_part(g, &classes, leaders);
    solve_on(
        &dummy,
        &PaSetup {
            tree,
            shortcut: &sc,
            division: &division,
            leaders,
            block_budget: 1,
        },
        variant,
    )
    .expect("trivial shortcut has block parameter 1")
    .cost
}

/// Runs Algorithm 9: solves `inst` without assuming known leaders.
///
/// # Errors
/// Propagates [`PaError`] from the final PA run.
///
/// # Panics
/// Panics if coarsening fails to converge within `4⌈log₂ n⌉ + 8`
/// iterations (contradicting Lemma 6.3).
pub fn leaderless_pa(
    inst: &PaInstance<'_>,
    tree: &RootedTree,
    variant: Variant,
) -> Result<LeaderlessResult, PaError> {
    let g = inst.graph();
    let parts = inst.partition();
    let n = g.n();
    // Lines 1-2: singleton classes, every node its own leader.
    let mut class_of: Vec<usize> = (0..n).collect();
    let mut leader_of_class: BTreeMap<usize, NodeId> = (0..n).map(|v| (v, v)).collect();
    let mut cost = CostReport::zero();
    let max_iters = 4 * ceil_log2(n.max(2)) + 8;
    let mut iterations = 0usize;

    loop {
        // Classes still smaller than their parts pick an exit edge.
        let class_ids: Vec<usize> = leader_of_class.keys().copied().collect();
        let index: BTreeMap<usize, usize> =
            class_ids.iter().enumerate().map(|(k, &c)| (c, k)).collect();
        let mut chosen: Vec<Option<(NodeId, NodeId)>> = vec![None; class_ids.len()];
        for v in 0..n {
            let c = class_of[v];
            for (u, _) in g.neighbors(v) {
                if parts.part_of(u) == parts.part_of(v) && class_of[u] != c {
                    let k = index[&c];
                    if chosen[k].is_none_or(|cur| (v, u) < cur) {
                        chosen[k] = Some((v, u));
                    }
                }
            }
        }
        if chosen.iter().all(Option::is_none) {
            break; // every class spans its part
        }
        iterations += 1;
        assert!(iterations <= max_iters, "coarsening failed to converge");

        // Line 5 costs one run of A (selecting the minimum exit edge is a
        // part-wise aggregation over the classes).
        let (dense_assign, class_order) = remap(&class_of);
        let current_leaders: Vec<NodeId> = class_order.iter().map(|c| leader_of_class[c]).collect();
        let a_cost = cost_of_a(inst, tree, &dense_assign, &current_leaders, variant);
        cost += a_cost;

        // Line 6: star joining over classes (O(log* n) runs of A).
        let out_edge: Vec<Option<usize>> = chosen
            .iter()
            .map(|e| e.map(|(_, u)| index[&class_of[u]]))
            .collect();
        let ids: Vec<u64> = class_ids
            .iter()
            .map(|&c| leader_of_class[&c] as u64 + 1)
            .collect();
        let sj = star_joining(&out_edge, &ids);
        cost += a_cost.repeated(sj.steps);

        // Lines 7-9: merge joiners into receivers; members learn the new
        // leader via one more run of A.
        for (k, join) in sj.joins.iter().enumerate() {
            if let Some(rk) = join {
                let from = class_ids[k];
                let into = class_ids[*rk];
                for c in class_of.iter_mut() {
                    if *c == from {
                        *c = into;
                    }
                }
                leader_of_class.remove(&from);
            }
        }
        cost += a_cost;
    }

    // Line 10: every part now has one class; run A on the real instance.
    let leaders: Vec<NodeId> = parts
        .part_ids()
        .map(|p| leader_of_class[&class_of[parts.members(p)[0]]])
        .collect();
    let sc = trivial_shortcut(g, tree, parts);
    let division = SubPartDivision::one_per_part(g, parts, &leaders);
    let mut result = solve_on(
        inst,
        &PaSetup {
            tree,
            shortcut: &sc,
            division: &division,
            leaders: &leaders,
            block_budget: 1,
        },
        variant,
    )?;
    result.cost += cost;
    Ok(LeaderlessResult {
        result,
        leaders,
        coarsening_iterations: iterations,
    })
}

/// Densely remaps arbitrary class ids to `0..k` for `Partition::new`,
/// returning the dense assignment plus, for each dense id, the original
/// class id (so leaders can be looked up consistently).
fn remap(class_of: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let mut map: BTreeMap<usize, usize> = BTreeMap::new();
    let mut order: Vec<usize> = Vec::new();
    let dense = class_of
        .iter()
        .map(|&c| {
            *map.entry(c).or_insert_with(|| {
                order.push(c);
                order.len() - 1
            })
        })
        .collect();
    (dense, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::{bfs_tree, gen};

    #[test]
    fn leaderless_solves_grid_rows() {
        let g = gen::grid(5, 7);
        let parts = Partition::new(&g, gen::grid_row_partition(5, 7)).unwrap();
        let values: Vec<u64> = (0..35).map(|v| 1000 - v as u64).collect();
        let inst = PaInstance::from_partition(&g, parts.clone(), values, Aggregate::Min).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let out = leaderless_pa(&inst, &tree, Variant::Deterministic).unwrap();
        for p in parts.part_ids() {
            assert_eq!(out.result.aggregates[p], inst.reference_aggregate(p));
            let l = out.leaders[p];
            assert_eq!(parts.part_of(l), p, "leader must belong to its part");
        }
    }

    #[test]
    fn coarsening_is_logarithmic() {
        let g = gen::path(128);
        let parts = Partition::whole(&g).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![1; 128], Aggregate::Sum).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let out = leaderless_pa(&inst, &tree, Variant::Deterministic).unwrap();
        assert_eq!(out.result.aggregates[0], 128);
        assert!(
            out.coarsening_iterations <= 4 * 7 + 8,
            "iterations = {}",
            out.coarsening_iterations
        );
    }

    #[test]
    fn cost_exceeds_single_pa_run_by_log_factors_only() {
        let g = gen::grid(6, 6);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 6)).unwrap();
        let inst =
            PaInstance::from_partition(&g, parts.clone(), vec![2; 36], Aggregate::Max).unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let leaders: Vec<NodeId> = parts.part_ids().map(|p| parts.members(p)[0]).collect();
        let sc = trivial_shortcut(&g, &tree, &parts);
        let division = SubPartDivision::one_per_part(&g, &parts, &leaders);
        let single = solve_on(
            &inst,
            &PaSetup {
                tree: &tree,
                shortcut: &sc,
                division: &division,
                leaders: &leaders,
                block_budget: 1,
            },
            Variant::Deterministic,
        )
        .unwrap();
        let out = leaderless_pa(&inst, &tree, Variant::Deterministic).unwrap();
        // Lemma B.1: Õ(R) rounds, Õ(M) messages — allow log n * log* n ~ 30x.
        assert!(out.result.cost.rounds <= 60 * single.cost.rounds.max(1));
        assert!(out.result.cost.messages <= 60 * single.cost.messages.max(1));
    }

    #[test]
    fn singleton_parts_trivial() {
        let g = gen::star(6);
        let parts = Partition::singletons(&g);
        let inst = PaInstance::from_partition(&g, parts.clone(), (0..6).collect(), Aggregate::Sum)
            .unwrap();
        let (tree, _) = bfs_tree(&g, 0);
        let out = leaderless_pa(&inst, &tree, Variant::Deterministic).unwrap();
        for p in parts.part_ids() {
            assert_eq!(out.result.aggregates[p], inst.reference_aggregate(p));
            assert_eq!(out.coarsening_iterations, 0);
        }
    }
}
