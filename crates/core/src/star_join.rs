//! Algorithm 5: deterministic star joining.
//!
//! Given items (parts or sub-parts) that have each chosen an out-edge to
//! another item, designate a constant fraction as **receivers** and the
//! rest pointing at receivers as **joiners**, such that joiners merge into
//! receivers in a star pattern (bounded diameter growth). Steps:
//!
//! 1. Items with in-degree ≥ 2 become receivers; items pointing at them
//!    become joiners; both leave the supergraph. What remains has in- and
//!    out-degree ≤ 1: disjoint directed paths and cycles.
//! 2. 3-color the remainder with Cole–Vishkin
//!    ([`three_color`](crate::cole_vishkin::three_color())).
//! 3. For each color `k = 0, 1, 2` in turn: still-present items of color
//!    `k` become receivers, items pointing at them joiners; remove both.
//!
//! Lemma 6.3: every item ends up a receiver or a joiner, the joiners'
//! edges form stars around receivers, and at most `2/3` of the items
//! survive as receivers, using `O(log* n)` PA calls.

use crate::cole_vishkin::three_color;

/// Outcome of a star joining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarJoining {
    /// `joins[i] = Some(r)` — item `i` is a joiner merging into receiver
    /// `r`; `None` — item `i` is a receiver (or had no out-edge).
    pub joins: Vec<Option<usize>>,
    /// Synchronous steps consumed (each maps to `O(1)` PA calls;
    /// dominated by the Cole–Vishkin `O(log* n)` steps).
    pub steps: usize,
}

impl StarJoining {
    /// Number of items that merged into some receiver.
    pub fn joiner_count(&self) -> usize {
        self.joins.iter().filter(|j| j.is_some()).count()
    }
}

/// Runs Algorithm 5.
///
/// `out_edge[i]` — the item that `i` chose to merge toward (`None` items
/// do not participate and stay unmerged this round); `ids[i]` — distinct
/// identifiers seeding the Cole–Vishkin coloring.
///
/// # Panics
/// Panics if an out-edge is a self-loop or out of range.
pub fn star_joining(out_edge: &[Option<usize>], ids: &[u64]) -> StarJoining {
    let n = out_edge.len();
    assert_eq!(ids.len(), n);
    for (i, &t) in out_edge.iter().enumerate() {
        if let Some(t) = t {
            assert!(t < n, "out-edge target out of range");
            assert_ne!(t, i, "self-loop out-edge");
        }
    }
    let mut joins: Vec<Option<usize>> = vec![None; n];
    // Every item is present; items without an out-edge can still *receive*
    // (Algorithm 6 points incomplete sub-parts at complete ones), they just
    // never join anyone.
    let mut present: Vec<bool> = vec![true; n];
    let mut steps = 1usize;

    // Step 1: in-degree >= 2 -> receiver.
    let mut indeg = vec![0usize; n];
    for &t in out_edge.iter().flatten() {
        indeg[t] += 1;
    }
    let mut receiver: Vec<bool> = vec![false; n];
    for i in 0..n {
        if indeg[i] >= 2 {
            receiver[i] = true;
        }
    }
    for i in 0..n {
        if present[i] && !receiver[i] {
            if let Some(t) = out_edge[i] {
                if receiver[t] {
                    joins[i] = Some(t);
                }
            }
        }
    }
    for i in 0..n {
        if receiver[i] || joins[i].is_some() {
            present[i] = false;
        }
    }

    // Step 2: 3-color the remaining paths/cycles.
    let remaining: Vec<usize> = (0..n).filter(|&i| present[i]).collect();
    if !remaining.is_empty() {
        let index: std::collections::BTreeMap<usize, usize> =
            remaining.iter().enumerate().map(|(k, &i)| (i, k)).collect();
        let succ: Vec<Option<usize>> = remaining
            .iter()
            .map(|&i| out_edge[i].filter(|t| present[*t]).map(|t| index[&t]))
            .collect();
        let initial: Vec<u64> = remaining.iter().map(|&i| ids[i]).collect();
        let coloring = three_color(&succ, &initial);
        steps += coloring.steps;

        // Step 3: sweep colors 0, 1, 2.
        for k in 0..3u8 {
            steps += 1;
            // New receivers: present items of color k.
            for (idx, &i) in remaining.iter().enumerate() {
                if present[i] && coloring.colors[idx] == k {
                    receiver[i] = true;
                }
            }
            // Joiners: present non-receivers pointing at a receiver.
            for &i in &remaining {
                if present[i] && !receiver[i] {
                    if let Some(t) = out_edge[i] {
                        if receiver[t] {
                            joins[i] = Some(t);
                        }
                    }
                }
            }
            for &i in &remaining {
                if receiver[i] || joins[i].is_some() {
                    present[i] = false;
                }
            }
        }
    }
    debug_assert!(
        (0..n).all(|i| !present[i]),
        "every participating item resolved"
    );
    // Star property: a joiner's target is never itself a joiner.
    debug_assert!(
        joins.iter().flatten().all(|&t| joins[t].is_none()),
        "joiner chains would break star diameter"
    );
    StarJoining { joins, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ids(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15) | 1)
            .collect()
    }

    #[test]
    fn star_input_resolves_in_step_one() {
        // items 1..4 all point at 0.
        let out = vec![None, Some(0), Some(0), Some(0)];
        // item 0 must participate to be a receiver? It has no out-edge; it
        // is "not participating" but can still receive.
        let r = star_joining(&out, &ids(4));
        assert_eq!(r.joins[1], Some(0));
        assert_eq!(r.joins[2], Some(0));
        assert_eq!(r.joins[3], Some(0));
        assert_eq!(r.joins[0], None);
    }

    #[test]
    fn two_cycle_merges_one_way() {
        let out = vec![Some(1), Some(0)];
        let r = star_joining(&out, &ids(2));
        let merged = r.joiner_count();
        assert_eq!(merged, 1, "exactly one of the pair joins the other");
    }

    #[test]
    fn chain_merges_constant_fraction() {
        // 0 -> 1 -> 2 -> ... -> 29 -> None's end.
        let n = 30;
        let out: Vec<Option<usize>> = (0..n)
            .map(|i| if i + 1 < n { Some(i + 1) } else { None })
            .collect();
        let r = star_joining(&out, &ids(n));
        // item n-1 doesn't participate; of the rest, at least 1/3 join.
        assert!(
            r.joiner_count() * 3 >= n - 1,
            "only {} of {} merged",
            r.joiner_count(),
            n - 1
        );
    }

    #[test]
    fn no_joiner_chains() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = 40;
            let out: Vec<Option<usize>> = (0..n)
                .map(|i| {
                    let mut t = (rng.random::<u64>() % n as u64) as usize;
                    if t == i {
                        t = (t + 1) % n;
                    }
                    Some(t)
                })
                .collect();
            let r = star_joining(&out, &ids(n));
            for (i, j) in r.joins.iter().enumerate() {
                if let Some(t) = j {
                    assert!(r.joins[*t].is_none(), "joiner {i} -> joiner {t}");
                }
            }
        }
    }

    #[test]
    fn constant_fraction_merges_on_random_functional_graphs() {
        let mut rng = StdRng::seed_from_u64(9);
        for trial in 0..20 {
            let n = 60;
            let out: Vec<Option<usize>> = (0..n)
                .map(|i| {
                    let mut t = (rng.random::<u64>() % n as u64) as usize;
                    if t == i {
                        t = (t + 1) % n;
                    }
                    Some(t)
                })
                .collect();
            let r = star_joining(&out, &ids(n));
            let survivors = n - r.joiner_count();
            assert!(
                survivors * 4 <= 3 * n + 4,
                "trial {trial}: {survivors}/{n} survive — no constant-fraction merge"
            );
        }
    }

    #[test]
    fn none_items_never_join() {
        let out = vec![None, None, Some(1)];
        let r = star_joining(&out, &ids(3));
        assert_eq!(r.joins[0], None, "no out-edge, cannot join");
        assert_eq!(r.joins[1], None, "no out-edge, cannot join");
        // Item 2 either joined item 1 or became a receiver itself,
        // depending on the color order — both are valid star joinings.
        if let Some(t) = r.joins[2] {
            assert_eq!(t, 1);
        }
    }

    #[test]
    fn steps_are_log_star_scale() {
        let n = 500;
        let out: Vec<Option<usize>> = (0..n)
            .map(|i| if i + 1 < n { Some(i + 1) } else { None })
            .collect();
        let r = star_joining(&out, &ids(n));
        assert!(r.steps <= 16, "steps = {}", r.steps);
    }
}
