//! The end-to-end PA pipeline — Theorem 1.2 as one call.
//!
//! [`solve_pa`] assembles everything the theorem needs, charging each
//! stage its measured cost:
//!
//! 1. **Leader election + BFS tree** — flood-max election and distributed
//!    BFS on the real CONGEST simulator (`Õ(D)` rounds, `Õ(m)` messages;
//!    Kutten et al. in the paper).
//! 2. **Part leaders** — a convergecast + broadcast per part over BFS
//!    trees restricted to the parts (`O(D + max |Pᵢ| diameter)` rounds,
//!    `O(n)` messages).
//! 3. **Sub-part division** — Algorithm 3 (randomized) or Algorithm 6
//!    (deterministic).
//! 4. **Shortcut construction** — the trivial `(1, √n)` fallback,
//!    Algorithm 4 (randomized) or Algorithm 8 (deterministic), wrapped in
//!    the paper's doubling trick: budgets `(b, c)` double until the
//!    construction satisfies every part, with one Algorithm 2
//!    verification charged per construction sweep.
//! 5. **Algorithm 1** — the PA solve proper.

use rmo_congest::programs::bfs::run_bfs;
use rmo_congest::programs::leader::run_leader_election;
use rmo_congest::{CostReport, Network};
use rmo_graph::{NodeId, RootedTree};
use rmo_shortcut::alg8::{construct_deterministic, DetParams};
use rmo_shortcut::corefast::{construct_randomized, RandParams};
use rmo_shortcut::trivial::trivial_shortcut;
use rmo_shortcut::Shortcut;

use crate::instance::{PaError, PaInstance};
use crate::solve::{solve_on, PaResult, PaSetup, Variant, WavePlan};
use crate::subparts::SubPartDivision;
use crate::subparts_det::deterministic_division;
use crate::subparts_random::random_division;
use crate::verify_block::verify_block_parameter;

/// How to construct the tree-restricted shortcut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShortcutStrategy {
    /// The universal `b = 1, c ≤ √n` fallback (Section 1.3).
    Trivial,
    /// Algorithm 4 (randomized CoreFast-style), with doubling budgets.
    Randomized,
    /// Algorithm 8 (deterministic, heavy paths), with doubling budgets.
    Deterministic,
}

/// Full configuration of the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PaConfig {
    /// Algorithm 1 variant (deterministic or randomized meta-rounds).
    pub variant: Variant,
    /// Shortcut construction strategy.
    pub shortcut: ShortcutStrategy,
    /// Use Algorithm 6 (deterministic) instead of Algorithm 3 for the
    /// sub-part division.
    pub deterministic_division: bool,
    /// Master seed (network IDs, divisions, delays).
    pub seed: u64,
}

impl Default for PaConfig {
    /// The paper's deterministic headline: Algorithm 8 shortcuts,
    /// Algorithm 6 divisions, deterministic Algorithm 1.
    fn default() -> PaConfig {
        PaConfig {
            variant: Variant::Deterministic,
            shortcut: ShortcutStrategy::Deterministic,
            deterministic_division: true,
            seed: 0,
        }
    }
}

impl PaConfig {
    /// The paper's randomized headline: `Õ(bD + c)` rounds w.h.p.
    pub fn randomized(seed: u64) -> PaConfig {
        PaConfig {
            variant: Variant::Randomized { seed },
            shortcut: ShortcutStrategy::Randomized,
            deterministic_division: false,
            seed,
        }
    }

    /// Trivial-shortcut configuration (the `Õ(D + √n)` worst-case bound).
    pub fn trivial(seed: u64) -> PaConfig {
        PaConfig {
            variant: Variant::Deterministic,
            shortcut: ShortcutStrategy::Trivial,
            deterministic_division: true,
            seed,
        }
    }
}

/// Everything the pipeline produced, for callers that reuse the
/// infrastructure across PA calls (Borůvka runs PA `O(log n)` times on
/// the same tree and division machinery).
#[derive(Debug)]
pub struct PaPipeline {
    /// The BFS tree.
    pub tree: RootedTree,
    /// The partition-specific stages built on that tree.
    pub artifacts: PipelineArtifacts,
    /// Cost of setting all of the above up (election + BFS + stages 2–4).
    pub setup_cost: CostReport,
}

impl PaPipeline {
    /// The borrowed-view setup Algorithm 1 consumes.
    pub fn setup(&self) -> PaSetup<'_> {
        self.artifacts.setup(&self.tree)
    }
}

/// The partition-dependent pipeline stages (2–4): part leaders, sub-part
/// division, shortcut, and the derived block budget. These are what
/// [`crate::engine::PaEngine`] memoizes per partition fingerprint — the
/// BFS tree they were built on lives once in the engine (or in
/// [`PaPipeline`] for one-shot callers) and is only borrowed here.
#[derive(Debug, Clone)]
pub struct PipelineArtifacts {
    /// Discovered part leaders.
    pub leaders: Vec<NodeId>,
    /// The constructed shortcut.
    pub shortcut: Shortcut,
    /// The sub-part division.
    pub division: SubPartDivision,
    /// Terminal-block budget to pass to Algorithm 1.
    pub block_budget: usize,
    /// Precomputed wave routing plan (block structure + congestion
    /// estimate) — lets warm solves skip all per-solve index building.
    pub wave_plan: WavePlan,
    /// Cost of building stages 2–4 (excludes election and BFS).
    pub setup_cost: CostReport,
}

impl PipelineArtifacts {
    /// Pairs the artifacts with the tree they were built on.
    pub fn setup<'a>(&'a self, tree: &'a RootedTree) -> PaSetup<'a> {
        PaSetup {
            tree,
            shortcut: &self.shortcut,
            division: &self.division,
            leaders: &self.leaders,
            block_budget: self.block_budget,
        }
    }
}

/// Builds the pipeline infrastructure for an instance (stages 1–4).
pub fn build_pipeline(inst: &PaInstance<'_>, config: &PaConfig) -> PaPipeline {
    // Stage 1: leader election + BFS tree, on the real simulator.
    let g = inst.graph();
    let net = Network::new(g, config.seed);
    let (root, _, elect_cost) =
        run_leader_election(g, &net).expect("election terminates on a connected graph");
    let (tree, _, bfs_cost) = run_bfs(g, &net, root).expect("BFS terminates");
    let artifacts = build_artifacts(inst, config, &tree);
    let setup_cost = artifacts.setup_cost + elect_cost + bfs_cost;
    PaPipeline {
        tree,
        artifacts,
        setup_cost,
    }
}

/// Builds stages 2–4 of the pipeline on a borrowed BFS tree.
///
/// Borůvka-style applications call PA `O(log n)` times with changing
/// partitions but a fixed network: they pay for election and BFS once and
/// build fresh artifacts per phase — [`crate::engine::PaEngine`] wraps
/// exactly this with a memo keyed by partition fingerprint.
pub fn build_artifacts(
    inst: &PaInstance<'_>,
    config: &PaConfig,
    tree: &RootedTree,
) -> PipelineArtifacts {
    let g = inst.graph();
    let parts = inst.partition();
    let mut setup_cost = CostReport::zero();
    let d = tree.depth().max(1);

    // Stage 2: part leaders — min-id member, found by an in-part
    // convergecast + broadcast (O(part diameter) rounds, O(n) messages).
    let leaders: Vec<NodeId> = parts.part_ids().map(|p| parts.members(p)[0]).collect();
    let max_part = parts
        .part_ids()
        .map(|p| parts.part_size(p))
        .max()
        .unwrap_or(1);
    setup_cost += CostReport::new(2 * max_part.min(g.n()), 2 * g.n() as u64);

    // Stage 3: sub-part division.
    let division = if config.deterministic_division {
        let res = deterministic_division(g, parts, d);
        setup_cost += res.cost;
        res.division
    } else {
        let res = random_division(g, parts, &leaders, d, config.seed ^ 0xd117);
        setup_cost += res.cost;
        res.division
    };
    let terminals: Vec<Vec<NodeId>> = parts.part_ids().map(|p| division.reps_of_part(p)).collect();

    // Stage 4: shortcut construction with doubling budgets.
    let shortcut = match config.shortcut {
        ShortcutStrategy::Trivial => {
            // Computing part sizes distributedly: one in-part aggregation.
            setup_cost += CostReport::new(2 * d, 2 * g.n() as u64);
            trivial_shortcut(g, tree, parts)
        }
        ShortcutStrategy::Randomized => {
            let mut budget = 1usize;
            loop {
                let res = construct_randomized(
                    g,
                    tree,
                    parts,
                    &terminals,
                    RandParams::new(budget, budget, parts.num_parts(), config.seed ^ 0xc0fe),
                );
                setup_cost += res.cost;
                // One Algorithm 2 verification per sweep.
                let verify = verify_block_parameter(
                    inst,
                    &PaSetup {
                        tree,
                        shortcut: &res.shortcut,
                        division: &division,
                        leaders: &leaders,
                        block_budget: (3 * budget).max(1),
                    },
                    config.variant,
                );
                setup_cost += verify_scaled(verify.cost, res.iterations);
                if res.unsatisfied.is_empty() {
                    break res.shortcut;
                }
                budget *= 2;
                if budget > g.n() {
                    break res.shortcut; // give up; Algorithm 1 may still cover via part edges
                }
            }
        }
        ShortcutStrategy::Deterministic => {
            let mut budget = 1usize;
            loop {
                let res = construct_deterministic(
                    g,
                    tree,
                    parts,
                    &terminals,
                    DetParams::new(budget, budget, parts.num_parts()),
                );
                setup_cost += res.cost;
                let verify = verify_block_parameter(
                    inst,
                    &PaSetup {
                        tree,
                        shortcut: &res.shortcut,
                        division: &division,
                        leaders: &leaders,
                        block_budget: (3 * budget).max(1),
                    },
                    config.variant,
                );
                setup_cost += verify_scaled(verify.cost, res.iterations);
                if res.unsatisfied.is_empty() {
                    break res.shortcut;
                }
                budget *= 2;
                if budget > g.n() {
                    break res.shortcut;
                }
            }
        }
    };

    // Terminal-block budget for Algorithm 1.
    let block_budget = parts
        .part_ids()
        .map(|p| {
            if shortcut.is_direct(p) {
                division.subpart_count_of_part(p)
            } else {
                shortcut
                    .blocks_for_terminals(g, tree, p, &terminals[p])
                    .len()
            }
        })
        .max()
        .unwrap_or(1)
        .max(1);

    let wave_plan = WavePlan::build(g, tree, &shortcut, &division, parts);

    PipelineArtifacts {
        leaders,
        shortcut,
        division,
        block_budget,
        wave_plan,
        setup_cost,
    }
}

fn verify_scaled(cost: CostReport, iterations: usize) -> CostReport {
    // Doubling sweeps can request huge iteration counts on adversarial
    // inputs; saturate instead of overflowing the counters in release
    // builds (debug builds would panic on the multiply).
    CostReport::with_capacity(
        cost.rounds.saturating_mul(iterations.max(1)),
        cost.messages.saturating_mul(iterations.max(1) as u64),
        cost.capacity_multiplier,
    )
}

/// Solves a PA instance end to end (Theorem 1.2).
///
/// For repeated solves on one graph, [`crate::engine::PaEngine`] runs
/// election + BFS once and memoizes stages 2–4 per partition; this
/// one-shot entry point rebuilds everything each call.
///
/// # Errors
/// Propagates [`PaError`] from Algorithm 1 (only reachable if the
/// doubling construction gave up, which the budget cap makes effectively
/// impossible on valid instances).
pub fn solve_pa(inst: &PaInstance<'_>, config: &PaConfig) -> Result<PaResult, PaError> {
    let pipe = build_pipeline(inst, config);
    let mut result = solve_on(inst, &pipe.setup(), config.variant)?;
    result.cost += pipe.setup_cost;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Aggregate;
    use rmo_graph::{gen, Partition};

    fn check(inst: &PaInstance<'_>, config: &PaConfig) {
        let res = solve_pa(inst, config).expect("pipeline solves");
        for p in inst.partition().part_ids() {
            assert_eq!(
                res.aggregates[p],
                inst.reference_aggregate(p),
                "part {p} under {config:?}"
            );
        }
    }

    #[test]
    fn all_configs_on_grid_rows() {
        let g = gen::grid(6, 10);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 10)).unwrap();
        let values: Vec<u64> = (0..60).map(|v| (v as u64 * 31) % 97).collect();
        let inst = PaInstance::from_partition(&g, parts, values, Aggregate::Min).unwrap();
        check(&inst, &PaConfig::default());
        check(&inst, &PaConfig::randomized(3));
        check(&inst, &PaConfig::trivial(1));
    }

    #[test]
    fn pipeline_on_random_graph() {
        let g = gen::gnp_connected(70, 0.07, 5);
        let parts = gen::random_connected_partition(&g, 6, 9);
        let values: Vec<u64> = (0..70).map(|v| v as u64).collect();
        let inst = PaInstance::from_partition(&g, parts, values, Aggregate::Sum).unwrap();
        check(&inst, &PaConfig::default());
        check(&inst, &PaConfig::randomized(11));
    }

    #[test]
    fn pipeline_on_long_path() {
        let g = gen::path(100);
        let parts = Partition::new(&g, gen::path_blocks(100, 25)).unwrap();
        let values: Vec<u64> = (0..100).map(|v| v as u64 % 7).collect();
        let inst = PaInstance::from_partition(&g, parts, values, Aggregate::Max).unwrap();
        check(&inst, &PaConfig::default());
    }

    #[test]
    fn setup_cost_is_accounted() {
        let g = gen::grid(5, 5);
        let parts = Partition::new(&g, gen::grid_row_partition(5, 5)).unwrap();
        let inst = PaInstance::from_partition(&g, parts, vec![1; 25], Aggregate::Sum).unwrap();
        let pipe = build_pipeline(&inst, &PaConfig::default());
        assert!(pipe.setup_cost.rounds > 0);
        assert!(pipe.setup_cost.messages > 0);
        let res = solve_pa(&inst, &PaConfig::default()).unwrap();
        assert!(res.cost.messages > pipe.setup_cost.messages);
    }
}
