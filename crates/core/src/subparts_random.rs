//! Algorithm 3: randomized sub-part division.
//!
//! Per part with more than `D` nodes: every node elects itself a
//! representative with probability `min{1, ln n / D}`; representatives
//! claim balls of radius `O(D)` around them by a multi-source BFS
//! restricted to the part; every node's sub-part parent is the neighbor it
//! first heard a representative from. Lemma 5.1: `O(D)` rounds, `O(m)`
//! messages, and w.h.p. `Õ(|Pᵢ|/D)` sub-parts of diameter `O(D)`.
//!
//! Low-probability fallback (the "w.h.p." caveat made executable): if the
//! multi-source BFS exhausts a part while some node remains unclaimed —
//! possible only when no node in its radius-`D` ball self-elected — the
//! smallest-id unclaimed node self-elects and the BFS resumes. This adds
//! rounds only in the failure event the paper tolerates with probability
//! `1/poly(n)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

use rmo_congest::CostReport;
use rmo_graph::{Graph, NodeId, Partition};

use crate::subparts::SubPartDivision;

/// Result of the randomized division.
#[derive(Debug, Clone)]
pub struct RandomDivisionResult {
    /// The division.
    pub division: SubPartDivision,
    /// Measured cost (BFS waves and announcements).
    pub cost: CostReport,
}

/// Runs Algorithm 3.
///
/// `d` is the diameter parameter `D` (ball radius / small-part threshold);
/// `leaders[p]` must name a node of part `p` (small parts become a single
/// sub-part rooted at their leader).
///
/// # Panics
/// Panics if `d == 0` or `leaders` is inconsistent with the partition.
pub fn random_division(
    g: &Graph,
    parts: &Partition,
    leaders: &[NodeId],
    d: usize,
    seed: u64,
) -> RandomDivisionResult {
    assert!(d > 0, "diameter parameter must be positive");
    assert_eq!(leaders.len(), parts.num_parts());
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.n();
    let p_elect = (((n.max(2)) as f64).ln() / d as f64).min(1.0);

    let mut subpart_of = vec![usize::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut reps: Vec<NodeId> = Vec::new();
    let mut rounds = 0usize;
    let mut messages = 0u64;

    for part in parts.part_ids() {
        let members = parts.members(part);
        let leader = leaders[part];
        assert_eq!(parts.part_of(leader), part, "leader outside part");
        if members.len() <= d {
            // Single sub-part: BFS within the part from the leader.
            let s = reps.len();
            reps.push(leader);
            subpart_of[leader] = s;
            let mut q = VecDeque::from([leader]);
            while let Some(u) = q.pop_front() {
                let mut nbrs: Vec<NodeId> = g.neighbors(u).map(|(w, _)| w).collect();
                nbrs.sort_unstable();
                for w in nbrs {
                    if parts.part_of(w) == part && subpart_of[w] == usize::MAX {
                        subpart_of[w] = s;
                        parent[w] = Some(u);
                        messages += 1;
                        q.push_back(w);
                    }
                }
            }
            rounds = rounds.max(members.len().min(d)); // BFS depth <= part size
            continue;
        }
        // Large part: sample representatives, then multi-source BFS.
        let mut frontier: VecDeque<NodeId> = VecDeque::new();
        for &v in members {
            if rng.random::<f64>() < p_elect {
                let s = reps.len();
                reps.push(v);
                subpart_of[v] = s;
                frontier.push_back(v);
                // A representative announces itself to part neighbors.
                messages += g
                    .neighbors(v)
                    .filter(|&(w, _)| parts.part_of(w) == part)
                    .count() as u64;
            }
        }
        let mut part_rounds = 1usize; // the election/announcement round
        loop {
            // BFS waves, one wave = one round; each claimed node re-announces.
            while !frontier.is_empty() {
                part_rounds += 1;
                let mut next = VecDeque::new();
                let wave: Vec<NodeId> = frontier.drain(..).collect();
                for u in wave {
                    let mut nbrs: Vec<NodeId> = g.neighbors(u).map(|(w, _)| w).collect();
                    nbrs.sort_unstable();
                    for w in nbrs {
                        if parts.part_of(w) == part {
                            if subpart_of[w] == usize::MAX {
                                subpart_of[w] = subpart_of[u];
                                parent[w] = Some(u);
                                next.push_back(w);
                            }
                            messages += 1; // the announcement over edge (u, w)
                        }
                    }
                }
                frontier = next;
            }
            // Fallback for the 1/poly(n) failure event: unclaimed nodes.
            match members
                .iter()
                .copied()
                .find(|&v| subpart_of[v] == usize::MAX)
            {
                None => break,
                Some(v) => {
                    let s = reps.len();
                    reps.push(v);
                    subpart_of[v] = s;
                    frontier.push_back(v);
                    part_rounds += 1;
                }
            }
        }
        rounds = rounds.max(part_rounds);
    }
    let division = SubPartDivision::new(g, parts, subpart_of, parent, reps)
        .expect("BFS-grown sub-parts satisfy the division invariants");
    RandomDivisionResult {
        division,
        cost: CostReport::new(rounds, messages),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    fn leaders_min(parts: &Partition) -> Vec<NodeId> {
        parts.part_ids().map(|p| parts.members(p)[0]).collect()
    }

    #[test]
    fn small_parts_single_subpart() {
        let g = gen::grid(4, 4);
        let parts = Partition::new(&g, gen::grid_row_partition(4, 4)).unwrap();
        let leaders = leaders_min(&parts);
        // d larger than any part -> every part is one sub-part.
        let res = random_division(&g, &parts, &leaders, 10, 1);
        assert_eq!(res.division.num_subparts(), 4);
        for p in 0..4 {
            assert_eq!(res.division.reps_of_part(p), vec![leaders[p]]);
        }
    }

    #[test]
    fn large_parts_split_into_enough_subparts() {
        // One part = whole 256-node path; d = 16: expect ~ ln(256)*256/16
        // sub-parts, certainly more than 1 and fewer than n.
        let g = gen::path(256);
        let parts = Partition::whole(&g).unwrap();
        let res = random_division(&g, &parts, &[0], 16, 7);
        let k = res.division.num_subparts();
        assert!(k > 1, "large part must split");
        assert!(k < 256, "not everything becomes a rep");
        // Every node claimed and every sub-part diameter O(d): depth <= part
        // claim radius; with the fallback this is <= part size but w.h.p.
        // O(d log n). Assert the generous structural bound.
        assert!(res.division.max_depth() <= 4 * 16 * 8);
    }

    #[test]
    fn subpart_count_near_expectation() {
        let g = gen::path(512);
        let parts = Partition::whole(&g).unwrap();
        let d = 32;
        let res = random_division(&g, &parts, &[0], d, 3);
        let expected = (512f64 * (512f64).ln() / d as f64).ceil() as usize;
        assert!(
            res.division.num_subparts() <= 4 * expected,
            "{} sub-parts >> expectation {}",
            res.division.num_subparts(),
            expected
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::grid(6, 20);
        let parts = Partition::new(&g, gen::grid_row_partition(6, 20)).unwrap();
        let leaders = leaders_min(&parts);
        let a = random_division(&g, &parts, &leaders, 5, 11);
        let b = random_division(&g, &parts, &leaders, 5, 11);
        assert_eq!(a.division, b.division);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn messages_linear_in_edges() {
        let g = gen::grid(8, 8);
        let parts = Partition::new(&g, gen::grid_row_partition(8, 8)).unwrap();
        let leaders = leaders_min(&parts);
        let res = random_division(&g, &parts, &leaders, 4, 5);
        assert!(
            res.cost.messages <= 4 * g.m() as u64 + g.n() as u64,
            "messages {} not O(m)",
            res.cost.messages
        );
    }

    #[test]
    fn division_valid_on_random_graph() {
        let g = gen::gnp_connected(80, 0.06, 9);
        let parts = gen::random_connected_partition(&g, 5, 4);
        let leaders = leaders_min(&parts);
        let res = random_division(&g, &parts, &leaders, 6, 2);
        // validation happens inside SubPartDivision::new; reaching here is
        // the assertion. Check coverage:
        for v in 0..g.n() {
            let s = res.division.subpart_of(v);
            assert_eq!(res.division.part_of_subpart(s), parts.part_of(v));
        }
    }
}
