//! Cole–Vishkin deterministic 3-coloring of oriented paths and cycles
//! (Lemma 6.2, used by the deterministic star joining, Algorithm 5).
//!
//! Input: a functional graph with out-degree ≤ 1 **and in-degree ≤ 1**
//! (directed paths and cycles — exactly what remains after Algorithm 5's
//! first pruning step) plus distinct initial `u64` colors (leader IDs).
//! Deterministic coin tossing reduces the color space from 64 bits to 6
//! colors in `O(log* n)` synchronized steps, then three "shift-down"
//! rounds reduce 6 to 3.

/// Result of [`three_color`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreeColoring {
    /// Final colors, each in `{0, 1, 2}`.
    pub colors: Vec<u8>,
    /// Number of synchronous communication steps used (the `O(log* n)`
    /// reduction steps plus the three clean-up rounds) — callers convert
    /// this into PA-call cost.
    pub steps: usize,
}

/// Deterministically 3-colors a functional graph of directed paths and
/// cycles.
///
/// `succ[i]` is the successor of item `i` (or `None` at a path end);
/// `initial[i]` are distinct seed colors (IDs).
///
/// # Panics
/// Panics if adjacent items share an initial color, or if some item has
/// in-degree ≥ 2 (not a path/cycle family).
pub fn three_color(succ: &[Option<usize>], initial: &[u64]) -> ThreeColoring {
    let n = succ.len();
    assert_eq!(initial.len(), n);
    // in-degree check + predecessor map.
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for (i, &s) in succ.iter().enumerate() {
        if let Some(t) = s {
            assert!(t < n, "successor out of range");
            assert!(pred[t].is_none(), "item {t} has in-degree >= 2");
            pred[t] = Some(i);
        }
    }
    let mut colors: Vec<u64> = initial.to_vec();
    for (i, &s) in succ.iter().enumerate() {
        if let Some(t) = s {
            assert_ne!(colors[i], colors[t], "adjacent items share initial color");
        }
    }
    let mut steps = 0usize;
    // Deterministic coin tossing until all colors fit in {0..5}.
    while colors.iter().any(|&c| c > 5) {
        steps += 1;
        let next: Vec<u64> = (0..n)
            .map(|i| {
                let own = colors[i];
                // Path ends compare against a virtual successor that
                // differs in bit 0.
                let other = match succ[i] {
                    Some(t) => colors[t],
                    None => own ^ 1,
                };
                let diff = own ^ other;
                debug_assert_ne!(diff, 0, "proper coloring must stay proper");
                let bit = diff.trailing_zeros() as u64;
                2 * bit + ((own >> bit) & 1)
            })
            .collect();
        colors = next;
    }
    // Shift-down: recolor classes 5, 4, 3 to the least free color in {0,1,2}.
    for class in (3..=5).rev() {
        steps += 1;
        let snapshot = colors.clone();
        for i in 0..n {
            if snapshot[i] == class {
                let s = succ[i].map(|t| snapshot[t]);
                let p = pred[i].map(|t| snapshot[t]);
                let free = (0u64..3)
                    .find(|c| Some(*c) != s && Some(*c) != p)
                    .expect("two neighbors block at most two of three colors");
                colors[i] = free;
            }
        }
    }
    // Final proper-coloring sanity.
    for (i, &s) in succ.iter().enumerate() {
        if let Some(t) = s {
            assert_ne!(colors[i], colors[t], "coloring must be proper");
        }
    }
    // The shift-down phase above ends with every color in 0..3, so the
    // u64 → u8 narrowing cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    let colors = colors.into_iter().map(|c| c as u8).collect();
    ThreeColoring { colors, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_proper(succ: &[Option<usize>], colors: &[u8]) {
        for (i, &s) in succ.iter().enumerate() {
            if let Some(t) = s {
                assert_ne!(colors[i], colors[t], "edge ({i},{t}) monochromatic");
            }
            assert!(colors[i] < 3);
        }
    }

    #[test]
    fn colors_a_long_path() {
        let n = 200;
        let succ: Vec<Option<usize>> = (0..n)
            .map(|i| if i + 1 < n { Some(i + 1) } else { None })
            .collect();
        let initial: Vec<u64> = (0..n as u64).map(|i| i * 2654435761 + 17).collect();
        let r = three_color(&succ, &initial);
        check_proper(&succ, &r.colors);
        // log* convergence: a handful of steps even for 200 items.
        assert!(r.steps <= 10, "steps = {}", r.steps);
    }

    #[test]
    fn colors_a_cycle() {
        let n = 37;
        let succ: Vec<Option<usize>> = (0..n).map(|i| Some((i + 1) % n)).collect();
        let initial: Vec<u64> = (0..n as u64)
            .map(|i| (i + 1).wrapping_mul(0x9e3779b97f4a7c15))
            .collect();
        let r = three_color(&succ, &initial);
        check_proper(&succ, &r.colors);
    }

    #[test]
    fn two_cycle() {
        let succ = vec![Some(1), Some(0)];
        let r = three_color(&succ, &[111, 222]);
        check_proper(&succ, &r.colors);
    }

    #[test]
    fn singleton_and_isolated() {
        let succ = vec![None, None];
        let r = three_color(&succ, &[5, 5]); // not adjacent, equal colors fine
        assert!(r.colors.iter().all(|&c| c < 3));
    }

    #[test]
    fn random_path_cycle_mixtures() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            // Build disjoint paths and cycles over 60 items.
            let n = 60;
            let mut succ: Vec<Option<usize>> = vec![None; n];
            let mut items: Vec<usize> = (0..n).collect();
            // Fisher-Yates
            for i in (1..n).rev() {
                let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
                items.swap(i, j);
            }
            let mut idx = 0;
            while idx < n {
                let len = 1 + (rng.random::<u64>() % 7) as usize;
                let seg: Vec<usize> = items[idx..(idx + len).min(n)].to_vec();
                for w in seg.windows(2) {
                    succ[w[0]] = Some(w[1]);
                }
                // Half the segments close into cycles.
                if seg.len() >= 2 && rng.random::<bool>() {
                    succ[*seg.last().unwrap()] = Some(seg[0]);
                }
                idx += len;
            }
            let initial: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x2545F4914F6CDD1D) ^ trial)
                .collect();
            let r = three_color(&succ, &initial);
            check_proper(&succ, &r.colors);
        }
    }

    #[test]
    #[should_panic(expected = "in-degree")]
    fn rejects_indegree_two() {
        let succ = vec![Some(2), Some(2), None];
        let _ = three_color(&succ, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "share initial color")]
    fn rejects_adjacent_equal_colors() {
        let succ = vec![Some(1), None];
        let _ = three_color(&succ, &[9, 9]);
    }
}
