//! The aggregation function `f` of Definition 1.1.
//!
//! `f` takes two `O(log n)`-bit inputs, returns an `O(log n)`-bit output
//! and is commutative and associative. We expose the concrete instances
//! the applications need as an enum — keeping `f` a first-class *datum*
//! (not an arbitrary closure) means the simulator can ship it in message
//! headers and the property tests can enumerate it.

/// A commutative, associative, word-sized aggregation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// Minimum (used by Borůvka's minimum-edge selection, leader election).
    Min,
    /// Maximum.
    Max,
    /// Wrapping sum (counting, sums of values; wraps at 2⁶⁴ — the paper's
    /// values are `O(log n)` bits so wrapping never triggers in practice).
    Sum,
    /// Bitwise XOR (used by cut-verification sketches).
    Xor,
    /// Bitwise OR (set union of flags).
    Or,
}

impl Aggregate {
    /// Applies the function to two values.
    ///
    /// # Example
    /// ```rust
    /// use rmo_core::Aggregate;
    /// assert_eq!(Aggregate::Min.apply(3, 5), 3);
    /// assert_eq!(Aggregate::Sum.apply(3, 5), 8);
    /// assert_eq!(Aggregate::Xor.apply(0b110, 0b011), 0b101);
    /// ```
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            Aggregate::Min => a.min(b),
            Aggregate::Max => a.max(b),
            Aggregate::Sum => a.wrapping_add(b),
            Aggregate::Xor => a ^ b,
            Aggregate::Or => a | b,
        }
    }

    /// The identity element (`f(id, x) = x`).
    pub fn identity(self) -> u64 {
        match self {
            Aggregate::Min => u64::MAX,
            Aggregate::Max => 0,
            Aggregate::Sum => 0,
            Aggregate::Xor => 0,
            Aggregate::Or => 0,
        }
    }

    /// Folds an iterator of values (the centralized reference).
    pub fn fold(self, values: impl IntoIterator<Item = u64>) -> u64 {
        values
            .into_iter()
            .fold(self.identity(), |acc, v| self.apply(acc, v))
    }

    /// All variants, for enumerating tests.
    pub fn all() -> [Aggregate; 5] {
        [
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Sum,
            Aggregate::Xor,
            Aggregate::Or,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        for f in Aggregate::all() {
            for x in [0u64, 1, 42, u64::MAX] {
                assert_eq!(f.apply(f.identity(), x), x, "{f:?}");
                assert_eq!(f.apply(x, f.identity()), x, "{f:?}");
            }
        }
    }

    #[test]
    fn commutative_and_associative_spotcheck() {
        for f in Aggregate::all() {
            for (a, b, c) in [(1u64, 2u64, 3u64), (7, 7, 0), (100, 3, 55)] {
                assert_eq!(f.apply(a, b), f.apply(b, a), "{f:?} not commutative");
                assert_eq!(
                    f.apply(f.apply(a, b), c),
                    f.apply(a, f.apply(b, c)),
                    "{f:?} not associative"
                );
            }
        }
    }

    #[test]
    fn fold_matches_manual() {
        assert_eq!(Aggregate::Sum.fold([1, 2, 3, 4]), 10);
        assert_eq!(Aggregate::Min.fold([5, 2, 9]), 2);
        assert_eq!(Aggregate::Min.fold(std::iter::empty()), u64::MAX);
        assert_eq!(Aggregate::Or.fold([1, 2, 4]), 7);
    }
}
