//! Word-bounded message payloads.
//!
//! CONGEST allows `O(log n)` bits per message. We model this as a small
//! fixed struct: a 16-bit tag and three 64-bit words — comfortably
//! `O(log n)` for any graph that fits in memory, and deliberately **not**
//! growable, so an algorithm cannot cheat by smuggling large state through
//! one "message".

/// A single CONGEST message: tag + three words.
///
/// The `tag` discriminates message kinds within a program; `a`, `b`, `c`
/// carry ids/values. Programs that need fewer words leave the rest 0.
///
/// # Example
/// ```rust
/// use rmo_congest::Payload;
/// let m = Payload::new(3, 42, 7, 0);
/// assert_eq!(m.tag, 3);
/// assert_eq!(m.a, 42);
/// let probe = Payload::tag_only(9);
/// assert_eq!((probe.a, probe.b, probe.c), (0, 0, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Payload {
    /// Message-kind discriminator (program-defined).
    pub tag: u16,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

impl Payload {
    /// A payload with all fields given.
    pub fn new(tag: u16, a: u64, b: u64, c: u64) -> Payload {
        Payload { tag, a, b, c }
    }

    /// A payload carrying only its tag (probe / ack style messages).
    pub fn tag_only(tag: u16) -> Payload {
        Payload {
            tag,
            a: 0,
            b: 0,
            c: 0,
        }
    }

    /// A payload with a tag and one word.
    pub fn one(tag: u16, a: u64) -> Payload {
        Payload { tag, a, b: 0, c: 0 }
    }

    /// A payload with a tag and two words.
    pub fn two(tag: u16, a: u64, b: u64) -> Payload {
        Payload { tag, a, b, c: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Payload::tag_only(1), Payload::new(1, 0, 0, 0));
        assert_eq!(Payload::one(2, 5), Payload::new(2, 5, 0, 0));
        assert_eq!(Payload::two(2, 5, 6), Payload::new(2, 5, 6, 0));
    }

    #[test]
    fn default_is_zero() {
        let p = Payload::default();
        assert_eq!((p.tag, p.a, p.b, p.c), (0, 0, 0, 0));
    }

    #[test]
    fn payload_is_word_bounded() {
        // The CONGEST O(log n)-bit budget: the struct must stay small and fixed.
        assert!(std::mem::size_of::<Payload>() <= 32);
    }
}
