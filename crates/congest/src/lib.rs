//! A synchronous CONGEST-model network simulator.
//!
//! The paper (Section 2.1) works in the classic CONGEST model: a network
//! graph `G = (V, E)`, discrete synchronous rounds, one `O(log n)`-bit
//! message per incident edge per round, and arbitrary unique `O(log n)`-bit
//! node IDs known only to their owner (KT0, after Awerbuch et al.). This
//! crate is that machine, with **exact** round and message accounting:
//!
//! * [`Payload`] — a word-bounded message (`O(log n)` bits by
//!   construction: a tag plus three machine words).
//! * [`Network`] — the simulated topology: per-node ports, KT0 IDs.
//! * [`NodeProgram`] / [`Simulator`] — event-driven per-node state
//!   machines run in lockstep rounds; the simulator enforces the one
//!   message per directed edge per round CONGEST constraint (relaxable by
//!   an explicit, reported multiplier — the paper's own randomized PA uses
//!   an `O(log n)` blow-up of meta-rounds, Section 4.2). The engine is
//!   frontier-driven and allocation-free in steady state (flat
//!   double-buffered message arenas, active-set scheduling); the dense
//!   pre-optimization loop survives as [`mod@reference`], the semantic
//!   oracle the fast engine is differentially tested against.
//! * [`CostReport`] — rounds and messages, composable across phases.
//! * [`programs`] — genuinely distributed building blocks: BFS-tree
//!   construction, tree broadcast/convergecast and flooding leader
//!   election.
//! * [`router`] — a packet-level simulator of pipelined routing on a
//!   rooted tree with subtree families: the engine behind `BlockRoute`
//!   (Lemma 4.2), with the exact priority rule the paper states
//!   (forward the packet whose subtree root is shallowest, ties by
//!   subtree id).
//!
//! # Example: distributed BFS
//!
//! ```rust
//! use rmo_congest::{Network, Simulator};
//! use rmo_congest::programs::bfs::BfsProgram;
//! use rmo_graph::gen;
//!
//! let g = gen::grid(4, 4);
//! let net = Network::new(&g, 7);
//! let mut sim = Simulator::new(&net, |v| BfsProgram::new(v == 0));
//! let report = sim.run_until_quiescent(10_000).unwrap();
//! assert!(report.rounds <= 2 * (3 + 3) + 2); // O(D)
//! let dist: Vec<usize> = (0..16).map(|v| {
//!     sim.program(v).distance().unwrap()
//! }).collect();
//! assert_eq!(dist[15], 6);
//! ```

#![forbid(unsafe_code)]

pub mod metrics;
pub mod network;
pub mod payload;
pub mod programs;
pub mod reference;
pub mod router;
pub mod sim;

pub use metrics::CostReport;
pub use network::{Network, PortId};
pub use payload::Payload;
pub use router::{DowncastJob, TreeRouter, UpcastJob};
pub use sim::{NodeProgram, RoundCtx, RoundStats, SimError, Simulator};

// Thread-safety audit: the simulation layer is plain owned data (no
// `Rc`/`RefCell`, no raw pointers, no thread-locals), so engines built
// on top can move across shard worker threads. Sharded serving layers
// (`rmo_apps::service::PaCluster`) rely on these bounds; assert them at
// compile time so a regression fails here, next to the types, rather
// than deep inside a cluster build error.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Network>();
    assert_send_sync::<Payload>();
    assert_send_sync::<CostReport>();
    assert_send_sync::<RoundStats>();
    assert_send_sync::<SimError>();
    // The simulator itself is Send/Sync whenever the node programs are:
    // it holds `&Network` plus owned per-node state.
    struct InertProgram;
    impl NodeProgram for InertProgram {
        fn on_round(&mut self, _ctx: &mut RoundCtx<'_>) {}
    }
    assert_send_sync::<Simulator<'static, InertProgram>>();
};
