//! The dense reference scheduler — the pre-optimization round loop,
//! kept verbatim as the semantic oracle for [`crate::Simulator`].
//!
//! [`ReferenceSimulator`] reallocates its inboxes every round, builds a
//! fresh outbox and `sent_on_port` vector per node per round, and calls
//! [`NodeProgram::on_round`] on **every** node **every** round — the
//! simplest possible implementation of the Section 2.1 execution model,
//! and therefore the easiest to audit. The optimized simulator must be
//! bit-for-bit equivalent: same responses (program end states), same
//! rounds, same messages, same per-round [`RoundStats`]. The
//! `sim_differential` proptest suite pins that equivalence on random
//! graphs × programs × seeds, and `rmo-harness perf` re-times this
//! engine against the fast one on every run.
//!
//! Keep this module dumb. Performance work goes in `sim`; anything
//! changed here changes the *specification*.

use rmo_graph::NodeId;

use crate::metrics::CostReport;
use crate::network::{Network, PortId};
use crate::payload::Payload;
use crate::sim::{NodeProgram, RoundStats, SimError};

/// The dense reference scheduler (see the [module docs](self)).
///
/// Node programs take the same [`crate::RoundCtx`] here as under the
/// fast engine — the context routes sends into reference-owned per-node
/// buffers instead of the flat staging arena — so a `NodeProgram`
/// implementation is oblivious to which engine runs it.
pub struct ReferenceSimulator<'n, P> {
    net: &'n Network,
    programs: Vec<P>,
    capacity: usize,
    round: usize,
    messages: u64,
    /// Inboxes for the *next* round.
    pending: Vec<Vec<(PortId, Payload)>>,
    /// Per-round trace (always on — this is the oracle).
    history: Vec<RoundStats>,
}

impl<'n, P: NodeProgram> ReferenceSimulator<'n, P> {
    /// Creates a reference simulator with strict CONGEST capacity.
    pub fn new(net: &'n Network, make: impl FnMut(NodeId) -> P) -> ReferenceSimulator<'n, P> {
        ReferenceSimulator::with_capacity(net, 1, make)
    }

    /// Like [`ReferenceSimulator::new`] with an explicit per-edge
    /// capacity.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity(
        net: &'n Network,
        capacity: usize,
        mut make: impl FnMut(NodeId) -> P,
    ) -> ReferenceSimulator<'n, P> {
        assert!(capacity > 0, "capacity must be positive");
        let programs = (0..net.n()).map(&mut make).collect();
        ReferenceSimulator {
            net,
            programs,
            capacity,
            round: 0,
            messages: 0,
            pending: vec![Vec::new(); net.n()],
            history: Vec::new(),
        }
    }

    /// Per-round statistics (one entry per executed round).
    pub fn round_history(&self) -> &[RoundStats] {
        &self.history
    }

    /// The program of node `v`.
    pub fn program(&self, v: NodeId) -> &P {
        &self.programs[v]
    }

    /// Mutable access to node `v`'s program.
    pub fn program_mut(&mut self, v: NodeId) -> &mut P {
        &mut self.programs[v]
    }

    /// Rounds executed so far.
    pub fn rounds_elapsed(&self) -> usize {
        self.round
    }

    /// Messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    /// Whether the network is quiescent: nothing in flight and no node
    /// wanting a round (dense scan — this is the reference).
    pub fn is_quiescent(&self) -> bool {
        self.pending.iter().all(Vec::is_empty) && !self.programs.iter().any(|p| p.wants_round())
    }

    /// Executes a single round with the dense sweep. Returns `true` if
    /// anything happened.
    ///
    /// # Errors
    /// Returns [`SimError::CapacityExceeded`] if a node oversent.
    pub fn step(&mut self) -> Result<bool, SimError> {
        let n = self.net.n();
        let inboxes = std::mem::replace(&mut self.pending, vec![Vec::new(); n]);
        let any_inbox = inboxes.iter().any(|i| !i.is_empty());
        let any_wants = self.programs.iter().any(|p| p.wants_round());
        if !any_inbox && !any_wants {
            // Matches the fast engine: a fully quiescent network
            // consumes no round, round 0 included.
            self.pending = inboxes;
            return Ok(false);
        }
        let mut any_sent = false;
        let mut stats = RoundStats {
            delivered: inboxes.iter().map(|i| i.len() as u64).sum(),
            ..RoundStats::default()
        };
        for (v, inbox) in inboxes.iter().enumerate().take(n) {
            let degree = self.net.degree(v);
            let mut outbox = Vec::new();
            let mut sent_on_port = vec![0usize; degree];
            let violation = crate::sim::RoundCtx::drive_reference(
                &mut self.programs[v],
                v,
                self.net.id_of(v),
                degree,
                self.round,
                inbox,
                &mut outbox,
                &mut sent_on_port,
                self.capacity,
            );
            if let Some(port) = violation {
                return Err(SimError::CapacityExceeded {
                    node: v,
                    port,
                    round: self.round,
                });
            }
            stats.max_edge_load = stats
                .max_edge_load
                .max(sent_on_port.iter().copied().max().unwrap_or(0));
            for (p, msg) in outbox {
                let (_, u, q) = self.net.port_target(v, p);
                self.pending[u].push((q, msg));
                self.messages += 1;
                stats.sent += 1;
                any_sent = true;
            }
        }
        self.history.push(stats);
        self.round += 1;
        Ok(any_inbox || any_wants || any_sent)
    }

    /// Runs rounds until quiescence or until `max_rounds` rounds have
    /// executed (the cap is exact, matching [`crate::Simulator`]).
    ///
    /// # Errors
    /// [`SimError::RoundLimit`] if the cap binds, or a capacity
    /// violation from [`ReferenceSimulator::step`].
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> Result<CostReport, SimError> {
        let start_round = self.round;
        let start_msgs = self.messages;
        loop {
            if self.round - start_round >= max_rounds && !self.is_quiescent() {
                return Err(SimError::RoundLimit { limit: max_rounds });
            }
            let progressed = self.step()?;
            if !progressed {
                break;
            }
        }
        Ok(CostReport::with_capacity(
            self.round - start_round,
            self.messages - start_msgs,
            self.capacity,
        ))
    }
}
