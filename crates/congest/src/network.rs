//! The simulated network topology: ports and KT0 identifiers.
//!
//! Each node addresses its incident edges through local **ports**
//! `0..degree`. In the KT0 model a node initially knows its own unique
//! `O(log n)`-bit ID and its degree — *not* its neighbors' IDs; those must
//! be learned by exchanging messages. [`Network`] wires ports of adjacent
//! nodes together so the simulator can deliver messages, while keeping
//! that knowledge away from the programs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

use rmo_graph::{EdgeId, Graph, NodeId};

/// A node-local port index, `0..degree(v)`.
pub type PortId = usize;

/// The simulated topology plus KT0 identifiers.
///
/// IDs are distinct pseudorandom `u64`s drawn from a seeded RNG, so runs
/// are reproducible and IDs carry no topological information (as KT0
/// demands — node 0 must not be discoverable as "the smallest ID").
#[derive(Debug, Clone)]
pub struct Network {
    n: usize,
    ids: Vec<u64>,
    /// `ports[v][p] = (edge, neighbor, neighbor's port for this edge)`.
    ports: Vec<Vec<(EdgeId, NodeId, PortId)>>,
    /// `edge_ports[e] = ((u, port at u), (v, port at v))`.
    edge_ports: Vec<((NodeId, PortId), (NodeId, PortId))>,
}

impl Network {
    /// Builds the network for `g`, assigning fresh IDs from `seed`.
    pub fn new(g: &Graph, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut used = HashSet::new();
        let ids: Vec<u64> = (0..g.n())
            .map(|_| loop {
                // Non-zero distinct IDs; zero is reserved as "no ID" in programs.
                let id = rng.random::<u64>();
                if id != 0 && used.insert(id) {
                    return id;
                }
            })
            .collect();
        let mut ports: Vec<Vec<(EdgeId, NodeId, PortId)>> = vec![Vec::new(); g.n()];
        let mut edge_ports = Vec::with_capacity(g.m());
        for (e, u, v, _) in g.edges() {
            let pu = ports[u].len();
            let pv = ports[v].len();
            ports[u].push((e, v, pv));
            ports[v].push((e, u, pu));
            edge_ports.push(((u, pu), (v, pv)));
        }
        Network {
            n: g.n(),
            ids,
            ports,
            edge_ports,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edge_ports.len()
    }

    /// KT0 identifier of node `v`.
    pub fn id_of(&self, v: NodeId) -> u64 {
        self.ids[v]
    }

    /// Node with the given ID, if any (test/diagnostic helper — programs
    /// must not use this).
    pub fn node_with_id(&self, id: u64) -> Option<NodeId> {
        self.ids.iter().position(|&x| x == id)
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.ports[v].len()
    }

    /// `(edge, neighbor, neighbor_port)` behind port `p` of node `v`.
    ///
    /// # Panics
    /// Panics if the port does not exist.
    pub fn port_target(&self, v: NodeId, p: PortId) -> (EdgeId, NodeId, PortId) {
        self.ports[v][p]
    }

    /// The port of `v` that leads over edge `e`.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of `e`.
    pub fn port_for_edge(&self, v: NodeId, e: EdgeId) -> PortId {
        let ((a, pa), (b, pb)) = self.edge_ports[e];
        if a == v {
            pa
        } else {
            assert_eq!(b, v, "node {v} is not an endpoint of edge {e}");
            pb
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    #[test]
    fn ports_are_symmetric() {
        let g = gen::grid(3, 3);
        let net = Network::new(&g, 1);
        for v in 0..net.n() {
            for p in 0..net.degree(v) {
                let (e, u, q) = net.port_target(v, p);
                let (e2, v2, p2) = net.port_target(u, q);
                assert_eq!(e, e2);
                assert_eq!(v2, v);
                assert_eq!(p2, p);
            }
        }
    }

    #[test]
    fn ids_distinct_and_nonzero() {
        let g = gen::complete(30);
        let net = Network::new(&g, 2);
        let mut seen = std::collections::HashSet::new();
        for v in 0..30 {
            let id = net.id_of(v);
            assert_ne!(id, 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn ids_deterministic_per_seed() {
        let g = gen::path(10);
        let a = Network::new(&g, 5);
        let b = Network::new(&g, 5);
        let c = Network::new(&g, 6);
        assert_eq!(
            (0..10).map(|v| a.id_of(v)).collect::<Vec<_>>(),
            (0..10).map(|v| b.id_of(v)).collect::<Vec<_>>()
        );
        assert_ne!(
            (0..10).map(|v| a.id_of(v)).collect::<Vec<_>>(),
            (0..10).map(|v| c.id_of(v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn port_for_edge_roundtrips() {
        let g = gen::cycle(5);
        let net = Network::new(&g, 3);
        for (e, u, v, _) in g.edges() {
            let pu = net.port_for_edge(u, e);
            let (e2, tgt, _) = net.port_target(u, pu);
            assert_eq!(e2, e);
            assert_eq!(tgt, v);
        }
    }

    #[test]
    fn node_with_id_finds_nodes() {
        let g = gen::path(4);
        let net = Network::new(&g, 9);
        for v in 0..4 {
            assert_eq!(net.node_with_id(net.id_of(v)), Some(v));
        }
        assert_eq!(net.node_with_id(0), None);
    }
}
