//! The simulated network topology: ports and KT0 identifiers.
//!
//! Each node addresses its incident edges through local **ports**
//! `0..degree`. In the KT0 model a node initially knows its own unique
//! `O(log n)`-bit ID and its degree — *not* its neighbors' IDs; those must
//! be learned by exchanging messages. [`Network`] wires ports of adjacent
//! nodes together so the simulator can deliver messages, while keeping
//! that knowledge away from the programs.
//!
//! The port table is stored in CSR form — one offset per node into a
//! single flat `(edge, neighbor, neighbor_port)` array — so the
//! simulator's hot loop reads each node's ports as one contiguous slice
//! and the whole topology costs two allocations, not `n + 1`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

use rmo_graph::{EdgeId, Graph, NodeId};

/// A node-local port index, `0..degree(v)`.
pub type PortId = usize;

/// The simulated topology plus KT0 identifiers.
///
/// IDs are distinct pseudorandom `u64`s drawn from a seeded RNG, so runs
/// are reproducible and IDs carry no topological information (as KT0
/// demands — node 0 must not be discoverable as "the smallest ID").
#[derive(Debug, Clone)]
pub struct Network {
    n: usize,
    ids: Vec<u64>,
    /// CSR offsets: node `v`'s ports live at
    /// `port_data[port_off[v]..port_off[v + 1]]`.
    port_off: Vec<usize>,
    /// `port_data[port_off[v] + p] = (edge, neighbor, neighbor's port)`.
    port_data: Vec<(EdgeId, NodeId, PortId)>,
    /// `edge_ports[e] = ((u, port at u), (v, port at v))`.
    edge_ports: Vec<((NodeId, PortId), (NodeId, PortId))>,
}

impl Network {
    /// Builds the network for `g`, assigning fresh IDs from `seed`.
    pub fn new(g: &Graph, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut used = BTreeSet::new();
        let ids: Vec<u64> = (0..g.n())
            .map(|_| loop {
                // Non-zero distinct IDs; zero is reserved as "no ID" in programs.
                let id = rng.random::<u64>();
                if id != 0 && used.insert(id) {
                    return id;
                }
            })
            .collect();
        // Two passes: degree counts -> prefix sums -> stable fill in edge
        // order, so port numbering is identical to pushing per-node vecs.
        let mut port_off = vec![0usize; g.n() + 1];
        for (_, u, v, _) in g.edges() {
            port_off[u + 1] += 1;
            port_off[v + 1] += 1;
        }
        for i in 0..g.n() {
            port_off[i + 1] += port_off[i];
        }
        let mut cursor: Vec<usize> = port_off[..g.n()].to_vec();
        let mut port_data = vec![(0, 0, 0); 2 * g.m()];
        let mut edge_ports = Vec::with_capacity(g.m());
        for (e, u, v, _) in g.edges() {
            let pu = cursor[u] - port_off[u];
            let pv = cursor[v] - port_off[v];
            port_data[cursor[u]] = (e, v, pv);
            port_data[cursor[v]] = (e, u, pu);
            cursor[u] += 1;
            cursor[v] += 1;
            edge_ports.push(((u, pu), (v, pv)));
        }
        Network {
            n: g.n(),
            ids,
            port_off,
            port_data,
            edge_ports,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edge_ports.len()
    }

    /// KT0 identifier of node `v`.
    pub fn id_of(&self, v: NodeId) -> u64 {
        self.ids[v]
    }

    /// Node with the given ID, if any (test/diagnostic helper — programs
    /// must not use this).
    pub fn node_with_id(&self, id: u64) -> Option<NodeId> {
        self.ids.iter().position(|&x| x == id)
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.port_off[v + 1] - self.port_off[v]
    }

    /// All of `v`'s ports as one contiguous slice:
    /// `port_targets(v)[p] = (edge, neighbor, neighbor_port)`.
    pub fn port_targets(&self, v: NodeId) -> &[(EdgeId, NodeId, PortId)] {
        &self.port_data[self.port_off[v]..self.port_off[v + 1]]
    }

    /// Start of `v`'s slice in the flat port array (`0..total_ports`);
    /// the simulator's per-port scratch is indexed by `port_base(v) + p`.
    pub fn port_base(&self, v: NodeId) -> usize {
        self.port_off[v]
    }

    /// Total directed port count (`2m`) — the length of the flat port
    /// array that [`Network::port_base`] indexes into.
    pub fn total_ports(&self) -> usize {
        self.port_data.len()
    }

    /// `(edge, neighbor, neighbor_port)` behind port `p` of node `v`.
    ///
    /// # Panics
    /// Panics if the port does not exist.
    pub fn port_target(&self, v: NodeId, p: PortId) -> (EdgeId, NodeId, PortId) {
        self.port_targets(v)[p]
    }

    /// The port of `v` that leads over edge `e`.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of `e`.
    pub fn port_for_edge(&self, v: NodeId, e: EdgeId) -> PortId {
        let ((a, pa), (b, pb)) = self.edge_ports[e];
        if a == v {
            pa
        } else {
            assert_eq!(b, v, "node {v} is not an endpoint of edge {e}");
            pb
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    #[test]
    fn ports_are_symmetric() {
        let g = gen::grid(3, 3);
        let net = Network::new(&g, 1);
        for v in 0..net.n() {
            for p in 0..net.degree(v) {
                let (e, u, q) = net.port_target(v, p);
                let (e2, v2, p2) = net.port_target(u, q);
                assert_eq!(e, e2);
                assert_eq!(v2, v);
                assert_eq!(p2, p);
            }
        }
    }

    #[test]
    fn ids_distinct_and_nonzero() {
        let g = gen::complete(30);
        let net = Network::new(&g, 2);
        let mut seen = std::collections::BTreeSet::new();
        for v in 0..30 {
            let id = net.id_of(v);
            assert_ne!(id, 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn ids_deterministic_per_seed() {
        let g = gen::path(10);
        let a = Network::new(&g, 5);
        let b = Network::new(&g, 5);
        let c = Network::new(&g, 6);
        assert_eq!(
            (0..10).map(|v| a.id_of(v)).collect::<Vec<_>>(),
            (0..10).map(|v| b.id_of(v)).collect::<Vec<_>>()
        );
        assert_ne!(
            (0..10).map(|v| a.id_of(v)).collect::<Vec<_>>(),
            (0..10).map(|v| c.id_of(v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn port_for_edge_roundtrips() {
        let g = gen::cycle(5);
        let net = Network::new(&g, 3);
        for (e, u, v, _) in g.edges() {
            let pu = net.port_for_edge(u, e);
            let (e2, tgt, _) = net.port_target(u, pu);
            assert_eq!(e2, e);
            assert_eq!(tgt, v);
        }
    }

    #[test]
    fn node_with_id_finds_nodes() {
        let g = gen::path(4);
        let net = Network::new(&g, 9);
        for v in 0..4 {
            assert_eq!(net.node_with_id(net.id_of(v)), Some(v));
        }
        assert_eq!(net.node_with_id(0), None);
    }

    #[test]
    fn csr_slices_match_per_port_lookups() {
        let g = gen::random_connected(25, 60, 4);
        let net = Network::new(&g, 4);
        let mut total = 0;
        for v in 0..net.n() {
            let slice = net.port_targets(v);
            assert_eq!(slice.len(), net.degree(v));
            for (p, &entry) in slice.iter().enumerate() {
                assert_eq!(entry, net.port_target(v, p));
            }
            assert_eq!(net.port_base(v), total);
            total += slice.len();
        }
        assert_eq!(total, net.total_ports());
        assert_eq!(net.total_ports(), 2 * g.m());
    }
}
