//! Round/message accounting shared by every algorithm in the workspace.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// The cost of (a phase of) a distributed algorithm.
///
/// Phases compose: sequential composition adds rounds and messages
/// (`a + b`); the harness uses [`CostReport::max_rounds_parallel`] when two
/// phases run concurrently on disjoint edges.
///
/// `capacity_multiplier` records the largest per-edge-per-round message
/// multiplicity any composed phase used (1 = strict CONGEST; the paper's
/// randomized PA explicitly blows meta-rounds up by `O(log n)`,
/// Section 4.2, and we surface that honestly here instead of hiding it).
///
/// # Example
/// ```rust
/// use rmo_congest::CostReport;
/// let a = CostReport::new(10, 100);
/// let b = CostReport::new(5, 40);
/// let total = a + b;
/// assert_eq!(total.rounds, 15);
/// assert_eq!(total.messages, 140);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostReport {
    /// Synchronous rounds consumed.
    pub rounds: usize,
    /// Total messages sent (each message over one edge in one round).
    pub messages: u64,
    /// Max messages any directed edge carried in one round across the
    /// composed phases (1 = strict CONGEST).
    pub capacity_multiplier: usize,
}

impl CostReport {
    /// A report with the given rounds and messages, strict CONGEST capacity.
    pub fn new(rounds: usize, messages: u64) -> CostReport {
        CostReport {
            rounds,
            messages,
            capacity_multiplier: 1,
        }
    }

    /// The zero cost.
    pub fn zero() -> CostReport {
        CostReport {
            rounds: 0,
            messages: 0,
            capacity_multiplier: 1,
        }
    }

    /// A report with an explicit capacity multiplier.
    pub fn with_capacity(rounds: usize, messages: u64, capacity_multiplier: usize) -> CostReport {
        CostReport {
            rounds,
            messages,
            capacity_multiplier,
        }
    }

    /// Parallel composition: phases run simultaneously on disjoint edges —
    /// rounds take the max, messages add.
    pub fn max_rounds_parallel(self, other: CostReport) -> CostReport {
        CostReport {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
            capacity_multiplier: self.capacity_multiplier.max(other.capacity_multiplier),
        }
    }

    /// Cost scaled by running the phase `k` times sequentially.
    pub fn repeated(self, k: usize) -> CostReport {
        CostReport {
            rounds: self.rounds * k,
            messages: self.messages * k as u64,
            capacity_multiplier: self.capacity_multiplier,
        }
    }
}

impl Add for CostReport {
    type Output = CostReport;
    fn add(self, rhs: CostReport) -> CostReport {
        CostReport {
            rounds: self.rounds + rhs.rounds,
            messages: self.messages + rhs.messages,
            capacity_multiplier: self.capacity_multiplier.max(rhs.capacity_multiplier),
        }
    }
}

impl AddAssign for CostReport {
    fn add_assign(&mut self, rhs: CostReport) {
        *self = *self + rhs;
    }
}

impl Sum for CostReport {
    fn sum<I: Iterator<Item = CostReport>>(iter: I) -> CostReport {
        iter.fold(CostReport::zero(), Add::add)
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} messages (cap x{})",
            self.rounds, self.messages, self.capacity_multiplier
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_composes_sequentially() {
        let total = CostReport::new(3, 30) + CostReport::with_capacity(4, 40, 5);
        assert_eq!(total.rounds, 7);
        assert_eq!(total.messages, 70);
        assert_eq!(total.capacity_multiplier, 5);
    }

    #[test]
    fn parallel_takes_max_rounds() {
        let p = CostReport::new(10, 5).max_rounds_parallel(CostReport::new(3, 7));
        assert_eq!(p.rounds, 10);
        assert_eq!(p.messages, 12);
    }

    #[test]
    fn repeated_scales() {
        let r = CostReport::new(2, 9).repeated(4);
        assert_eq!(r.rounds, 8);
        assert_eq!(r.messages, 36);
    }

    #[test]
    fn sum_over_iterator() {
        let total: CostReport = (1..=3).map(|i| CostReport::new(i, i as u64)).sum();
        assert_eq!(total.rounds, 6);
        assert_eq!(total.messages, 6);
    }

    #[test]
    fn display_is_informative() {
        let s = CostReport::new(2, 9).to_string();
        assert!(s.contains("2 rounds"));
        assert!(s.contains("9 messages"));
    }
}
