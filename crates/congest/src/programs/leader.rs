//! Flood-max leader election.
//!
//! Every node starts by announcing its own ID; whenever a node learns a
//! larger ID it re-floods it. After `O(D)` rounds the maximum ID has
//! reached everyone and the network quiesces; the unique node whose own
//! ID equals the maximum is the leader.
//!
//! This is the folklore `O(D)`-round election. Its message cost is
//! `O(m)` *per improvement chain* — `O(m·D)` worst case, `O(m log n)`
//! expected with random IDs. The paper instead cites the
//! `Õ(D)`-round/`Õ(m)`-message election of Kutten et al.; since all
//! bounds in this workspace absorb polylog factors, flood-max with random
//! IDs is within the accounting budget, and we report its exact measured
//! cost rather than an analytical bound.
//!
//! Active-set contract audit: `wants_round` is true only before the
//! node learns its own ID (round 0); afterwards `best ==
//! announced_best` holds whenever the inbox is empty, so the call
//! neither mutates nor sends.

use rmo_graph::{Graph, NodeId};

use crate::network::Network;
use crate::payload::Payload;
use crate::sim::{NodeProgram, RoundCtx, SimError, Simulator};
use crate::CostReport;

const TAG_ID: u16 = 4;

/// Per-node flood-max state.
#[derive(Debug, Clone)]
pub struct LeaderElect {
    best: u64,
    announced_best: u64,
}

impl LeaderElect {
    /// Fresh state; the node learns its own ID in round 0.
    pub fn new() -> LeaderElect {
        LeaderElect {
            best: 0,
            announced_best: 0,
        }
    }

    /// The largest ID this node has seen (the leader's ID after quiescence).
    pub fn leader_id(&self) -> u64 {
        self.best
    }
}

impl Default for LeaderElect {
    fn default() -> Self {
        LeaderElect::new()
    }
}

impl NodeProgram for LeaderElect {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        if self.best == 0 {
            self.best = ctx.id();
        }
        for &(_, msg) in ctx.inbox() {
            if msg.tag == TAG_ID && msg.a > self.best {
                self.best = msg.a;
            }
        }
        if self.best > self.announced_best {
            self.announced_best = self.best;
            ctx.send_all(Payload::one(TAG_ID, self.best));
        }
    }

    fn wants_round(&self) -> bool {
        self.best == 0
    }
}

/// Elects a leader on `net`; returns the leader node, its ID and the cost.
///
/// # Errors
/// Propagates simulator errors.
pub fn run_leader_election(
    g: &Graph,
    net: &Network,
) -> Result<(NodeId, u64, CostReport), SimError> {
    let mut sim = Simulator::new(net, |_| LeaderElect::new());
    let cost = sim.run_until_quiescent(4 * g.n() + 4)?;
    let leader_id = sim.program(0).leader_id();
    let leader = net
        .node_with_id(leader_id)
        .expect("leader ID belongs to some node");
    for v in 0..g.n() {
        assert_eq!(
            sim.program(v).leader_id(),
            leader_id,
            "node {v} disagrees on the leader"
        );
    }
    Ok((leader, leader_id, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    #[test]
    fn everyone_agrees_on_max_id() {
        let g = gen::grid(4, 6);
        let net = Network::new(&g, 13);
        let (leader, id, _) = run_leader_election(&g, &net).unwrap();
        let max_id = (0..g.n()).map(|v| net.id_of(v)).max().unwrap();
        assert_eq!(id, max_id);
        assert_eq!(net.id_of(leader), max_id);
    }

    #[test]
    fn rounds_within_constant_of_diameter() {
        let g = gen::cycle(30);
        let net = Network::new(&g, 5);
        let (_, _, cost) = run_leader_election(&g, &net).unwrap();
        // The max ID travels at one hop per round: <= D + bookkeeping.
        assert!(cost.rounds <= 15 + 4, "rounds = {}", cost.rounds);
    }

    #[test]
    fn two_node_election() {
        let g = gen::path(2);
        let net = Network::new(&g, 77);
        let (leader, id, _) = run_leader_election(&g, &net).unwrap();
        assert_eq!(id, net.id_of(0).max(net.id_of(1)));
        assert!(leader < 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::random_connected(25, 60, 8);
        let a = Network::new(&g, 21);
        let b = Network::new(&g, 21);
        let (la, _, ca) = run_leader_election(&g, &a).unwrap();
        let (lb, _, cb) = run_leader_election(&g, &b).unwrap();
        assert_eq!(la, lb);
        assert_eq!(ca, cb);
    }
}
