//! Pipelined multi-token broadcast: the root injects `k` tokens, every
//! node receives all of them in `O(depth + k)` rounds — the classic
//! CONGEST pipelining pattern that underlies the `O(D + c)` shape of
//! BlockRoute (Lemma 4.2) in its simplest form.
//!
//! Each node forwards tokens down its tree children in FIFO order, one
//! per child edge per round; `k` tokens stream behind each other instead
//! of taking `k·depth` rounds.
//!
//! Active-set contract audit: `wants_round` is true exactly while
//! tokens remain to inject or forward; with an empty inbox and both
//! queues drained, `on_round` pops nothing and sends nothing.

use std::collections::VecDeque;

use rmo_graph::{Graph, NodeId, RootedTree};

use crate::network::{Network, PortId};
use crate::payload::Payload;
use crate::sim::{NodeProgram, RoundCtx, SimError, Simulator};
use crate::CostReport;

const TAG_TOKEN: u16 = 5;

/// Per-node state of the pipelined broadcast.
pub struct PipelineBroadcast {
    /// Tokens to inject (root only), reversed so `pop` yields in order.
    inject: Vec<u64>,
    parent_port: Option<PortId>,
    child_ports: Vec<PortId>,
    /// Tokens received, in arrival order.
    received: Vec<u64>,
    /// Tokens awaiting forwarding.
    queue: VecDeque<u64>,
}

impl PipelineBroadcast {
    /// The root, injecting `tokens` in order.
    pub fn root(mut tokens: Vec<u64>, child_ports: Vec<PortId>) -> PipelineBroadcast {
        tokens.reverse();
        PipelineBroadcast {
            inject: tokens,
            parent_port: None,
            child_ports,
            received: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// A non-root node with its tree ports.
    pub fn node(parent_port: PortId, child_ports: Vec<PortId>) -> PipelineBroadcast {
        PipelineBroadcast {
            inject: Vec::new(),
            parent_port: Some(parent_port),
            child_ports,
            received: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    /// Tokens received so far (in order).
    pub fn received(&self) -> &[u64] {
        &self.received
    }
}

impl NodeProgram for PipelineBroadcast {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        // Receive from the parent.
        for &(p, msg) in ctx.inbox() {
            if msg.tag == TAG_TOKEN && Some(p) == self.parent_port {
                self.received.push(msg.a);
                self.queue.push_back(msg.a);
            }
        }
        // Root injects one fresh token per round (itself pipelined).
        if self.parent_port.is_none() {
            if let Some(t) = self.inject.pop() {
                self.received.push(t);
                self.queue.push_back(t);
            }
        }
        // Forward one queued token to every child edge this round.
        if let Some(t) = self.queue.pop_front() {
            for &c in &self.child_ports {
                ctx.send(c, Payload::one(TAG_TOKEN, t));
            }
        }
    }

    fn wants_round(&self) -> bool {
        !self.inject.is_empty() || !self.queue.is_empty()
    }
}

/// Broadcasts `tokens` from `tree.root()` to every node, pipelined.
/// Returns the per-node received sequences and the exact cost.
///
/// # Errors
/// Propagates simulator errors.
pub fn run_pipeline_broadcast(
    g: &Graph,
    net: &Network,
    tree: &RootedTree,
    tokens: &[u64],
) -> Result<(Vec<Vec<u64>>, CostReport), SimError> {
    let child_ports = |v: NodeId| -> Vec<PortId> {
        tree.children_of(v)
            .iter()
            .map(|&c| net.port_for_edge(v, tree.parent_edge_of(c).expect("child edge")))
            .collect()
    };
    let mut sim = Simulator::new(net, |v: NodeId| {
        if v == tree.root() {
            PipelineBroadcast::root(tokens.to_vec(), child_ports(v))
        } else {
            let pe = tree.parent_edge_of(v).expect("non-root");
            PipelineBroadcast::node(net.port_for_edge(v, pe), child_ports(v))
        }
    });
    let cost = sim.run_until_quiescent(4 * (g.n() + tokens.len()) + 8)?;
    let received = (0..g.n())
        .map(|v| sim.program(v).received().to_vec())
        .collect();
    Ok((received, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::bfs::run_bfs;
    use rmo_graph::gen;

    #[test]
    fn all_tokens_reach_everyone_in_order() {
        let g = gen::grid(5, 5);
        let net = Network::new(&g, 4);
        let (tree, _, _) = run_bfs(&g, &net, 0).unwrap();
        let tokens: Vec<u64> = (100..120).collect();
        let (recv, _) = run_pipeline_broadcast(&g, &net, &tree, &tokens).unwrap();
        for v in 0..g.n() {
            assert_eq!(recv[v], tokens, "node {v} order/content");
        }
    }

    #[test]
    fn rounds_are_depth_plus_k_not_product() {
        let g = gen::path(40);
        let net = Network::new(&g, 1);
        let (tree, _, _) = run_bfs(&g, &net, 0).unwrap();
        let k = 30usize;
        let tokens: Vec<u64> = (0..k as u64).collect();
        let (_, cost) = run_pipeline_broadcast(&g, &net, &tree, &tokens).unwrap();
        let depth = tree.depth();
        assert!(
            cost.rounds <= depth + k + 4,
            "rounds {} should be ~D+k = {}",
            cost.rounds,
            depth + k
        );
        assert!(cost.rounds >= depth.max(k), "cannot beat max(D, k)");
        // One message per token per tree edge.
        assert_eq!(cost.messages, (k * (g.n() - 1)) as u64);
    }

    #[test]
    fn single_token_reduces_to_plain_broadcast() {
        let g = gen::balanced_binary_tree(5);
        let net = Network::new(&g, 2);
        let (tree, _, _) = run_bfs(&g, &net, 0).unwrap();
        let (recv, cost) = run_pipeline_broadcast(&g, &net, &tree, &[7]).unwrap();
        assert!(recv.iter().all(|r| r == &[7]));
        assert_eq!(cost.messages, (g.n() - 1) as u64);
    }

    #[test]
    fn empty_token_list_is_free() {
        let g = gen::path(5);
        let net = Network::new(&g, 0);
        let (tree, _, _) = run_bfs(&g, &net, 0).unwrap();
        let (recv, cost) = run_pipeline_broadcast(&g, &net, &tree, &[]).unwrap();
        assert!(recv.iter().all(Vec::is_empty));
        assert_eq!(cost.messages, 0);
    }
}
