//! Aggregating convergecast up a known rooted tree.
//!
//! Every node holds a value; leaves send theirs up; internal nodes wait
//! until all children have reported, fold the children's aggregates into
//! their own value, and forward the result. The root ends with the
//! aggregate of the whole tree. Cost: `depth` rounds (pipelined bottom-up
//! wave) and exactly one message per tree edge.
//!
//! The fold is a *word-sized commutative associative* operation passed as
//! a plain function pointer, mirroring the paper's `f` (Definition 1.1).
//!
//! Active-set contract audit: a node sends in the same `on_round` that
//! completes its child count (leaves via `wants_round` in round 0), so
//! an empty-inbox call with `wants_round` false means children are
//! still missing — the call is a no-op.

use rmo_graph::{Graph, NodeId, RootedTree};

use crate::network::{Network, PortId};
use crate::payload::Payload;
use crate::sim::{NodeProgram, RoundCtx, SimError, Simulator};
use crate::CostReport;

const TAG_AGG: u16 = 3;

/// Per-node convergecast state.
pub struct TreeConvergecast {
    value: u64,
    fold: fn(u64, u64) -> u64,
    parent_port: Option<PortId>,
    expected_children: usize,
    heard_children: usize,
    sent: bool,
    /// Final aggregate (root only).
    result: Option<u64>,
}

impl TreeConvergecast {
    /// A participant with its value, the fold, its parent port (`None` at
    /// the root) and the number of tree children it waits for.
    pub fn new(
        value: u64,
        fold: fn(u64, u64) -> u64,
        parent_port: Option<PortId>,
        expected_children: usize,
    ) -> TreeConvergecast {
        TreeConvergecast {
            value,
            fold,
            parent_port,
            expected_children,
            heard_children: 0,
            sent: false,
            result: None,
        }
    }

    /// The aggregate of the whole tree (root only, after quiescence).
    pub fn result(&self) -> Option<u64> {
        self.result
    }
}

impl NodeProgram for TreeConvergecast {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        for &(p, msg) in ctx.inbox() {
            if msg.tag == TAG_AGG && Some(p) != self.parent_port {
                self.value = (self.fold)(self.value, msg.a);
                self.heard_children += 1;
            }
        }
        if !self.sent && self.heard_children == self.expected_children {
            self.sent = true;
            match self.parent_port {
                Some(p) => ctx.send(p, Payload::one(TAG_AGG, self.value)),
                None => self.result = Some(self.value),
            }
        }
    }

    fn wants_round(&self) -> bool {
        // Leaves (and any node already satisfied) must fire spontaneously.
        !self.sent && self.heard_children == self.expected_children
    }
}

/// Convergecasts `values` up `tree` with `fold`; returns the root's
/// aggregate and the exact cost.
///
/// # Errors
/// Propagates simulator errors.
pub fn run_tree_convergecast(
    g: &Graph,
    net: &Network,
    tree: &RootedTree,
    values: &[u64],
    fold: fn(u64, u64) -> u64,
) -> Result<(u64, CostReport), SimError> {
    assert_eq!(values.len(), g.n());
    let mut sim = Simulator::new(net, |v: NodeId| {
        let parent_port = tree.parent_edge_of(v).map(|e| net.port_for_edge(v, e));
        TreeConvergecast::new(values[v], fold, parent_port, tree.children_of(v).len())
    });
    let cost = sim.run_until_quiescent(4 * g.n() + 4)?;
    let result = sim
        .program(tree.root())
        .result()
        .expect("root aggregates after quiescence");
    Ok((result, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::bfs::run_bfs;
    use rmo_graph::gen;

    #[test]
    fn sum_over_grid() {
        let g = gen::grid(5, 5);
        let net = Network::new(&g, 2);
        let (tree, _, _) = run_bfs(&g, &net, 0).unwrap();
        let values: Vec<u64> = (0..25).collect();
        let (sum, cost) = run_tree_convergecast(&g, &net, &tree, &values, |a, b| a + b).unwrap();
        assert_eq!(sum, (0..25).sum());
        assert_eq!(cost.messages, 24, "one message per tree edge");
    }

    #[test]
    fn min_over_random_graph() {
        let g = gen::random_connected(40, 100, 6);
        let net = Network::new(&g, 6);
        let (tree, _, _) = run_bfs(&g, &net, 5).unwrap();
        let values: Vec<u64> = (0..40).map(|v| (v * 37 + 11) % 97).collect();
        let (mn, _) = run_tree_convergecast(&g, &net, &tree, &values, u64::min).unwrap();
        assert_eq!(mn, *values.iter().min().unwrap());
    }

    #[test]
    fn rounds_linear_in_depth() {
        let g = gen::path(25);
        let net = Network::new(&g, 0);
        let (tree, _, _) = run_bfs(&g, &net, 0).unwrap();
        let values = vec![1u64; 25];
        let (count, cost) = run_tree_convergecast(&g, &net, &tree, &values, |a, b| a + b).unwrap();
        assert_eq!(count, 25, "counting nodes is a convergecast");
        assert!(cost.rounds <= tree.depth() + 3);
    }

    #[test]
    fn single_node_tree() {
        let g = gen::path(1);
        let net = Network::new(&g, 0);
        let (tree, _, _) = run_bfs(&g, &net, 0).unwrap();
        let (v, cost) = run_tree_convergecast(&g, &net, &tree, &[42], u64::max).unwrap();
        assert_eq!(v, 42);
        assert_eq!(cost.messages, 0);
    }
}
