//! Genuinely distributed building-block protocols, written as
//! [`NodeProgram`](crate::NodeProgram)s.
//!
//! These are the primitives the paper takes from prior work and that the
//! higher layers compose:
//!
//! * [`bfs`] — BFS-tree construction by flooding (`O(D)` rounds, `O(m)`
//!   messages), the tree `T` of every tree-restricted shortcut.
//! * [`broadcast`] / [`convergecast`] — one-shot tree broadcast and
//!   aggregating convergecast (`O(depth)` rounds, `O(n)` messages).
//! * [`pipeline`] — pipelined k-token broadcast (`O(depth + k)` rounds),
//!   the simplest instance of the Lemma 4.2 pipelining shape.
//! * [`leader`] — flood-max leader election (stands in for the
//!   `Õ(D)`-round, `Õ(m)`-message Kutten et al. election the paper cites;
//!   same asymptotics up to the log factors we ignore).

pub mod bfs;
pub mod broadcast;
pub mod convergecast;
pub mod leader;
pub mod pipeline;
