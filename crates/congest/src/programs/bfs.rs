//! Distributed BFS-tree construction by flooding.
//!
//! The root announces distance 0; every node adopts the first announcement
//! it hears (ties broken by lowest arrival port, deterministically), then
//! re-announces with distance +1. `O(D)` rounds, exactly 2 messages per
//! edge (`2m` total): each endpoint of each edge announces once.
//!
//! After quiescence the caller extracts parent ports and assembles a
//! [`RootedTree`] via [`extract_tree`].
//!
//! Active-set contract audit: with an empty inbox and `wants_round()
//! == false` (non-root before any announcement arrives, or any node
//! after announcing), `on_round` neither mutates state nor sends — the
//! root drives rounds only until it has announced.

use rmo_graph::{Graph, NodeId, RootedTree};

use crate::network::{Network, PortId};
use crate::payload::Payload;
use crate::sim::{NodeProgram, RoundCtx, SimError, Simulator};
use crate::CostReport;

const TAG_ANNOUNCE: u16 = 1;

/// Per-node state of the BFS protocol.
#[derive(Debug, Clone)]
pub struct BfsProgram {
    is_root: bool,
    announced: bool,
    distance: Option<usize>,
    parent_port: Option<PortId>,
}

impl BfsProgram {
    /// Creates the program; exactly one node per network must have
    /// `is_root = true`.
    pub fn new(is_root: bool) -> BfsProgram {
        BfsProgram {
            is_root,
            announced: false,
            distance: None,
            parent_port: None,
        }
    }

    /// BFS distance from the root, once the run has quiesced.
    pub fn distance(&self) -> Option<usize> {
        self.distance
    }

    /// Port toward this node's BFS parent (`None` at the root).
    pub fn parent_port(&self) -> Option<PortId> {
        self.parent_port
    }
}

impl NodeProgram for BfsProgram {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        if self.is_root && self.distance.is_none() {
            self.distance = Some(0);
        }
        if self.distance.is_none() {
            // Adopt the first announcement; lowest port wins ties so the
            // tree is deterministic given the network.
            let best = ctx
                .inbox()
                .iter()
                .filter(|(_, m)| m.tag == TAG_ANNOUNCE)
                .min_by_key(|(p, _)| *p)
                .copied();
            if let Some((port, msg)) = best {
                // BFS distances are < n, which always fits a `usize`.
                #[allow(clippy::cast_possible_truncation)]
                let d = msg.a as usize + 1;
                self.distance = Some(d);
                self.parent_port = Some(port);
            }
        }
        if let (Some(d), false) = (self.distance, self.announced) {
            self.announced = true;
            ctx.send_all(Payload::one(TAG_ANNOUNCE, d as u64));
        }
    }

    fn wants_round(&self) -> bool {
        self.is_root && !self.announced
    }
}

/// Runs distributed BFS from `root` on `net` and returns the tree, the
/// distances and the exact cost.
///
/// # Errors
/// Propagates simulator errors (round cap `4n + 4` should never bind on a
/// connected graph).
///
/// # Panics
/// Panics if the underlying graph is disconnected (some node never joins
/// the tree).
pub fn run_bfs(
    g: &Graph,
    net: &Network,
    root: NodeId,
) -> Result<(RootedTree, Vec<usize>, CostReport), SimError> {
    let mut sim = Simulator::new(net, |v| BfsProgram::new(v == root));
    let cost = sim.run_until_quiescent(4 * g.n() + 4)?;
    let (tree, dist) = extract_tree(g, net, root, |v| {
        let p = sim.program(v);
        (p.distance(), p.parent_port())
    });
    Ok((tree, dist, cost))
}

/// Assembles a [`RootedTree`] from per-node `(distance, parent_port)`
/// observations.
///
/// # Panics
/// Panics if some node has no distance (graph disconnected) or the
/// parent pointers do not form a tree.
pub fn extract_tree(
    g: &Graph,
    net: &Network,
    root: NodeId,
    state: impl Fn(NodeId) -> (Option<usize>, Option<PortId>),
) -> (RootedTree, Vec<usize>) {
    let n = g.n();
    let mut parent = vec![usize::MAX; n];
    let mut parent_edge = vec![usize::MAX; n];
    let mut dist = vec![usize::MAX; n];
    for v in 0..n {
        let (d, pp) = state(v);
        dist[v] = d.expect("disconnected graph: node missing BFS distance");
        if v != root {
            let port = pp.expect("non-root node missing parent port");
            let (e, u, _) = net.port_target(v, port);
            parent[v] = u;
            parent_edge[v] = e;
        }
    }
    let tree =
        RootedTree::from_parents(root, parent, parent_edge).expect("BFS parent ports form a tree");
    (tree, dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::{bfs_distances, gen};

    #[test]
    fn distributed_bfs_matches_sequential_distances() {
        let g = gen::grid(5, 7);
        let net = Network::new(&g, 11);
        let (_, dist, _) = run_bfs(&g, &net, 3).unwrap();
        assert_eq!(dist, bfs_distances(&g, 3));
    }

    #[test]
    fn bfs_message_cost_is_2m() {
        let g = gen::random_connected(60, 150, 4);
        let net = Network::new(&g, 4);
        let (_, _, cost) = run_bfs(&g, &net, 0).unwrap();
        assert_eq!(
            cost.messages,
            2 * g.m() as u64,
            "each endpoint announces once"
        );
    }

    #[test]
    fn bfs_round_cost_is_linear_in_depth() {
        let g = gen::path(40);
        let net = Network::new(&g, 1);
        let (tree, _, cost) = run_bfs(&g, &net, 0).unwrap();
        assert_eq!(tree.depth(), 39);
        // announcement wave takes D rounds + constant bookkeeping
        assert!(cost.rounds <= 39 + 3, "rounds = {}", cost.rounds);
    }

    #[test]
    fn bfs_tree_parents_strictly_closer() {
        let g = gen::gnp_connected(50, 0.08, 9);
        let net = Network::new(&g, 9);
        let (tree, dist, _) = run_bfs(&g, &net, 7).unwrap();
        for v in 0..50 {
            if v != 7 {
                assert_eq!(dist[tree.parent_of(v).unwrap()] + 1, dist[v]);
            }
        }
    }

    #[test]
    fn bfs_on_single_edge() {
        let g = gen::path(2);
        let net = Network::new(&g, 0);
        let (tree, dist, _) = run_bfs(&g, &net, 1).unwrap();
        assert_eq!(tree.root(), 1);
        assert_eq!(dist, vec![1, 0]);
        assert_eq!(tree.parent_of(0), Some(1));
    }
}
