//! One-shot broadcast down a known rooted tree.
//!
//! Every node is told (as protocol input) its parent port on the tree —
//! exactly what BFS construction leaves behind. The root injects a value;
//! each node forwards the first copy it receives to all its ports except
//! the parent port. Cost: `depth` rounds, one message per tree edge is
//! the *useful* work, plus one per non-tree edge endpoint (a node cannot
//! locally tell which incident edges are tree edges without the children
//! knowing, so the classic flooding broadcast uses `O(m)`; the
//! [`TreeBroadcast::with_children`] variant restricts to known child
//! ports, the `O(n)`-message regime the paper's tree primitives assume).
//!
//! Active-set contract audit: receive and forward happen in the same
//! `on_round` call, so after it a node is either untouched (no value
//! yet, `wants_round` false unless it is the injecting root) or fully
//! forwarded — an empty-inbox, no-wants call is a no-op.

use rmo_graph::{Graph, NodeId, RootedTree};

use crate::network::{Network, PortId};
use crate::payload::Payload;
use crate::sim::{NodeProgram, RoundCtx, SimError, Simulator};
use crate::CostReport;

const TAG_VALUE: u16 = 2;

/// Per-node broadcast state.
#[derive(Debug, Clone)]
pub struct TreeBroadcast {
    /// The value to inject (root only).
    inject: Option<u64>,
    /// Ports leading to tree children (if known; else broadcast floods all
    /// non-parent ports).
    child_ports: Option<Vec<PortId>>,
    parent_port: Option<PortId>,
    received: Option<u64>,
    forwarded: bool,
}

impl TreeBroadcast {
    /// A non-root participant that knows only its parent port.
    pub fn node(parent_port: PortId) -> TreeBroadcast {
        TreeBroadcast {
            inject: None,
            child_ports: None,
            parent_port: Some(parent_port),
            received: None,
            forwarded: false,
        }
    }

    /// The root, injecting `value`.
    pub fn root(value: u64) -> TreeBroadcast {
        TreeBroadcast {
            inject: Some(value),
            child_ports: None,
            parent_port: None,
            received: None,
            forwarded: false,
        }
    }

    /// Restricts forwarding to the given child ports (message-optimal
    /// variant: exactly one message per tree edge).
    pub fn with_children(mut self, child_ports: Vec<PortId>) -> TreeBroadcast {
        self.child_ports = Some(child_ports);
        self
    }

    /// The value this node has received (or injected), if any.
    pub fn value(&self) -> Option<u64> {
        self.received.or(self.inject)
    }
}

impl NodeProgram for TreeBroadcast {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        if self.received.is_none() {
            if let Some(&(_, msg)) = ctx
                .inbox()
                .iter()
                .find(|(p, m)| m.tag == TAG_VALUE && Some(*p) == self.parent_port)
            {
                self.received = Some(msg.a);
            }
        }
        if let (Some(v), false) = (self.value(), self.forwarded) {
            self.forwarded = true;
            match &self.child_ports {
                Some(ports) => {
                    for &p in ports {
                        ctx.send(p, Payload::one(TAG_VALUE, v));
                    }
                }
                None => {
                    for p in 0..ctx.degree() {
                        if Some(p) != self.parent_port {
                            ctx.send(p, Payload::one(TAG_VALUE, v));
                        }
                    }
                }
            }
        }
    }

    fn wants_round(&self) -> bool {
        self.inject.is_some() && !self.forwarded
    }
}

/// Broadcasts `value` from `tree.root()` to every node, using known child
/// ports (one message per tree edge). Returns the per-node received
/// values and the exact cost.
///
/// # Errors
/// Propagates simulator errors.
pub fn run_tree_broadcast(
    g: &Graph,
    net: &Network,
    tree: &RootedTree,
    value: u64,
) -> Result<(Vec<u64>, CostReport), SimError> {
    let mut sim = Simulator::new(net, |v: NodeId| {
        let children: Vec<PortId> = tree
            .children_of(v)
            .iter()
            .map(|&c| net.port_for_edge(v, tree.parent_edge_of(c).expect("child has parent edge")))
            .collect();
        let prog = if v == tree.root() {
            TreeBroadcast::root(value)
        } else {
            let pe = tree.parent_edge_of(v).expect("non-root has parent edge");
            TreeBroadcast::node(net.port_for_edge(v, pe))
        };
        prog.with_children(children)
    });
    let cost = sim.run_until_quiescent(4 * g.n() + 4)?;
    let values = (0..g.n())
        .map(|v| {
            sim.program(v)
                .value()
                .expect("broadcast reached every node")
        })
        .collect();
    Ok((values, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::bfs::run_bfs;
    use rmo_graph::gen;

    #[test]
    fn broadcast_reaches_all_with_n_minus_1_messages() {
        let g = gen::grid(6, 6);
        let net = Network::new(&g, 3);
        let (tree, _, _) = run_bfs(&g, &net, 0).unwrap();
        let (values, cost) = run_tree_broadcast(&g, &net, &tree, 99).unwrap();
        assert!(values.iter().all(|&v| v == 99));
        assert_eq!(cost.messages, (g.n() - 1) as u64);
    }

    #[test]
    fn broadcast_rounds_linear_in_depth() {
        let g = gen::path(30);
        let net = Network::new(&g, 0);
        let (tree, _, _) = run_bfs(&g, &net, 0).unwrap();
        let (_, cost) = run_tree_broadcast(&g, &net, &tree, 5).unwrap();
        assert!(cost.rounds <= tree.depth() + 3);
    }

    #[test]
    fn broadcast_from_nontrivial_root() {
        let g = gen::balanced_binary_tree(4);
        let net = Network::new(&g, 8);
        let (tree, _, _) = run_bfs(&g, &net, 7).unwrap();
        let (values, _) = run_tree_broadcast(&g, &net, &tree, 1234).unwrap();
        assert!(values.iter().all(|&v| v == 1234));
    }
}
