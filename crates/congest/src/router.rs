//! Packet-level simulation of pipelined routing on a rooted tree —
//! the engine behind `BlockRoute` (Lemma 4.2 of the paper).
//!
//! Setting: a rooted tree `T` of depth `D` and a family of subtrees such
//! that every tree edge belongs to at most `c` subtrees. The paper's
//! deterministic algorithm convergecasts (or broadcasts) on **all**
//! subtrees simultaneously in `O(D + c)` rounds by forwarding, whenever an
//! edge is contended, *the packet whose subtree root is shallowest,
//! breaking ties by the smallest subtree id* (Lemma 4.2). This module
//! simulates that algorithm packet-by-packet and round-by-round, producing
//! exact round and message counts.
//!
//! Two primitives:
//!
//! * [`TreeRouter::upcast`] — convergecast: packets start at source nodes,
//!   climb parent edges toward their subtree's root, and **merge** with
//!   other packets of the same subtree they meet along the way (applying
//!   the aggregation function). This realizes Observation 4.3: the message
//!   cost is `O(|S| · D)` for `|S|` sources.
//! * [`TreeRouter::downcast`] — broadcast: a value per subtree starts at
//!   the subtree root and is forwarded down every tree edge of the
//!   subtree's span toward the given destinations.
//!
//! # Event-driven internals
//!
//! Both primitives run as event-driven edge-queue simulations on
//! recycled arenas owned by a [`RouterScratch`]: every tree edge keeps a
//! priority-ordered queue of the packets waiting to cross it, and a
//! round touches only the *active* edges (those with a nonempty queue)
//! instead of re-sorting and re-copying every in-flight packet. A packet
//! stuck behind a contended edge costs nothing until the edge frees, so
//! per-round work is proportional to the packets that actually move —
//! on deep contended trees that is orders of magnitude less than the
//! total in-flight count. The downcast's forwarding plan dedups
//! root→destination path walks with a generation-stamped per-node table
//! that is never cleared — a stale stamp *is* the empty state. The batch
//! entry points ([`TreeRouter::upcast_batch`]/
//! [`TreeRouter::downcast_batch`]) perform **zero heap allocations**
//! once the scratch has warmed up to the workload size; the
//! `Vec`-of-`Vec` job APIs ([`TreeRouter::upcast`]/
//! [`TreeRouter::downcast`]) are convenience wrappers that build a batch
//! and a fresh scratch per call. Merge order, per-round edge order, and
//! delivery order are bit-identical to the original sort-the-world
//! implementation: queues order packets by `(priority, arrival seq)`,
//! active edges are walked in the old sorted-scan order, and each round
//! snapshots its movers before applying them.

use rmo_graph::{NodeId, RootedTree};

use crate::metrics::CostReport;

/// One upcast request: a subtree id, its designated root, and the sources
/// holding values. Every source must be a descendant of (or equal to) the
/// root, and the source→root paths must stay within the subtree — the
/// caller (shortcut machinery) guarantees this structurally.
#[derive(Debug, Clone)]
pub struct UpcastJob {
    /// Subtree id (used for merging and the tie-breaking rule).
    pub subtree: usize,
    /// The subtree's root: the packet sink.
    pub root: NodeId,
    /// `(source node, initial value)` pairs.
    pub sources: Vec<(NodeId, u64)>,
}

/// One downcast request: value starts at `root` and must reach every node
/// in `destinations` (each a descendant of `root`).
#[derive(Debug, Clone)]
pub struct DowncastJob {
    /// Subtree id.
    pub subtree: usize,
    /// Broadcast origin.
    pub root: NodeId,
    /// Value to deliver.
    pub value: u64,
    /// Nodes that must receive the value.
    pub destinations: Vec<NodeId>,
}

/// Result of an upcast: the aggregate that arrived at each job's root.
#[derive(Debug, Clone)]
pub struct UpcastResult {
    /// `aggregates[i]` — final value delivered at job `i`'s root, or
    /// `None` if the job had no sources.
    pub aggregates: Vec<Option<u64>>,
    /// Exact cost of the routing.
    pub cost: CostReport,
    /// Maximum number of subtrees that used any single tree edge (the
    /// realized congestion — compare against the shortcut's `c`).
    /// Only measured when [`TreeRouter::trace_congestion`] is enabled;
    /// `0` otherwise (default runs don't pay for the ledger).
    pub realized_congestion: usize,
}

/// Result of a downcast.
#[derive(Debug, Clone)]
pub struct DowncastResult {
    /// `received[v]` — `(subtree, value)` pairs delivered to `v`.
    pub received: Vec<Vec<(usize, u64)>>,
    /// Exact cost of the routing.
    pub cost: CostReport,
}

/// A flat, reusable upcast request list: jobs are `(subtree, root)`
/// headers over a CSR source array. Build once with
/// [`UpcastBatch::begin_job`]/[`UpcastBatch::push_source`], reuse across
/// calls with [`UpcastBatch::clear`] — steady-state refills allocate
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct UpcastBatch {
    subtree: Vec<usize>,
    root: Vec<NodeId>,
    src_off: Vec<usize>,
    src: Vec<(NodeId, u64)>,
}

impl UpcastBatch {
    /// An empty batch.
    pub fn new() -> UpcastBatch {
        UpcastBatch::default()
    }

    /// Empties the batch, keeping its capacity.
    pub fn clear(&mut self) {
        self.subtree.clear();
        self.root.clear();
        self.src_off.clear();
        self.src.clear();
    }

    /// Starts a new job; subsequent [`UpcastBatch::push_source`] calls
    /// attach to it.
    pub fn begin_job(&mut self, subtree: usize, root: NodeId) {
        self.subtree.push(subtree);
        self.root.push(root);
        self.src_off.push(self.src.len());
    }

    /// Adds a `(source, value)` pair to the job opened last.
    pub fn push_source(&mut self, node: NodeId, value: u64) {
        debug_assert!(!self.subtree.is_empty(), "push_source before begin_job");
        self.src.push((node, value));
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.subtree.len()
    }

    /// True if no jobs have been added.
    pub fn is_empty(&self) -> bool {
        self.subtree.is_empty()
    }

    /// Job `j`'s sources (empty for out-of-range `j`).
    fn sources(&self, j: usize) -> &[(NodeId, u64)] {
        let lo = self.src_off.get(j).copied().unwrap_or(self.src.len());
        let hi = self.src_off.get(j + 1).copied().unwrap_or(self.src.len());
        self.src.get(lo..hi).unwrap_or(&[])
    }
}

/// A flat, reusable downcast request list: `(subtree, root, value)`
/// headers over a CSR destination array. Mirrors [`UpcastBatch`].
#[derive(Debug, Clone, Default)]
pub struct DowncastBatch {
    subtree: Vec<usize>,
    root: Vec<NodeId>,
    value: Vec<u64>,
    dst_off: Vec<usize>,
    dst: Vec<NodeId>,
}

impl DowncastBatch {
    /// An empty batch.
    pub fn new() -> DowncastBatch {
        DowncastBatch::default()
    }

    /// Empties the batch, keeping its capacity.
    pub fn clear(&mut self) {
        self.subtree.clear();
        self.root.clear();
        self.value.clear();
        self.dst_off.clear();
        self.dst.clear();
    }

    /// Starts a new job; subsequent [`DowncastBatch::push_destination`]
    /// calls attach to it.
    pub fn begin_job(&mut self, subtree: usize, root: NodeId, value: u64) {
        self.subtree.push(subtree);
        self.root.push(root);
        self.value.push(value);
        self.dst_off.push(self.dst.len());
    }

    /// Adds a destination to the job opened last.
    pub fn push_destination(&mut self, node: NodeId) {
        debug_assert!(
            !self.subtree.is_empty(),
            "push_destination before begin_job"
        );
        self.dst.push(node);
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.subtree.len()
    }

    /// True if no jobs have been added.
    pub fn is_empty(&self) -> bool {
        self.subtree.is_empty()
    }

    /// Job `j`'s destinations (empty for out-of-range `j`).
    fn dests(&self, j: usize) -> &[NodeId] {
        let lo = self.dst_off.get(j).copied().unwrap_or(self.dst.len());
        let hi = self.dst_off.get(j + 1).copied().unwrap_or(self.dst.len());
        self.dst.get(lo..hi).unwrap_or(&[])
    }
}

/// One pending upcast group: the merged value of dense subtree `idx`
/// waiting at a node to cross its parent edge, headed for `root`. `prio`
/// is the Lemma 4.2 forwarding priority (root depth, subtree id) — it is
/// unique per subtree, so a node's queue holds at most one group per
/// subtree and priority order is total.
#[derive(Debug, Clone, Copy, Default)]
struct UpGroup {
    prio: (usize, usize),
    idx: usize,
    root: NodeId,
    val: u64,
}

/// One pending downcast send waiting in the queue of the parent→child
/// edge it must cross next: job `job`'s value with its Lemma 4.2
/// priority; `seq` is the global arrival stamp ordering same-priority
/// sends FIFO within one edge queue.
#[derive(Debug, Clone, Copy, Default)]
struct QueuedSend {
    prio: (usize, usize),
    seq: usize,
    job: usize,
    subtree: usize,
    value: u64,
}

/// Job `j`'s pending forwards out of `node`, as a sub-slice of the sorted
/// `(job, node, child)` forwarding plan. Keying by job first keeps each
/// job's whole plan contiguous, so the repeated per-delivery lookups
/// binary-search a small cache-hot slice instead of the global plan.
fn forwards(
    forward: &[(usize, NodeId, NodeId)],
    node: NodeId,
    j: usize,
) -> &[(usize, NodeId, NodeId)] {
    let lo = forward.partition_point(|&(nj, nv, _)| (nj, nv) < (j, node));
    let hi = forward.partition_point(|&(nj, nv, _)| (nj, nv) < (j, node + 1));
    forward.get(lo..hi).unwrap_or(&[])
}

/// Recycled arenas for the router's batch entry points. One scratch
/// serves any number of [`TreeRouter::upcast_batch`] /
/// [`TreeRouter::downcast_batch`] calls (on trees of any size — the one
/// per-node table grows monotonically to the largest `n` seen and is
/// generation-stamped, so reuse never requires clearing it).
///
/// Invariants mirroring the simulator's scratch discipline:
/// * the per-node `recorded` table is **never** reset — an entry is live
///   only if its stamp equals the current generation;
/// * the per-edge queues drain to empty by the time a call returns (the
///   round loops run until no packet is pending), so reuse needs no
///   clearing — only the outer index grows, monotonically, to the
///   largest tree seen;
/// * flat arenas are `clear()`ed (length reset, capacity kept);
/// * results are left in [`RouterScratch::aggregates`] (upcast) and
///   [`RouterScratch::received`] (downcast) for the caller to read
///   without further allocation.
#[derive(Debug, Default)]
pub struct RouterScratch {
    // Dense subtree index (upcast).
    tagged: Vec<(usize, NodeId, usize)>,
    sub_roots: Vec<(usize, NodeId)>,
    job_idx: Vec<usize>,
    arrived: Vec<Option<u64>>,
    /// Per-job upcast aggregates; valid after
    /// [`TreeRouter::upcast_batch`] returns.
    pub aggregates: Vec<Option<u64>>,
    // Upcast edge queues: `up_q[v]` holds the groups waiting to cross
    // `v`'s parent edge, sorted by priority.
    up_q: Vec<Vec<UpGroup>>,
    up_active: Vec<NodeId>,
    up_cand: Vec<NodeId>,
    up_movers: Vec<(NodeId, UpGroup)>,
    // Realized-congestion ledger (filled only under
    // `TreeRouter::trace_congestion`).
    ledger: Vec<(NodeId, usize)>,
    // Per-depth group census (upcast): once no two pending groups share
    // a depth, none can ever meet again and the run finishes in closed
    // form. Maintained incrementally; all-zero between calls.
    depth_count: Vec<u32>,
    // Downcast plan + edge queues: `down_q[c]` holds the sends waiting
    // to cross the (parent(c) -> c) edge, sorted by (priority, seq).
    forward: Vec<(usize, NodeId, NodeId)>,
    dests: Vec<(usize, NodeId)>,
    down_q: Vec<Vec<QueuedSend>>,
    down_active: Vec<NodeId>,
    down_cand: Vec<NodeId>,
    down_deliv: Vec<(NodeId, QueuedSend)>,
    // Downcast fast-forward arenas: DFS stack over a job's plan slice
    // and the analytically scheduled deliveries
    // (round, parent, node, queue position, subtree, value).
    ff_stack: Vec<(NodeId, usize)>,
    down_ff: Vec<(usize, NodeId, NodeId, usize, usize, u64)>,
    // Euler-tour tables (children CSR + entry/exit stamps) giving O(1)
    // subtree tests; built per call, only when the plan outweighs the
    // tree so the O(n) build always pays for itself.
    kids_off: Vec<usize>,
    kids: Vec<NodeId>,
    tin: Vec<usize>,
    tout: Vec<usize>,
    // Generation-stamped (generation, job) per-node table deduping the
    // downcast plan walks.
    recorded: Vec<(u64, usize)>,
    generation: u64,
    /// Chronological downcast deliveries `(node, subtree, value)`; valid
    /// after [`TreeRouter::downcast_batch`] returns. Per-node order is
    /// the delivery order (what the nested `received` vectors of
    /// [`DowncastResult`] materialize).
    pub received: Vec<(NodeId, usize, u64)>,
}

impl RouterScratch {
    /// A fresh scratch; arenas grow on first use and are recycled after.
    pub fn new() -> RouterScratch {
        RouterScratch::default()
    }

    /// Grows the per-node table to cover `n` nodes (allocation happens
    /// only when `n` exceeds every previously seen tree size).
    fn ensure_nodes(&mut self, n: usize) {
        if self.recorded.len() < n {
            self.recorded.resize(n, (0, 0));
        }
        if self.up_q.len() < n {
            self.up_q.resize_with(n, Vec::new);
        }
        if self.down_q.len() < n {
            self.down_q.resize_with(n, Vec::new);
        }
        if self.depth_count.len() < n {
            self.depth_count.resize(n, 0);
        }
    }

    /// Maximum number of distinct subtrees that crossed any single
    /// up-edge in the last [`TreeRouter::upcast_batch`] call. `0` unless
    /// the router had [`TreeRouter::trace_congestion`] enabled.
    pub fn realized_congestion(&mut self) -> usize {
        self.ledger.sort_unstable();
        self.ledger.dedup();
        self.ledger
            .chunk_by(|a, b| a.0 == b.0)
            .map(<[_]>::len)
            .max()
            .unwrap_or(0)
    }
}

/// The tree-routing engine. Holds the rooted tree and the per-edge
/// capacity (1 = strict CONGEST; the randomized PA variant batches
/// `O(log n)` packets per edge per meta-round, Section 4.2).
///
/// # Example
/// ```rust
/// use rmo_congest::{TreeRouter, UpcastJob};
/// use rmo_graph::{gen, bfs_tree};
///
/// let g = gen::path(6);
/// let (tree, _) = bfs_tree(&g, 0);
/// let router = TreeRouter::new(&tree);
/// let jobs = vec![UpcastJob { subtree: 0, root: 0, sources: vec![(5, 7), (3, 4)] }];
/// let res = router.upcast(&jobs, u64::min);
/// assert_eq!(res.aggregates[0], Some(4));
/// assert!(res.cost.rounds <= 5 + 1); // Lemma 4.2: D + c
/// ```
#[derive(Debug)]
pub struct TreeRouter<'t> {
    tree: &'t RootedTree,
    capacity: usize,
    trace: bool,
}

impl<'t> TreeRouter<'t> {
    /// A router with strict CONGEST capacity 1.
    pub fn new(tree: &'t RootedTree) -> TreeRouter<'t> {
        TreeRouter::with_capacity(tree, 1)
    }

    /// A router forwarding up to `capacity` packets per tree edge per
    /// direction per round.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity(tree: &'t RootedTree, capacity: usize) -> TreeRouter<'t> {
        assert!(capacity > 0, "capacity must be positive");
        TreeRouter {
            tree,
            capacity,
            trace: false,
        }
    }

    /// Enables (or disables) the realized-congestion ledger. Off by
    /// default: tracking distinct subtrees per edge costs a ledger push
    /// per forwarded packet plus a sort at read time, which default runs
    /// shouldn't pay for. Mirrors `Simulator::trace_rounds`.
    pub fn trace_congestion(mut self, on: bool) -> TreeRouter<'t> {
        self.trace = on;
        self
    }

    /// Allocation-free descendant check (`v` lies in `root`'s subtree),
    /// used by the debug contract assertions.
    fn is_descendant(&self, v: NodeId, root: NodeId) -> bool {
        let mut cur = v;
        loop {
            if cur == root {
                return true;
            }
            match self.tree.parent_of(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Convergecast on all jobs simultaneously, merging same-subtree
    /// packets with `merge` (which must be commutative and associative).
    ///
    /// Contended edges forward packets in the priority order of Lemma 4.2:
    /// shallowest subtree-root depth first, ties by smaller subtree id.
    ///
    /// Convenience wrapper over [`TreeRouter::upcast_batch`] with a
    /// per-call scratch; hot paths should hold a [`RouterScratch`] and
    /// call the batch API directly.
    ///
    /// # Panics
    /// Panics if two jobs give one subtree conflicting roots.
    pub fn upcast(&self, jobs: &[UpcastJob], merge: impl FnMut(u64, u64) -> u64) -> UpcastResult {
        let mut batch = UpcastBatch::new();
        for job in jobs {
            batch.begin_job(job.subtree, job.root);
            for &(src, val) in &job.sources {
                batch.push_source(src, val);
            }
        }
        let mut scratch = RouterScratch::new();
        let cost = self.upcast_batch(&batch, &mut scratch, merge);
        let aggregates = std::mem::take(&mut scratch.aggregates);
        UpcastResult {
            aggregates,
            cost,
            realized_congestion: scratch.realized_congestion(),
        }
    }

    /// Batch upcast on recycled arenas: per-job aggregates are left in
    /// `scratch.aggregates`. Once `scratch` has warmed up to the workload
    /// size, the call performs no heap allocation.
    ///
    /// # Panics
    /// Panics if two jobs give one subtree conflicting roots.
    pub fn upcast_batch(
        &self,
        batch: &UpcastBatch,
        scratch: &mut RouterScratch,
        mut merge: impl FnMut(u64, u64) -> u64,
    ) -> CostReport {
        scratch.ensure_nodes(self.tree.n());
        let RouterScratch {
            tagged,
            sub_roots,
            job_idx,
            arrived,
            aggregates,
            up_q,
            up_active,
            up_cand,
            up_movers,
            depth_count,
            ledger,
            ..
        } = scratch;
        // Number of depths holding two or more pending groups. Two groups
        // can only ever meet (merge or contend) at a common ancestor, and
        // climbing is lockstep — so they interact iff they sit at the
        // same depth. Once `multi == 0` the rest of the run is a free
        // march and is settled in closed form below.
        let mut multi = 0usize;

        // Dense subtree index: sorted (subtree, root) pairs, one per
        // distinct subtree, plus each job's dense index — built in one
        // sorted walk (the old per-job binary search and its
        // `expect("subtree indexed above")` are gone).
        tagged.clear();
        tagged.extend(
            batch
                .subtree
                .iter()
                .zip(batch.root.iter())
                .enumerate()
                .map(|(j, (&s, &r))| (s, r, j)),
        );
        tagged.sort_unstable();
        sub_roots.clear();
        job_idx.clear();
        job_idx.resize(batch.len(), 0);
        for &(subtree, root, j) in tagged.iter() {
            match sub_roots.last() {
                Some(&(s, r)) if s == subtree => {
                    assert!(r == root, "conflicting roots for one subtree");
                }
                _ => sub_roots.push((subtree, root)),
            }
            if let Some(slot) = job_idx.get_mut(j) {
                *slot = sub_roots.len() - 1;
            }
        }
        arrived.clear();
        arrived.resize(sub_roots.len(), None);
        ledger.clear();

        // Seed the edge queues: one merged group per (node, subtree).
        // Same-node same-subtree sources fold in batch order at
        // insertion (existing accumulator on the left), exactly the
        // order the old flat arena's first-round group fold used.
        up_cand.clear();
        for (j, (&subtree, &root)) in batch.subtree.iter().zip(batch.root.iter()).enumerate() {
            let idx = job_idx.get(j).copied().unwrap_or(0);
            let prio = (self.tree.depth_of(root), subtree);
            for &(src, val) in batch.sources(j) {
                debug_assert!(
                    self.is_descendant(src, root),
                    "source {src} is not a descendant of root {root}"
                );
                if src == root {
                    if let Some(slot) = arrived.get_mut(idx) {
                        *slot = Some(match slot.take() {
                            Some(acc) => merge(acc, val),
                            None => val,
                        });
                    }
                } else {
                    let Some(q) = up_q.get_mut(src) else { continue };
                    // Priorities are unique per subtree (the id
                    // component is), so an equal-priority neighbor is
                    // the same subtree's accumulator.
                    let pos = q.partition_point(|g| g.prio < prio);
                    match q.get_mut(pos) {
                        Some(g) if g.prio == prio => g.val = merge(g.val, val),
                        _ => {
                            q.insert(
                                pos,
                                UpGroup {
                                    prio,
                                    idx,
                                    root,
                                    val,
                                },
                            );
                            if let Some(cnt) = depth_count.get_mut(self.tree.depth_of(src)) {
                                *cnt += 1;
                                if *cnt == 2 {
                                    multi += 1;
                                }
                            }
                        }
                    }
                    up_cand.push(src);
                }
            }
        }
        up_cand.sort_unstable();
        up_cand.dedup();
        std::mem::swap(up_active, up_cand);

        let mut rounds = 0usize;
        let mut messages = 0u64;
        while !up_active.is_empty() {
            if multi == 0 && !self.trace {
                // Free march: every pending group sits at a distinct
                // depth, so no pair can ever share a node again (a
                // common ancestor is reached at distinct rounds) — each
                // group just climbs unimpeded to its root. Settle the
                // remainder in closed form: `d` hops and messages per
                // group, `max d` further rounds, and root arrivals fold
                // chronologically (= ascending `d`; per slot, depths —
                // hence distances — are unique). Tracing still needs the
                // per-hop ledger, so it takes the exact loop instead.
                up_movers.clear();
                let mut max_d = 0usize;
                for &v in up_active.iter() {
                    let Some(q) = up_q.get_mut(v) else { continue };
                    let dv = self.tree.depth_of(v);
                    for g in q.drain(..) {
                        if let Some(cnt) = depth_count.get_mut(dv) {
                            *cnt -= 1;
                        }
                        let d = dv.saturating_sub(self.tree.depth_of(g.root));
                        messages += d as u64;
                        max_d = max_d.max(d);
                        up_movers.push((d, g));
                    }
                }
                rounds += max_d;
                up_movers.sort_unstable_by_key(|&(d, g)| (g.idx, d));
                for &(_, m) in up_movers.iter() {
                    if let Some(slot) = arrived.get_mut(m.idx) {
                        *slot = Some(match slot.take() {
                            Some(acc) => merge(acc, m.val),
                            None => m.val,
                        });
                    }
                }
                up_active.clear();
                break;
            }
            rounds += 1;
            up_movers.clear();
            up_cand.clear();
            // Phase 1 — snapshot: each active node forwards its first
            // `capacity` queued groups (priority order = queue order)
            // across its parent edge. Active nodes are visited in
            // ascending order: combined with the per-queue priority
            // order this reproduces the old full (node, prio, seq)
            // index-sort scan, without touching the stuck packets.
            for &v in up_active.iter() {
                let Some(q) = up_q.get_mut(v) else { continue };
                let take = self.capacity.min(q.len());
                up_movers.extend(q.drain(..take).map(|g| (v, g)));
                if !q.is_empty() {
                    up_cand.push(v);
                }
            }
            // Phase 2 — apply: movers were popped above, *before* any
            // delivery lands — a group arriving at `p` this round can
            // never fold into a value `p` is itself forwarding (the
            // `chain_merge_keeps_every_contribution` regression).
            for &(v, m) in up_movers.iter() {
                if let Some(cnt) = depth_count.get_mut(self.tree.depth_of(v)) {
                    *cnt -= 1;
                    if *cnt == 1 {
                        multi -= 1;
                    }
                }
                let Some(p) = self.tree.parent_of(v) else {
                    // Unreachable for contract-respecting jobs (groups
                    // only ever sit strictly below their subtree root,
                    // which the debug assertion above pins); drop the
                    // group rather than panic on a broken caller.
                    continue;
                };
                messages += 1;
                if self.trace {
                    ledger.push((v, m.idx));
                }
                if p == m.root {
                    if let Some(slot) = arrived.get_mut(m.idx) {
                        *slot = Some(match slot.take() {
                            Some(acc) => merge(acc, m.val),
                            None => m.val,
                        });
                    }
                } else {
                    let Some(q) = up_q.get_mut(p) else { continue };
                    // Merge-at-insertion with the resident accumulator
                    // on the left ≡ the old fold over seq order: a kept
                    // group always predates (has a smaller stamp than)
                    // a same-round arrival.
                    let pos = q.partition_point(|g| g.prio < m.prio);
                    match q.get_mut(pos) {
                        Some(g) if g.prio == m.prio => g.val = merge(g.val, m.val),
                        _ => {
                            q.insert(pos, m);
                            if let Some(cnt) = depth_count.get_mut(self.tree.depth_of(p)) {
                                *cnt += 1;
                                if *cnt == 2 {
                                    multi += 1;
                                }
                            }
                        }
                    }
                    up_cand.push(p);
                }
            }
            up_cand.sort_unstable();
            up_cand.dedup();
            std::mem::swap(up_active, up_cand);
        }
        aggregates.clear();
        aggregates.extend(job_idx.iter().map(|&i| arrived.get(i).copied().flatten()));
        CostReport::with_capacity(rounds, messages, self.capacity)
    }

    /// Broadcast on all jobs simultaneously: each job's value flows from
    /// its root down the tree to its destinations, using only the tree
    /// edges on root→destination paths. Contended edges forward by the
    /// same priority rule as [`TreeRouter::upcast`].
    ///
    /// Convenience wrapper over [`TreeRouter::downcast_batch`] with a
    /// per-call scratch, materializing the per-node `received` lists.
    pub fn downcast(&self, jobs: &[DowncastJob]) -> DowncastResult {
        let mut batch = DowncastBatch::new();
        for job in jobs {
            batch.begin_job(job.subtree, job.root, job.value);
            for &d in &job.destinations {
                batch.push_destination(d);
            }
        }
        let mut scratch = RouterScratch::new();
        let cost = self.downcast_batch(&batch, &mut scratch);
        let mut received: Vec<Vec<(usize, u64)>> = vec![Vec::new(); self.tree.n()];
        for &(v, subtree, val) in &scratch.received {
            if let Some(list) = received.get_mut(v) {
                list.push((subtree, val));
            }
        }
        DowncastResult { received, cost }
    }

    /// Batch downcast on recycled arenas: chronological deliveries are
    /// left in `scratch.received`. Once `scratch` has warmed up to this
    /// tree's size, the call performs no heap allocation.
    pub fn downcast_batch(&self, batch: &DowncastBatch, scratch: &mut RouterScratch) -> CostReport {
        scratch.ensure_nodes(self.tree.n());
        let RouterScratch {
            forward,
            dests,
            down_q,
            down_active,
            down_cand,
            down_deliv,
            ff_stack,
            down_ff,
            kids_off,
            kids,
            tin,
            tout,
            recorded,
            generation,
            received,
            ..
        } = scratch;
        // Number of edge queues holding more than `capacity` sends. Once
        // zero, every queue crosses its edge whole in one round: the
        // platoon stays synchronized forever (same-depth edges head into
        // disjoint subtrees; different-depth edges are never reached in
        // the same round), so the remainder runs in closed form below.
        let mut over = 0usize;

        // Forwarding plan: sorted (job, node, child) triples — `node`
        // must push job `job`'s value down the (node -> child) edge.
        // Built from the union of destination -> root paths; the
        // generation-stamped per-node table cuts each walk short as soon
        // as it joins a path already recorded for the same job (stale
        // stamps are the empty state — nothing is cleared). Entries are
        // pushed job-major, so the sort sees nearly sorted runs.
        *generation += 1;
        forward.clear();
        dests.clear();
        for (j, &root) in batch.root.iter().enumerate() {
            for &d in batch.dests(j) {
                debug_assert!(
                    self.is_descendant(d, root),
                    "destination {d} is not a descendant of root {root}"
                );
                dests.push((j, d));
                let mut cur = d;
                while cur != root {
                    match recorded.get_mut(cur) {
                        Some(stamp) if *stamp == (*generation, j) => break,
                        Some(stamp) => *stamp = (*generation, j),
                        None => {}
                    }
                    let Some(p) = self.tree.parent_of(cur) else {
                        // Unreachable for contract-respecting jobs (the
                        // debug assertion above pins descendant-ness);
                        // truncate the plan rather than panic.
                        break;
                    };
                    forward.push((j, p, cur));
                    cur = p;
                }
            }
        }
        forward.sort_unstable();
        // Sorted (job, destination) pairs for O(log) membership checks
        // at delivery time (the old code scanned `destinations` per
        // delivery). Duplicate destinations collapse, matching the old
        // `contains`-guarded single push.
        dests.sort_unstable();
        dests.dedup();

        received.clear();
        // Seed the edge queues (`down_q[c]` = the parent(c) -> c edge)
        // in job order with a globally monotone arrival stamp: within
        // one queue, (prio, seq) order reproduces the old flat arena's
        // (node, child, prio, seq) sort restricted to that edge, and a
        // fresh arrival always stamps above every kept send — exactly
        // the old compact-then-append re-stamping.
        down_cand.clear();
        let mut seq = 0usize;
        for (j, ((&subtree, &root), &value)) in batch
            .subtree
            .iter()
            .zip(batch.root.iter())
            .zip(batch.value.iter())
            .enumerate()
        {
            if dests.binary_search(&(j, root)).is_ok() {
                received.push((root, subtree, value));
            }
            let prio = (self.tree.depth_of(root), subtree);
            for &(_, _, c) in forwards(forward, root, j) {
                let Some(q) = down_q.get_mut(c) else { continue };
                let pos = q.partition_point(|s| (s.prio, s.seq) < (prio, seq));
                q.insert(
                    pos,
                    QueuedSend {
                        prio,
                        seq,
                        job: j,
                        subtree,
                        value,
                    },
                );
                if q.len() == self.capacity + 1 {
                    over += 1;
                }
                seq += 1;
                down_cand.push(c);
            }
        }
        // Active edges are visited in the old sorted-scan order:
        // (parent, child) ascending. The root has no up-edge, so its
        // queue is never seeded and the placeholder parent is inert.
        down_cand.sort_unstable_by_key(|&c| (self.tree.parent_of(c).unwrap_or(0), c));
        down_cand.dedup();
        std::mem::swap(down_active, down_cand);

        let mut rounds = 0usize;
        let mut messages = 0u64;
        while !down_active.is_empty() {
            if over == 0 {
                // Free march: every queue fits its edge, so each platoon
                // crosses one edge per round as a unit and fans through
                // its plan subtree unimpeded — no queue can ever refill
                // past capacity (a node's deliveries fan out to at most
                // platoon-many copies per child edge). Settle the
                // remainder in closed form: one message per remaining
                // plan edge per covering send, deliveries at round
                // `r + 1 + dist`, replayed into `received` in the exact
                // loop order (round, then edge scan order, then
                // within-queue order).
                down_ff.clear();
                let mut last = rounds;
                // For big plans, pay O(n) once for Euler stamps and
                // sweep each job's contiguous plan slice with O(1)
                // subtree tests; for plans smaller than the tree, DFS
                // each send's subtree instead (same output, no O(n)).
                let n = self.tree.n();
                let use_euler = forward.len() >= n;
                if use_euler {
                    // Children CSR: counts, prefix, then a cursor fill
                    // (`tout` doubles as the cursor until the DFS
                    // overwrites it with exit stamps).
                    kids_off.clear();
                    kids_off.resize(n + 1, 0);
                    for v in 0..n {
                        if let Some(p) = self.tree.parent_of(v) {
                            if let Some(slot) = kids_off.get_mut(p + 1) {
                                *slot += 1;
                            }
                        }
                    }
                    let mut acc = 0usize;
                    for slot in kids_off.iter_mut() {
                        acc += *slot;
                        *slot = acc;
                    }
                    tout.clear();
                    tout.extend(kids_off.iter().take(n).copied());
                    kids.clear();
                    kids.resize(kids_off.last().copied().unwrap_or(0), 0);
                    for v in 0..n {
                        if let Some(p) = self.tree.parent_of(v) {
                            if let Some(cur) = tout.get_mut(p) {
                                if let Some(slot) = kids.get_mut(*cur) {
                                    *slot = v;
                                }
                                *cur += 1;
                            }
                        }
                    }
                    tin.clear();
                    tin.resize(n, 0);
                    let mut t = 0usize;
                    ff_stack.clear();
                    for v in 0..n {
                        if self.tree.parent_of(v).is_none() {
                            ff_stack.push((v, 0));
                        }
                    }
                    while let Some((v, phase)) = ff_stack.pop() {
                        if phase == 0 {
                            if let Some(slot) = tin.get_mut(v) {
                                *slot = t;
                            }
                            t += 1;
                            ff_stack.push((v, 1));
                            let lo = kids_off.get(v).copied().unwrap_or(0);
                            let hi = kids_off.get(v + 1).copied().unwrap_or(lo);
                            for &ch in kids.get(lo..hi).unwrap_or(&[]) {
                                ff_stack.push((ch, 0));
                            }
                        } else if let Some(slot) = tout.get_mut(v) {
                            *slot = t;
                        }
                    }
                }
                for &c in down_active.iter() {
                    let Some(q) = down_q.get_mut(c) else { continue };
                    let dc = self.tree.depth_of(c);
                    for (pos, s) in q.drain(..).enumerate() {
                        if use_euler {
                            // Crossing of edge c itself, then every plan
                            // edge inside c's subtree (active edges of
                            // one job are incomparable, so no edge is
                            // swept twice).
                            messages += 1;
                            last = last.max(rounds + 1);
                            let tc = tin.get(c).copied().unwrap_or(0);
                            let tc_end = tout.get(c).copied().unwrap_or(0);
                            let below = |x: NodeId| {
                                let tx = tin.get(x).copied().unwrap_or(usize::MAX);
                                tx >= tc && tx < tc_end
                            };
                            let lo = dests.partition_point(|&(dj, _)| dj < s.job);
                            let hi = dests.partition_point(|&(dj, _)| dj < s.job + 1);
                            for &(_, x) in dests.get(lo..hi).unwrap_or(&[]) {
                                if below(x) {
                                    let at = rounds + 1 + (self.tree.depth_of(x) - dc);
                                    let px = self.tree.parent_of(x).unwrap_or(0);
                                    down_ff.push((at, px, x, pos, s.subtree, s.value));
                                }
                            }
                            let jlo = forward.partition_point(|&(fj, _, _)| fj < s.job);
                            let jhi = forward.partition_point(|&(fj, _, _)| fj < s.job + 1);
                            for &(_, x, ch) in forward.get(jlo..jhi).unwrap_or(&[]) {
                                if below(x) {
                                    messages += 1;
                                    last = last.max(rounds + 1 + (self.tree.depth_of(ch) - dc));
                                }
                            }
                        } else {
                            // DFS over this send's remaining plan
                            // subtree; each visited node is one edge
                            // crossing.
                            ff_stack.clear();
                            ff_stack.push((c, 0));
                            while let Some((x, dist)) = ff_stack.pop() {
                                messages += 1;
                                let at = rounds + 1 + dist;
                                last = last.max(at);
                                if dests.binary_search(&(s.job, x)).is_ok() {
                                    let px = self.tree.parent_of(x).unwrap_or(0);
                                    down_ff.push((at, px, x, pos, s.subtree, s.value));
                                }
                                for &(_, _, c2) in forwards(forward, x, s.job) {
                                    ff_stack.push((c2, dist + 1));
                                }
                            }
                        }
                    }
                }
                rounds = last;
                // Deliveries at one (round, edge) all come from one
                // platoon, whose relative order survives every hop, so
                // the queue position is the exact final tie-breaker.
                down_ff.sort_unstable();
                for &(_, _, x, _, subtree, value) in down_ff.iter() {
                    received.push((x, subtree, value));
                }
                down_active.clear();
                break;
            }
            rounds += 1;
            down_deliv.clear();
            down_cand.clear();
            // Phase 1 — snapshot: each contended edge delivers its first
            // `capacity` queued sends (Lemma 4.2 priority order, ties by
            // arrival) to the child endpoint.
            for &c in down_active.iter() {
                let Some(q) = down_q.get_mut(c) else { continue };
                let take = self.capacity.min(q.len());
                messages += take as u64;
                if q.len() > self.capacity && q.len() - take <= self.capacity {
                    over -= 1;
                }
                down_deliv.extend(q.drain(..take).map(|s| (c, s)));
                if !q.is_empty() {
                    down_cand.push(c);
                }
            }
            // Phase 2 — apply: record arrivals at destinations and push
            // the value onto the next edges of the forwarding plan. A
            // send delivered to `c` this round re-queues below `c` and
            // cannot move again until the next round, because movers
            // were snapshotted above.
            for &(c, d) in down_deliv.iter() {
                if dests.binary_search(&(d.job, c)).is_ok() {
                    received.push((c, d.subtree, d.value));
                }
                for &(_, _, c2) in forwards(forward, c, d.job) {
                    let Some(q) = down_q.get_mut(c2) else {
                        continue;
                    };
                    let pos = q.partition_point(|s| (s.prio, s.seq) < (d.prio, seq));
                    q.insert(pos, QueuedSend { seq, ..d });
                    if q.len() == self.capacity + 1 {
                        over += 1;
                    }
                    seq += 1;
                    down_cand.push(c2);
                }
            }
            down_cand.sort_unstable_by_key(|&c| (self.tree.parent_of(c).unwrap_or(0), c));
            down_cand.dedup();
            std::mem::swap(down_active, down_cand);
        }
        CostReport::with_capacity(rounds, messages, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::{bfs_tree, gen, Graph};

    fn path_tree(n: usize) -> RootedTree {
        let g = gen::path(n);
        bfs_tree(&g, 0).0
    }

    #[test]
    fn single_upcast_on_path() {
        let t = path_tree(6);
        let r = TreeRouter::new(&t).trace_congestion(true);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![(5, 7)],
        }];
        let res = r.upcast(&jobs, u64::min);
        assert_eq!(res.aggregates[0], Some(7));
        assert_eq!(res.cost.rounds, 5);
        assert_eq!(res.cost.messages, 5);
        assert_eq!(res.realized_congestion, 1);
    }

    #[test]
    fn lockstep_chain_does_not_merge() {
        // Sources at every node of a path, all one subtree: the packets
        // march in lockstep one hop apart and never meet, so each travels
        // its full distance — Σ distances = 28 messages. This is exactly
        // the Ω(nD) phenomenon of Figure 2(a) that motivates sub-part
        // divisions (a *waiting* convergecast, as in sub-part trees, costs
        // one message per edge instead).
        let t = path_tree(8);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: (1..8).map(|v| (v, v as u64)).collect(),
        }];
        let res = r.upcast(&jobs, |a, b| a + b);
        assert_eq!(res.aggregates[0], Some((1..8).sum()));
        assert_eq!(res.cost.messages, (1..=7).sum::<u64>());
    }

    #[test]
    fn branch_collision_merges() {
        // A "Y": node 1 has children 2 and 3; packets from 2 and 3 collide
        // at node 1 in the same round and merge, so edge (1 -> 0) carries
        // one message instead of two.
        let g = Graph::from_unweighted_edges(4, &[(0, 1), (1, 2), (1, 3)]).unwrap();
        let (t, _) = bfs_tree(&g, 0);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![(2, 5), (3, 6)],
        }];
        let res = r.upcast(&jobs, |a, b| a + b);
        assert_eq!(res.aggregates[0], Some(11));
        assert_eq!(res.cost.messages, 3, "two leaf hops plus one merged hop");
    }

    #[test]
    fn source_at_root_needs_no_messages() {
        let t = path_tree(3);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![(0, 9)],
        }];
        let res = r.upcast(&jobs, u64::max);
        assert_eq!(res.aggregates[0], Some(9));
        assert_eq!(res.cost.messages, 0);
        assert_eq!(res.cost.rounds, 0);
    }

    #[test]
    fn empty_job_yields_none() {
        let t = path_tree(3);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![],
        }];
        let res = r.upcast(&jobs, u64::max);
        assert_eq!(res.aggregates[0], None);
    }

    #[test]
    fn contention_respects_c_plus_d_bound() {
        // c subtrees all using the same path edge near the root: rounds
        // must be <= D + c (Lemma 4.2), not c * D.
        let t = path_tree(12);
        let r = TreeRouter::new(&t).trace_congestion(true);
        let c = 6;
        let jobs: Vec<UpcastJob> = (0..c)
            .map(|s| UpcastJob {
                subtree: s,
                root: 0,
                sources: vec![(11, s as u64)],
            })
            .collect();
        let res = r.upcast(&jobs, u64::min);
        let d = 11;
        assert!(
            res.cost.rounds <= d + c,
            "rounds {} exceed D+c = {}",
            res.cost.rounds,
            d + c
        );
        assert_eq!(res.realized_congestion, c);
        for s in 0..c {
            assert_eq!(res.aggregates[s], Some(s as u64));
        }
    }

    #[test]
    fn congestion_ledger_is_opt_in() {
        // Without `trace_congestion`, the same contended workload reports
        // 0 — the ledger isn't maintained at all (satellite: default runs
        // don't pay for history nobody reads). Costs are unaffected.
        let t = path_tree(12);
        let jobs: Vec<UpcastJob> = (0..6)
            .map(|s| UpcastJob {
                subtree: s,
                root: 0,
                sources: vec![(11, s as u64)],
            })
            .collect();
        let traced = TreeRouter::new(&t)
            .trace_congestion(true)
            .upcast(&jobs, u64::min);
        let plain = TreeRouter::new(&t).upcast(&jobs, u64::min);
        assert_eq!(traced.realized_congestion, 6);
        assert_eq!(plain.realized_congestion, 0);
        assert_eq!(plain.cost.rounds, traced.cost.rounds);
        assert_eq!(plain.cost.messages, traced.cost.messages);
        assert_eq!(plain.aggregates, traced.aggregates);
    }

    #[test]
    fn priority_prefers_shallow_roots() {
        // Two subtrees contend on edge (1->0 side). Subtree 1 has root 0
        // (depth 0); subtree 0 has root... both root 0. Use distinct roots:
        // a star with center 0: depth-1 tree. Subtree A rooted at 0, B at 0.
        // Tie-break by id: lower id wins the first slot.
        let g = gen::star(4);
        let (t, _) = bfs_tree(&g, 0);
        let r = TreeRouter::new(&t);
        let jobs = vec![
            UpcastJob {
                subtree: 5,
                root: 0,
                sources: vec![(1, 50)],
            },
            UpcastJob {
                subtree: 2,
                root: 0,
                sources: vec![(1, 20)],
            },
        ];
        let res = r.upcast(&jobs, u64::min);
        // Both complete; contention on the single edge 1->0 serializes them.
        assert_eq!(res.cost.rounds, 2);
        assert_eq!(res.aggregates, vec![Some(50), Some(20)]);
    }

    #[test]
    fn downcast_reaches_all_destinations() {
        let t = path_tree(6);
        let r = TreeRouter::new(&t);
        let jobs = vec![DowncastJob {
            subtree: 3,
            root: 0,
            value: 42,
            destinations: vec![1, 2, 3, 4, 5],
        }];
        let res = r.downcast(&jobs);
        for v in 1..6 {
            assert_eq!(res.received[v], vec![(3, 42)]);
        }
        assert_eq!(res.cost.messages, 5);
        assert_eq!(res.cost.rounds, 5);
    }

    #[test]
    fn downcast_to_root_only_is_free() {
        let t = path_tree(4);
        let r = TreeRouter::new(&t);
        let jobs = vec![DowncastJob {
            subtree: 0,
            root: 0,
            value: 1,
            destinations: vec![0],
        }];
        let res = r.downcast(&jobs);
        assert_eq!(res.received[0], vec![(0, 1)]);
        assert_eq!(res.cost.messages, 0);
    }

    #[test]
    fn downcast_on_binary_tree_pipelines() {
        let g = gen::balanced_binary_tree(5); // 31 nodes, depth 4
        let (t, _) = bfs_tree(&g, 0);
        let r = TreeRouter::new(&t);
        let all: Vec<usize> = (1..31).collect();
        let jobs = vec![DowncastJob {
            subtree: 0,
            root: 0,
            value: 7,
            destinations: all.clone(),
        }];
        let res = r.downcast(&jobs);
        for &v in &all {
            assert_eq!(res.received[v], vec![(0, 7)]);
        }
        assert_eq!(res.cost.messages, 30, "one message per tree edge");
        // A node may use all child edges in one round, so the wave reaches
        // depth d at round d: exactly `depth` rounds.
        assert_eq!(res.cost.rounds, 4);
    }

    #[test]
    fn upcast_respects_capacity_multiplier() {
        let t = path_tree(10);
        let r = TreeRouter::with_capacity(&t, 4);
        let jobs: Vec<UpcastJob> = (0..8)
            .map(|s| UpcastJob {
                subtree: s,
                root: 0,
                sources: vec![(9, 1)],
            })
            .collect();
        let res = r.upcast(&jobs, u64::min);
        assert_eq!(res.cost.capacity_multiplier, 4);
        // With capacity 4, eight contending subtrees need ~D + c/4 rounds.
        assert!(res.cost.rounds <= 9 + 2);
    }

    #[test]
    fn chain_merge_keeps_every_contribution() {
        // Regression: on a path rooted at the *high* end, children have
        // smaller ids than their parents, so the old interleaved move
        // application merged node 0's packet into node 1's pending entry
        // and then dropped it when node 1's (stale-valued) move applied.
        // Every contribution must reach the root.
        let g = gen::path(3);
        let (t, _) = bfs_tree(&g, 2);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 2,
            sources: vec![(0, 100), (1, 10)],
        }];
        let res = r.upcast(&jobs, |a, b| a + b);
        assert_eq!(res.aggregates[0], Some(110), "no packet may be dropped");
        // Node 1's packet reaches the root in round 1; node 0's packet
        // steps to node 1, then to the root: 3 messages, 2 rounds.
        assert_eq!(res.cost.messages, 3);
        assert_eq!(res.cost.rounds, 2);
    }

    #[test]
    fn observation_4_3_message_bound() {
        // |S| sources on a depth-D path: messages <= |S| * D (Observation 4.3).
        let t = path_tree(16);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![(15, 1), (10, 2), (5, 3)],
        }];
        let res = r.upcast(&jobs, |a, b| a + b);
        assert_eq!(res.aggregates[0], Some(6));
        assert!(res.cost.messages <= 3 * 15);
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        // One scratch across repeated batch calls (and across both
        // directions, and across different trees) must reproduce the
        // fresh-scratch results bit-for-bit — the generation stamps, not
        // clearing, define emptiness.
        let t_big = path_tree(20);
        let t_small = path_tree(7);
        let mut scratch = RouterScratch::new();
        let mut up = UpcastBatch::new();
        let mut down = DowncastBatch::new();
        for round_trip in 0..3 {
            for (t, n) in [(&t_big, 20usize), (&t_small, 7usize)] {
                let router = TreeRouter::new(t);
                up.clear();
                for s in 0..4usize {
                    up.begin_job(s, 0);
                    up.push_source(n - 1 - s, (round_trip + s) as u64 + 1);
                    up.push_source(n / 2, 10);
                }
                let cost = router.upcast_batch(&up, &mut scratch, |a, b| a + b);
                let jobs: Vec<UpcastJob> = (0..4usize)
                    .map(|s| UpcastJob {
                        subtree: s,
                        root: 0,
                        sources: vec![(n - 1 - s, (round_trip + s) as u64 + 1), (n / 2, 10)],
                    })
                    .collect();
                let fresh = router.upcast(&jobs, |a, b| a + b);
                assert_eq!(scratch.aggregates, fresh.aggregates);
                assert_eq!(cost.rounds, fresh.cost.rounds);
                assert_eq!(cost.messages, fresh.cost.messages);

                down.clear();
                for s in 0..3usize {
                    down.begin_job(s, 0, 77 + s as u64);
                    down.push_destination(n - 1);
                    down.push_destination(n / 2 + s);
                }
                let dcost = router.downcast_batch(&down, &mut scratch);
                let djobs: Vec<DowncastJob> = (0..3usize)
                    .map(|s| DowncastJob {
                        subtree: s,
                        root: 0,
                        value: 77 + s as u64,
                        destinations: vec![n - 1, n / 2 + s],
                    })
                    .collect();
                let dfresh = router.downcast(&djobs);
                assert_eq!(dcost.rounds, dfresh.cost.rounds);
                assert_eq!(dcost.messages, dfresh.cost.messages);
                let mut materialized: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
                for &(v, s, val) in &scratch.received {
                    materialized[v].push((s, val));
                }
                assert_eq!(materialized, dfresh.received);
            }
        }
    }
}
