//! Packet-level simulation of pipelined routing on a rooted tree —
//! the engine behind `BlockRoute` (Lemma 4.2 of the paper).
//!
//! Setting: a rooted tree `T` of depth `D` and a family of subtrees such
//! that every tree edge belongs to at most `c` subtrees. The paper's
//! deterministic algorithm convergecasts (or broadcasts) on **all**
//! subtrees simultaneously in `O(D + c)` rounds by forwarding, whenever an
//! edge is contended, *the packet whose subtree root is shallowest,
//! breaking ties by the smallest subtree id* (Lemma 4.2). This module
//! simulates that algorithm packet-by-packet and round-by-round, producing
//! exact round and message counts.
//!
//! Two primitives:
//!
//! * [`TreeRouter::upcast`] — convergecast: packets start at source nodes,
//!   climb parent edges toward their subtree's root, and **merge** with
//!   other packets of the same subtree they meet along the way (applying
//!   the aggregation function). This realizes Observation 4.3: the message
//!   cost is `O(|S| · D)` for `|S|` sources.
//! * [`TreeRouter::downcast`] — broadcast: a value per subtree starts at
//!   the subtree root and is forwarded down every tree edge of the
//!   subtree's span toward the given destinations.

use rmo_graph::{NodeId, RootedTree};

use crate::metrics::CostReport;

/// One upcast request: a subtree id, its designated root, and the sources
/// holding values. Every source must be a descendant of (or equal to) the
/// root, and the source→root paths must stay within the subtree — the
/// caller (shortcut machinery) guarantees this structurally.
#[derive(Debug, Clone)]
pub struct UpcastJob {
    /// Subtree id (used for merging and the tie-breaking rule).
    pub subtree: usize,
    /// The subtree's root: the packet sink.
    pub root: NodeId,
    /// `(source node, initial value)` pairs.
    pub sources: Vec<(NodeId, u64)>,
}

/// One downcast request: value starts at `root` and must reach every node
/// in `destinations` (each a descendant of `root`).
#[derive(Debug, Clone)]
pub struct DowncastJob {
    /// Subtree id.
    pub subtree: usize,
    /// Broadcast origin.
    pub root: NodeId,
    /// Value to deliver.
    pub value: u64,
    /// Nodes that must receive the value.
    pub destinations: Vec<NodeId>,
}

/// Result of an upcast: the aggregate that arrived at each job's root.
#[derive(Debug, Clone)]
pub struct UpcastResult {
    /// `aggregates[i]` — final value delivered at job `i`'s root, or
    /// `None` if the job had no sources.
    pub aggregates: Vec<Option<u64>>,
    /// Exact cost of the routing.
    pub cost: CostReport,
    /// Maximum number of subtrees that used any single tree edge
    /// (the realized congestion — compare against the shortcut's `c`).
    pub realized_congestion: usize,
}

/// Result of a downcast.
#[derive(Debug, Clone)]
pub struct DowncastResult {
    /// `received[v]` — `(subtree, value)` pairs delivered to `v`.
    pub received: Vec<Vec<(usize, u64)>>,
    /// Exact cost of the routing.
    pub cost: CostReport,
}

/// The tree-routing engine. Holds the rooted tree and the per-edge
/// capacity (1 = strict CONGEST; the randomized PA variant batches
/// `O(log n)` packets per edge per meta-round, Section 4.2).
///
/// # Example
/// ```rust
/// use rmo_congest::{TreeRouter, UpcastJob};
/// use rmo_graph::{gen, bfs_tree};
///
/// let g = gen::path(6);
/// let (tree, _) = bfs_tree(&g, 0);
/// let router = TreeRouter::new(&tree);
/// let jobs = vec![UpcastJob { subtree: 0, root: 0, sources: vec![(5, 7), (3, 4)] }];
/// let res = router.upcast(&jobs, u64::min);
/// assert_eq!(res.aggregates[0], Some(4));
/// assert!(res.cost.rounds <= 5 + 1); // Lemma 4.2: D + c
/// ```
#[derive(Debug)]
pub struct TreeRouter<'t> {
    tree: &'t RootedTree,
    capacity: usize,
}

impl<'t> TreeRouter<'t> {
    /// A router with strict CONGEST capacity 1.
    pub fn new(tree: &'t RootedTree) -> TreeRouter<'t> {
        TreeRouter::with_capacity(tree, 1)
    }

    /// A router forwarding up to `capacity` packets per tree edge per
    /// direction per round.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity(tree: &'t RootedTree, capacity: usize) -> TreeRouter<'t> {
        assert!(capacity > 0, "capacity must be positive");
        TreeRouter { tree, capacity }
    }

    /// Convergecast on all jobs simultaneously, merging same-subtree
    /// packets with `merge` (which must be commutative and associative).
    ///
    /// Contended edges forward packets in the priority order of Lemma 4.2:
    /// shallowest subtree-root depth first, ties by smaller subtree id.
    ///
    /// # Panics
    /// Panics if a source is not a descendant of its job's root.
    pub fn upcast(
        &self,
        jobs: &[UpcastJob],
        mut merge: impl FnMut(u64, u64) -> u64,
    ) -> UpcastResult {
        let n = self.tree.n();
        // Dense subtree index: sorted (subtree, root) pairs, one per
        // distinct subtree. Everything downstream is flat vectors over
        // the dense index, so no step depends on a hash order.
        let mut sub_roots: Vec<(usize, NodeId)> =
            jobs.iter().map(|j| (j.subtree, j.root)).collect();
        sub_roots.sort_unstable();
        sub_roots.dedup();
        for pair in sub_roots.windows(2) {
            assert!(pair[0].0 != pair[1].0, "conflicting roots for one subtree");
        }
        let idx_of = |subtree: usize| -> usize {
            sub_roots
                .binary_search_by_key(&subtree, |&(s, _)| s)
                .expect("subtree indexed above")
        };
        // Forwarding priority per dense subtree (Lemma 4.2): shallowest
        // root depth first, ties by the smaller subtree id.
        let prio: Vec<(usize, usize)> = sub_roots
            .iter()
            .map(|&(s, root)| (self.tree.depth_of(root), s))
            .collect();
        // waiting[v]: packets currently at node v, sorted by dense
        // subtree index (merged on insertion).
        let mut waiting: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        let mut arrived: Vec<Option<u64>> = vec![None; sub_roots.len()];
        // Merges `val` into a sorted per-node packet list; true if the
        // packet is new at this node.
        fn put(
            pending: &mut Vec<(usize, u64)>,
            idx: usize,
            val: u64,
            merge: &mut impl FnMut(u64, u64) -> u64,
        ) -> bool {
            match pending.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => {
                    pending[pos].1 = merge(pending[pos].1, val);
                    false
                }
                Err(pos) => {
                    pending.insert(pos, (idx, val));
                    true
                }
            }
        }
        let mut in_flight = 0usize;
        for job in jobs {
            let idx = idx_of(job.subtree);
            for &(src, val) in &job.sources {
                debug_assert!(
                    self.tree.path_to_root(src).contains(&job.root),
                    "source {src} is not a descendant of root {}",
                    job.root
                );
                if src == job.root {
                    arrived[idx] = Some(match arrived[idx] {
                        Some(cur) => merge(cur, val),
                        None => val,
                    });
                } else if put(&mut waiting[src], idx, val, &mut merge) {
                    in_flight += 1;
                }
            }
        }

        let mut rounds = 0usize;
        let mut messages = 0u64;
        // Distinct subtrees that crossed each node's up-edge, sorted —
        // the realized-congestion ledger.
        let mut edge_subs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut moves: Vec<(NodeId, usize, u64)> = Vec::new(); // (from, dense subtree, value)
        let mut cand: Vec<usize> = Vec::new();
        while in_flight > 0 {
            rounds += 1;
            // Each node with packets picks up to `capacity` to push to its
            // parent this round, by the Lemma 4.2 priority.
            moves.clear();
            for (v, pending) in waiting.iter().enumerate() {
                if pending.is_empty() {
                    continue;
                }
                cand.clear();
                cand.extend(pending.iter().map(|&(i, _)| i));
                cand.sort_unstable_by_key(|&i| prio[i]);
                cand.truncate(self.capacity);
                for &i in &cand {
                    let pos = pending
                        .binary_search_by_key(&i, |&(j, _)| j)
                        .expect("candidate is pending");
                    moves.push((v, i, pending[pos].1));
                }
            }
            // Two-phase application: all moved packets leave their
            // holders *before* any is delivered. Interleaving removal
            // with delivery would let a packet arriving at `p` merge
            // into a packet `p` is itself forwarding this round (whose
            // value was already captured in `moves`) — the merged
            // contribution would then be silently dropped whenever the
            // child's move happened to be applied first.
            for &(v, i, _) in &moves {
                let pos = waiting[v]
                    .binary_search_by_key(&i, |&(j, _)| j)
                    .expect("moved packet was pending");
                waiting[v].remove(pos);
                in_flight -= 1;
            }
            for &(v, i, val) in &moves {
                messages += 1;
                if let Err(pos) = edge_subs[v].binary_search(&i) {
                    edge_subs[v].insert(pos, i);
                }
                let p = self
                    .tree
                    .parent_of(v)
                    .expect("non-root packet holder has a parent");
                if p == sub_roots[i].1 {
                    arrived[i] = Some(match arrived[i] {
                        Some(cur) => merge(cur, val),
                        None => val,
                    });
                } else if put(&mut waiting[p], i, val, &mut merge) {
                    in_flight += 1;
                }
            }
        }
        // Realized congestion: distinct subtrees per up-edge.
        let realized_congestion = edge_subs.iter().map(Vec::len).max().unwrap_or(0);
        let aggregates = jobs.iter().map(|j| arrived[idx_of(j.subtree)]).collect();
        UpcastResult {
            aggregates,
            cost: CostReport::with_capacity(rounds, messages, self.capacity),
            realized_congestion,
        }
    }

    /// Broadcast on all jobs simultaneously: each job's value flows from
    /// its root down the tree to its destinations, using only the tree
    /// edges on root→destination paths. Contended edges forward by the
    /// same priority rule as [`TreeRouter::upcast`].
    ///
    /// # Panics
    /// Panics if a destination is not a descendant of its job's root.
    pub fn downcast(&self, jobs: &[DowncastJob]) -> DowncastResult {
        let n = self.tree.n();
        // Forwarding plan: sorted (node, job, child) triples — `node` must
        // push job `job`'s value down the (node -> child) edge. Built from
        // the union of destination -> root paths; the stamp array cuts each
        // walk short as soon as it joins a path already recorded for the
        // same job.
        let mut forward: Vec<(NodeId, usize, NodeId)> = Vec::new();
        let mut recorded: Vec<usize> = vec![usize::MAX; n];
        for (j, job) in jobs.iter().enumerate() {
            for &d in &job.destinations {
                debug_assert!(
                    self.tree.path_to_root(d).contains(&job.root),
                    "destination {d} is not a descendant of root {}",
                    job.root
                );
                let mut cur = d;
                while cur != job.root {
                    if recorded[cur] == j {
                        break; // path above already recorded
                    }
                    recorded[cur] = j;
                    let p = self.tree.parent_of(cur).expect("descendant has a parent");
                    forward.push((p, j, cur));
                    cur = p;
                }
            }
        }
        forward.sort_unstable();
        let mut received: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
        // queue[v]: (child, job) sends whose value sits at v and still
        // needs to cross the (v -> child) edge. Distinct children are
        // distinct edges, so in one round a node serves up to `capacity`
        // jobs on *each* child edge independently.
        let mut queue: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];
        let mut active = 0usize;
        let enqueue =
            |queue: &mut Vec<Vec<(NodeId, usize)>>, active: &mut usize, v: NodeId, j: usize| {
                let lo = forward.partition_point(|&(nv, nj, _)| (nv, nj) < (v, j));
                let hi = forward.partition_point(|&(nv, nj, _)| (nv, nj) < (v, j + 1));
                for &(_, _, c) in &forward[lo..hi] {
                    queue[v].push((c, j));
                    *active += 1;
                }
            };
        for (j, job) in jobs.iter().enumerate() {
            if job.destinations.contains(&job.root) {
                received[job.root].push((job.subtree, job.value));
            }
            enqueue(&mut queue, &mut active, job.root, j);
        }
        let mut rounds = 0usize;
        let mut messages = 0u64;
        let mut deliveries: Vec<(NodeId, usize)> = Vec::new(); // (child, job)
        while active > 0 {
            rounds += 1;
            deliveries.clear();
            for node_queue in queue.iter_mut() {
                if node_queue.is_empty() {
                    continue;
                }
                // Group by child edge; within an edge, forward by the
                // Lemma 4.2 priority: shallowest job root first, ties by
                // subtree id (the sort is stable, so equal-priority sends
                // keep their arrival order).
                node_queue
                    .sort_by_key(|&(c, j)| (c, self.tree.depth_of(jobs[j].root), jobs[j].subtree));
                let mut keep = 0usize;
                let mut k = 0usize;
                while k < node_queue.len() {
                    let child = node_queue[k].0;
                    let mut taken = 0usize;
                    while k < node_queue.len() && node_queue[k].0 == child {
                        if taken < self.capacity {
                            deliveries.push((child, node_queue[k].1));
                            messages += 1;
                            active -= 1;
                            taken += 1;
                        } else {
                            node_queue[keep] = node_queue[k];
                            keep += 1;
                        }
                        k += 1;
                    }
                }
                node_queue.truncate(keep);
            }
            for &(child, j) in &deliveries {
                let job = &jobs[j];
                if job.destinations.contains(&child) {
                    received[child].push((job.subtree, job.value));
                }
                enqueue(&mut queue, &mut active, child, j);
            }
        }
        DowncastResult {
            received,
            cost: CostReport::with_capacity(rounds, messages, self.capacity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::{bfs_tree, gen};

    fn path_tree(n: usize) -> RootedTree {
        let g = gen::path(n);
        bfs_tree(&g, 0).0
    }

    #[test]
    fn single_upcast_on_path() {
        let t = path_tree(6);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![(5, 7)],
        }];
        let res = r.upcast(&jobs, u64::min);
        assert_eq!(res.aggregates[0], Some(7));
        assert_eq!(res.cost.rounds, 5);
        assert_eq!(res.cost.messages, 5);
        assert_eq!(res.realized_congestion, 1);
    }

    #[test]
    fn lockstep_chain_does_not_merge() {
        // Sources at every node of a path, all one subtree: the packets
        // march in lockstep one hop apart and never meet, so each travels
        // its full distance — Σ distances = 28 messages. This is exactly
        // the Ω(nD) phenomenon of Figure 2(a) that motivates sub-part
        // divisions (a *waiting* convergecast, as in sub-part trees, costs
        // one message per edge instead).
        let t = path_tree(8);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: (1..8).map(|v| (v, v as u64)).collect(),
        }];
        let res = r.upcast(&jobs, |a, b| a + b);
        assert_eq!(res.aggregates[0], Some((1..8).sum()));
        assert_eq!(res.cost.messages, (1..=7).sum::<u64>());
    }

    #[test]
    fn branch_collision_merges() {
        // A "Y": node 1 has children 2 and 3; packets from 2 and 3 collide
        // at node 1 in the same round and merge, so edge (1 -> 0) carries
        // one message instead of two.
        let g = Graph::from_unweighted_edges(4, &[(0, 1), (1, 2), (1, 3)]).unwrap();
        let (t, _) = bfs_tree(&g, 0);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![(2, 5), (3, 6)],
        }];
        let res = r.upcast(&jobs, |a, b| a + b);
        assert_eq!(res.aggregates[0], Some(11));
        assert_eq!(res.cost.messages, 3, "two leaf hops plus one merged hop");
    }

    use rmo_graph::Graph;

    #[test]
    fn source_at_root_needs_no_messages() {
        let t = path_tree(3);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![(0, 9)],
        }];
        let res = r.upcast(&jobs, u64::max);
        assert_eq!(res.aggregates[0], Some(9));
        assert_eq!(res.cost.messages, 0);
        assert_eq!(res.cost.rounds, 0);
    }

    #[test]
    fn empty_job_yields_none() {
        let t = path_tree(3);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![],
        }];
        let res = r.upcast(&jobs, u64::max);
        assert_eq!(res.aggregates[0], None);
    }

    #[test]
    fn contention_respects_c_plus_d_bound() {
        // c subtrees all using the same path edge near the root: rounds
        // must be <= D + c (Lemma 4.2), not c * D.
        let t = path_tree(12);
        let r = TreeRouter::new(&t);
        let c = 6;
        let jobs: Vec<UpcastJob> = (0..c)
            .map(|s| UpcastJob {
                subtree: s,
                root: 0,
                sources: vec![(11, s as u64)],
            })
            .collect();
        let res = r.upcast(&jobs, u64::min);
        let d = 11;
        assert!(
            res.cost.rounds <= d + c,
            "rounds {} exceed D+c = {}",
            res.cost.rounds,
            d + c
        );
        assert_eq!(res.realized_congestion, c);
        for s in 0..c {
            assert_eq!(res.aggregates[s], Some(s as u64));
        }
    }

    #[test]
    fn priority_prefers_shallow_roots() {
        // Two subtrees contend on edge (1->0 side). Subtree 1 has root 0
        // (depth 0); subtree 0 has root... both root 0. Use distinct roots:
        // a star with center 0: depth-1 tree. Subtree A rooted at 0, B at 0.
        // Tie-break by id: lower id wins the first slot.
        let g = gen::star(4);
        let (t, _) = bfs_tree(&g, 0);
        let r = TreeRouter::new(&t);
        let jobs = vec![
            UpcastJob {
                subtree: 5,
                root: 0,
                sources: vec![(1, 50)],
            },
            UpcastJob {
                subtree: 2,
                root: 0,
                sources: vec![(1, 20)],
            },
        ];
        let res = r.upcast(&jobs, u64::min);
        // Both complete; contention on the single edge 1->0 serializes them.
        assert_eq!(res.cost.rounds, 2);
        assert_eq!(res.aggregates, vec![Some(50), Some(20)]);
    }

    #[test]
    fn downcast_reaches_all_destinations() {
        let t = path_tree(6);
        let r = TreeRouter::new(&t);
        let jobs = vec![DowncastJob {
            subtree: 3,
            root: 0,
            value: 42,
            destinations: vec![1, 2, 3, 4, 5],
        }];
        let res = r.downcast(&jobs);
        for v in 1..6 {
            assert_eq!(res.received[v], vec![(3, 42)]);
        }
        assert_eq!(res.cost.messages, 5);
        assert_eq!(res.cost.rounds, 5);
    }

    #[test]
    fn downcast_to_root_only_is_free() {
        let t = path_tree(4);
        let r = TreeRouter::new(&t);
        let jobs = vec![DowncastJob {
            subtree: 0,
            root: 0,
            value: 1,
            destinations: vec![0],
        }];
        let res = r.downcast(&jobs);
        assert_eq!(res.received[0], vec![(0, 1)]);
        assert_eq!(res.cost.messages, 0);
    }

    #[test]
    fn downcast_on_binary_tree_pipelines() {
        let g = gen::balanced_binary_tree(5); // 31 nodes, depth 4
        let (t, _) = bfs_tree(&g, 0);
        let r = TreeRouter::new(&t);
        let all: Vec<usize> = (1..31).collect();
        let jobs = vec![DowncastJob {
            subtree: 0,
            root: 0,
            value: 7,
            destinations: all.clone(),
        }];
        let res = r.downcast(&jobs);
        for &v in &all {
            assert_eq!(res.received[v], vec![(0, 7)]);
        }
        assert_eq!(res.cost.messages, 30, "one message per tree edge");
        // A node may use all child edges in one round, so the wave reaches
        // depth d at round d: exactly `depth` rounds.
        assert_eq!(res.cost.rounds, 4);
    }

    #[test]
    fn upcast_respects_capacity_multiplier() {
        let t = path_tree(10);
        let r = TreeRouter::with_capacity(&t, 4);
        let jobs: Vec<UpcastJob> = (0..8)
            .map(|s| UpcastJob {
                subtree: s,
                root: 0,
                sources: vec![(9, 1)],
            })
            .collect();
        let res = r.upcast(&jobs, u64::min);
        assert_eq!(res.cost.capacity_multiplier, 4);
        // With capacity 4, eight contending subtrees need ~D + c/4 rounds.
        assert!(res.cost.rounds <= 9 + 2);
    }

    #[test]
    fn chain_merge_keeps_every_contribution() {
        // Regression: on a path rooted at the *high* end, children have
        // smaller ids than their parents, so the old interleaved move
        // application merged node 0's packet into node 1's pending entry
        // and then dropped it when node 1's (stale-valued) move applied.
        // Every contribution must reach the root.
        let g = gen::path(3);
        let (t, _) = bfs_tree(&g, 2);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 2,
            sources: vec![(0, 100), (1, 10)],
        }];
        let res = r.upcast(&jobs, |a, b| a + b);
        assert_eq!(res.aggregates[0], Some(110), "no packet may be dropped");
        // Node 1's packet reaches the root in round 1; node 0's packet
        // steps to node 1, then to the root: 3 messages, 2 rounds.
        assert_eq!(res.cost.messages, 3);
        assert_eq!(res.cost.rounds, 2);
    }

    #[test]
    fn observation_4_3_message_bound() {
        // |S| sources on a depth-D path: messages <= |S| * D (Observation 4.3).
        let t = path_tree(16);
        let r = TreeRouter::new(&t);
        let jobs = vec![UpcastJob {
            subtree: 0,
            root: 0,
            sources: vec![(15, 1), (10, 2), (5, 3)],
        }];
        let res = r.upcast(&jobs, |a, b| a + b);
        assert_eq!(res.aggregates[0], Some(6));
        assert!(res.cost.messages <= 3 * 15);
    }
}
