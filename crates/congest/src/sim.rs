//! The synchronous round scheduler.
//!
//! Execution model (matching Section 2.1 of the paper):
//!
//! 1. At round `r`, every node receives the messages its neighbors sent at
//!    round `r − 1`, then runs its [`NodeProgram::on_round`] handler, which
//!    may send at most `capacity` messages per incident edge (capacity 1 =
//!    strict CONGEST).
//! 2. Rounds repeat until *quiescence* — no messages in flight and no
//!    program asking to act — or a round cap is hit.
//!
//! Message and round counts are exact: every [`RoundCtx::send`] increments
//! the message counter by one.

use std::fmt;

use rmo_graph::NodeId;

use crate::metrics::CostReport;
use crate::network::{Network, PortId};
use crate::payload::Payload;

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node tried to send more than `capacity` messages over one edge in
    /// one round.
    CapacityExceeded {
        node: NodeId,
        port: PortId,
        round: usize,
    },
    /// The round cap was reached before quiescence.
    RoundLimit { limit: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CapacityExceeded { node, port, round } => write!(
                f,
                "node {node} exceeded per-edge capacity on port {port} in round {round}"
            ),
            SimError::RoundLimit { limit } => {
                write!(f, "no quiescence within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// What a node sees and may do during one round.
pub struct RoundCtx<'a> {
    node: NodeId,
    id: u64,
    degree: usize,
    round: usize,
    inbox: &'a [(PortId, Payload)],
    outbox: Vec<(PortId, Payload)>,
    sent_on_port: Vec<usize>,
    capacity: usize,
    violation: Option<PortId>,
}

impl<'a> RoundCtx<'a> {
    /// This node's simulator index. Programs should treat it as opaque —
    /// use [`RoundCtx::id`] for anything an algorithm compares or sends.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This node's unique KT0 identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of incident edges (ports `0..degree`).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Current round number (0-based; round 0 has an empty inbox).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Messages received this round, as `(arrival_port, payload)`.
    pub fn inbox(&self) -> &[(PortId, Payload)] {
        self.inbox
    }

    /// Sends `msg` over port `p`, to be delivered next round.
    ///
    /// Exceeding the per-edge capacity is recorded and surfaces as
    /// [`SimError::CapacityExceeded`] when the round ends (the offending
    /// message is dropped).
    pub fn send(&mut self, p: PortId, msg: Payload) {
        debug_assert!(p < self.degree, "port {p} out of range");
        if self.sent_on_port[p] >= self.capacity {
            self.violation.get_or_insert(p);
            return;
        }
        self.sent_on_port[p] += 1;
        self.outbox.push((p, msg));
    }

    /// Sends `msg` over every port ("local broadcast").
    pub fn send_all(&mut self, msg: Payload) {
        for p in 0..self.degree {
            self.send(p, msg);
        }
    }
}

/// A per-node state machine.
///
/// Implementations hold all node-local state; the simulator calls
/// [`NodeProgram::on_round`] once per round. A node that still intends to
/// act spontaneously (without waiting for a message) must return `true`
/// from [`NodeProgram::wants_round`], otherwise quiescence may be declared.
pub trait NodeProgram {
    /// Handles one round: read `ctx.inbox()`, update state, send messages.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>);

    /// Whether this node wants to run again even with an empty inbox.
    /// Default `false`: act only on arriving messages.
    fn wants_round(&self) -> bool {
        false
    }
}

/// Per-round statistics, for tracing and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Messages sent during this round.
    pub sent: u64,
    /// Messages delivered at the start of this round.
    pub delivered: u64,
    /// Max messages any single directed edge carried this round.
    pub max_edge_load: usize,
}

/// The synchronous simulator: a [`Network`] plus one program per node.
pub struct Simulator<'n, P> {
    net: &'n Network,
    programs: Vec<P>,
    capacity: usize,
    round: usize,
    messages: u64,
    /// Inboxes for the *next* round.
    pending: Vec<Vec<(PortId, Payload)>>,
    /// Per-round trace.
    history: Vec<RoundStats>,
}

impl<'n, P: NodeProgram> Simulator<'n, P> {
    /// Creates a simulator with strict CONGEST capacity (1 message per
    /// directed edge per round); `make` builds the program for each node.
    pub fn new(net: &'n Network, make: impl FnMut(NodeId) -> P) -> Simulator<'n, P> {
        Simulator::with_capacity(net, 1, make)
    }

    /// Like [`Simulator::new`] with an explicit per-edge-per-round
    /// capacity (the paper's randomized PA uses `O(log n)`).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity(
        net: &'n Network,
        capacity: usize,
        mut make: impl FnMut(NodeId) -> P,
    ) -> Simulator<'n, P> {
        assert!(capacity > 0, "capacity must be positive");
        let programs = (0..net.n()).map(&mut make).collect();
        Simulator {
            net,
            programs,
            capacity,
            round: 0,
            messages: 0,
            pending: vec![Vec::new(); net.n()],
            history: Vec::new(),
        }
    }

    /// Per-round statistics recorded so far (one entry per executed round).
    pub fn round_history(&self) -> &[RoundStats] {
        &self.history
    }

    /// The program of node `v` (for reading results after a run).
    pub fn program(&self, v: NodeId) -> &P {
        &self.programs[v]
    }

    /// Mutable access to node `v`'s program (for injecting inputs).
    pub fn program_mut(&mut self, v: NodeId) -> &mut P {
        &mut self.programs[v]
    }

    /// Rounds executed so far.
    pub fn rounds_elapsed(&self) -> usize {
        self.round
    }

    /// Messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    /// Executes a single round. Returns `true` if anything happened
    /// (a message was delivered or sent, or some node wanted the round).
    ///
    /// # Errors
    /// Returns [`SimError::CapacityExceeded`] if a node oversent.
    pub fn step(&mut self) -> Result<bool, SimError> {
        let n = self.net.n();
        let inboxes = std::mem::replace(&mut self.pending, vec![Vec::new(); n]);
        let any_inbox = inboxes.iter().any(|i| !i.is_empty());
        let any_wants = self.programs.iter().any(|p| p.wants_round());
        if !any_inbox && !any_wants && self.round > 0 {
            return Ok(false);
        }
        let mut any_sent = false;
        let mut stats = RoundStats {
            delivered: inboxes.iter().map(|i| i.len() as u64).sum(),
            ..RoundStats::default()
        };
        for (v, inbox) in inboxes.iter().enumerate().take(n) {
            let degree = self.net.degree(v);
            let mut ctx = RoundCtx {
                node: v,
                id: self.net.id_of(v),
                degree,
                round: self.round,
                inbox,
                outbox: Vec::new(),
                sent_on_port: vec![0; degree],
                capacity: self.capacity,
                violation: None,
            };
            self.programs[v].on_round(&mut ctx);
            if let Some(port) = ctx.violation {
                return Err(SimError::CapacityExceeded {
                    node: v,
                    port,
                    round: self.round,
                });
            }
            stats.max_edge_load = stats
                .max_edge_load
                .max(ctx.sent_on_port.iter().copied().max().unwrap_or(0));
            for (p, msg) in ctx.outbox {
                let (_, u, q) = self.net.port_target(v, p);
                self.pending[u].push((q, msg));
                self.messages += 1;
                stats.sent += 1;
                any_sent = true;
            }
        }
        self.history.push(stats);
        self.round += 1;
        Ok(any_inbox || any_wants || any_sent)
    }

    /// Runs rounds until quiescence (nothing in flight, nobody wants a
    /// round) or until `max_rounds`.
    ///
    /// # Errors
    /// [`SimError::RoundLimit`] if the cap is reached first, or a capacity
    /// violation from [`Simulator::step`].
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> Result<CostReport, SimError> {
        let start_round = self.round;
        let start_msgs = self.messages;
        loop {
            if self.round - start_round > max_rounds {
                return Err(SimError::RoundLimit { limit: max_rounds });
            }
            let progressed = self.step()?;
            if !progressed {
                break;
            }
        }
        Ok(CostReport::with_capacity(
            self.round - start_round,
            self.messages - start_msgs,
            self.capacity,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    /// Every node floods a token once; used to test accounting.
    struct FloodOnce {
        fired: bool,
    }

    impl NodeProgram for FloodOnce {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if !self.fired {
                self.fired = true;
                ctx.send_all(Payload::tag_only(1));
            }
        }
        fn wants_round(&self) -> bool {
            !self.fired
        }
    }

    #[test]
    fn flood_once_counts_2m_messages() {
        let g = gen::grid(4, 4);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| FloodOnce { fired: false });
        let rep = sim.run_until_quiescent(10).unwrap();
        assert_eq!(rep.messages, 2 * g.m() as u64);
        // round 0: everyone sends; round 1: deliveries, nobody reacts;
        // round 2: quiescent check.
        assert!(rep.rounds <= 3);
    }

    /// A node that spams one port to trigger the capacity check.
    struct Spammer;
    impl NodeProgram for Spammer {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.round() == 0 && ctx.degree() > 0 {
                ctx.send(0, Payload::tag_only(1));
                ctx.send(0, Payload::tag_only(2));
            }
        }
        fn wants_round(&self) -> bool {
            true
        }
    }

    #[test]
    fn capacity_violation_detected() {
        let g = gen::path(2);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| Spammer);
        let err = sim.run_until_quiescent(5).unwrap_err();
        assert!(matches!(err, SimError::CapacityExceeded { .. }));
    }

    #[test]
    fn capacity_two_allows_two_messages() {
        let g = gen::path(2);
        let net = Network::new(&g, 0);
        struct TwoSender {
            done: bool,
        }
        impl NodeProgram for TwoSender {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
                if !self.done {
                    self.done = true;
                    ctx.send(0, Payload::tag_only(1));
                    ctx.send(0, Payload::tag_only(2));
                }
            }
            fn wants_round(&self) -> bool {
                !self.done
            }
        }
        let mut sim = Simulator::with_capacity(&net, 2, |_| TwoSender { done: false });
        let rep = sim.run_until_quiescent(5).unwrap();
        assert_eq!(rep.messages, 4);
        assert_eq!(rep.capacity_multiplier, 2);
    }

    /// Quiescent program: sends nothing, wants nothing.
    struct Idle;
    impl NodeProgram for Idle {
        fn on_round(&mut self, _ctx: &mut RoundCtx<'_>) {}
    }

    #[test]
    fn idle_network_quiesces_immediately() {
        let g = gen::cycle(5);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| Idle);
        let rep = sim.run_until_quiescent(100).unwrap();
        assert_eq!(rep.messages, 0);
        assert!(rep.rounds <= 1);
    }

    #[test]
    fn round_history_records_traffic() {
        let g = gen::path(4);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| FloodOnce { fired: false });
        sim.run_until_quiescent(10).unwrap();
        let hist = sim.round_history();
        assert!(!hist.is_empty());
        assert_eq!(hist[0].sent, 2 * g.m() as u64, "everyone floods in round 0");
        assert_eq!(hist[0].delivered, 0, "nothing in flight yet");
        assert_eq!(hist[1].delivered, 2 * g.m() as u64);
        assert!(hist[0].max_edge_load <= 1, "strict CONGEST");
        let total: u64 = hist.iter().map(|s| s.sent).sum();
        assert_eq!(total, sim.messages_sent());
    }

    #[test]
    fn round_limit_enforced() {
        let g = gen::path(2);
        let net = Network::new(&g, 0);
        struct Forever;
        impl NodeProgram for Forever {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
                ctx.send(0, Payload::tag_only(0));
            }
            fn wants_round(&self) -> bool {
                true
            }
        }
        let mut sim = Simulator::new(&net, |_| Forever);
        let err = sim.run_until_quiescent(10).unwrap_err();
        assert_eq!(err, SimError::RoundLimit { limit: 10 });
    }
}
