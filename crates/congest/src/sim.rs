//! The synchronous round scheduler.
//!
//! Execution model (matching Section 2.1 of the paper):
//!
//! 1. At round `r`, every node receives the messages its neighbors sent at
//!    round `r − 1`, then runs its [`NodeProgram::on_round`] handler, which
//!    may send at most `capacity` messages per incident edge (capacity 1 =
//!    strict CONGEST).
//! 2. Rounds repeat until *quiescence* — no messages in flight and no
//!    program asking to act — or a round cap is hit.
//!
//! Message and round counts are exact: every [`RoundCtx::send`] increments
//! the message counter by one.
//!
//! # Engine internals (flat arenas + active-set scheduling)
//!
//! [`Simulator`] is frontier-driven: a node is stepped in a round only if
//! it has messages to receive or has registered interest via
//! [`NodeProgram::wants_round`] — active nodes run in ascending [`NodeId`]
//! order, so execution order (and therefore every message, round and
//! [`RoundStats`]) is identical to the dense sweep kept in
//! [`crate::reference`]. Messages live in two recycled flat buffers: sends
//! are staged as `(destination, port, payload)` triples in send order,
//! then counting-scattered into a CSR-style inbox arena (per-node
//! epoch-stamped offset/length tables into one contiguous
//! `(PortId, Payload)` buffer) for the next round. Per-port capacity
//! counters are an epoch-stamped flat array over the network's degree
//! prefix sums ([`Network::port_base`]). Steady-state rounds therefore
//! perform **zero** heap allocation (pinned by the `alloc_free`
//! regression test); [`RoundStats`] history is opt-in via
//! [`Simulator::trace_rounds`].
//!
//! This tightens the [`NodeProgram`] contract: a program whose inbox is
//! empty and whose `wants_round` is `false` is *not stepped at all*, so
//! `on_round` must be a no-op in that state (see the trait docs).

use std::fmt;

use rmo_graph::NodeId;

use crate::metrics::CostReport;
use crate::network::{Network, PortId};
use crate::payload::Payload;

/// Errors from a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node tried to send more than `capacity` messages over one edge in
    /// one round.
    CapacityExceeded {
        node: NodeId,
        port: PortId,
        round: usize,
    },
    /// The round cap was reached before quiescence.
    RoundLimit { limit: usize },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CapacityExceeded { node, port, round } => write!(
                f,
                "node {node} exceeded per-edge capacity on port {port} in round {round}"
            ),
            SimError::RoundLimit { limit } => {
                write!(f, "no quiescence within {limit} rounds")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One staged message: resolved destination, arrival port, payload.
#[derive(Clone, Copy)]
struct Staged {
    dest: NodeId,
    port: PortId,
    msg: Payload,
}

/// Where [`RoundCtx::send`] routes messages: the fast engine stages
/// resolved `(dest, port, payload)` triples straight into the
/// simulator's recycled buffer; the dense reference engine keeps the
/// pre-optimization per-node outbox so it stays a verbatim oracle.
enum SendSink<'a> {
    Fast {
        /// `(edge, neighbor, neighbor_port)` per local port.
        targets: &'a [(usize, NodeId, PortId)],
        staging: &'a mut Vec<Staged>,
        /// Capacity counters for this node's ports (flat-array slice).
        port_sent: &'a mut [u32],
        /// Round stamp per port; a stale stamp reads as count 0.
        port_epoch: &'a mut [u64],
        epoch: u64,
    },
    Reference {
        outbox: &'a mut Vec<(PortId, Payload)>,
        sent_on_port: &'a mut [usize],
    },
}

/// What a node sees and may do during one round.
pub struct RoundCtx<'a> {
    node: NodeId,
    id: u64,
    degree: usize,
    round: usize,
    inbox: &'a [(PortId, Payload)],
    sink: SendSink<'a>,
    capacity: usize,
    violation: Option<PortId>,
    /// Max messages this node put on one port this round (for tracing).
    max_port_sent: usize,
}

impl<'a> RoundCtx<'a> {
    /// This node's simulator index. Programs should treat it as opaque —
    /// use [`RoundCtx::id`] for anything an algorithm compares or sends.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This node's unique KT0 identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of incident edges (ports `0..degree`).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Current round number (0-based; round 0 has an empty inbox).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Messages received this round, as `(arrival_port, payload)`.
    pub fn inbox(&self) -> &[(PortId, Payload)] {
        self.inbox
    }

    /// Sends `msg` over port `p`, to be delivered next round.
    ///
    /// Exceeding the per-edge capacity is recorded and surfaces as
    /// [`SimError::CapacityExceeded`] when the round ends (the offending
    /// message is dropped).
    pub fn send(&mut self, p: PortId, msg: Payload) {
        debug_assert!(p < self.degree, "port {p} out of range");
        match &mut self.sink {
            SendSink::Fast {
                targets,
                staging,
                port_sent,
                port_epoch,
                epoch,
            } => {
                let sent = if port_epoch[p] == *epoch {
                    port_sent[p]
                } else {
                    0
                };
                if sent as usize >= self.capacity {
                    self.violation.get_or_insert(p);
                    return;
                }
                port_epoch[p] = *epoch;
                port_sent[p] = sent + 1;
                self.max_port_sent = self.max_port_sent.max(sent as usize + 1);
                let (_, dest, port) = targets[p];
                staging.push(Staged { dest, port, msg });
            }
            SendSink::Reference {
                outbox,
                sent_on_port,
            } => {
                if sent_on_port[p] >= self.capacity {
                    self.violation.get_or_insert(p);
                    return;
                }
                sent_on_port[p] += 1;
                self.max_port_sent = self.max_port_sent.max(sent_on_port[p]);
                outbox.push((p, msg));
            }
        }
    }

    /// Sends `msg` over every port ("local broadcast").
    pub fn send_all(&mut self, msg: Payload) {
        for p in 0..self.degree {
            self.send(p, msg);
        }
    }

    /// Runs `program` for one round of the dense reference loop,
    /// collecting its sends into `outbox`/`sent_on_port`. Returns the
    /// first capacity violation, if any. (The reference engine lives in
    /// [`crate::reference`]; this hook keeps `RoundCtx` construction
    /// private while letting both engines drive the same programs.)
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn drive_reference<P: NodeProgram>(
        program: &mut P,
        node: NodeId,
        id: u64,
        degree: usize,
        round: usize,
        inbox: &[(PortId, Payload)],
        outbox: &mut Vec<(PortId, Payload)>,
        sent_on_port: &mut [usize],
        capacity: usize,
    ) -> Option<PortId> {
        let mut ctx = RoundCtx {
            node,
            id,
            degree,
            round,
            inbox,
            sink: SendSink::Reference {
                outbox,
                sent_on_port,
            },
            capacity,
            violation: None,
            max_port_sent: 0,
        };
        program.on_round(&mut ctx);
        ctx.violation
    }
}

/// A per-node state machine.
///
/// Implementations hold all node-local state; the simulator calls
/// [`NodeProgram::on_round`] when the node is scheduled. A node that
/// still intends to act spontaneously (without waiting for a message)
/// must return `true` from [`NodeProgram::wants_round`], otherwise
/// quiescence may be declared.
///
/// # Contract (active-set scheduling)
///
/// The simulator steps a node only when it has messages to receive or
/// its `wants_round` returned `true` after its last step. A conforming
/// program must therefore make `on_round` a **no-op** whenever the inbox
/// is empty and `wants_round` is `false` — it may not mutate state, send
/// messages, or flip `wants_round` in that situation. (All in-tree
/// programs satisfy this; the dense [`crate::reference`] loop, which
/// still calls every node every round, is differentially tested against
/// the frontier-driven engine to pin the equivalence.) `wants_round`
/// may change outside `on_round` only through
/// [`Simulator::program_mut`], which re-registers the node.
pub trait NodeProgram {
    /// Handles one round: read `ctx.inbox()`, update state, send messages.
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>);

    /// Whether this node wants to run again even with an empty inbox.
    /// Default `false`: act only on arriving messages.
    fn wants_round(&self) -> bool {
        false
    }
}

/// Per-round statistics, for tracing and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundStats {
    /// Messages sent during this round.
    pub sent: u64,
    /// Messages delivered at the start of this round.
    pub delivered: u64,
    /// Max messages any single directed edge carried this round.
    pub max_edge_load: usize,
}

/// Epoch value meaning "never stamped" (no round ever uses it).
const NEVER: u64 = u64::MAX;

/// The synchronous simulator: a [`Network`] plus one program per node.
///
/// See the [module docs](self) for the engine internals (flat message
/// arenas, active-set scheduling, opt-in tracing) and the equivalence
/// guarantee against [`crate::reference::ReferenceSimulator`].
pub struct Simulator<'n, P> {
    net: &'n Network,
    programs: Vec<P>,
    capacity: usize,
    round: usize,
    messages: u64,

    // --- Inbox arena for the *current* round (CSR over destinations).
    /// Delivered messages, grouped by destination, send-order inside.
    arena: Vec<(PortId, Payload)>,
    /// Nodes with a non-empty inbox this round, ascending.
    inbox_nodes: Vec<NodeId>,
    /// Per node: offset of its slice in `arena` (valid iff stamped).
    inbox_start: Vec<u32>,
    /// Per node: length of its slice in `arena` (valid iff stamped).
    inbox_len: Vec<u32>,
    /// Per node: round stamp validating `inbox_start`/`inbox_len`.
    inbox_epoch: Vec<u64>,

    // --- Send staging (recycled every round).
    staging: Vec<Staged>,
    /// Scratch: destinations first touched while counting the scatter.
    touched: Vec<NodeId>,
    /// Scratch: per-destination counter, then scatter cursor.
    dest_count: Vec<u32>,
    /// Round stamp validating `dest_count`.
    dest_epoch: Vec<u64>,

    // --- Per-port capacity counters over the degree prefix sums.
    port_sent: Vec<u32>,
    port_epoch: Vec<u64>,

    // --- Active-set bookkeeping.
    /// `wants[v]`: result of `v`'s last `wants_round` query.
    wants: Vec<bool>,
    /// Nodes with `wants[v] == true`, ascending.
    want_list: Vec<NodeId>,
    /// Scratch: this round's schedule (inbox ∪ wants, ascending).
    active: Vec<NodeId>,
    /// Scratch: want-list insertions/removals discovered this round.
    want_added: Vec<NodeId>,
    want_removed: Vec<NodeId>,
    /// Nodes handed out via [`Simulator::program_mut`]; re-queried at
    /// the next step (or quiescence check).
    dirty: Vec<NodeId>,

    // --- Opt-in tracing.
    trace: bool,
    history: Vec<RoundStats>,

    /// Set by a failed round. A capacity violation aborts mid-schedule,
    /// leaving the want-list bookkeeping half-applied — so instead of
    /// ever running on that state, subsequent steps re-return the error.
    poisoned: Option<SimError>,
}

impl<'n, P: NodeProgram> Simulator<'n, P> {
    /// Creates a simulator with strict CONGEST capacity (1 message per
    /// directed edge per round); `make` builds the program for each node.
    pub fn new(net: &'n Network, make: impl FnMut(NodeId) -> P) -> Simulator<'n, P> {
        Simulator::with_capacity(net, 1, make)
    }

    /// Like [`Simulator::new`] with an explicit per-edge-per-round
    /// capacity (the paper's randomized PA uses `O(log n)`).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity(
        net: &'n Network,
        capacity: usize,
        mut make: impl FnMut(NodeId) -> P,
    ) -> Simulator<'n, P> {
        assert!(capacity > 0, "capacity must be positive");
        let n = net.n();
        let programs: Vec<P> = (0..n).map(&mut make).collect();
        let wants: Vec<bool> = programs.iter().map(NodeProgram::wants_round).collect();
        let want_list: Vec<NodeId> = (0..n).filter(|&v| wants[v]).collect();
        Simulator {
            net,
            programs,
            capacity,
            round: 0,
            messages: 0,
            arena: Vec::new(),
            inbox_nodes: Vec::new(),
            inbox_start: vec![0; n],
            inbox_len: vec![0; n],
            inbox_epoch: vec![NEVER; n],
            staging: Vec::new(),
            touched: Vec::new(),
            dest_count: vec![0; n],
            dest_epoch: vec![NEVER; n],
            port_sent: vec![0; net.total_ports()],
            port_epoch: vec![NEVER; net.total_ports()],
            wants,
            want_list,
            active: Vec::new(),
            want_added: Vec::new(),
            want_removed: Vec::new(),
            dirty: Vec::new(),
            trace: false,
            history: Vec::new(),
            poisoned: None,
        }
    }

    /// Enables (or disables) per-round [`RoundStats`] collection.
    /// Tracing is **off by default**: the steady-state loop then skips
    /// all statistics bookkeeping and [`Simulator::round_history`] stays
    /// empty. Round and message totals are always exact either way.
    pub fn trace_rounds(&mut self, enabled: bool) {
        self.trace = enabled;
    }

    /// Per-round statistics recorded so far (one entry per executed
    /// round **while tracing was enabled** — see
    /// [`Simulator::trace_rounds`]).
    pub fn round_history(&self) -> &[RoundStats] {
        &self.history
    }

    /// The program of node `v` (for reading results after a run).
    pub fn program(&self, v: NodeId) -> &P {
        &self.programs[v]
    }

    /// Mutable access to node `v`'s program (for injecting inputs).
    /// The node's `wants_round` is re-queried before the next round, so
    /// input injection can wake an otherwise idle node.
    pub fn program_mut(&mut self, v: NodeId) -> &mut P {
        self.dirty.push(v);
        &mut self.programs[v]
    }

    /// Rounds executed so far.
    pub fn rounds_elapsed(&self) -> usize {
        self.round
    }

    /// Messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages
    }

    /// Whether the network is quiescent: nothing in flight and no node
    /// wanting a round. `O(active)` — only registered/dirty nodes are
    /// queried.
    pub fn is_quiescent(&self) -> bool {
        self.inbox_nodes.is_empty()
            && !self
                .want_list
                .iter()
                .chain(&self.dirty)
                .any(|&v| self.programs[v].wants_round())
    }

    /// Re-queries `wants_round` for nodes mutated via
    /// [`Simulator::program_mut`] and folds them into the want list.
    fn reconcile_dirty(&mut self) {
        while let Some(v) = self.dirty.pop() {
            let w = self.programs[v].wants_round();
            if w != self.wants[v] {
                self.wants[v] = w;
                match self.want_list.binary_search(&v) {
                    Ok(i) if !w => {
                        self.want_list.remove(i);
                    }
                    Err(i) if w => self.want_list.insert(i, v),
                    _ => {}
                }
            }
        }
    }

    /// Builds this round's schedule: `inbox_nodes ∪ want_list`,
    /// ascending, deduplicated, into the recycled `active` scratch.
    fn build_active(&mut self) {
        self.active.clear();
        let (mut i, mut j) = (0, 0);
        while i < self.inbox_nodes.len() || j < self.want_list.len() {
            let a = self.inbox_nodes.get(i).copied().unwrap_or(usize::MAX);
            let b = self.want_list.get(j).copied().unwrap_or(usize::MAX);
            let v = a.min(b);
            if a == v {
                i += 1;
            }
            if b == v {
                j += 1;
            }
            self.active.push(v);
        }
    }

    /// Applies the want-list changes collected while stepping (both
    /// change lists are ascending because active nodes run in ascending
    /// order), merging in `O(want_list + changes)`.
    fn apply_want_changes(&mut self) {
        if self.want_removed.is_empty() && self.want_added.is_empty() {
            return;
        }
        // Drop removals in place, then merge additions.
        let removed = std::mem::take(&mut self.want_removed);
        self.want_list.retain(|v| removed.binary_search(v).is_err());
        self.want_removed = removed;
        self.want_removed.clear();
        // Backwards in-place merge of the (disjoint, ascending) additions,
        // so no round allocates once the list capacity has grown.
        if !self.want_added.is_empty() {
            let old_len = self.want_list.len();
            self.want_list.resize(old_len + self.want_added.len(), 0);
            let mut i = old_len;
            let mut j = self.want_added.len();
            let mut k = self.want_list.len();
            while j > 0 {
                if i > 0 && self.want_list[i - 1] > self.want_added[j - 1] {
                    self.want_list[k - 1] = self.want_list[i - 1];
                    i -= 1;
                } else {
                    self.want_list[k - 1] = self.want_added[j - 1];
                    j -= 1;
                }
                k -= 1;
            }
            self.want_added.clear();
        }
    }

    /// Counting-scatters `staging` into the inbox arena for the next
    /// round: one pass to count per destination, one stable pass to
    /// place — so each destination's slice preserves global send order,
    /// exactly like the reference's per-node inbox pushes. Allocation-
    /// free once buffer capacities have grown to the workload.
    fn scatter_staging(&mut self) {
        // Stamp with the round the messages are *delivered* in.
        let epoch = self.round as u64 + 1;
        self.touched.clear();
        for s in &self.staging {
            if self.dest_epoch[s.dest] != epoch {
                self.dest_epoch[s.dest] = epoch;
                self.dest_count[s.dest] = 0;
                self.touched.push(s.dest);
            }
            self.dest_count[s.dest] += 1;
        }
        self.touched.sort_unstable();
        let mut off = 0u32;
        for &d in &self.touched {
            self.inbox_start[d] = off;
            self.inbox_len[d] = self.dest_count[d];
            self.inbox_epoch[d] = epoch;
            // Reuse the count as the scatter cursor.
            self.dest_count[d] = off;
            off += self.inbox_len[d];
        }
        self.arena.clear();
        self.arena
            .resize(self.staging.len(), (0, Payload::default()));
        for s in &self.staging {
            let slot = self.dest_count[s.dest];
            self.arena[slot as usize] = (s.port, s.msg);
            self.dest_count[s.dest] = slot + 1;
        }
        self.staging.clear();
        std::mem::swap(&mut self.inbox_nodes, &mut self.touched);
    }

    /// Executes a single round. Returns `true` if anything happened
    /// (a message was delivered or sent, or some node wanted the round).
    ///
    /// Only active nodes (non-empty inbox or registered `wants_round`)
    /// are stepped, in ascending [`NodeId`] order; under the
    /// [`NodeProgram`] contract this is observationally identical to the
    /// dense sweep.
    ///
    /// # Errors
    /// Returns [`SimError::CapacityExceeded`] if a node oversent; the
    /// simulator is then poisoned and every further step re-returns the
    /// error (the aborted round's scheduling state is unrecoverable).
    pub fn step(&mut self) -> Result<bool, SimError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        self.reconcile_dirty();
        let any_inbox = !self.inbox_nodes.is_empty();
        let any_wants = !self.want_list.is_empty();
        if !any_inbox && !any_wants {
            // Nothing to do — a fully quiescent network consumes no
            // round (round 0 included: a program that wants to act
            // spontaneously must say so via `wants_round`).
            return Ok(false);
        }
        self.build_active();
        let epoch = self.round as u64;
        let mut max_edge_load = 0usize;
        for idx in 0..self.active.len() {
            let v = self.active[idx];
            let inbox: &[(PortId, Payload)] = if self.inbox_epoch[v] == epoch {
                let start = self.inbox_start[v] as usize;
                &self.arena[start..start + self.inbox_len[v] as usize]
            } else {
                &[]
            };
            let base = self.net.port_base(v);
            let targets = self.net.port_targets(v);
            let degree = targets.len();
            let watermark = self.staging.len();
            let mut ctx = RoundCtx {
                node: v,
                id: self.net.id_of(v),
                degree,
                round: self.round,
                inbox,
                sink: SendSink::Fast {
                    targets,
                    staging: &mut self.staging,
                    port_sent: &mut self.port_sent[base..base + degree],
                    port_epoch: &mut self.port_epoch[base..base + degree],
                    epoch,
                },
                capacity: self.capacity,
                violation: None,
                max_port_sent: 0,
            };
            self.programs[v].on_round(&mut ctx);
            if let Some(port) = ctx.violation {
                // The offending node contributes nothing (bit-match with
                // the reference, which aborts before draining its outbox).
                self.staging.truncate(watermark);
                let err = SimError::CapacityExceeded {
                    node: v,
                    port,
                    round: self.round,
                };
                self.poisoned = Some(err.clone());
                return Err(err);
            }
            max_edge_load = max_edge_load.max(ctx.max_port_sent);
            self.messages += (self.staging.len() - watermark) as u64;
            let w = self.programs[v].wants_round();
            if w != self.wants[v] {
                self.wants[v] = w;
                if w {
                    self.want_added.push(v);
                } else {
                    self.want_removed.push(v);
                }
            }
        }
        let any_sent = !self.staging.is_empty();
        if self.trace {
            self.history.push(RoundStats {
                sent: self.staging.len() as u64,
                delivered: self.arena.len() as u64,
                max_edge_load,
            });
        }
        self.apply_want_changes();
        self.scatter_staging();
        self.round += 1;
        Ok(any_inbox || any_wants || any_sent)
    }

    /// Runs rounds until quiescence (nothing in flight, nobody wants a
    /// round) or until exactly `max_rounds` rounds have executed — the
    /// cap is exact: a run that needs `max_rounds` rounds succeeds, a
    /// run still active after `max_rounds` rounds errors without
    /// executing a single round more.
    ///
    /// # Errors
    /// [`SimError::RoundLimit`] if the cap binds, or a capacity
    /// violation from [`Simulator::step`].
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> Result<CostReport, SimError> {
        let start_round = self.round;
        let start_msgs = self.messages;
        loop {
            if self.round - start_round >= max_rounds && !self.is_quiescent() {
                return Err(SimError::RoundLimit { limit: max_rounds });
            }
            let progressed = self.step()?;
            if !progressed {
                break;
            }
        }
        Ok(CostReport::with_capacity(
            self.round - start_round,
            self.messages - start_msgs,
            self.capacity,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmo_graph::gen;

    /// Every node floods a token once; used to test accounting.
    struct FloodOnce {
        fired: bool,
    }

    impl NodeProgram for FloodOnce {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if !self.fired {
                self.fired = true;
                ctx.send_all(Payload::tag_only(1));
            }
        }
        fn wants_round(&self) -> bool {
            !self.fired
        }
    }

    #[test]
    fn flood_once_counts_2m_messages() {
        let g = gen::grid(4, 4);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| FloodOnce { fired: false });
        let rep = sim.run_until_quiescent(10).unwrap();
        assert_eq!(rep.messages, 2 * g.m() as u64);
        // round 0: everyone sends; round 1: deliveries, nobody reacts;
        // round 2: quiescent check.
        assert!(rep.rounds <= 3);
    }

    /// A node that spams one port to trigger the capacity check.
    struct Spammer;
    impl NodeProgram for Spammer {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            if ctx.round() == 0 && ctx.degree() > 0 {
                ctx.send(0, Payload::tag_only(1));
                ctx.send(0, Payload::tag_only(2));
            }
        }
        fn wants_round(&self) -> bool {
            true
        }
    }

    #[test]
    fn capacity_violation_detected() {
        let g = gen::path(2);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| Spammer);
        let err = sim.run_until_quiescent(5).unwrap_err();
        assert!(matches!(err, SimError::CapacityExceeded { .. }));
    }

    #[test]
    fn capacity_error_poisons_the_simulator() {
        let g = gen::path(2);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| Spammer);
        let err = sim.step().unwrap_err();
        assert_eq!(
            sim.step().unwrap_err(),
            err,
            "the aborted round's scheduling state is unrecoverable, so \
             further steps must re-return the error instead of running"
        );
    }

    #[test]
    fn capacity_two_allows_two_messages() {
        let g = gen::path(2);
        let net = Network::new(&g, 0);
        struct TwoSender {
            done: bool,
        }
        impl NodeProgram for TwoSender {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
                if !self.done {
                    self.done = true;
                    ctx.send(0, Payload::tag_only(1));
                    ctx.send(0, Payload::tag_only(2));
                }
            }
            fn wants_round(&self) -> bool {
                !self.done
            }
        }
        let mut sim = Simulator::with_capacity(&net, 2, |_| TwoSender { done: false });
        let rep = sim.run_until_quiescent(5).unwrap();
        assert_eq!(rep.messages, 4);
        assert_eq!(rep.capacity_multiplier, 2);
    }

    /// Quiescent program: sends nothing, wants nothing.
    struct Idle;
    impl NodeProgram for Idle {
        fn on_round(&mut self, _ctx: &mut RoundCtx<'_>) {}
    }

    #[test]
    fn idle_network_quiesces_immediately() {
        let g = gen::cycle(5);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| Idle);
        let rep = sim.run_until_quiescent(100).unwrap();
        assert_eq!(rep.messages, 0);
        assert_eq!(rep.rounds, 0, "a quiescent network consumes no round");
        // Even with a zero round budget, quiescence is success — and the
        // reported cost respects the budget.
        let rep = Simulator::new(&net, |_| Idle)
            .run_until_quiescent(0)
            .unwrap();
        assert_eq!(rep.rounds, 0);
    }

    #[test]
    fn round_history_records_traffic_when_traced() {
        let g = gen::path(4);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| FloodOnce { fired: false });
        sim.trace_rounds(true);
        sim.run_until_quiescent(10).unwrap();
        let hist = sim.round_history();
        assert!(!hist.is_empty());
        assert_eq!(hist[0].sent, 2 * g.m() as u64, "everyone floods in round 0");
        assert_eq!(hist[0].delivered, 0, "nothing in flight yet");
        assert_eq!(hist[1].delivered, 2 * g.m() as u64);
        assert!(hist[0].max_edge_load <= 1, "strict CONGEST");
        let total: u64 = hist.iter().map(|s| s.sent).sum();
        assert_eq!(total, sim.messages_sent());
    }

    #[test]
    fn round_history_is_opt_in() {
        let g = gen::path(4);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| FloodOnce { fired: false });
        sim.run_until_quiescent(10).unwrap();
        assert!(
            sim.round_history().is_empty(),
            "tracing is off by default — no per-round stats retained"
        );
        assert!(sim.messages_sent() > 0, "totals are still exact");
    }

    struct Forever;
    impl NodeProgram for Forever {
        fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
            ctx.send(0, Payload::tag_only(0));
        }
        fn wants_round(&self) -> bool {
            true
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = gen::path(2);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| Forever);
        let err = sim.run_until_quiescent(10).unwrap_err();
        assert_eq!(err, SimError::RoundLimit { limit: 10 });
    }

    #[test]
    fn round_limit_is_exact() {
        // A non-quiescing run executes exactly `max_rounds` rounds
        // before erroring — not `max_rounds + 1` (the old off-by-one).
        let g = gen::path(2);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| Forever);
        assert!(sim.run_until_quiescent(7).is_err());
        assert_eq!(sim.rounds_elapsed(), 7, "cap of 7 executes 7 rounds");
        // Zero budget: error before any round runs.
        let mut sim = Simulator::new(&net, |_| Forever);
        assert_eq!(
            sim.run_until_quiescent(0).unwrap_err(),
            SimError::RoundLimit { limit: 0 }
        );
        assert_eq!(sim.rounds_elapsed(), 0);
    }

    #[test]
    fn round_limit_boundary_admits_exact_fit() {
        // FloodOnce on a path quiesces after exactly 2 executed rounds
        // (fire, deliver); a cap of exactly 2 must succeed.
        let g = gen::path(6);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| FloodOnce { fired: false });
        let rep = sim.run_until_quiescent(2).expect("exact fit succeeds");
        assert_eq!(rep.rounds, 2);
        // One round fewer must fail.
        let mut sim = Simulator::new(&net, |_| FloodOnce { fired: false });
        assert_eq!(
            sim.run_until_quiescent(1).unwrap_err(),
            SimError::RoundLimit { limit: 1 }
        );
    }

    #[test]
    fn program_mut_wakes_idle_nodes() {
        // All nodes idle; injecting state through program_mut must
        // re-register the node with the active-set scheduler.
        let g = gen::path(3);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| FloodOnce { fired: true });
        let rep = sim.run_until_quiescent(10).unwrap();
        assert_eq!(rep.messages, 0, "everyone starts quiet");
        sim.program_mut(1).fired = false;
        let rep = sim.run_until_quiescent(10).unwrap();
        assert_eq!(rep.messages, 2, "woken node floods both ports");
    }

    #[test]
    fn active_set_runs_in_ascending_order() {
        // Nodes record the global step order; with everyone active the
        // schedule must be 0..n ascending (the determinism anchor).
        use std::cell::RefCell;
        use std::rc::Rc;
        let order: Rc<RefCell<Vec<NodeId>>> = Rc::default();
        struct Recorder {
            fired: bool,
            order: Rc<RefCell<Vec<NodeId>>>,
        }
        impl NodeProgram for Recorder {
            fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
                if !self.fired {
                    self.fired = true;
                    self.order.borrow_mut().push(ctx.node());
                    ctx.send_all(Payload::tag_only(1));
                }
            }
            fn wants_round(&self) -> bool {
                !self.fired
            }
        }
        let g = gen::cycle(7);
        let net = Network::new(&g, 0);
        let mut sim = Simulator::new(&net, |_| Recorder {
            fired: false,
            order: Rc::clone(&order),
        });
        sim.run_until_quiescent(10).unwrap();
        assert_eq!(*order.borrow(), (0..7).collect::<Vec<_>>());
    }
}
