//! Regression guard: a warm [`Simulator::step`] performs **zero** heap
//! allocation. The flat message arenas, the per-port counters and the
//! active-set scratch are all recycled; once their capacities have
//! grown to the workload's high-water mark, the round loop must never
//! touch the allocator again.
//!
//! Pinned with a counting global allocator. This file holds a single
//! `#[test]` (integration tests each get their own binary), so no
//! concurrent test can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rmo_congest::{Network, NodeProgram, Payload, RoundCtx, Simulator};
use rmo_graph::gen;

/// System allocator wrapper counting every allocation/reallocation.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Circulates one token around a cycle forever: on receipt, forward it
/// out the other port. A 1-node frontier that never quiesces — the
/// steady-state shape (sends, deliveries, want-list churn) with no
/// program-side allocation.
struct TokenRing {
    start: bool,
}

impl NodeProgram for TokenRing {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        if self.start {
            self.start = false;
            ctx.send(0, Payload::tag_only(1));
            return;
        }
        if let Some(&(p, msg)) = ctx.inbox().first() {
            // Degree 2 on a cycle: the other port is 1 - p.
            ctx.send(1 - p, msg);
        }
    }
    fn wants_round(&self) -> bool {
        self.start
    }
}

/// All nodes flood every round (dense frontier, heavy traffic) — the
/// other extreme: full arenas, full active set, every port counted.
struct Chatterbox;

impl NodeProgram for Chatterbox {
    fn on_round(&mut self, ctx: &mut RoundCtx<'_>) {
        ctx.send_all(Payload::one(2, ctx.round() as u64));
    }
    fn wants_round(&self) -> bool {
        true
    }
}

fn allocs_during_steps<P: NodeProgram>(sim: &mut Simulator<'_, P>, steps: usize) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..steps {
        assert!(sim.step().expect("step succeeds"), "workload never idles");
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Minimum allocation count over several measurement windows. The
/// simulator is deterministic — if *it* allocated on warm steps, every
/// window would show it — so the minimum filters out the libtest
/// harness thread's own incidental allocations landing in a window.
fn min_allocs_over_windows<P: NodeProgram>(
    sim: &mut Simulator<'_, P>,
    windows: usize,
    steps: usize,
) -> usize {
    (0..windows)
        .map(|_| allocs_during_steps(sim, steps))
        .min()
        .expect("at least one window")
}

#[test]
fn warm_steps_do_not_allocate() {
    // Sparse frontier: one token orbiting a 64-cycle.
    let g = gen::cycle(64);
    let net = Network::new(&g, 3);
    let mut sim = Simulator::new(&net, |v| TokenRing { start: v == 0 });
    // Warm-up: let every recycled buffer reach its high-water capacity.
    let warmup = allocs_during_steps(&mut sim, 8);
    let warm = min_allocs_over_windows(&mut sim, 4, 50);
    assert_eq!(
        warm, 0,
        "sparse-frontier steady state must be allocation-free \
         (warm-up allocated {warmup}, warm rounds allocated {warm})"
    );

    // Dense frontier: everyone floods every round on a 12x12 grid.
    let g = gen::grid(12, 12);
    let net = Network::new(&g, 3);
    let mut sim = Simulator::new(&net, |_| Chatterbox);
    let warmup = allocs_during_steps(&mut sim, 8);
    let warm = min_allocs_over_windows(&mut sim, 4, 25);
    assert_eq!(
        warm, 0,
        "dense-frontier steady state must be allocation-free \
         (warm-up allocated {warmup}, warm rounds allocated {warm})"
    );

    // With tracing enabled the history vector grows (amortized
    // doubling), which is exactly why RoundStats collection is opt-in —
    // the default path above stays silent.
}
