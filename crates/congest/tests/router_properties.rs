//! Property tests of the BlockRoute engine (Lemma 4.2): delivery,
//! aggregation correctness against a centralized fold, the `D + c` round
//! envelope and the Observation 4.3 message bound — on random trees with
//! random subtree families.

use proptest::prelude::*;

use rmo_congest::router::{DowncastJob, TreeRouter, UpcastJob};
use rmo_graph::{bfs_tree, gen};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn upcast_aggregates_correctly_on_random_trees(
        n in 2usize..80,
        tree_seed in 0u64..300,
        jobs_n in 1usize..10,
        srcs_per_job in 1usize..6,
        mix in 0u64..1000,
    ) {
        let g = gen::random_spanning_tree(n, tree_seed);
        let (tree, _) = bfs_tree(&g, 0);
        let router = TreeRouter::new(&tree);
        // All jobs rooted at the tree root: every node is a descendant.
        let jobs: Vec<UpcastJob> = (0..jobs_n)
            .map(|j| {
                let sources: Vec<(usize, u64)> = (0..srcs_per_job)
                    .map(|s| {
                        let v = ((j * 31 + s * 17) as u64 ^ mix) as usize % n;
                        (v, (j * 100 + s) as u64 + 1)
                    })
                    .collect();
                UpcastJob { subtree: j, root: tree.root(), sources }
            })
            .collect();
        let res = router.upcast(&jobs, |a, b| a.max(b));
        for (j, job) in jobs.iter().enumerate() {
            let expect = job.sources.iter().map(|&(_, v)| v).max();
            prop_assert_eq!(res.aggregates[j], expect, "job {}", j);
        }
        // Lemma 4.2: rounds <= depth + #subtrees.
        prop_assert!(res.cost.rounds <= tree.depth() + jobs_n);
        // Observation 4.3: messages <= (#sources) * depth.
        let total_sources: usize = jobs.iter().map(|j| j.sources.len()).sum();
        prop_assert!(res.cost.messages <= (total_sources * tree.depth().max(1)) as u64);
    }

    #[test]
    fn upcast_sum_merging_is_lossless(
        n in 2usize..60,
        tree_seed in 0u64..200,
        srcs in 1usize..20,
    ) {
        let g = gen::random_spanning_tree(n, tree_seed);
        let (tree, _) = bfs_tree(&g, 0);
        let router = TreeRouter::new(&tree);
        let sources: Vec<(usize, u64)> =
            (0..srcs).map(|s| ((s * 13 + 7) % n, 1u64)).collect();
        // Sources at the same node pre-merge; compute the expected sum of
        // all injected values regardless.
        let expected: u64 = sources.len() as u64;
        let jobs = vec![UpcastJob { subtree: 0, root: tree.root(), sources }];
        let res = router.upcast(&jobs, |a, b| a + b);
        prop_assert_eq!(res.aggregates[0], Some(expected), "no packet lost or duplicated");
    }

    #[test]
    fn downcast_reaches_exactly_the_destinations(
        n in 2usize..60,
        tree_seed in 0u64..200,
        dest_mask in 0u64..u64::MAX,
    ) {
        let g = gen::random_spanning_tree(n, tree_seed);
        let (tree, _) = bfs_tree(&g, 0);
        let router = TreeRouter::new(&tree);
        let destinations: Vec<usize> =
            (0..n).filter(|v| (dest_mask >> (v % 64)) & 1 == 1).collect();
        let jobs = vec![DowncastJob {
            subtree: 0,
            root: tree.root(),
            value: 42,
            destinations: destinations.clone(),
        }];
        let res = router.downcast(&jobs);
        for v in 0..n {
            let got = res.received[v].iter().any(|&(s, val)| s == 0 && val == 42);
            prop_assert_eq!(got, destinations.contains(&v), "node {}", v);
        }
        // One message per tree edge on the union of root-paths, at most.
        prop_assert!(res.cost.messages <= (n - 1) as u64);
    }

    #[test]
    fn capacity_scaling_reduces_rounds(
        n in 10usize..60,
        jobs_n in 4usize..12,
    ) {
        let g = gen::path(n);
        let (tree, _) = bfs_tree(&g, 0);
        let jobs: Vec<UpcastJob> = (0..jobs_n)
            .map(|j| UpcastJob { subtree: j, root: 0, sources: vec![(n - 1, j as u64)] })
            .collect();
        let strict = TreeRouter::new(&tree).upcast(&jobs, u64::min);
        let batched = TreeRouter::with_capacity(&tree, 4).upcast(&jobs, u64::min);
        prop_assert!(batched.cost.rounds <= strict.cost.rounds);
        prop_assert_eq!(batched.cost.messages, strict.cost.messages,
            "capacity changes scheduling, not message count");
    }
}
